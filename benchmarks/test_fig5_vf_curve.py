"""Bench: regenerate Figure 5 (voltage-frequency curves)."""

import pytest

from repro.eval import fig5
from repro.tech.vf_curve import VoltageFrequencyCurve


def test_fig5(benchmark):
    data = benchmark(fig5.compute)
    assert set(data) == {15, 20}
    curve = VoltageFrequencyCurve.from_technology()
    assert curve.max_frequency_mhz(1.65) == pytest.approx(600.0,
                                                          rel=0.01)
    print()
    print(fig5.render())
