"""Engine microbenchmark: compiled vs reference wall clock.

Two workloads bracket the engine's operating range:

* the FIR kernel (single column, divider 1, no DOU schedule) - the
  representative compute kernel; the compiled engine must never be
  slower than the reference engine on it;
* a mixed-divider chip (2/4/8 off one reference) - the hyperperiod
  fast path's home turf, where the acceptance bar is a >= 2x speedup.

Both runs are cross-checked for bit-identical statistics before any
timing is trusted.

Assert-only mode (``BENCH_SMOKE=1``, used by the CI smoke step) keeps
every correctness assertion - bit-identical statistics between the
engines - but skips the wall-clock ratio thresholds, which are
meaningless on noisy shared runners.
"""

import os
import time

from repro.arch.chip import Chip
from repro.arch.config import ChipConfig, ColumnConfig
from repro.isa.assembler import assemble
from repro.kernels.base import run_kernel
from repro.kernels.fir import build_fir_kernel
from repro.sim.simulator import Simulator

REPEATS = 3

#: Assert-only mode: verify engine equivalence, skip timing bars.
SMOKE = os.environ.get("BENCH_SMOKE", "") == "1"


def _best_of(repeats, fn):
    """Minimum wall-clock over several runs (noise suppression)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _spin(iterations):
    return assemble(f"""
        movi r0, 0
        loop {iterations}
          addi r0, r0, 1
        endloop
        halt
    """, "spin")


def _mixed_divider_chip():
    config = ChipConfig(
        reference_mhz=800.0,
        columns=(ColumnConfig(divider=2), ColumnConfig(divider=4),
                 ColumnConfig(divider=8)),
    )
    return Chip(config, programs=[
        _spin(2000), _spin(1200), _spin(600),
    ])


def test_fir_kernel_compiled_not_slower():
    reference_s, reference = _best_of(
        REPEATS,
        lambda: run_kernel(build_fir_kernel(windows=24),
                           engine="reference"),
    )
    compiled_s, compiled = _best_of(
        REPEATS,
        lambda: run_kernel(build_fir_kernel(windows=24),
                           engine="compiled"),
    )
    assert compiled.stats == reference.stats
    ratio = reference_s / compiled_s
    print(f"\nFIR kernel: reference {reference_s * 1e3:7.2f} ms, "
          f"compiled {compiled_s * 1e3:7.2f} ms -> {ratio:.2f}x")
    assert SMOKE or ratio >= 1.0, (
        f"compiled engine slower than reference on FIR "
        f"({ratio:.2f}x)"
    )


def test_mixed_divider_speedup_at_least_2x():
    """Dividers {2,4,8} (largest >= 4): the hyperperiod pays off."""
    reference_s, reference = _best_of(
        REPEATS,
        lambda: Simulator(_mixed_divider_chip(),
                          engine="reference").run(),
    )
    compiled_s, compiled = _best_of(
        REPEATS,
        lambda: Simulator(_mixed_divider_chip(),
                          engine="compiled").run(),
    )
    assert compiled == reference
    ratio = reference_s / compiled_s
    print(f"\nmixed dividers (2,4,8): reference "
          f"{reference_s * 1e3:7.2f} ms, compiled "
          f"{compiled_s * 1e3:7.2f} ms -> {ratio:.2f}x")
    assert SMOKE or ratio >= 2.0, (
        f"compiled engine only {ratio:.2f}x faster on the "
        f"mixed-divider workload (need >= 2x)"
    )
