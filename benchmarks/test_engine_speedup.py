"""Engine microbenchmark: compiled vs reference wall clock.

Four workloads bracket the engine's operating range:

* the FIR kernel (single column, divider 1, no DOU schedule) - the
  representative compute kernel.  With no hyperperiod to stride over,
  the whole speedup comes from the compute plane: compiled column
  runs executing generated per-tile code blocks instead of the
  fetch/issue/execute interpreter.  Bar: >= 3x;
* a mixed-divider chip (8/16/32 off one reference) - the hyperperiod
  fast path's home turf, where the acceptance bar is a >= 10x
  speedup.  The dividers model the paper's deeply divided compute
  columns (tens of MHz off a reference bus clock well above 500 MHz,
  Table 3); since the per-state DOU plans also accelerated the
  reference engine's tick loop, shallow dividers would mostly
  measure the shared tile work both engines must execute;
* the DDC front-end pipeline (two columns at 24/40 MHz off 600 MHz,
  live compiled DOU schedules on both vertical buses plus the
  horizontal bus) - the dense-mode acceptance case: per-state DOU
  plans, multi-state orbit batching, comm-parked column batching
  (both RECV and SEND sides), and cross-column lockstep rounds must
  together beat the reference tick loop >= 4.5x (the hard 6x
  contract lives in the runner's recorded floors, where full-size
  best-of repeats make it reliable);
* the governed WLAN burst scenario - the full control stack (epoch
  windows, occupancy-PI retunes, plan-cache reuse, shared lockstep
  plans across per-epoch engines) must carry the compute-plane
  compilation through to a >= 5x end-to-end speedup (the runner
  floor is 8x).

All runs are cross-checked for bit-identical statistics before any
timing is trusted.

Assert-only mode (``BENCH_SMOKE=1``, used by the CI smoke step) keeps
every correctness assertion - bit-identical statistics between the
engines - but skips the wall-clock ratio thresholds, which are
meaningless on noisy shared runners.
"""

import os
import time

from repro.eval.engines import (
    build_ddc_stream_chip,
    build_mixed_divider_chip,
)
from repro.kernels.base import run_kernel
from repro.kernels.fir import build_fir_kernel
from repro.sim.simulator import Simulator

REPEATS = 4

#: Assert-only mode: verify engine equivalence, skip timing bars.
SMOKE = os.environ.get("BENCH_SMOKE", "") == "1"


def _best_of(repeats, fn):
    """Minimum wall-clock over several runs (noise suppression)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_fir_kernel_speedup_at_least_3x():
    """No hyperperiod to stride: pure compute-plane compilation.

    Single column at divider 1 means every reference tick carries a
    tile-clock edge, so the entire margin comes from compiled column
    runs executing generated code blocks (measured ~5.6x).
    """
    reference_s, reference = _best_of(
        REPEATS,
        lambda: run_kernel(build_fir_kernel(windows=24),
                           engine="reference"),
    )
    compiled_s, compiled = _best_of(
        REPEATS,
        lambda: run_kernel(build_fir_kernel(windows=24),
                           engine="compiled"),
    )
    assert compiled.stats == reference.stats
    ratio = reference_s / compiled_s
    print(f"\nFIR kernel: reference {reference_s * 1e3:7.2f} ms, "
          f"compiled {compiled_s * 1e3:7.2f} ms -> {ratio:.2f}x")
    assert SMOKE or ratio >= 3.0, (
        f"compiled engine only {ratio:.2f}x faster on FIR "
        f"(need >= 3x)"
    )


def test_mixed_divider_speedup_at_least_10x():
    """Dividers {8,16,32} (largest >= 4): the hyperperiod pays off.

    Sparse mode settles each column's whole window in closed form
    through its runner (measured ~40x)."""
    reference_s, reference = _best_of(
        REPEATS,
        lambda: Simulator(build_mixed_divider_chip(),
                          engine="reference").run(),
    )
    compiled_s, compiled = _best_of(
        REPEATS,
        lambda: Simulator(build_mixed_divider_chip(),
                          engine="compiled").run(),
    )
    assert compiled == reference
    ratio = reference_s / compiled_s
    print(f"\nmixed dividers (8,16,32): reference "
          f"{reference_s * 1e3:7.2f} ms, compiled "
          f"{compiled_s * 1e3:7.2f} ms -> {ratio:.2f}x")
    assert SMOKE or ratio >= 10.0, (
        f"compiled engine only {ratio:.2f}x faster on the "
        f"mixed-divider workload (need >= 10x)"
    )


def test_ddc_pipeline_live_dou_speedup_at_least_4_5x():
    """The dense-mode acceptance case: live DOUs on every bus.

    Producer and consumer columns stream through three compiled DOU
    schedules (to-port, horizontal hop, fan-out), so the old engine
    would have interpreted every DOU on every reference tick.  The
    compiled engine must beat the tick-accurate loop >= 4.5x through
    per-state plans, multi-state orbit batching, comm-parked column
    batching on both the RECV and SEND sides, compiled compute runs,
    and lockstep round replay (measured ~6.5-7.4x; the bar leaves
    noise margin, the hard 6x contract is enforced by the runner's
    recorded floors on full-size ``--engines`` runs where best-of
    repeats are cheap).
    """
    reference_s, reference = _best_of(
        REPEATS,
        lambda: Simulator(build_ddc_stream_chip(),
                          engine="reference").run(max_ticks=1_000_000),
    )
    compiled_s, compiled = _best_of(
        REPEATS,
        lambda: Simulator(build_ddc_stream_chip(),
                          engine="compiled").run(max_ticks=1_000_000),
    )
    assert compiled == reference
    ratio = reference_s / compiled_s
    print(f"\nDDC pipeline (live DOUs): reference "
          f"{reference_s * 1e3:7.2f} ms, compiled "
          f"{compiled_s * 1e3:7.2f} ms -> {ratio:.2f}x")
    assert SMOKE or ratio >= 4.5, (
        f"compiled engine only {ratio:.2f}x faster on the live-DOU "
        f"DDC pipeline (need >= 4.5x)"
    )


def test_governed_burst_speedup_at_least_5x():
    """The governed end-to-end case: epochs, retunes, plan reuse.

    The occupancy-PI governor retunes the chip across epoch windows,
    so the compiled engine recompiles (and cache-reuses) its clock
    plans mid-run while the compute-plane compilation and the shared
    cross-engine lockstep plan cache keep working across retunes
    (measured ~8.0-8.6x; the hard 8x contract is the runner floor).
    """
    from repro.workloads.dvfs import run_scenario, wlan_mcs_scenario

    def run(engine):
        scenario = wlan_mcs_scenario(frames=16)
        return run_scenario(scenario, "occupancy_pi", engine=engine)

    reference_s, reference = _best_of(
        REPEATS, lambda: run("reference")
    )
    compiled_s, compiled = _best_of(
        REPEATS, lambda: run("compiled")
    )
    assert compiled.run.stats == reference.run.stats
    ratio = reference_s / compiled_s
    print(f"\ngoverned WLAN burst: reference "
          f"{reference_s * 1e3:7.2f} ms, compiled "
          f"{compiled_s * 1e3:7.2f} ms -> {ratio:.2f}x")
    assert SMOKE or ratio >= 5.0, (
        f"compiled engine only {ratio:.2f}x faster on the governed "
        f"burst scenario (need >= 5x)"
    )
