"""Engine microbenchmark: compiled vs reference wall clock.

Three workloads bracket the engine's operating range:

* the FIR kernel (single column, divider 1, no DOU schedule) - the
  representative compute kernel; the compiled engine must never be
  slower than the reference engine on it;
* a mixed-divider chip (8/16/32 off one reference) - the hyperperiod
  fast path's home turf, where the acceptance bar is a >= 2x speedup.
  The dividers model the paper's deeply divided compute columns (tens
  of MHz off a reference bus clock well above 500 MHz, Table 3);
  since the per-state DOU plans also accelerated the reference
  engine's tick loop, shallow dividers would mostly measure the
  shared tile work both engines must execute;
* the DDC front-end pipeline (two columns at 24/40 MHz off 600 MHz,
  live compiled DOU schedules on both vertical buses plus the
  horizontal bus) - the dense-mode acceptance case: per-state DOU
  plans, starved-self-loop stall batching, and RECV-parked column
  batching must together beat the reference tick loop >= 2x even
  though every engine shares the same fast ``Dou.step``.

All runs are cross-checked for bit-identical statistics before any
timing is trusted.

Assert-only mode (``BENCH_SMOKE=1``, used by the CI smoke step) keeps
every correctness assertion - bit-identical statistics between the
engines - but skips the wall-clock ratio thresholds, which are
meaningless on noisy shared runners.
"""

import os
import time

from repro.eval.engines import (
    build_ddc_stream_chip,
    build_mixed_divider_chip,
)
from repro.kernels.base import run_kernel
from repro.kernels.fir import build_fir_kernel
from repro.sim.simulator import Simulator

REPEATS = 3

#: Assert-only mode: verify engine equivalence, skip timing bars.
SMOKE = os.environ.get("BENCH_SMOKE", "") == "1"


def _best_of(repeats, fn):
    """Minimum wall-clock over several runs (noise suppression)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_fir_kernel_compiled_not_slower():
    reference_s, reference = _best_of(
        REPEATS,
        lambda: run_kernel(build_fir_kernel(windows=24),
                           engine="reference"),
    )
    compiled_s, compiled = _best_of(
        REPEATS,
        lambda: run_kernel(build_fir_kernel(windows=24),
                           engine="compiled"),
    )
    assert compiled.stats == reference.stats
    ratio = reference_s / compiled_s
    print(f"\nFIR kernel: reference {reference_s * 1e3:7.2f} ms, "
          f"compiled {compiled_s * 1e3:7.2f} ms -> {ratio:.2f}x")
    assert SMOKE or ratio >= 1.0, (
        f"compiled engine slower than reference on FIR "
        f"({ratio:.2f}x)"
    )


def test_mixed_divider_speedup_at_least_2x():
    """Dividers {8,16,32} (largest >= 4): the hyperperiod pays off."""
    reference_s, reference = _best_of(
        REPEATS,
        lambda: Simulator(build_mixed_divider_chip(),
                          engine="reference").run(),
    )
    compiled_s, compiled = _best_of(
        REPEATS,
        lambda: Simulator(build_mixed_divider_chip(),
                          engine="compiled").run(),
    )
    assert compiled == reference
    ratio = reference_s / compiled_s
    print(f"\nmixed dividers (8,16,32): reference "
          f"{reference_s * 1e3:7.2f} ms, compiled "
          f"{compiled_s * 1e3:7.2f} ms -> {ratio:.2f}x")
    assert SMOKE or ratio >= 2.0, (
        f"compiled engine only {ratio:.2f}x faster on the "
        f"mixed-divider workload (need >= 2x)"
    )


def test_ddc_pipeline_live_dou_speedup_at_least_2x():
    """The dense-mode acceptance case: live DOUs on every bus.

    Producer and consumer columns stream through three compiled DOU
    schedules (to-port, horizontal hop, fan-out), so the old engine
    would have interpreted every DOU on every reference tick.  The
    compiled engine must beat the tick-accurate loop >= 2x through
    per-state plans, stall batching, and RECV-parked column batching.
    """
    reference_s, reference = _best_of(
        REPEATS,
        lambda: Simulator(build_ddc_stream_chip(),
                          engine="reference").run(max_ticks=1_000_000),
    )
    compiled_s, compiled = _best_of(
        REPEATS,
        lambda: Simulator(build_ddc_stream_chip(),
                          engine="compiled").run(max_ticks=1_000_000),
    )
    assert compiled == reference
    ratio = reference_s / compiled_s
    print(f"\nDDC pipeline (live DOUs): reference "
          f"{reference_s * 1e3:7.2f} ms, compiled "
          f"{compiled_s * 1e3:7.2f} ms -> {ratio:.2f}x")
    assert SMOKE or ratio >= 2.0, (
        f"compiled engine only {ratio:.2f}x faster on the live-DOU "
        f"DDC pipeline (need >= 2x)"
    )
