"""Ablation: full-search vs three-step motion estimation.

DESIGN.md calls out the ME algorithm choice: full search is the
regular, SIMD-friendly dataflow the paper's 8-tile ME columns run;
three-step is the classic cheap alternative.  This bench measures the
throughput gap and checks the quality gap stays small on smooth
synthetic motion.
"""

import numpy as np
import pytest

from repro.apps.mpeg4 import (
    Mpeg4Encoder,
    QCIF_SHAPE,
    synthetic_sequence,
)

FRAMES = synthetic_sequence(3, shape=QCIF_SHAPE, motion_per_frame=(1, 2),
                            seed=2)


def _encode(motion_search):
    encoder = Mpeg4Encoder(shape=QCIF_SHAPE, qp=4,
                           motion_search=motion_search)
    return encoder.encode_sequence(FRAMES)


def test_full_search(benchmark):
    results = benchmark.pedantic(_encode, args=("full",), rounds=1,
                                 iterations=1)
    assert results[1].psnr_db > 40.0


def test_three_step_search(benchmark):
    results = benchmark.pedantic(_encode, args=("three_step",),
                                 rounds=1, iterations=1)
    # three-step stays within 3 dB of full search on smooth motion
    full = _encode("full")
    assert results[1].psnr_db > full[1].psnr_db - 3.0
