"""Bench: regenerate Figure 8 (Viterbi ACS power vs area).

Reproduced claims: the paper's anchor point (16 tiles, 256-bit bus,
540 MHz @ 1.7 V, ~3.85 W), a large win for 128->256 bits, and a small
win at large area cost beyond 256 bits.
"""

import pytest

from repro.eval import fig8


def test_fig8(benchmark):
    points = benchmark(fig8.compute)
    anchor = next(
        p for p in points if p.n_tiles == 16 and p.bus_width_bits == 256
    )
    assert anchor.frequency_mhz == pytest.approx(540.0, rel=1e-6)
    assert anchor.power_mw == pytest.approx(3848.0, rel=0.01)
    gains = fig8.knee_gain(points)
    assert gains["128->256"] > 4.0 * max(gains["256->512"], 1.0)
    print()
    print(fig8.render())
