"""Ablation: discrete voltage rails vs a continuous supply.

Section 2.4 restricts each design to "a small set of frequencies and
voltages".  This bench quantifies what that simplification costs: the
power delta between quantizing to the Table 4 rails and running every
column at its continuous minimum voltage.
"""

import pytest

from repro.power.model import PowerModel
from repro.tech.vf_curve import VoltageFrequencyCurve
from repro.workloads.configs import all_applications


def _continuous_power(config):
    curve = VoltageFrequencyCurve.from_technology()
    model = PowerModel()
    total = 0.0
    for spec in config.specs:
        voltage = curve.min_voltage_for(spec.frequency_mhz)
        total += model.component_power(
            spec, voltage_override=voltage
        ).total_mw
    return total


def test_rail_quantization_cost(benchmark):
    def run():
        out = {}
        model = PowerModel()
        for key, config in all_applications().items():
            railed = model.application_power(
                config.name, config.specs
            ).total_mw
            continuous = _continuous_power(config)
            out[key] = (railed, continuous)
        return out

    results = benchmark(run)
    print()
    print(f"{'Application':14s} {'rails mW':>10} {'cont. mW':>10} "
          f"{'penalty':>8}")
    for key, (railed, continuous) in results.items():
        penalty = railed / continuous - 1.0
        print(f"{key:14s} {railed:10.1f} {continuous:10.1f} "
              f"{100 * penalty:7.1f}%")
        # the rails never win, and the paper's sets are decent:
        # quantization costs less than ~35% per application
        assert railed >= continuous * 0.999
        assert penalty < 0.35
