"""Ablation: automatic vs hand parallelization (paper Section 7).

The paper hand-parallelized every application and proposed an
automated tool as future work.  This bench runs our rail-crossing
allocator at the paper's tile budgets and checks it never loses to
the hand mappings - quantifying what the proposed tool would buy.
"""

import pytest

from repro.power import PowerModel
from repro.sdf import ParallelizationOptimizer
from repro.tech.parameters import PAPER_TECHNOLOGY
from repro.workloads import parallel_studies


def test_auto_allocation(benchmark):
    optimizer = ParallelizationOptimizer()
    model = PowerModel(rails=PAPER_TECHNOLOGY.exploration_rails)
    studies = parallel_studies()

    def run():
        out = {}
        for key, study in studies.items():
            components = list(study.components)
            budget = study.tile_points[-1]
            hand = model.application_power(
                study.name, study.configuration(budget)
            ).total_mw
            auto = optimizer.optimize(components, tile_budget=budget)
            out[key] = (hand, auto.power_mw, auto.tiles_used)
        return out

    results = benchmark(run)
    print()
    print(f"{'app':8s} {'hand mW':>9} {'auto mW':>9} {'tiles':>6}")
    for key, (hand, auto, tiles) in results.items():
        print(f"{key:8s} {hand:9.1f} {auto:9.1f} {tiles:6d}")
        assert auto <= hand * 1.001
