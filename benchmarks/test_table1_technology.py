"""Bench: regenerate Table 1 (technology parameters)."""

from repro.eval import table1


def test_table1(benchmark):
    rows = benchmark(table1.compute)
    values = {name: value for name, value, _ in rows}
    assert values["Technology"] == "130 nm"
    assert values["Max Frequency"] == "600 MHz"
    assert values["Tile Power"] == "0.1 mW/MHz"
    print()
    print(table1.render())
