"""Benchmark fixtures."""

import pytest


@pytest.fixture(autouse=True)
def _print_rendered(request, capsys):
    """Let benchmarks emit the paper-style tables without clutter."""
    yield
