"""Ablation: what integer clock dividers really cost (beyond the paper).

Table 4 assigns frequency sets that no single reference clock divides
exactly; a real chip overshoots each column's clock to the nearest
achievable divider and pays the voltage of the actual frequency.
This bench sweeps reference choices and reports the minimum overhead
per application.
"""

import pytest

from repro.power import PowerModel
from repro.workloads.configs import all_applications
from repro.workloads.realization import best_reference


def test_integer_divider_overhead(benchmark):
    model = PowerModel()
    applications = all_applications()

    def run():
        return {
            key: best_reference(config.specs, model=model)
            for key, config in applications.items()
        }

    results = benchmark(run)
    print()
    print(f"{'application':14s} {'ideal mW':>9} {'real mW':>9} "
          f"{'ovh':>6} {'ref MHz':>8}  dividers")
    for key, result in results.items():
        dividers = [c.divider for c in result.components]
        print(f"{key:14s} {result.ideal_mw:9.1f} "
              f"{result.realized_mw:9.1f} "
              f"{100 * result.overhead_fraction:5.1f}% "
              f"{result.reference_mhz:8.0f}  {dividers}")
        assert result.overhead_fraction < 0.10
