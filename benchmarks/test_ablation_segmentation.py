"""Ablation: bus segmentation's effect on interconnect energy.

Section 2.3 argues segmentation gives local bandwidth "for very little
cost in area and power".  Here we measure the interconnect-power side:
transfers that charge only their own segments versus transfers that
always charge the full 10 mm bus.
"""

from dataclasses import replace

import pytest

from repro.power.model import PowerModel
from repro.workloads.configs import all_applications


def test_segmentation_saves_interconnect_power(benchmark):
    def run():
        model = PowerModel()
        out = {}
        for key, config in all_applications().items():
            segmented = 0.0
            unsegmented = 0.0
            for spec in config.specs:
                local = replace(
                    spec, comm=replace(spec.comm, span_fraction=0.4)
                )
                full = replace(
                    spec, comm=replace(spec.comm, span_fraction=1.0)
                )
                segmented += model.component_power(local).bus_mw
                unsegmented += model.component_power(full).bus_mw
            out[key] = (segmented, unsegmented)
        return out

    results = benchmark(run)
    print()
    print(f"{'Application':14s} {'seg. mW':>9} {'flat mW':>9}")
    for key, (segmented, unsegmented) in results.items():
        print(f"{key:14s} {segmented:9.1f} {unsegmented:9.1f}")
        if unsegmented > 0:
            assert segmented == pytest.approx(0.4 * unsegmented,
                                              rel=1e-6)
