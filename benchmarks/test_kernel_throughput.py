"""Throughput benches for the heavy functional kernels and the
cycle-level simulator itself."""

import numpy as np
import pytest

from repro.apps.aes import Aes128
from repro.apps.ddc import DigitalDownConverter
from repro.apps.wlan import Receiver, Transmitter
from repro.apps.wlan.fft import fft
from repro.apps.wlan.viterbi import ViterbiDecoder
from repro.apps.wlan.convcode import ConvolutionalEncoder
from repro.isa.assembler import assemble
from repro.sim.simulator import run_single_column

RNG = np.random.default_rng(7)


def test_fft_64point(benchmark):
    data = RNG.standard_normal(64) + 1j * RNG.standard_normal(64)
    result = benchmark(fft, data)
    assert len(result) == 64


def test_viterbi_decode(benchmark):
    encoder = ConvolutionalEncoder()
    bits = RNG.integers(0, 2, 500).astype(np.uint8)
    coded = encoder.encode(bits).astype(float)
    decoder = ViterbiDecoder()
    decoded = benchmark(decoder.decode, coded)
    assert np.array_equal(decoded, bits)


def test_aes_block(benchmark):
    cipher = Aes128(bytes(range(16)))
    block = bytes(range(16, 32))
    tag = benchmark(cipher.encrypt, block)
    assert len(tag) == 16


def test_ddc_block(benchmark):
    ddc = DigitalDownConverter()
    samples = RNG.standard_normal(64 * 64)
    out = benchmark.pedantic(ddc.process, args=(samples,), rounds=2,
                             iterations=1)
    assert len(out) > 0


def test_wlan_link(benchmark):
    payload = RNG.integers(0, 2, 400).astype(np.uint8)
    transmitter, receiver = Transmitter(54), Receiver(54)

    def link():
        return receiver.receive(transmitter.transmit(payload),
                                payload_bits=400)

    result = benchmark.pedantic(link, rounds=2, iterations=1)
    assert np.array_equal(result.bits, payload)


def test_simulator_ticks_per_second(benchmark):
    program = assemble("""
        movi p0, 0
        movi a0, 0
        loop 500
          ld r1, [p0]
          mac a0, r1, r1
        endloop
        halt
    """)

    def run():
        return run_single_column(
            program, memory_images={0: {0: [3]}}, max_ticks=100_000
        )

    chip, stats = benchmark.pedantic(run, rounds=2, iterations=1)
    assert stats.column(0).issued == 1002
