"""Section 5.5's U-parameter sensitivity claim, verified.

"Our power results are roughly linear with U... even if our estimate
of U is off by a factor of two, we are still demonstrating significant
power savings" - because the DDC's 38 nW/sample sits a factor of ~65
from the Blackfin's 2478 nW/sample.
"""

import pytest

from repro.power.model import PowerModel
from repro.units import mw_to_nw_per_sample
from repro.workloads.baselines import TABLE3_PLATFORMS
from repro.workloads.configs import application


def test_u_sensitivity(benchmark):
    config = application("ddc")

    def run():
        out = {}
        for scale in (0.5, 1.0, 2.0):
            model = PowerModel(u_mw_per_mhz=0.1 * scale)
            power = model.application_power(config.name, config.specs)
            out[scale] = power.total_mw
        return out

    totals = benchmark(run)
    print()
    for scale, total in totals.items():
        print(f"  U x {scale}: {total:8.1f} mW")

    # Roughly linear: dynamic power dominates, so halving/doubling U
    # moves the total by close to the dynamic share.
    assert totals[2.0] > 1.8 * totals[1.0] * 0.95
    assert totals[0.5] < 0.6 * totals[1.0]

    # Even at 2x U the DSP advantage survives by a wide margin.
    blackfin = next(
        f for f in TABLE3_PLATFORMS["DDC"] if "Blackfin" in f.platform
    )
    pessimistic = mw_to_nw_per_sample(totals[2.0], 64.0e6)
    assert blackfin.nw_per_sample / pessimistic > 30.0
