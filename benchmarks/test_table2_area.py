"""Bench: regenerate Table 2 (area estimation)."""

import pytest

from repro.eval import table2


def test_table2(benchmark):
    data = benchmark(table2.compute)
    assert data["tile_total_um2"] == pytest.approx(7_272_620.0)
    assert data["tile_area_scaled_mm2"] == pytest.approx(1.97, abs=0.02)
    print()
    print(table2.render())
