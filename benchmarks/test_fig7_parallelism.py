"""Bench: regenerate Figure 7 (power vs parallelization).

Reproduced claims: power falls with parallelization for DDC/SV/MPEG4,
802.11a shows diminishing returns, and the dark (interconnect +
leakage) share grows with tile count.
"""

from repro.eval import fig7


def test_fig7(benchmark):
    bars = benchmark(fig7.compute)
    by_key = {(b.application, b.n_tiles): b for b in bars}
    assert by_key[("DDC", 14)].total_mw > by_key[("DDC", 26)].total_mw \
        > by_key[("DDC", 50)].total_mw
    gain_36 = (by_key[("802.11a", 20)].total_mw
               - by_key[("802.11a", 36)].total_mw)
    assert gain_36 < 0.10 * by_key[("802.11a", 20)].total_mw
    print()
    print(fig7.render())
