"""Bench: regenerate Table 4 (per-component power summary).

Reproduced claims: every consistent component row within 2%, up to
~81% component and ~32% application savings from multiple voltages.
"""

import pytest

from repro.eval import table4


def test_table4(benchmark):
    rows = benchmark(table4.compute)
    by_key = {(r.application, r.component): r for r in rows}
    acs = by_key[("802.11a", "Viterbi ACS")]
    assert acs.power_mw == pytest.approx(3848.0, rel=0.01)
    assert acs.voltage_v == 1.7
    assert table4.max_component_savings() == pytest.approx(81.0,
                                                           abs=4.0)
    assert table4.max_application_savings() == pytest.approx(32.0,
                                                             abs=3.0)
    print()
    print(table4.render())
