"""Bench: regenerate Figure 10 (leakage sensitivity, SV + MPEG4).

Reproduced claim: the MPEG4 12-vs-36-tile crossover sits near the
paper's 14.8 mA/tile (8.3 nA/transistor).
"""

import pytest

from repro.eval import fig10


def test_fig10(benchmark):
    series = benchmark(fig10.compute)
    assert {s.label for s in series} >= {
        "SV 17 Tiles", "MPEG4 12 Tiles", "MPEG4 36 Tiles",
    }
    crossing = fig10.mpeg4_crossover()
    assert crossing["crossover_ma"] == pytest.approx(14.8, abs=7.4)
    print()
    print(fig10.render())
