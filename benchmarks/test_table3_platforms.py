"""Bench: regenerate Table 3 (platform power comparison).

Reproduced claims: Synchroscalar power per application, chip areas,
and the 8-30X-of-ASIC / 10-60X-better-than-DSP efficiency bands.
"""

import pytest

from repro.eval import table3


def test_table3(benchmark):
    data = benchmark(table3.compute)
    ddc_row = data["DDC"][0]
    assert ddc_row.power_mw == pytest.approx(2439.7, rel=0.01)
    assert ddc_row.area_mm2 == pytest.approx(136.3, rel=0.03)
    assert ddc_row.nw_per_sample == pytest.approx(38.1, rel=0.01)
    bands = table3.headline_ratios()
    low, high = bands["asic_within"]
    assert 5.0 < low and high < 40.0
    print()
    print(table3.render())
