"""Ablation: hard vs soft decisions into the Viterbi decoder.

The paper's receiver components end at the Viterbi decoder without
specifying the demapper's decision type; this bench quantifies the
choice: max-log soft values buy roughly 2 dB at the waterfall.
"""

import numpy as np

from repro.apps.wlan import Receiver, Transmitter, awgn_channel


def test_soft_vs_hard(benchmark):
    rng = np.random.default_rng(11)
    payload = rng.integers(0, 2, 2400).astype(np.uint8)
    signal = Transmitter(54).transmit(payload)

    def run():
        out = {}
        for snr in (15.0, 17.0, 19.0):
            noisy = awgn_channel(signal, snr_db=snr, seed=3)
            hard = Receiver(54, soft=False).receive(
                noisy, payload_bits=2400
            ).bits
            soft = Receiver(54, soft=True).receive(
                noisy, payload_bits=2400
            ).bits
            out[snr] = (
                float(np.mean(hard != payload)),
                float(np.mean(soft != payload)),
            )
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(f"{'SNR dB':>7} {'hard BER':>10} {'soft BER':>10}")
    for snr, (hard_ber, soft_ber) in results.items():
        print(f"{snr:7.1f} {hard_ber:10.4f} {soft_ber:10.4f}")
        assert soft_ber <= hard_ber
