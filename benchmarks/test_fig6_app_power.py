"""Bench: regenerate Figure 6 (power by application, +/- scaling)."""

import pytest

from repro.eval import fig6


def test_fig6(benchmark):
    bars = benchmark(fig6.compute)
    by_app = {bar.application: bar for bar in bars}
    assert by_app["DDC"].scaled_mw == pytest.approx(2439.7, rel=0.01)
    stereo = by_app["Stereo Vision"]
    assert stereo.additional_unscaled_mw / stereo.unscaled_mw \
        == pytest.approx(0.32, abs=0.03)
    print()
    print(fig6.render())
