"""Bench: regenerate Figure 9 (leakage sensitivity, DDC + 802.11a)."""

from repro.eval import fig9


def test_fig9(benchmark):
    series = benchmark(fig9.compute)
    by_label = {s.label: s for s in series}
    # the 50-tile DDC line is steepest (leakage scales with tiles)
    def slope(line):
        return (line.power_mw[-1] - line.power_mw[0]) / (
            line.leakage_ma[-1] - line.leakage_ma[0]
        )
    assert slope(by_label["DDC 50 Tiles"]) \
        > slope(by_label["DDC 26 Tiles"]) \
        > slope(by_label["DDC 14 Tiles"])
    print()
    print(fig9.render())
