"""802.11a link demo: 54 Mbps through AWGN, plus an SNR waterfall.

Transmits random payloads at several rates and SNRs through the full
TX -> channel -> RX chain (FFT, demodulation, de-interleaving, Viterbi
decoding - the paper's four receiver components), then prices the
receiver at its Table 4 operating points.

    python examples/wlan_receiver.py
"""

import numpy as np

from repro.apps.wlan import Receiver, Transmitter, awgn_channel
from repro.power import PowerModel
from repro.workloads import application


def bit_error_rate(rate_mbps: int, snr_db: float, bits: int = 2400,
                   seed: int = 0) -> float:
    rng = np.random.default_rng(seed)
    payload = rng.integers(0, 2, bits).astype(np.uint8)
    signal = Transmitter(rate_mbps).transmit(payload)
    noisy = awgn_channel(signal, snr_db=snr_db, seed=seed)
    decoded = Receiver(rate_mbps).receive(noisy,
                                          payload_bits=bits).bits
    return float(np.mean(decoded != payload))


def main() -> None:
    print("802.11a end-to-end BER (hard-decision receiver):\n")
    rates = (6, 12, 24, 54)
    snrs = (6.0, 10.0, 14.0, 18.0, 22.0, 26.0)
    header = "SNR(dB) " + "".join(f"{r:>9d}M" for r in rates)
    print(header)
    for snr in snrs:
        cells = []
        for rate in rates:
            ber = bit_error_rate(rate, snr, seed=int(snr * 10) + rate)
            cells.append(f"{ber:10.4f}")
        print(f"{snr:7.1f} " + "".join(cells))
    print("\n(low rates survive low SNR; 64-QAM 3/4 needs ~22+ dB -")
    print(" the classic 802.11a waterfall ordering)")

    config = application("wlan")
    power = PowerModel().application_power(config.name, config.specs)
    print(f"\nReceiver power at 54 Mbps (Table 4): "
          f"{power.total_mw:.0f} mW")
    for component in power.components:
        share = 100.0 * component.total_mw / power.total_mw
        print(f"  {component.name:22s} {component.total_mw:8.1f} mW "
              f"({share:4.1f}%)  {component.n_tiles:2d} tiles @ "
              f"{component.frequency_mhz:.0f} MHz / "
              f"{component.voltage_v} V")
    print("\nThe Viterbi ACS dominates - exactly why Figure 8 studies")
    print("its bus-width/parallelism trade-off.")


if __name__ == "__main__":
    main()
