"""MPEG-4 encoding of a synthetic QCIF sequence at 30 f/s.

Encodes a panning scene (I and P frames through the ME -> DCT ->
Quant -> IQ -> IDCT loop), reports per-frame quality and coded
coefficients, and prices both the QCIF and CIF encoders at their
Table 4 operating points.

    python examples/mpeg4_encoder.py
"""

import numpy as np

from repro.apps.mpeg4 import Mpeg4Encoder, QCIF_SHAPE, synthetic_sequence
from repro.power import PowerModel
from repro.workloads import application


def main() -> None:
    frames = synthetic_sequence(
        8, shape=QCIF_SHAPE, motion_per_frame=(1, 2), seed=2
    )
    encoder = Mpeg4Encoder(shape=QCIF_SHAPE, qp=6, gop=6)
    print(f"Encoding {len(frames)} QCIF frames "
          f"({QCIF_SHAPE[1]}x{QCIF_SHAPE[0]}) at QP=6, GOP=6:\n")
    print(f"{'frame':>5} {'type':>5} {'PSNR dB':>8} {'coefs':>7} "
          f"{'median MV':>10}")
    for result in encoder.encode_sequence(frames):
        vectors = [
            v for v in result.motion_vectors.values()
            if (v.dy, v.dx) != (0, 0) or v.sad > 0
        ]
        if vectors:
            mv = (int(np.median([v.dy for v in vectors])),
                  int(np.median([v.dx for v in vectors])))
            mv_text = f"({mv[0]:+d},{mv[1]:+d})"
        else:
            mv_text = "-"
        print(f"{result.index:>5} {result.frame_type:>5} "
              f"{result.psnr_db:8.1f} {result.coded_coefficients:>7} "
              f"{mv_text:>10}")
    print("\nP frames ride the (1, 2) pan: few coefficients, stable "
          "quality.")

    model = PowerModel()
    for key in ("mpeg4_qcif", "mpeg4_cif"):
        config = application(key)
        power = model.application_power(config.name, config.specs)
        print(f"\n{config.name} at 30 f/s: {power.total_mw:.1f} mW")
        for component in power.components:
            print(f"  {component.name:20s} {component.n_tiles:2d} tiles "
                  f"@ {component.frequency_mhz:3.0f} MHz / "
                  f"{component.voltage_v} V -> "
                  f"{component.total_mw:6.1f} mW")


if __name__ == "__main__":
    main()
