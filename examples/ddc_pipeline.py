"""GSM digital down conversion at 64 MS/s, end to end.

Pushes a modulated IF carrier through the full DDC (NCO/mixer, CIC,
CFIR, PFIR), verifies the baseband output spectrally, and reproduces
the application's Table 4 power row.

    python examples/ddc_pipeline.py
"""

import numpy as np

from repro.apps.ddc import DigitalDownConverter, gsm_configuration
from repro.apps.ddc.pipeline import ddc_sdf_graph
from repro.power import PowerModel
from repro.sdf import ColumnAssignment, SdfMapper
from repro.workloads import application


def main() -> None:
    config = gsm_configuration()
    print(f"DDC: {config.sample_rate_hz / 1e6:.0f} MS/s in, "
          f"{config.output_rate_hz / 1e6:.1f} MS/s baseband out "
          f"(decimation {config.total_decimation})")

    # A narrowband signal 75 kHz above the 16 MHz carrier.
    ddc = DigitalDownConverter(config)
    n = np.arange(64 * 64 * 6)
    message_hz = 75.0e3
    carrier = np.cos(
        2 * np.pi * (config.mix_frequency_hz + message_hz)
        / config.sample_rate_hz * n
    )
    baseband = ddc.process(carrier)[32:]
    spectrum = np.abs(np.fft.fft(baseband))
    frequencies = np.fft.fftfreq(len(baseband),
                                 d=1.0 / config.output_rate_hz)
    peak = frequencies[int(np.argmax(spectrum))]
    print(f"recovered baseband tone at {peak / 1e3:+.1f} kHz "
          f"(sent {message_hz / 1e3:+.1f} kHz)")

    # Map the five stages the way Table 4 does and price them.
    app = SdfMapper().map(ddc_sdf_graph(config), [
        ColumnAssignment("Digital Mixer", ("mixer",), 8),
        ColumnAssignment("CIC Integrator", ("integrator",), 8),
        ColumnAssignment("CIC Comb", ("comb",), 2),
        ColumnAssignment("CFIR", ("cfir",), 16),
        ColumnAssignment("PFIR", ("pfir",), 16),
    ], iteration_rate_msps=1.0)
    print("\nMapping (from the SDF graph):")
    for component in app.components:
        print(f"  {component.name:15s} {component.n_tiles:2d} tiles @ "
              f"{component.frequency_mhz:5.0f} MHz / "
              f"{component.voltage_v} V")

    table4 = application("ddc")
    power = PowerModel().application_power(table4.name, table4.specs)
    print(f"\nTable 4 power: {power.total_mw:.1f} mW "
          f"(paper rows sum to "
          f"{sum(table4.paper_component_mw.values()):.1f} mW)")
    print(f"  = {power.total_mw * 1e6 / 64e6:.1f} nW/sample "
          f"(paper Section 5.5: 38.0)")


if __name__ == "__main__":
    main()
