"""Design-space exploration: parallelism, bus width, and leakage.

Reproduces the three Section 5 studies interactively, then runs a
simulation-backed divider sweep through the batched run API:

* Figure 7 - how far to parallelize each application;
* Figure 8 - the Viterbi ACS bus-width/area trade-off that picked
  the 256-bit bus;
* Figures 9/10 - which parallelization survives leaky processes;
* a cycle-level clock-divider sweep batched through
  ``repro.sim.batch.run_many`` with its content-hash result cache.

    python examples/design_space_exploration.py
"""

from repro.arch.config import ChipConfig, ColumnConfig
from repro.isa.assembler import assemble
from repro.power import PowerModel
from repro.sim.batch import ResultCache, RunRequest, run_many
from repro.tech.parameters import PAPER_TECHNOLOGY
from repro.workloads import LeakageStudy, ViterbiBusStudy, parallel_studies


def parallelism() -> None:
    print("=" * 64)
    print("How much should one parallelize? (Figure 7)")
    print("=" * 64)
    model = PowerModel(rails=PAPER_TECHNOLOGY.exploration_rails)
    for study in parallel_studies().values():
        print(f"\n{study.name}:")
        for tiles in study.tile_points:
            power = model.application_power(
                study.name, study.configuration(tiles)
            )
            dark = 100.0 * power.overhead_mw / power.total_mw
            print(f"  {tiles:3d} tiles: {power.total_mw:7.1f} mW "
                  f"({dark:4.1f}% interconnect+leakage)")


def bus_width() -> None:
    print()
    print("=" * 64)
    print("Why a 256-bit bus? (Figure 8, Viterbi ACS)")
    print("=" * 64)
    study = ViterbiBusStudy()
    for tiles in (8, 16, 32):
        print(f"\n{tiles} tiles:")
        for width in (128, 256, 512, 1024):
            point = study.evaluate(tiles, width)
            if not point.feasible:
                print(f"  {width:5d} b: infeasible "
                      f"(needs {point.frequency_mhz:.0f} MHz)")
                continue
            print(f"  {width:5d} b: {point.power_mw:7.0f} mW at "
                  f"{point.frequency_mhz:4.0f} MHz / "
                  f"{point.voltage_v} V, {point.area_mm2:6.1f} mm^2")
    print("\n128->256 bits buys watts; 256->512 buys little and costs")
    print("a third more area - the paper's Section 5.3 argument.")


def leakage() -> None:
    print()
    print("=" * 64)
    print("Which design survives leaky silicon? (Figures 9/10)")
    print("=" * 64)
    study = LeakageStudy(parallel_studies()["mpeg4"])
    crossing = study.crossover_ma(12, 36)
    print("\nMPEG4 power (mW) vs per-tile leakage (mA):")
    for series in study.series():
        points = "  ".join(f"{p:6.0f}" for p in series.power_mw[::2])
        print(f"  {series.label:16s} {points}")
    print(f"\n12-vs-36-tile crossover at {crossing:.1f} mA/tile "
          f"(paper: 14.8 mA, i.e. 8.3 nA/transistor): below it the "
          f"wide design wins,")
    print("above it leakage taxes the extra tiles more than voltage "
          "scaling saves.")


def divider_sweep() -> None:
    """Batched cycle-level simulation across clock-divider choices."""
    print()
    print("=" * 64)
    print("Simulated divider sweep (repro.sim.batch.run_many)")
    print("=" * 64)
    program = assemble("""
        movi r0, 0
        loop 200
          addi r0, r0, 1
        endloop
        halt
    """, "spin")
    requests = [
        RunRequest(
            config=ChipConfig(
                reference_mhz=400.0,
                columns=(ColumnConfig(divider=1),
                         ColumnConfig(divider=divider)),
            ),
            programs=(program, program),
            label=f"dividers (1, {divider})",
        )
        for divider in (1, 2, 4, 8)
    ]
    cache = ResultCache()
    results = run_many(requests, cache=cache)
    # A second pass is free: every point is served from the cache.
    results = run_many(requests, cache=cache)
    print("\nSame program, second column progressively slower:")
    for result in results:
        slow = result.stats.column(1)
        print(f"  {result.label:18s} {result.stats.reference_ticks:6d} "
              f"reference ticks, column-1 issue rate "
              f"{slow.issue_rate:5.2f}"
              f"{'  [cached]' if result.cached else ''}")
    print(f"\ncache: {cache.hits} hits / {cache.misses} misses - "
          f"re-sweeping a design space only pays for novel points.")


def main() -> None:
    parallelism()
    bus_width()
    leakage()
    divider_sweep()


if __name__ == "__main__":
    main()
