"""Mars-Rover-style stereo vision at 10 f/s.

Generates a rectified synthetic stereo pair, runs Tomasi-Kanade
feature extraction and Pilu SVD correspondence, reports the recovered
disparity field, and prices the pipeline at its Table 4 operating
points.

    python examples/stereo_vision.py
"""

import numpy as np

from repro.apps.stereo import (
    StereoVisionPipeline,
    synthetic_stereo_pair,
)
from repro.power import PowerModel
from repro.power.model import savings_percent
from repro.workloads import application


def main() -> None:
    true_disparity = 7
    left, right = synthetic_stereo_pair(disparity=true_disparity,
                                        seed=11)
    pipeline = StereoVisionPipeline(max_features=64)
    matches = pipeline.process(left, right)
    disparities = np.array([m.disparity for m in matches])
    correct = np.sum(np.abs(disparities - true_disparity) <= 1)
    print(f"256x256 stereo pair, true disparity {true_disparity} px")
    print(f"  features matched: {len(matches)}")
    print(f"  median recovered disparity: "
          f"{np.median(disparities):.0f} px")
    print(f"  within 1 px of truth: {correct}/{len(matches)}")

    histogram, _ = np.histogram(disparities,
                                bins=range(true_disparity - 3,
                                           true_disparity + 5))
    bars = "  ".join(
        f"{d:+d}:{'#' * count}" for d, count in zip(
            range(-3, 5), histogram
        ) if count
    )
    print(f"  disparity histogram (offset from truth): {bars}")

    config = application("stereo")
    model = PowerModel()
    multi = model.application_power(config.name, config.specs)
    single = model.application_power(config.name, config.specs,
                                     single_voltage=True)
    print(f"\nPower at 10 f/s (Table 4): {multi.total_mw:.1f} mW")
    for component in multi.components:
        print(f"  {component.name:4s} {component.n_tiles:2d} tiles @ "
              f"{component.frequency_mhz:3.0f} MHz / "
              f"{component.voltage_v} V -> "
              f"{component.total_mw:6.1f} mW")
    saved = savings_percent(multi.total_mw, single.total_mw)
    print(f"Multiple voltage domains save {saved:.0f}% here "
          f"(paper: 32%) - the single-tile 500 MHz SVD pins the "
          f"single-voltage rail at 1.5 V.")


if __name__ == "__main__":
    main()
