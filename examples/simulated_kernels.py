"""Hand-written assembly kernels on the cycle-level simulator.

Runs every kernel in repro.kernels - the reproduction's stand-ins for
the paper's hand-optimized inner loops - verifies each against its
functional oracle, and prints the measured quantities the Section 4.1
methodology consumes (cycles/sample and bus words/cycle), ending with
the frequency each kernel would need at a Table 4-style rate.

    python examples/simulated_kernels.py
"""

from repro.kernels import (
    build_acs_kernel,
    build_cic_chain_kernel,
    build_dct_kernel,
    build_fir_kernel,
    build_mixer_kernel,
    run_kernel,
)
from repro.power import CommProfile, ComponentSpec, PowerModel
from repro.workloads.measured import comm_profile_from_run


def main() -> None:
    builders = (
        ("block FIR (CFIR/PFIR inner loop)", build_fir_kernel),
        ("complex mixer (DDC stage 1)", build_mixer_kernel),
        ("CIC integrator chain (4 tiles)", build_cic_chain_kernel),
        ("Viterbi ACS butterfly", build_acs_kernel),
        ("8-point DCT, Q14", build_dct_kernel),
    )
    print(f"{'kernel':34s} {'issued':>7} {'cyc/smp':>8} "
          f"{'bus w/cyc':>10}  oracle")
    runs = {}
    for label, builder in builders:
        kernel = builder()
        run = run_kernel(kernel)  # raises if the oracle disagrees
        runs[kernel.name] = run
        print(f"{label:34s} {run.issued:7d} "
              f"{run.cycles_per_sample:8.2f} "
              f"{run.bus_words_per_cycle:10.3f}  passed")

    print("\nSection 4.1 step 7, from measurement:")
    mixer = runs["complex-mixer"]
    frequency = mixer.frequency_for_rate(sample_rate_msps=8.0)
    print(f"  the mixer kernel at 8 MS/s per tile needs "
          f"{frequency:.0f} MHz")
    print(f"  (Table 4's mixer column: 120 MHz for the same per-tile "
          f"rate)")

    print("\nMeasured communication plugged into the power model:")
    chain = runs["cic-integrator-chain"]
    profile = comm_profile_from_run(chain, span_fraction=0.6)
    model = PowerModel()
    power = model.component_power(ComponentSpec(
        "measured CIC chain", n_tiles=4, frequency_mhz=200.0,
        comm=profile,
    ))
    print(f"  4-tile chain at 200 MHz / {power.voltage_v} V: "
          f"{power.total_mw:.1f} mW "
          f"(bus {power.bus_mw:.1f} mW from "
          f"{profile.words_per_cycle:.2f} words/cycle)")


if __name__ == "__main__":
    main()
