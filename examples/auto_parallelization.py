"""Automatic parallelization: the tool the paper leaves to future work.

Section 7: "Future work will focus on a software tool chain to
automate and optimize application parallelization".  This example runs
our greedy rail-crossing allocator over each application's component
models and compares against the paper-derived hand mappings at the
same tile budgets.

    python examples/auto_parallelization.py
"""

from repro.power import PowerModel
from repro.sdf import ParallelizationOptimizer
from repro.tech.parameters import PAPER_TECHNOLOGY
from repro.workloads import parallel_studies


def main() -> None:
    optimizer = ParallelizationOptimizer()
    model = PowerModel(rails=PAPER_TECHNOLOGY.exploration_rails)

    print("Greedy rail-crossing allocation vs hand mappings:\n")
    print(f"{'app':10s} {'budget':>6} {'hand mW':>9} {'auto mW':>9} "
          f"{'saved':>6}  allocation")
    for study in parallel_studies().values():
        components = list(study.components)
        for budget in study.tile_points:
            hand = model.application_power(
                study.name, study.configuration(budget)
            ).total_mw
            auto = optimizer.optimize(components, tile_budget=budget)
            saved = 100.0 * (1.0 - auto.power_mw / hand)
            alloc = ", ".join(
                f"{name.split()[0]}:{tiles}"
                for name, tiles in auto.allocations.items()
            )
            print(f"{study.name:10s} {budget:6d} {hand:9.1f} "
                  f"{auto.power_mw:9.1f} {saved:5.1f}%  [{alloc}]")

    print("\nSearch trace for the 50-tile DDC budget:")
    ddc = list(parallel_studies()["ddc"].components)
    result = optimizer.optimize(ddc, tile_budget=50)
    for step in result.history:
        print(f"  grow {step.component:16s} -> {step.tiles_after:2d} "
              f"tiles: {step.power_before_mw:7.1f} -> "
              f"{step.power_after_mw:7.1f} mW "
              f"(-{step.gain_mw:.1f})")
    print(f"  final: {result.power_mw:.1f} mW on {result.tiles_used} "
          f"tiles (budget {result.tile_budget})")
    print("\nEvery step jumps a component to the tile count that drops")
    print("its voltage rail - adding tiles without a rail crossing")
    print("only adds leakage and communication (Section 5.5).")


if __name__ == "__main__":
    main()
