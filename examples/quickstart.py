"""Quickstart: evaluate a Synchroscalar design in five steps.

Runs the paper's Section 2 walkthrough: describe an application as an
SDF graph, map it onto columns, derive frequencies and voltages, run a
kernel on the cycle-level simulator, and evaluate the power model.

    python examples/quickstart.py
"""

from repro.arch.dou import DouCycle, linear_schedule
from repro.isa import assemble
from repro.power import CommProfile, ComponentSpec, PowerModel
from repro.sdf import ColumnAssignment, SdfGraph, SdfMapper
from repro.sim import run_single_column


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Describe the first two DDC stages as a dataflow graph.
    # ------------------------------------------------------------------
    graph = SdfGraph("ddc-front-end")
    graph.add_actor("mixer", cycles_per_firing=15.0)
    graph.add_actor("integrator", cycles_per_firing=25.0)
    graph.add_edge("mixer", "integrator", produce=1, consume=1)

    # ------------------------------------------------------------------
    # 2. Map each stage to a pair of columns (8 tiles) at 64 MS/s.
    # ------------------------------------------------------------------
    app = SdfMapper().map(
        graph,
        [
            ColumnAssignment("Mixer", ("mixer",), n_tiles=8),
            ColumnAssignment("Integrator", ("integrator",), n_tiles=8),
        ],
        iteration_rate_msps=64.0,
    )
    print("Operating points (Section 2's numbers):")
    for component in app.components:
        print(f"  {component.name:12s} {component.n_tiles:2d} tiles "
              f"@ {component.frequency_mhz:5.0f} MHz / "
              f"{component.voltage_v} V")
    print("Clock plan:", app.clock_dividers(reference_mhz=600.0))

    # ------------------------------------------------------------------
    # 3. Run a mixer-like MAC kernel on the cycle-level simulator.
    # ------------------------------------------------------------------
    kernel = assemble("""
        movi p0, 0       ; LO samples
        movi p1, 32      ; IF samples
        movi a0, 0
        loop 8
          ld r1, [p0++]
          ld r2, [p1++]
          mac a0, r1, r2
        endloop
        mov r7, a0
        send r7
        recv r0
        halt
    """, "mixer-kernel")
    loopback = linear_schedule([DouCycle(
        closed=frozenset((0, b) for b in range(4)),
        drives=((0, 0),),
        captures=((0, 0), (1, 0), (2, 0), (3, 0)),
    )])
    chip, stats = run_single_column(
        kernel,
        dou_program=loopback,
        memory_images={t: {0: [1] * 8, 32: [3] * 8} for t in range(4)},
        strict_schedules=False,
    )
    column = stats.column(0)
    print(f"\nSimulated kernel: {column.issued} instructions, "
          f"{column.tile_cycles} tile cycles, "
          f"{column.bus_words} bus word(s) moved")
    print(f"  result register R0 = "
          f"{chip.columns[0].tiles[0].regs.read('R0')} (8 x 1 x 3)")

    # ------------------------------------------------------------------
    # 4. Derive the frequency the measured kernel implies (Sec 4.1).
    # ------------------------------------------------------------------
    frequency = stats.frequency_for_rate(0, samples=8,
                                         sample_rate_msps=20.0)
    print(f"  at 20 MS/s this kernel needs {frequency:.0f} MHz")

    # ------------------------------------------------------------------
    # 5. Evaluate the three-term power model.
    # ------------------------------------------------------------------
    model = PowerModel()
    power = model.application_power("ddc-front-end", [
        ComponentSpec("Mixer", 8, 120.0, CommProfile(1.1)),
        ComponentSpec("Integrator", 8, 200.0, CommProfile(5.6)),
    ])
    print(f"\nPower at the Section 2 operating points: "
          f"{power.total_mw:.1f} mW")
    for component in power.components:
        print(f"  {component.name:12s} {component.total_mw:7.2f} mW "
              f"(dyn {component.dynamic_mw:6.2f}, "
              f"bus {component.bus_mw:5.2f}, "
              f"leak {component.leakage_mw:5.2f})")


if __name__ == "__main__":
    main()
