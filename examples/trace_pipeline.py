"""Trace a compiled DDC run into a Perfetto-loadable timeline.

Runs the DDC streaming pipeline twice through the telemetry plane:
once into a counting sink (to show what the run emits) and once into
the Chrome-trace builder plus a JSONL stream, then writes both
artifacts.  Open the JSON in https://ui.perfetto.dev or
``chrome://tracing`` — one process per run, one track per clock
domain (``column0`` ... ``columnN``) plus ``engine``, ``governor``,
and ``ledger`` rows.

    python examples/trace_pipeline.py [out_dir]
"""

import sys
from pathlib import Path

from repro.eval.engines import build_ddc_stream_chip
from repro.obs import (
    ChromeTraceBuilder,
    CountingSink,
    JsonlSink,
    subscribed,
    write_chrome_trace,
)
from repro.sim.engine import create_engine


def run_once():
    chip = build_ddc_stream_chip(samples=40)
    return create_engine("compiled", chip).run()


def main() -> None:
    out_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(".")

    # Pass 1: count what a traced run emits (and warm the lockstep
    # plan caches so the timeline below replays deterministic rounds).
    counting = CountingSink()
    with subscribed(counting):
        stats = run_once()
    print(f"run complete: {stats.reference_ticks} reference ticks, "
          f"{stats.total_bus_words} bus words")
    summary = counting.summary()
    print(f"telemetry: {summary['events']} events "
          f"(kinds {summary['by_kind']})")

    # Pass 2: identical run, exported.  Bit-identical stats are the
    # plane's standing contract — assert it like the tests do.
    builder = ChromeTraceBuilder()
    builder.process("ddc_pipeline")
    trace_path = out_dir / "trace_ddc.json"
    jsonl_path = out_dir / "events_ddc.jsonl"
    with subscribed(builder), JsonlSink(jsonl_path) as stream:
        with subscribed(stream):
            traced = run_once()
    assert traced == stats, "telemetry must be observe-only"

    write_chrome_trace(trace_path, builder)
    print(f"wrote {trace_path} "
          f"(open in https://ui.perfetto.dev) and {jsonl_path}")


if __name__ == "__main__":
    main()
