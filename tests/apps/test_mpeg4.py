"""MPEG-4 encoder stages."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from scipy.fft import dctn, idctn

from repro.apps.mpeg4 import (
    CIF_SHAPE,
    EncodedFrame,
    Mpeg4Encoder,
    MotionVector,
    QCIF_SHAPE,
    dct2,
    dequantize,
    full_search,
    idct2,
    motion_compensate,
    psnr,
    quantize,
    sad,
    synthetic_sequence,
    three_step_search,
)
from repro.apps.mpeg4.dct import blockwise, dct_matrix


class TestDct:
    def test_matches_scipy(self, rng):
        block = rng.uniform(-128, 127, (8, 8))
        assert np.allclose(dct2(block), dctn(block, norm="ortho"),
                           atol=1e-10)

    def test_roundtrip(self, rng):
        block = rng.uniform(0, 255, (8, 8))
        assert np.allclose(idct2(dct2(block)), block, atol=1e-10)

    def test_basis_is_orthonormal(self):
        c = dct_matrix(8)
        assert np.allclose(c @ c.T, np.eye(8), atol=1e-12)

    def test_dc_coefficient_is_scaled_mean(self):
        block = np.full((8, 8), 100.0)
        coefficients = dct2(block)
        assert coefficients[0, 0] == pytest.approx(800.0)
        assert np.allclose(coefficients.ravel()[1:], 0.0, atol=1e-10)

    def test_blockwise_covers_frame(self, rng):
        frame = rng.uniform(0, 255, (16, 24))
        forward = blockwise(frame, dct2)
        back = blockwise(forward, idct2)
        assert np.allclose(back, frame, atol=1e-9)
        with pytest.raises(ValueError):
            blockwise(rng.uniform(0, 1, (10, 16)), dct2)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            dct2(np.zeros((4, 4)))
        with pytest.raises(ValueError):
            idct2(np.zeros((4, 4)))

    @given(seed=st.integers(0, 2 ** 16))
    @settings(max_examples=25, deadline=None)
    def test_energy_preservation_property(self, seed):
        rng = np.random.default_rng(seed)
        block = rng.uniform(-100, 100, (8, 8))
        assert np.sum(block ** 2) == pytest.approx(
            np.sum(dct2(block) ** 2)
        )


class TestQuant:
    def test_roundtrip_error_bounded_by_step(self, rng):
        block = rng.uniform(-500, 500, (8, 8))
        for qp in (1, 4, 8, 16, 31):
            levels = quantize(block, qp, intra=False)
            restored = dequantize(levels, qp, intra=False)
            assert np.max(np.abs(restored - block)) <= qp + 1e-9

    def test_intra_dc_uses_fine_step(self):
        block = np.zeros((8, 8))
        block[0, 0] = 100.0
        levels = quantize(block, qp=31, intra=True)
        restored = dequantize(levels, qp=31, intra=True)
        assert abs(restored[0, 0] - 100.0) <= 4.0

    def test_higher_qp_zeroes_more(self, rng):
        block = rng.uniform(-30, 30, (8, 8))
        fine = np.count_nonzero(quantize(block, 1, intra=False))
        coarse = np.count_nonzero(quantize(block, 31, intra=False))
        assert coarse <= fine

    def test_qp_range_validation(self):
        with pytest.raises(ValueError):
            quantize(np.zeros((8, 8)), 0)
        with pytest.raises(ValueError):
            dequantize(np.zeros((8, 8)), 32)


class TestMotion:
    def test_sad_zero_for_identical(self, rng):
        block = rng.uniform(0, 255, (16, 16))
        assert sad(block, block) == 0.0
        with pytest.raises(ValueError):
            sad(block, block[:8, :8])

    def test_full_search_finds_known_shift(self):
        frames = synthetic_sequence(2, shape=(64, 64),
                                    motion_per_frame=(2, 3), seed=4)
        reference, current = frames[0], frames[1]
        vector = full_search(current, reference, 16, 16,
                             search_range=4)
        assert (vector.dy, vector.dx) == (2, 3)

    def test_three_step_close_to_full_search(self):
        frames = synthetic_sequence(2, shape=(64, 64),
                                    motion_per_frame=(1, 2), seed=8)
        reference, current = frames[0], frames[1]
        full = full_search(current, reference, 16, 16, search_range=7)
        fast = three_step_search(current, reference, 16, 16,
                                 search_range=7)
        assert fast.sad <= full.sad * 1.5

    def test_zero_motion_preferred_on_ties(self):
        static = np.zeros((64, 64))
        vector = full_search(static, static, 16, 16, search_range=3)
        assert (vector.dy, vector.dx) == (0, 0)

    def test_motion_compensate_inverts_known_shift(self):
        frames = synthetic_sequence(2, shape=(64, 64),
                                    motion_per_frame=(2, 3), seed=4)
        reference, current = frames[0], frames[1]
        vectors = {}
        for row in range(0, 64, 16):
            for col in range(0, 64, 16):
                vectors[(row, col)] = full_search(
                    current, reference, row, col, search_range=4
                )
        predicted = motion_compensate(reference, vectors)
        # Border blocks cannot reference content outside the frame, so
        # judge the interior (where the true shift is reachable).
        interior = (slice(16, 48), slice(16, 48))
        assert psnr(current[interior], predicted[interior]) > 40.0

    def test_compensate_rejects_out_of_frame_vector(self):
        reference = np.zeros((32, 32))
        with pytest.raises(ValueError):
            motion_compensate(
                reference, {(0, 0): MotionVector(-5, 0, 0.0)}
            )


class TestEncoder:
    def test_first_frame_is_intra(self):
        frames = synthetic_sequence(1, shape=QCIF_SHAPE)
        encoder = Mpeg4Encoder(shape=QCIF_SHAPE, qp=4)
        result = encoder.encode_frame(frames[0])
        assert result.frame_type == "I"
        assert result.psnr_db > 40.0

    def test_p_frames_code_fewer_coefficients(self):
        frames = synthetic_sequence(4, shape=QCIF_SHAPE,
                                    motion_per_frame=(1, 2))
        encoder = Mpeg4Encoder(shape=QCIF_SHAPE, qp=4, gop=12)
        results = encoder.encode_sequence(frames)
        assert results[0].frame_type == "I"
        assert all(r.frame_type == "P" for r in results[1:])
        assert all(
            r.coded_coefficients < results[0].coded_coefficients
            for r in results[1:]
        )

    def test_p_frames_recover_global_motion(self):
        frames = synthetic_sequence(3, shape=QCIF_SHAPE,
                                    motion_per_frame=(1, 2), seed=2)
        encoder = Mpeg4Encoder(shape=QCIF_SHAPE, qp=4)
        results = encoder.encode_sequence(frames)
        # Flat (textureless) macroblocks legitimately pick the zero
        # vector; judge the blocks that actually carry content.
        textured = [
            v for v in results[1].motion_vectors.values()
            if (v.dy, v.dx) != (0, 0) or v.sad > 0
        ]
        assert len(textured) >= 10
        median_dy = np.median([v.dy for v in textured])
        median_dx = np.median([v.dx for v in textured])
        assert (median_dy, median_dx) == (1, 2)

    def test_gop_forces_periodic_intra(self):
        frames = synthetic_sequence(6, shape=QCIF_SHAPE)
        encoder = Mpeg4Encoder(shape=QCIF_SHAPE, gop=3)
        results = encoder.encode_sequence(frames)
        types = [r.frame_type for r in results]
        assert types == ["I", "P", "P", "I", "P", "P"]

    def test_quality_improves_with_lower_qp(self):
        frames = synthetic_sequence(1, shape=QCIF_SHAPE)
        low = Mpeg4Encoder(shape=QCIF_SHAPE, qp=2).encode_frame(
            frames[0]
        )
        high = Mpeg4Encoder(shape=QCIF_SHAPE, qp=20).encode_frame(
            frames[0]
        )
        assert low.psnr_db > high.psnr_db
        assert low.coded_coefficients > high.coded_coefficients

    def test_cif_shape_supported(self):
        frames = synthetic_sequence(1, shape=CIF_SHAPE)
        encoder = Mpeg4Encoder(shape=CIF_SHAPE, qp=8)
        result = encoder.encode_frame(frames[0])
        assert result.reconstruction.shape == CIF_SHAPE

    def test_three_step_encoder_works(self):
        frames = synthetic_sequence(2, shape=QCIF_SHAPE,
                                    motion_per_frame=(1, 1))
        encoder = Mpeg4Encoder(shape=QCIF_SHAPE,
                               motion_search="three_step")
        results = encoder.encode_sequence(frames)
        assert results[1].psnr_db > 30.0

    def test_validation(self):
        with pytest.raises(ValueError):
            Mpeg4Encoder(shape=(100, 100))  # not macroblock aligned
        with pytest.raises(ValueError):
            Mpeg4Encoder(motion_search="diamond")
        with pytest.raises(ValueError):
            Mpeg4Encoder(gop=0)
        encoder = Mpeg4Encoder(shape=QCIF_SHAPE)
        with pytest.raises(ValueError):
            encoder.encode_frame(np.zeros((16, 16)))

    def test_reset_forces_intra(self):
        frames = synthetic_sequence(2, shape=QCIF_SHAPE)
        encoder = Mpeg4Encoder(shape=QCIF_SHAPE, gop=100)
        encoder.encode_frame(frames[0])
        encoder.reset()
        result = encoder.encode_frame(frames[1])
        assert result.frame_type == "I"


class TestPsnr:
    def test_identical_is_infinite(self):
        frame = np.ones((8, 8))
        assert psnr(frame, frame) == float("inf")

    def test_known_value(self):
        a = np.zeros((8, 8))
        b = np.full((8, 8), 255.0)
        assert psnr(a, b) == pytest.approx(0.0)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            psnr(np.zeros((4, 4)), np.zeros((8, 8)))
