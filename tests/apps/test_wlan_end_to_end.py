"""802.11a transmitter -> channel -> receiver, at every rate."""

import numpy as np
import pytest

from repro.apps.wlan import Receiver, Transmitter, awgn_channel
from repro.apps.wlan.channel import flat_fading_channel
from repro.apps.wlan.frame import RATE_TABLE, SYMBOL_SAMPLES
from repro.errors import ConfigurationError


@pytest.mark.parametrize("rate", sorted(RATE_TABLE))
def test_noiseless_roundtrip(rate, rng):
    payload = rng.integers(0, 2, 500).astype(np.uint8)
    signal = Transmitter(rate).transmit(payload)
    result = Receiver(rate).receive(signal, payload_bits=500)
    assert np.array_equal(result.bits, payload)


@pytest.mark.parametrize("rate", [6, 24, 54])
def test_awgn_roundtrip_at_30db(rate, rng):
    payload = rng.integers(0, 2, 800).astype(np.uint8)
    signal = Transmitter(rate).transmit(payload)
    noisy = awgn_channel(signal, snr_db=30.0, seed=rate)
    result = Receiver(rate).receive(noisy, payload_bits=800)
    assert np.array_equal(result.bits, payload)


def test_bpsk_survives_low_snr(rng):
    """Rate 6 (BPSK, R=1/2) still decodes around 10 dB."""
    payload = rng.integers(0, 2, 400).astype(np.uint8)
    signal = Transmitter(6).transmit(payload)
    noisy = awgn_channel(signal, snr_db=10.0, seed=7)
    result = Receiver(6).receive(noisy, payload_bits=400)
    errors = int(np.sum(result.bits != payload))
    assert errors <= 2


def test_rate_ladder_degrades_monotonically(rng):
    """At a fixed mid SNR, higher rates make more bit errors."""
    payload = rng.integers(0, 2, 1000).astype(np.uint8)
    errors = {}
    for rate in (6, 54):
        signal = Transmitter(rate).transmit(payload)
        noisy = awgn_channel(signal, snr_db=12.0, seed=99)
        decoded = Receiver(rate).receive(noisy, payload_bits=1000).bits
        errors[rate] = int(np.sum(decoded != payload))
    assert errors[54] > errors[6]


def test_equalizer_corrects_flat_channel(rng):
    payload = rng.integers(0, 2, 600).astype(np.uint8)
    signal = Transmitter(54).transmit(payload)
    gain = 0.6 * np.exp(1j * 0.8)
    faded = flat_fading_channel(signal, gain=gain)
    result = Receiver(54).receive(faded, payload_bits=600)
    assert np.array_equal(result.bits, payload)
    assert result.channel_gain == pytest.approx(gain, abs=0.01)


def test_symbol_count_matches_padding(rng):
    transmitter = Transmitter(6)  # 24 data bits per symbol
    payload = rng.integers(0, 2, 100).astype(np.uint8)
    signal = transmitter.transmit(payload)
    # 100 bits + 6 tail = 106 -> ceil(106/24) = 5 symbols
    assert len(signal) == 5 * SYMBOL_SAMPLES


def test_transmit_rejects_bad_payload():
    with pytest.raises(ConfigurationError):
        Transmitter(6).transmit(np.zeros((2, 2), dtype=np.uint8))


def test_receive_rejects_misaligned_stream(rng):
    with pytest.raises(ConfigurationError):
        Receiver(6).receive(np.zeros(81, dtype=complex))
    with pytest.raises(ConfigurationError):
        Receiver(6).receive(np.zeros(0, dtype=complex))


def test_receive_rejects_overlong_payload_request(rng):
    payload = rng.integers(0, 2, 24).astype(np.uint8)
    signal = Transmitter(6).transmit(payload)
    with pytest.raises(ConfigurationError):
        Receiver(6).receive(signal, payload_bits=10_000)


def test_throughput_labels_match_symbol_rate():
    """N_DBPS per 4 us symbol equals the advertised Mbps."""
    for rate, params in RATE_TABLE.items():
        assert params.n_dbps / 4.0 == pytest.approx(rate)
