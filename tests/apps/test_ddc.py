"""Digital Down Converter stages and pipeline."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.ddc import (
    CicDecimator,
    DigitalDownConverter,
    DigitalMixer,
    FirDecimator,
    NumericallyControlledOscillator,
    boxcar_reference,
    cic_gain,
    design_cic_compensator,
    design_lowpass,
    gsm_configuration,
)
from repro.apps.ddc.fir import cic_droop
from repro.apps.ddc.pipeline import ddc_sdf_graph
from repro.sdf import ColumnAssignment, SdfMapper, repetition_vector


class TestNco:
    def test_unit_magnitude(self):
        nco = NumericallyControlledOscillator(1.0e6, 64.0e6)
        samples = nco.samples(256)
        assert np.allclose(np.abs(samples), 1.0, atol=1e-12)

    def test_frequency_accuracy(self):
        nco = NumericallyControlledOscillator(8.0e6, 64.0e6)
        samples = nco.samples(1024)
        spectrum = np.abs(np.fft.fft(samples))
        peak_bin = int(np.argmax(spectrum))
        freqs = np.fft.fftfreq(1024, d=1 / 64.0e6)
        # conjugate LO: energy at -8 MHz
        assert freqs[peak_bin] == pytest.approx(-8.0e6, abs=64.0e6 / 1024)

    def test_resolution(self):
        nco = NumericallyControlledOscillator(1.0e6, 64.0e6)
        assert nco.frequency_resolution_hz == pytest.approx(
            64.0e6 / 2 ** 32
        )
        assert abs(nco.actual_frequency_hz - 1.0e6) \
            <= nco.frequency_resolution_hz

    def test_phase_continuity_across_blocks(self):
        nco_a = NumericallyControlledOscillator(3.0e6, 64.0e6)
        nco_b = NumericallyControlledOscillator(3.0e6, 64.0e6)
        joined = nco_a.samples(100)
        split = np.concatenate([nco_b.samples(37), nco_b.samples(63)])
        assert np.allclose(joined, split)

    def test_validation(self):
        with pytest.raises(ValueError):
            NumericallyControlledOscillator(1.0, 0.0)
        with pytest.raises(ValueError):
            NumericallyControlledOscillator(65.0e6, 64.0e6)
        with pytest.raises(ValueError):
            NumericallyControlledOscillator(1.0e6, 64.0e6, lut_bits=2)


class TestMixer:
    def test_tone_shifts_to_baseband(self):
        nco = NumericallyControlledOscillator(10.0e6, 64.0e6)
        mixer = DigitalMixer(nco)
        n = np.arange(2048)
        tone = np.cos(2 * np.pi * 10.0e6 / 64.0e6 * n)
        mixed = mixer.process(tone)
        dc_power = np.abs(np.mean(mixed))
        assert dc_power == pytest.approx(0.5, abs=0.05)
        assert mixer.samples_processed == 2048

    def test_reset(self):
        nco = NumericallyControlledOscillator(10.0e6, 64.0e6)
        mixer = DigitalMixer(nco)
        first = mixer.process(np.ones(16))
        mixer.reset()
        again = mixer.process(np.ones(16))
        assert np.allclose(first, again)


class TestCic:
    def test_gain(self):
        assert cic_gain(4, 16) == 16 ** 4
        assert cic_gain(1, 2, 3) == 6
        with pytest.raises(ValueError):
            cic_gain(0, 16)

    def test_matches_boxcar_reference(self, rng):
        signal = rng.integers(-5000, 5000, size=640)
        cic = CicDecimator(stages=4, decimation=16)
        out = cic.process(signal)
        ref = boxcar_reference(signal, 4, 16)
        assert np.array_equal(out, ref[:len(out)])

    def test_streaming_equals_batch(self, rng):
        signal = rng.integers(-100, 100, size=256)
        batch = CicDecimator(3, 8).process(signal)
        streaming = CicDecimator(3, 8)
        parts = [streaming.process(signal[i:i + 37])
                 for i in range(0, 256, 37)]
        joined = np.concatenate([p for p in parts if len(p)])
        assert np.array_equal(batch, joined)

    def test_dc_gain_realized(self):
        cic = CicDecimator(stages=2, decimation=4)
        out = cic.process(np.ones(64, dtype=np.int64))
        assert out[-1] == cic.gain

    @given(
        stages=st.integers(1, 4),
        decimation=st.integers(1, 8),
        data=st.lists(st.integers(-1000, 1000), min_size=16,
                      max_size=64),
    )
    @settings(max_examples=30, deadline=None)
    def test_boxcar_equivalence_property(self, stages, decimation, data):
        signal = np.array(data, dtype=np.int64)
        cic = CicDecimator(stages=stages, decimation=decimation)
        out = cic.process(signal)
        ref = boxcar_reference(signal, stages, decimation)
        assert np.array_equal(out, ref[:len(out)])


class TestFir:
    def test_lowpass_design_dc_gain(self):
        taps = design_lowpass(21, 0.4)
        assert np.sum(taps) == pytest.approx(1.0, abs=0.01)

    def test_compensator_flattens_the_passband(self):
        from scipy import signal as sp_signal

        comp = design_cic_compensator(21, 4, 16)
        w, h = sp_signal.freqz(comp, worN=512)
        frequencies = w / np.pi
        band = frequencies <= 0.4
        droop = cic_droop(frequencies[band], 4, 16)
        product = droop * np.abs(h)[band]
        # CIC droop alone dips to 0.66 at the band edge; compensated
        # the response stays within ~11%.
        assert product.max() / product.min() < 1.15
        assert droop.min() < 0.85

    def test_decimation_phase_across_blocks(self, rng):
        coeffs = design_lowpass(15, 0.3)
        signal = rng.standard_normal(200)
        batch = FirDecimator(coeffs, 2).process(signal)
        stream = FirDecimator(coeffs, 2)
        parts = [stream.process(signal[i:i + 33])
                 for i in range(0, 200, 33)]
        joined = np.concatenate([p for p in parts if len(p)])
        assert np.allclose(batch, joined)

    def test_validation(self):
        with pytest.raises(ValueError):
            FirDecimator(np.array([]))
        with pytest.raises(ValueError):
            FirDecimator(np.ones(4), decimation=0)
        with pytest.raises(ValueError):
            design_lowpass(2, 0.4)
        with pytest.raises(ValueError):
            design_cic_compensator(20)  # even tap count


class TestPipeline:
    def test_rates(self):
        config = gsm_configuration()
        assert config.total_decimation == 64
        assert config.output_rate_hz == pytest.approx(1.0e6)

    def test_tone_recovery(self):
        config = gsm_configuration()
        ddc = DigitalDownConverter(config)
        n = np.arange(64 * 64 * 4)
        offset = 50.0e3
        tone = np.cos(
            2 * np.pi * (config.mix_frequency_hz + offset)
            / config.sample_rate_hz * n
        )
        baseband = ddc.process(tone)
        settled = baseband[32:][:192]
        spectrum = np.abs(np.fft.fft(settled))
        freqs = np.fft.fftfreq(len(settled), d=1 / config.output_rate_hz)
        peak = freqs[int(np.argmax(spectrum))]
        assert peak == pytest.approx(offset, abs=config.output_rate_hz
                                     / len(settled))

    def test_out_of_band_rejection(self):
        config = gsm_configuration()
        ddc = DigitalDownConverter(config)
        n = np.arange(64 * 64 * 4)
        in_band = np.cos(
            2 * np.pi * (config.mix_frequency_hz + 50e3)
            / config.sample_rate_hz * n
        )
        out_of_band = np.cos(
            2 * np.pi * (config.mix_frequency_hz + 8.0e6)
            / config.sample_rate_hz * n
        )
        power_in = np.mean(np.abs(ddc.process(in_band)[32:]) ** 2)
        ddc.reset()
        power_out = np.mean(np.abs(ddc.process(out_of_band)[32:]) ** 2)
        assert power_in / max(power_out, 1e-18) > 1.0e4

    def test_sdf_graph_matches_table4(self):
        graph = ddc_sdf_graph()
        q = repetition_vector(graph)
        assert q == {"mixer": 64, "integrator": 64, "comb": 4,
                     "cfir": 2, "pfir": 1}
        app = SdfMapper().map(graph, [
            ColumnAssignment("Digital Mixer", ("mixer",), 8),
            ColumnAssignment("CIC Integrator", ("integrator",), 8),
            ColumnAssignment("CIC Comb", ("comb",), 2),
            ColumnAssignment("CFIR", ("cfir",), 16),
            ColumnAssignment("PFIR", ("pfir",), 16),
        ], iteration_rate_msps=1.0)
        expected = {
            "Digital Mixer": (120.0, 0.8),
            "CIC Integrator": (200.0, 1.0),
            "CIC Comb": (40.0, 0.7),
            "CFIR": (380.0, 1.3),
            "PFIR": (370.0, 1.3),
        }
        for name, (frequency, voltage) in expected.items():
            component = app.component(name)
            assert component.frequency_mhz == pytest.approx(frequency)
            assert component.voltage_v == voltage
