"""MPEG-4 rate control over the bit estimator."""

import numpy as np
import pytest

from repro.apps.mpeg4 import Mpeg4Encoder, QCIF_SHAPE, synthetic_sequence
from repro.apps.mpeg4.rate_control import (
    RateController,
    encode_with_rate_control,
)


def test_validation():
    with pytest.raises(ValueError):
        RateController(target_kbps=0.0)
    with pytest.raises(ValueError):
        RateController(target_kbps=100.0, qp=40)
    controller = RateController(target_kbps=100.0)
    with pytest.raises(ValueError):
        controller.update(-1)


def test_budget():
    controller = RateController(target_kbps=300.0, fps=30.0)
    assert controller.budget_bits_per_frame == pytest.approx(10_000.0)


def test_overspend_raises_qp():
    controller = RateController(target_kbps=100.0, qp=8)
    next_qp = controller.update(spent_bits=40_000)  # 12x budget
    assert next_qp > 8


def test_underspend_lowers_qp():
    controller = RateController(target_kbps=100.0, qp=8)
    next_qp = controller.update(spent_bits=100)
    assert next_qp < 8


def test_qp_clamped():
    controller = RateController(target_kbps=100.0, qp=30)
    controller.update(spent_bits=10_000_000)
    assert controller.qp == 31
    controller = RateController(target_kbps=100.0, qp=2)
    controller.update(spent_bits=1)
    assert controller.qp == 1


def test_controlled_encode_tracks_target():
    frames = synthetic_sequence(10, shape=QCIF_SHAPE,
                                motion_per_frame=(1, 1), seed=2)
    encoder = Mpeg4Encoder(shape=QCIF_SHAPE, gop=100)
    controller = RateController(target_kbps=120.0, qp=8)
    results = encode_with_rate_control(encoder, frames, controller)
    # steady-state P frames (skip the I frame) land near the budget
    steady = results[4:]
    mean_bits = np.mean([r.estimated_bits for r in steady])
    assert mean_bits == pytest.approx(
        controller.budget_bits_per_frame, rel=0.6
    )


def test_tighter_target_forces_coarser_qp():
    frames = synthetic_sequence(6, shape=QCIF_SHAPE,
                                motion_per_frame=(1, 1), seed=2)
    rich = RateController(target_kbps=2000.0, qp=8)
    poor = RateController(target_kbps=30.0, qp=8)
    encode_with_rate_control(
        Mpeg4Encoder(shape=QCIF_SHAPE, gop=100), frames, rich
    )
    encode_with_rate_control(
        Mpeg4Encoder(shape=QCIF_SHAPE, gop=100), frames, poor
    )
    assert poor.qp > rich.qp
