"""Constellations, interleaver, and OFDM framing."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.wlan.frame import (
    DATA_SUBCARRIERS,
    N_DATA_SUBCARRIERS,
    PILOT_SUBCARRIERS,
    RATE_TABLE,
    SYMBOL_SAMPLES,
    assemble_symbol,
    disassemble_symbol,
    rate_parameters,
)
from repro.apps.wlan.interleaver import deinterleave, interleave
from repro.apps.wlan.modulation import Demodulator, Modulator
from repro.errors import ConfigurationError


class TestModulation:
    @pytest.mark.parametrize("n_bpsc", [1, 2, 4, 6])
    def test_roundtrip(self, n_bpsc, rng):
        bits = rng.integers(0, 2, n_bpsc * 96).astype(np.uint8)
        points = Modulator(n_bpsc).map_bits(bits)
        decided = Demodulator(n_bpsc).demap(points)
        assert np.array_equal(decided, bits)

    @pytest.mark.parametrize("n_bpsc", [1, 2, 4, 6])
    def test_unit_average_energy(self, n_bpsc):
        # exhaustive over the constellation
        size = 1 << n_bpsc
        bits = np.array(
            [(value >> (n_bpsc - 1 - b)) & 1
             for value in range(size) for b in range(n_bpsc)],
            dtype=np.uint8,
        )
        points = Modulator(n_bpsc).map_bits(bits)
        assert np.mean(np.abs(points) ** 2) == pytest.approx(1.0)

    def test_gray_coding_neighbours_differ_by_one_bit(self):
        """Adjacent 16-QAM I-axis levels differ in exactly one bit."""
        modulator = Modulator(4)
        bits = np.array(
            [(v >> 3) & 1 for v in range(16) for _ in (0,)]
        )
        # check the I axis: map all 2-bit codes, sort by level
        levels = {}
        for code in range(4):
            pattern = np.array(
                [(code >> 1) & 1, code & 1, 0, 0], dtype=np.uint8
            )
            levels[code] = modulator.map_bits(pattern)[0].real
        ordered = sorted(levels, key=levels.get)
        for a, b in zip(ordered, ordered[1:]):
            assert bin(a ^ b).count("1") == 1

    def test_small_noise_does_not_flip(self, rng):
        bits = rng.integers(0, 2, 6 * 64).astype(np.uint8)
        points = Modulator(6).map_bits(bits)
        noisy = points + 0.02 * (
            rng.standard_normal(len(points))
            + 1j * rng.standard_normal(len(points))
        )
        assert np.array_equal(Demodulator(6).demap(noisy), bits)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Modulator(3)
        with pytest.raises(ConfigurationError):
            Modulator(2).map_bits(np.array([1], dtype=np.uint8))


class TestInterleaver:
    @pytest.mark.parametrize("rate", sorted(RATE_TABLE))
    def test_roundtrip(self, rate, rng):
        params = rate_parameters(rate)
        bits = rng.integers(
            0, 2, params.n_cbps * 3
        ).astype(np.uint8)
        forward = interleave(bits, params.n_cbps, params.n_bpsc)
        assert np.array_equal(
            deinterleave(forward, params.n_cbps, params.n_bpsc), bits
        )

    def test_is_a_permutation(self, rng):
        params = rate_parameters(54)
        bits = np.arange(params.n_cbps) % 2
        forward = interleave(bits, params.n_cbps, params.n_bpsc)
        assert sorted(forward) == sorted(bits)
        assert not np.array_equal(forward, bits)

    def test_adjacent_bits_separated(self):
        """First permutation: adjacent coded bits land >= 3 apart
        (they map to different subcarriers)."""
        params = rate_parameters(6)
        n = params.n_cbps
        positions = np.empty(n, dtype=int)
        for k in range(n):
            unit = np.zeros(n, dtype=np.uint8)
            unit[k] = 1
            positions[k] = int(np.argmax(
                interleave(unit, n, params.n_bpsc)
            ))
        gaps = np.abs(np.diff(positions))
        assert gaps.min() >= 3

    def test_misaligned_length_rejected(self):
        with pytest.raises(ConfigurationError):
            interleave(np.zeros(50, dtype=np.uint8), 48, 1)
        with pytest.raises(ConfigurationError):
            deinterleave(np.zeros(50, dtype=np.uint8), 48, 1)


class TestFraming:
    def test_rate_table_consistency(self):
        for rate, params in RATE_TABLE.items():
            assert params.n_cbps == 48 * params.n_bpsc
            numerator, denominator = map(
                int, params.coding_rate.split("/")
            )
            assert params.n_dbps == params.n_cbps * numerator \
                // denominator
            assert params.rate_mbps == rate

    def test_unknown_rate(self):
        with pytest.raises(ConfigurationError):
            rate_parameters(11)

    def test_subcarrier_plan(self):
        assert len(DATA_SUBCARRIERS) == N_DATA_SUBCARRIERS
        assert 0 not in DATA_SUBCARRIERS
        assert not set(PILOT_SUBCARRIERS) & set(DATA_SUBCARRIERS)
        assert all(-26 <= k <= 26 for k in DATA_SUBCARRIERS)

    def test_symbol_roundtrip(self, rng):
        data = (rng.standard_normal(48)
                + 1j * rng.standard_normal(48)) / np.sqrt(2)
        samples = assemble_symbol(data, symbol_index=0)
        assert len(samples) == SYMBOL_SAMPLES
        recovered, pilots = disassemble_symbol(samples, symbol_index=0)
        assert np.allclose(recovered, data, atol=1e-9)
        assert np.allclose(pilots, 1.0, atol=1e-9)

    def test_cyclic_prefix_is_a_copy_of_the_tail(self, rng):
        data = rng.standard_normal(48) + 1j * rng.standard_normal(48)
        samples = assemble_symbol(data, symbol_index=3)
        assert np.allclose(samples[:16], samples[64:80])

    def test_wrong_sizes_rejected(self):
        with pytest.raises(ConfigurationError):
            assemble_symbol(np.zeros(10, dtype=complex), 0)
        with pytest.raises(ConfigurationError):
            disassemble_symbol(np.zeros(79, dtype=complex), 0)


@given(
    n_bpsc=st.sampled_from([1, 2, 4, 6]),
    seed=st.integers(0, 2 ** 16),
)
@settings(max_examples=20, deadline=None)
def test_modulation_roundtrip_property(n_bpsc, seed):
    rng = np.random.default_rng(seed)
    bits = rng.integers(0, 2, n_bpsc * 48).astype(np.uint8)
    points = Modulator(n_bpsc).map_bits(bits)
    assert np.array_equal(Demodulator(n_bpsc).demap(points), bits)
