"""Soft-decision demodulation and the soft receiver."""

import numpy as np
import pytest

from repro.apps.wlan import (
    Modulator,
    Receiver,
    SoftDemodulator,
    Transmitter,
    awgn_channel,
)
from repro.errors import ConfigurationError


@pytest.mark.parametrize("n_bpsc", [1, 2, 4, 6])
def test_clean_symbols_round_to_hard_bits(n_bpsc, rng):
    bits = rng.integers(0, 2, n_bpsc * 96).astype(np.uint8)
    points = Modulator(n_bpsc).map_bits(bits)
    soft = SoftDemodulator(n_bpsc).demap_soft(points)
    assert np.array_equal((soft > 0.5).astype(np.uint8), bits)


def test_clean_symbols_are_confident(rng):
    bits = rng.integers(0, 2, 4 * 48).astype(np.uint8)
    points = Modulator(4).map_bits(bits)
    soft = SoftDemodulator(4).demap_soft(points)
    confidence = np.abs(soft - 0.5)
    assert confidence.min() > 0.3


def test_boundary_symbols_are_uncertain():
    """A point on a decision boundary gets a ~0.5 soft value."""
    demod = SoftDemodulator(2)  # QPSK: boundary at 0
    soft = demod.demap_soft(np.array([0.0 + 0.7j]))
    assert soft[0] == pytest.approx(0.5, abs=1e-9)  # I-axis bit


def test_noisier_symbols_are_less_confident(rng):
    bits = rng.integers(0, 2, 6 * 48).astype(np.uint8)
    points = Modulator(6).map_bits(bits)
    demod = SoftDemodulator(6)
    clean = np.abs(demod.demap_soft(points) - 0.5).mean()
    noise = 0.15 * (rng.standard_normal(len(points))
                    + 1j * rng.standard_normal(len(points)))
    noisy = np.abs(demod.demap_soft(points + noise) - 0.5).mean()
    assert noisy < clean


def test_temperature_validation():
    with pytest.raises(ConfigurationError):
        SoftDemodulator(2, temperature=0.0)


def test_soft_receiver_decodes_clean_signal(rng):
    payload = rng.integers(0, 2, 500).astype(np.uint8)
    signal = Transmitter(54).transmit(payload)
    result = Receiver(54, soft=True).receive(signal, payload_bits=500)
    assert np.array_equal(result.bits, payload)


@pytest.mark.parametrize("rate,snr_db", [(54, 17.0), (24, 8.0)])
def test_soft_beats_hard_at_marginal_snr(rate, snr_db, rng):
    """The classic ~2 dB soft-decision gain."""
    payload = rng.integers(0, 2, 2400).astype(np.uint8)
    signal = Transmitter(rate).transmit(payload)
    noisy = awgn_channel(signal, snr_db=snr_db, seed=rate)
    hard = Receiver(rate, soft=False).receive(
        noisy, payload_bits=2400
    ).bits
    soft = Receiver(rate, soft=True).receive(
        noisy, payload_bits=2400
    ).bits
    hard_errors = int(np.sum(hard != payload))
    soft_errors = int(np.sum(soft != payload))
    assert soft_errors < hard_errors
    assert hard_errors > 0  # the SNR is genuinely marginal
