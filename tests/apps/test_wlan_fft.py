"""FFT against the numpy reference."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.wlan.fft import (
    bit_reverse_indices,
    butterfly_count,
    fft,
    ifft,
)


def test_bit_reverse_8():
    assert list(bit_reverse_indices(8)) == [0, 4, 2, 6, 1, 5, 3, 7]


def test_bit_reverse_is_involution():
    indices = bit_reverse_indices(64)
    assert np.array_equal(indices[indices], np.arange(64))


def test_impulse_transforms_to_flat():
    impulse = np.zeros(64, dtype=complex)
    impulse[0] = 1.0
    assert np.allclose(fft(impulse), np.ones(64))


def test_matches_numpy(rng):
    data = rng.standard_normal(64) + 1j * rng.standard_normal(64)
    assert np.allclose(fft(data), np.fft.fft(data), atol=1e-10)


def test_ifft_roundtrip(rng):
    data = rng.standard_normal(128) + 1j * rng.standard_normal(128)
    assert np.allclose(ifft(fft(data)), data, atol=1e-10)


def test_parseval(rng):
    data = rng.standard_normal(64) + 1j * rng.standard_normal(64)
    time_energy = np.sum(np.abs(data) ** 2)
    freq_energy = np.sum(np.abs(fft(data)) ** 2) / 64
    assert time_energy == pytest.approx(freq_energy)


def test_non_power_of_two_rejected():
    with pytest.raises(ValueError):
        fft(np.zeros(48))
    with pytest.raises(ValueError):
        fft(np.zeros(0))
    with pytest.raises(ValueError):
        bit_reverse_indices(12)


def test_butterfly_count():
    assert butterfly_count(64) == 192  # (64/2) * 6
    assert butterfly_count(2) == 1
    with pytest.raises(ValueError):
        butterfly_count(3)


@given(
    exponent=st.integers(min_value=1, max_value=8),
    seed=st.integers(min_value=0, max_value=2 ** 16),
)
@settings(max_examples=25, deadline=None)
def test_matches_numpy_property(exponent, seed):
    rng = np.random.default_rng(seed)
    n = 1 << exponent
    data = rng.standard_normal(n) + 1j * rng.standard_normal(n)
    assert np.allclose(fft(data), np.fft.fft(data), atol=1e-9)


@given(
    shift=st.integers(min_value=0, max_value=63),
    seed=st.integers(min_value=0, max_value=2 ** 16),
)
@settings(max_examples=25, deadline=None)
def test_shift_theorem(shift, seed):
    """fft(x[n - s]) == fft(x) * exp(-2 pi i k s / N)."""
    rng = np.random.default_rng(seed)
    data = rng.standard_normal(64) + 1j * rng.standard_normal(64)
    rolled = np.roll(data, shift)
    phase = np.exp(-2j * np.pi * np.arange(64) * shift / 64)
    assert np.allclose(fft(rolled), fft(data) * phase, atol=1e-9)
