"""Convolutional coding, puncturing, Viterbi decoding, scrambling."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.wlan.convcode import (
    ConvolutionalEncoder,
    depuncture,
    puncture,
)
from repro.apps.wlan.scrambler import Scrambler, pilot_polarity
from repro.apps.wlan.viterbi import ViterbiDecoder
from repro.errors import ConfigurationError


class TestEncoder:
    def test_rate_and_termination(self):
        encoder = ConvolutionalEncoder()
        bits = np.array([1, 0, 1], dtype=np.uint8)
        coded = encoder.encode(bits, terminate=True)
        assert len(coded) == 2 * (3 + encoder.tail_bits)
        unterminated = encoder.encode(bits, terminate=False)
        assert len(unterminated) == 6

    def test_known_prefix(self):
        """First input bit 1: outputs parity(g0 & 1), parity(g1 & 1)."""
        encoder = ConvolutionalEncoder()
        coded = encoder.encode(np.array([1], dtype=np.uint8),
                               terminate=False)
        assert list(coded) == [1, 1]

    def test_linearity_over_gf2(self, rng):
        """The code is linear: enc(a ^ b) == enc(a) ^ enc(b)."""
        encoder = ConvolutionalEncoder()
        a = rng.integers(0, 2, 40).astype(np.uint8)
        b = rng.integers(0, 2, 40).astype(np.uint8)
        lhs = encoder.encode((a ^ b), terminate=False)
        rhs = (encoder.encode(a, terminate=False)
               ^ encoder.encode(b, terminate=False))
        assert np.array_equal(lhs, rhs)


class TestPuncturing:
    def test_rates(self):
        coded = np.arange(24, dtype=np.uint8) % 2
        assert len(puncture(coded, "1/2")) == 24
        assert len(puncture(coded, "2/3")) == 18
        assert len(puncture(coded, "3/4")) == 16

    def test_unknown_rate(self):
        with pytest.raises(ConfigurationError):
            puncture(np.zeros(4, dtype=np.uint8), "5/6")
        with pytest.raises(ConfigurationError):
            depuncture(np.zeros(4), "7/8")

    def test_depuncture_restores_positions(self, rng):
        coded = rng.integers(0, 2, 48).astype(np.uint8)
        for rate in ("1/2", "2/3", "3/4"):
            sent = puncture(coded, rate)
            restored = depuncture(sent.astype(float), rate)
            kept = restored[restored != 0.5]
            assert np.array_equal(kept.astype(np.uint8), sent)
            assert len(restored) % 2 == 0


class TestViterbi:
    def test_noiseless_roundtrip(self, rng):
        encoder, decoder = ConvolutionalEncoder(), ViterbiDecoder()
        bits = rng.integers(0, 2, 120).astype(np.uint8)
        decoded = decoder.decode(encoder.encode(bits).astype(float))
        assert np.array_equal(decoded, bits)

    def test_corrects_scattered_hard_errors(self, rng):
        encoder, decoder = ConvolutionalEncoder(), ViterbiDecoder()
        bits = rng.integers(0, 2, 200).astype(np.uint8)
        coded = encoder.encode(bits).astype(float)
        # flip well-separated bits (beyond the code's memory)
        for position in range(10, len(coded), 40):
            coded[position] = 1.0 - coded[position]
        decoded = decoder.decode(coded)
        assert np.array_equal(decoded, bits)

    def test_punctured_roundtrips(self, rng):
        encoder, decoder = ConvolutionalEncoder(), ViterbiDecoder()
        bits = rng.integers(0, 2, 144).astype(np.uint8)
        coded = encoder.encode(bits)
        for rate in ("2/3", "3/4"):
            soft = depuncture(puncture(coded, rate).astype(float), rate)
            decoded = decoder.decode(soft)
            assert np.array_equal(decoded[:len(bits)], bits)

    def test_soft_inputs_beat_hard_on_weak_bits(self):
        """An erasure (0.5) hurts less than a confident wrong bit."""
        encoder, decoder = ConvolutionalEncoder(), ViterbiDecoder()
        bits = np.array([1, 0, 1, 1, 0, 0, 1, 0], dtype=np.uint8)
        coded = encoder.encode(bits).astype(float)
        erased = coded.copy()
        erased[4] = 0.5
        assert np.array_equal(decoder.decode(erased), bits)

    def test_odd_length_rejected(self):
        with pytest.raises(ValueError):
            ViterbiDecoder().decode(np.zeros(5))

    def test_acs_shapes(self):
        decoder = ViterbiDecoder()
        survivors, metrics = decoder.acs(np.zeros((10, 2)))
        assert survivors.shape == (10, 64)
        assert metrics.shape == (64,)

    def test_constraint_validation(self):
        with pytest.raises(ConfigurationError):
            ViterbiDecoder(constraint=1)
        with pytest.raises(ConfigurationError):
            ViterbiDecoder(constraint=20)

    @given(
        seed=st.integers(0, 2 ** 16),
        length=st.integers(8, 64),
    )
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_property(self, seed, length):
        rng = np.random.default_rng(seed)
        encoder, decoder = ConvolutionalEncoder(), ViterbiDecoder()
        bits = rng.integers(0, 2, length).astype(np.uint8)
        decoded = decoder.decode(encoder.encode(bits).astype(float))
        assert np.array_equal(decoded, bits)


class TestScrambler:
    def test_self_inverse(self, rng):
        bits = rng.integers(0, 2, 100).astype(np.uint8)
        forward = Scrambler(0b1011101)
        backward = Scrambler(0b1011101)
        assert np.array_equal(backward.process(forward.process(bits)),
                              bits)

    def test_127_bit_period(self):
        scrambler = Scrambler(0x7F)
        sequence = scrambler.sequence(254)
        assert np.array_equal(sequence[:127], sequence[127:])
        assert sequence[:127].sum() == 64  # maximal-length property

    def test_standard_sequence_prefix(self):
        """Clause 17.3.5.4: all-ones seed starts 0000 1110 1111 0010..."""
        scrambler = Scrambler(0x7F)
        prefix = "".join(str(b) for b in scrambler.sequence(16))
        assert prefix == "0000111011110010"

    def test_seed_validation(self):
        with pytest.raises(ValueError):
            Scrambler(0)
        with pytest.raises(ValueError):
            Scrambler(0x80)

    def test_pilot_polarity_values(self):
        polarity = pilot_polarity(10)
        assert set(np.unique(polarity)) <= {-1, 1}
        # p0..p3 from the standard: 1 1 1 1 (scrambler emits 0 0 0 0)
        assert list(polarity[:4]) == [1, 1, 1, 1]
