"""Extension features: windowed traceback, entropy estimates, Jacobi."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.mpeg4 import Mpeg4Encoder, QCIF_SHAPE, synthetic_sequence
from repro.apps.mpeg4.entropy import (
    block_bits,
    exp_golomb_bits,
    frame_bits,
    motion_vector_bits,
    run_length_pairs,
    zigzag_order,
    zigzag_scan,
)
from repro.apps.stereo.jacobi import amplify_jacobi, jacobi_svd
from repro.apps.stereo.svd import amplify
from repro.apps.wlan.convcode import ConvolutionalEncoder
from repro.apps.wlan.viterbi import ViterbiDecoder


class TestWindowedTraceback:
    def test_deep_window_matches_full_traceback(self, rng):
        encoder, decoder = ConvolutionalEncoder(), ViterbiDecoder()
        bits = rng.integers(0, 2, 150).astype(np.uint8)
        coded = encoder.encode(bits).astype(float)
        full = decoder.decode(coded)
        windowed = decoder.decode_windowed(coded, traceback_depth=40)
        assert np.array_equal(windowed[:len(full)], full)

    def test_shallow_window_degrades_under_noise(self, rng):
        encoder, decoder = ConvolutionalEncoder(), ViterbiDecoder()
        bits = rng.integers(0, 2, 400).astype(np.uint8)
        coded = encoder.encode(bits).astype(float)
        noisy = np.clip(
            coded + 0.42 * rng.standard_normal(len(coded)), 0, 1
        )
        deep = decoder.decode_windowed(noisy, traceback_depth=48)
        shallow = decoder.decode_windowed(noisy, traceback_depth=3)
        deep_errors = int(np.sum(deep[:400] != bits))
        shallow_errors = int(np.sum(shallow[:400] != bits))
        assert shallow_errors >= deep_errors

    def test_validation(self):
        decoder = ViterbiDecoder()
        with pytest.raises(ValueError):
            decoder.decode_windowed(np.zeros(4), traceback_depth=0)
        with pytest.raises(ValueError):
            decoder.decode_windowed(np.zeros(5))

    @given(
        seed=st.integers(0, 2 ** 16),
        depth=st.integers(35, 80),
    )
    @settings(max_examples=15, deadline=None)
    def test_5k_depth_is_lossless_on_clean_data(self, seed, depth):
        rng = np.random.default_rng(seed)
        encoder, decoder = ConvolutionalEncoder(), ViterbiDecoder()
        bits = rng.integers(0, 2, 80).astype(np.uint8)
        coded = encoder.encode(bits).astype(float)
        windowed = decoder.decode_windowed(coded,
                                           traceback_depth=depth)
        assert np.array_equal(windowed[:80], bits)


class TestEntropy:
    def test_zigzag_order_properties(self):
        order = zigzag_order(8)
        assert sorted(order) == list(range(64))
        assert order[0] == 0          # DC first
        assert order[1] == 1          # then (0,1)
        assert order[2] == 8          # then (1,0)
        assert order[-1] == 63        # high frequency last

    def test_zigzag_scan_shape(self):
        block = np.arange(64).reshape(8, 8)
        scanned = zigzag_scan(block)
        assert scanned[0] == 0
        assert len(scanned) == 64
        with pytest.raises(ValueError):
            zigzag_scan(np.zeros((4, 4)))

    def test_run_length_pairs(self):
        scanned = np.array([5, 0, 0, -3, 0, 1] + [0] * 58)
        assert run_length_pairs(scanned) == [(0, 5), (2, -3), (1, 1)]
        assert run_length_pairs(np.zeros(64)) == []

    def test_exp_golomb_lengths(self):
        # mapped 0 -> 1 bit, 1..2 -> 3 bits, 3..6 -> 5 bits
        assert exp_golomb_bits(0) == 1
        assert exp_golomb_bits(1) == 3
        assert exp_golomb_bits(-1) == 3
        assert exp_golomb_bits(3) == 5
        assert exp_golomb_bits(-5) == 7

    def test_block_bits_grows_with_content(self):
        empty = np.zeros((8, 8), dtype=int)
        busy = np.ones((8, 8), dtype=int)
        assert block_bits(busy) > block_bits(empty)

    def test_motion_vector_bits(self):
        assert motion_vector_bits(0, 0) == 2
        assert motion_vector_bits(1, -1) == 6

    def test_frame_bits_adds_motion(self):
        from repro.apps.mpeg4.motion import MotionVector

        levels = [np.zeros((8, 8), dtype=int)]
        without = frame_bits(levels)
        with_mv = frame_bits(
            levels, {(0, 0): MotionVector(1, 2, 0.0)}
        )
        assert with_mv > without

    def test_encoder_reports_bits(self):
        frames = synthetic_sequence(3, shape=QCIF_SHAPE,
                                    motion_per_frame=(1, 2), seed=2)
        encoder = Mpeg4Encoder(shape=QCIF_SHAPE, qp=6)
        results = encoder.encode_sequence(frames)
        assert all(r.estimated_bits > 0 for r in results)
        # P frames are much cheaper than the I frame
        assert results[1].estimated_bits < 0.5 * results[0].estimated_bits
        assert results[0].estimated_kbps_at > 0.0

    def test_coarser_qp_costs_fewer_bits(self):
        frames = synthetic_sequence(1, shape=QCIF_SHAPE, seed=2)
        fine = Mpeg4Encoder(shape=QCIF_SHAPE, qp=2).encode_frame(
            frames[0]
        )
        coarse = Mpeg4Encoder(shape=QCIF_SHAPE, qp=20).encode_frame(
            frames[0]
        )
        assert coarse.estimated_bits < fine.estimated_bits


class TestJacobiSvd:
    def test_reconstruction(self, rng):
        a = rng.standard_normal((8, 5))
        u, s, vt = jacobi_svd(a)
        assert np.allclose(u @ np.diag(s) @ vt, a, atol=1e-9)

    def test_orthonormal_factors(self, rng):
        a = rng.standard_normal((6, 6))
        u, s, vt = jacobi_svd(a)
        assert np.allclose(u.T @ u, np.eye(6), atol=1e-9)
        assert np.allclose(vt @ vt.T, np.eye(6), atol=1e-9)

    def test_singular_values_match_numpy(self, rng):
        a = rng.standard_normal((7, 4))
        _, ours, _ = jacobi_svd(a)
        reference = np.linalg.svd(a, compute_uv=False)
        assert np.allclose(ours, reference, atol=1e-9)

    def test_wide_matrix_rejected(self, rng):
        with pytest.raises(ValueError):
            jacobi_svd(rng.standard_normal((3, 5)))
        with pytest.raises(ValueError):
            jacobi_svd(rng.standard_normal(4))

    def test_amplify_agrees_with_numpy_route(self, rng):
        """P = UV^T is the unique orthogonal polar factor, so the
        Jacobi and LAPACK routes must coincide."""
        g = rng.uniform(0.0, 1.0, (6, 6)) + 0.1 * np.eye(6)
        assert np.allclose(amplify_jacobi(g), amplify(g), atol=1e-8)

    def test_amplify_wide_input(self, rng):
        g = rng.uniform(0.1, 1.0, (3, 5))
        p = amplify_jacobi(g)
        assert p.shape == (3, 5)
        assert np.allclose(p @ p.T, np.eye(3), atol=1e-8)

    def test_empty_input(self):
        assert amplify_jacobi(np.zeros((0, 0))).size == 0
