"""The 802.11a + AES secure link (Section 5.1's composition)."""

import numpy as np
import pytest

from repro.apps.wlan.channel import awgn_channel
from repro.apps.wlan.secure import SecureLink
from repro.errors import ConfigurationError

KEY = bytes(range(16))


def test_roundtrip_authenticates(rng):
    link = SecureLink(KEY, rate_mbps=24)
    payload = rng.integers(0, 2, 512).astype(np.uint8)
    result = link.receive(link.transmit(payload), payload_bits=512)
    assert result.tag_valid
    assert np.array_equal(result.payload, payload)


def test_survives_clean_awgn(rng):
    link = SecureLink(KEY, rate_mbps=6)
    payload = rng.integers(0, 2, 256).astype(np.uint8)
    noisy = awgn_channel(link.transmit(payload), snr_db=25.0, seed=4)
    result = link.receive(noisy, payload_bits=256)
    assert result.tag_valid


def test_wrong_key_rejects(rng):
    sender = SecureLink(KEY, rate_mbps=24)
    receiver = SecureLink(bytes(16), rate_mbps=24)
    payload = rng.integers(0, 2, 512).astype(np.uint8)
    result = receiver.receive(sender.transmit(payload),
                              payload_bits=512)
    assert not result.tag_valid


def test_residual_bit_errors_reject(rng):
    """Deep noise that breaks the decode must break the tag too."""
    link = SecureLink(KEY, rate_mbps=54)
    payload = rng.integers(0, 2, 1024).astype(np.uint8)
    noisy = awgn_channel(link.transmit(payload), snr_db=8.0, seed=4)
    result = link.receive(noisy, payload_bits=1024)
    if not np.array_equal(result.payload, payload):
        assert not result.tag_valid


def test_validation():
    with pytest.raises(ConfigurationError):
        SecureLink(b"short")
    link = SecureLink(KEY)
    with pytest.raises(ConfigurationError):
        link.transmit(np.zeros(7, dtype=np.uint8))
    with pytest.raises(ConfigurationError):
        link.receive(np.zeros(80, dtype=complex), payload_bits=7)
