"""Stereo vision: features, correlation, SVD correspondence."""

import numpy as np
import pytest

from repro.apps.stereo import (
    StereoVisionPipeline,
    extract_features,
    extract_patch,
    min_eigenvalue_response,
    normalized_correlation,
    pilu_correspondence,
    synthetic_stereo_pair,
)
from repro.apps.stereo.features import (
    image_gradients,
    non_maximum_suppression,
)
from repro.apps.stereo.svd import amplify, pairing_matrix


def _corner_image(size=64):
    """A bright square: its corners are the strongest features."""
    image = np.zeros((size, size))
    image[20:44, 20:44] = 1.0
    return image


class TestFeatures:
    def test_gradients_of_ramp(self):
        ramp = np.tile(np.arange(32, dtype=float), (32, 1))
        gy, gx = image_gradients(ramp)
        assert np.allclose(gx[1:-1, 1:-1], 1.0)
        assert np.allclose(gy[1:-1, 1:-1], 0.0)

    def test_flat_image_has_no_response(self):
        response = min_eigenvalue_response(np.ones((32, 32)))
        assert np.allclose(response, 0.0, atol=1e-9)

    def test_corners_beat_edges(self):
        image = _corner_image()
        response = min_eigenvalue_response(image, window=5)
        corner = response[20, 20]
        edge = response[32, 20]  # mid-edge: one gradient direction
        assert corner > 2.0 * edge

    def test_extract_finds_the_four_corners(self):
        image = _corner_image()
        features = extract_features(image, max_features=4, border=4)
        positions = {(f.row, f.col) for f in features}
        for corner in ((20, 20), (20, 43), (43, 20), (43, 43)):
            assert any(
                abs(corner[0] - r) <= 2 and abs(corner[1] - c) <= 2
                for r, c in positions
            )

    def test_max_features_respected(self):
        left, _ = synthetic_stereo_pair(seed=1)
        features = extract_features(left, max_features=10)
        assert len(features) <= 10
        responses = [f.response for f in features]
        assert responses == sorted(responses, reverse=True)

    def test_border_exclusion(self):
        left, _ = synthetic_stereo_pair(seed=1)
        features = extract_features(left, max_features=50, border=10)
        for feature in features:
            assert 10 <= feature.row < left.shape[0] - 10
            assert 10 <= feature.col < left.shape[1] - 10

    def test_empty_image(self):
        assert extract_features(np.zeros((32, 32))) == []

    def test_nms_keeps_local_maxima_only(self):
        response = np.zeros((16, 16))
        response[4, 4] = 2.0
        response[4, 6] = 1.0  # within radius of the stronger peak
        response[12, 12] = 3.0
        mask = non_maximum_suppression(response, radius=3)
        assert mask[4, 4]
        assert not mask[4, 6]
        assert mask[12, 12]

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            min_eigenvalue_response(np.zeros((8, 8)), window=4)
        with pytest.raises(ValueError):
            min_eigenvalue_response(np.zeros(8))
        with pytest.raises(ValueError):
            non_maximum_suppression(np.zeros((8, 8)), radius=0)


class TestCorrelation:
    def test_identical_patches_correlate_to_one(self, rng):
        patch = rng.standard_normal((9, 9))
        assert normalized_correlation(patch, patch) \
            == pytest.approx(1.0)

    def test_inverted_patch_correlates_to_minus_one(self, rng):
        patch = rng.standard_normal((9, 9))
        assert normalized_correlation(patch, -patch) \
            == pytest.approx(-1.0)

    def test_flat_patch_returns_zero(self):
        assert normalized_correlation(np.ones((5, 5)),
                                      np.ones((5, 5))) == 0.0

    def test_extract_patch_bounds(self):
        image = np.zeros((32, 32))
        patch = extract_patch(image, 16, 16, radius=4)
        assert patch.shape == (9, 9)
        with pytest.raises(ValueError):
            extract_patch(image, 1, 16, radius=4)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            normalized_correlation(np.ones((3, 3)), np.ones((5, 5)))


class TestSvdCorrespondence:
    def test_amplified_matrix_is_orthonormal(self, rng):
        g = rng.uniform(0, 1, (6, 6))
        p = amplify(g)
        assert np.allclose(p @ p.T, np.eye(6), atol=1e-9)

    def test_identity_pairing_recovers_identity(self):
        left, right = synthetic_stereo_pair(disparity=0, seed=5)
        features = extract_features(left, max_features=12, border=6)
        matches = pilu_correspondence(left, features, left, features)
        assert all(i == j for i, j in matches)
        assert len(matches) == len(features)

    def test_pairing_matrix_shape(self):
        left, right = synthetic_stereo_pair(seed=5)
        fa = extract_features(left, max_features=8, border=6)
        fb = extract_features(right, max_features=6, border=6)
        g = pairing_matrix(left, fa, right, fb)
        assert g.shape == (len(fa), len(fb))
        assert np.all(g >= 0.0) and np.all(g <= 1.0)

    def test_empty_feature_sets(self):
        left, right = synthetic_stereo_pair(seed=5)
        assert pilu_correspondence(left, [], right, []) == []


class TestPipeline:
    def test_recovers_known_disparity(self):
        left, right = synthetic_stereo_pair(disparity=6, seed=3)
        matches = StereoVisionPipeline(max_features=48).process(
            left, right
        )
        assert len(matches) >= 20
        good = sum(1 for m in matches if abs(m.disparity - 6) <= 1)
        assert good / len(matches) > 0.9

    def test_shape_mismatch_rejected(self):
        pipeline = StereoVisionPipeline()
        with pytest.raises(ValueError):
            pipeline.process(np.zeros((16, 16)), np.zeros((16, 32)))

    def test_frame_counter(self):
        left, right = synthetic_stereo_pair(seed=3)
        pipeline = StereoVisionPipeline(max_features=16)
        pipeline.process(left, right)
        pipeline.process(left, right)
        assert pipeline.frames_processed == 2
