"""Long-preamble channel estimation over multipath channels."""

import numpy as np
import pytest

from repro.apps.wlan import Receiver, Transmitter
from repro.apps.wlan.channel import multipath_channel
from repro.apps.wlan.fft import fft
from repro.apps.wlan.frame import (
    LONG_PREAMBLE_SAMPLES,
    LONG_TRAINING_SEQUENCE,
    estimate_channel,
    long_preamble,
)
from repro.errors import ConfigurationError

TAPS = np.array([1.0, 0.0, 0.35 * np.exp(0.7j),
                 0.15 * np.exp(-1.1j)])


def test_preamble_shape_and_repetition():
    preamble = long_preamble()
    assert len(preamble) == LONG_PREAMBLE_SAMPLES
    # two identical training symbols after the 32-sample guard
    assert np.allclose(preamble[32:96], preamble[96:160])
    # guard is the symbol's tail
    assert np.allclose(preamble[:32], preamble[64:96])


def test_lts_is_all_pm_one():
    values = set(LONG_TRAINING_SEQUENCE.values())
    assert values == {1, -1}
    assert len(LONG_TRAINING_SEQUENCE) == 52


def test_clean_channel_estimates_unity():
    estimate = estimate_channel(long_preamble())
    for k, h in estimate.items():
        assert h == pytest.approx(1.0, abs=1e-12), k


def test_estimates_recover_the_channel_response():
    faded = multipath_channel(long_preamble(), TAPS)
    estimate = estimate_channel(faded)
    truth = fft(np.concatenate([TAPS, np.zeros(64 - len(TAPS))]))
    for k, h in estimate.items():
        assert h == pytest.approx(truth[k % 64], abs=1e-9), k


def test_estimate_rejects_wrong_length():
    with pytest.raises(ConfigurationError):
        estimate_channel(np.zeros(100, dtype=complex))


def test_preamble_receiver_decodes_through_multipath(rng):
    payload = rng.integers(0, 2, 1200).astype(np.uint8)
    transmitter = Transmitter(24)
    signal = transmitter.transmit(payload, include_preamble=True)
    faded = multipath_channel(signal, TAPS, snr_db=28.0, seed=1)
    bits = Receiver(24).receive(
        faded, payload_bits=1200, preamble=True
    ).bits
    assert np.array_equal(bits, payload)


def test_flat_equalizer_fails_where_preamble_succeeds(rng):
    payload = rng.integers(0, 2, 1200).astype(np.uint8)
    transmitter = Transmitter(24)
    flat_signal = transmitter.transmit(payload)
    faded = multipath_channel(flat_signal, TAPS, snr_db=28.0, seed=1)
    flat_bits = Receiver(24).receive(faded, payload_bits=1200).bits
    assert np.sum(flat_bits != payload) > 0


def test_preamble_plus_soft_decisions_compose(rng):
    payload = rng.integers(0, 2, 1200).astype(np.uint8)
    signal = Transmitter(54).transmit(payload, include_preamble=True)
    faded = multipath_channel(signal, TAPS, snr_db=26.0, seed=2)
    soft_bits = Receiver(54, soft=True).receive(
        faded, payload_bits=1200, preamble=True
    ).bits
    hard_bits = Receiver(54, soft=False).receive(
        faded, payload_bits=1200, preamble=True
    ).bits
    assert np.sum(soft_bits != payload) <= np.sum(hard_bits != payload)


def test_short_stream_rejected():
    with pytest.raises(ConfigurationError):
        Receiver(6).receive(np.zeros(100, dtype=complex),
                            preamble=True)


def test_multipath_validation(rng):
    signal = rng.standard_normal(160) + 0j
    with pytest.raises(ValueError):
        multipath_channel(signal, np.array([]))
    with pytest.raises(ValueError):
        multipath_channel(signal, np.ones(20))  # beyond the CP
