"""AES-128 against FIPS-197 and CBC-MAC properties."""

import pytest

from repro.apps.aes import Aes128, cbc_mac, encrypt_block, expand_key
from repro.apps.aes.cipher import INV_SBOX, SBOX, gf_multiply


class TestGaloisField:
    def test_known_products(self):
        assert gf_multiply(0x57, 0x83) == 0xC1  # FIPS-197 example
        assert gf_multiply(0x57, 0x13) == 0xFE
        assert gf_multiply(1, 0xAB) == 0xAB
        assert gf_multiply(0, 0xFF) == 0

    def test_commutative(self):
        for a, b in ((3, 7), (0x53, 0xCA), (0xFF, 0xFE)):
            assert gf_multiply(a, b) == gf_multiply(b, a)


class TestSbox:
    def test_known_entries(self):
        assert SBOX[0x00] == 0x63
        assert SBOX[0x01] == 0x7C
        assert SBOX[0x53] == 0xED
        assert SBOX[0xFF] == 0x16

    def test_is_a_permutation(self):
        assert sorted(SBOX) == list(range(256))

    def test_inverse_box(self):
        for value in range(256):
            assert INV_SBOX[SBOX[value]] == value


class TestKeyExpansion:
    def test_fips197_appendix_a(self):
        key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
        round_keys = expand_key(key)
        assert len(round_keys) == 11
        assert round_keys[0] == key
        assert round_keys[1].hex() == "a0fafe1788542cb123a339392a6c7605"
        assert round_keys[10].hex() == "d014f9a8c9ee2589e13f0cc8b6630ca6"

    def test_key_length_validation(self):
        with pytest.raises(ValueError):
            expand_key(b"short")


class TestEncryption:
    def test_fips197_appendix_b(self):
        key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
        plaintext = bytes.fromhex("3243f6a8885a308d313198a2e0370734")
        expected = "3925841d02dc09fbdc118597196a0b32"
        assert encrypt_block(plaintext, key).hex() == expected

    def test_fips197_appendix_c1(self):
        key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
        plaintext = bytes.fromhex("00112233445566778899aabbccddeeff")
        expected = "69c4e0d86a7b0430d8cdb78070b4c55a"
        assert encrypt_block(plaintext, key).hex() == expected

    def test_class_matches_function(self):
        key = bytes(range(16))
        block = bytes(range(16, 32))
        assert Aes128(key).encrypt(block) == encrypt_block(block, key)

    def test_block_length_validation(self):
        with pytest.raises(ValueError):
            encrypt_block(b"short", bytes(16))
        with pytest.raises(ValueError):
            Aes128(bytes(16)).encrypt(b"short")

    def test_avalanche(self):
        """One flipped plaintext bit changes about half the output."""
        key = bytes(range(16))
        base = bytearray(16)
        flipped = bytearray(16)
        flipped[0] ^= 1
        a = encrypt_block(bytes(base), key)
        b = encrypt_block(bytes(flipped), key)
        differing = sum(
            bin(x ^ y).count("1") for x, y in zip(a, b)
        )
        assert 40 <= differing <= 88


class TestCbcMac:
    def test_deterministic(self):
        key = bytes(range(16))
        assert cbc_mac(b"hello", key) == cbc_mac(b"hello", key)

    def test_sensitive_to_message(self):
        key = bytes(range(16))
        assert cbc_mac(b"hello", key) != cbc_mac(b"hellp", key)

    def test_sensitive_to_key(self):
        assert cbc_mac(b"hello", bytes(16)) \
            != cbc_mac(b"hello", bytes(range(16)))

    def test_length_extension_resisted(self):
        """Length prefixing: m and m || 0x00 authenticate differently."""
        key = bytes(range(16))
        assert cbc_mac(b"abc", key) != cbc_mac(b"abc\x00", key)

    def test_tag_length(self):
        assert len(cbc_mac(b"", bytes(16))) == 16
        assert len(cbc_mac(b"x" * 100, bytes(16))) == 16
