"""The Section 4.1 power model."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.power.interconnect import CommProfile
from repro.power.model import ComponentSpec, PowerModel, savings_percent


def test_tile_dynamic_is_cv2f(power_model):
    """P = U * (V/Vref)^2 * f * n."""
    power = power_model.tile_dynamic_mw(8, 120.0, 0.8)
    assert power == pytest.approx(8 * 120.0 * 0.1 * 0.64)


def test_voltage_derivation_uses_curve(power_model):
    spec = ComponentSpec("x", 8, 120.0)
    assert power_model.component_power(spec).voltage_v == 0.8


def test_pinned_voltage_respected(power_model):
    spec = ComponentSpec("x", 8, 120.0, voltage_v=1.3)
    assert power_model.component_power(spec).voltage_v == 1.3


def test_svd_matches_paper_row(power_model):
    """SVD (1 tile, 500 MHz, no comm): paper 114.27 mW."""
    spec = ComponentSpec("SVD", 1, 500.0)
    power = power_model.component_power(spec)
    assert power.voltage_v == 1.5
    assert power.total_mw == pytest.approx(114.27, rel=0.01)
    assert power.bus_mw == 0.0


def test_pfe_matches_paper_row(power_model):
    """PFE (16 tiles, 310 MHz, no comm): paper 742.68 mW."""
    power = power_model.component_power(ComponentSpec("PFE", 16, 310.0))
    assert power.total_mw == pytest.approx(742.68, rel=0.005)


def test_application_power_sums_components(power_model):
    specs = [
        ComponentSpec("a", 2, 100.0),
        ComponentSpec("b", 4, 200.0),
    ]
    app = power_model.application_power("app", specs)
    assert app.total_mw == pytest.approx(
        sum(c.total_mw for c in app.components)
    )
    assert app.n_tiles == 6


def test_single_voltage_uses_max_rail(power_model):
    specs = [
        ComponentSpec("slow", 2, 60.0),    # 0.7 V
        ComponentSpec("fast", 4, 500.0),   # 1.5 V
    ]
    single = power_model.application_power("app", specs,
                                           single_voltage=True)
    assert all(c.voltage_v == 1.5 for c in single.components)


def test_single_voltage_never_cheaper(power_model):
    specs = [
        ComponentSpec("slow", 2, 60.0, CommProfile(1.0)),
        ComponentSpec("fast", 4, 500.0),
    ]
    multi = power_model.application_power("app", specs)
    single = power_model.application_power("app", specs,
                                           single_voltage=True)
    assert single.total_mw >= multi.total_mw


def test_mixer_savings_match_paper(power_model):
    """DDC mixer: 60% savings from multiple voltages (Table 4)."""
    specs = [
        ComponentSpec("Mixer", 8, 120.0, CommProfile(1.112)),
        ComponentSpec("CFIR", 16, 380.0),  # sets the 1.3 V app rail
    ]
    multi = power_model.application_power("ddc", specs)
    single = power_model.application_power("ddc", specs,
                                           single_voltage=True)
    saved = savings_percent(
        multi.component("Mixer").total_mw,
        single.component("Mixer").total_mw,
    )
    assert saved == pytest.approx(60.0, abs=1.5)


def test_component_lookup_raises_on_unknown(power_model):
    app = power_model.application_power(
        "app", [ComponentSpec("a", 1, 100.0)]
    )
    with pytest.raises(KeyError):
        app.component("missing")


def test_empty_application_rejected(power_model):
    with pytest.raises(ConfigurationError):
        power_model.application_power("empty", [])


def test_invalid_specs_rejected():
    with pytest.raises(ConfigurationError):
        ComponentSpec("x", 0, 100.0)
    with pytest.raises(ConfigurationError):
        ComponentSpec("x", 1, -5.0)


def test_with_leakage_changes_only_leakage(power_model):
    spec = ComponentSpec("x", 4, 200.0)
    base = power_model.component_power(spec)
    leaky = power_model.with_leakage(10.0).component_power(spec)
    assert leaky.dynamic_mw == pytest.approx(base.dynamic_mw)
    assert leaky.leakage_mw == pytest.approx(10.0 * 4 * base.voltage_v)


def test_savings_percent_validation():
    assert savings_percent(50.0, 100.0) == pytest.approx(50.0)
    with pytest.raises(ValueError):
        savings_percent(1.0, 0.0)


@given(
    st.integers(min_value=1, max_value=64),
    st.floats(min_value=10.0, max_value=500.0),
)
def test_power_monotone_in_tiles_and_frequency(n_tiles, frequency):
    model = PowerModel()
    base = model.component_power(ComponentSpec("x", n_tiles, frequency))
    more_tiles = model.component_power(
        ComponentSpec("x", n_tiles + 1, frequency)
    )
    faster = model.component_power(
        ComponentSpec("x", n_tiles, frequency + 50.0)
    )
    assert more_tiles.total_mw > base.total_mw
    assert faster.total_mw >= base.total_mw


@given(st.floats(min_value=10.0, max_value=600.0))
def test_breakdown_sums_to_total(frequency):
    model = PowerModel()
    power = model.component_power(
        ComponentSpec("x", 4, frequency, CommProfile(2.0))
    )
    assert power.total_mw == pytest.approx(
        power.dynamic_mw + power.bus_mw + power.leakage_mw
    )
    assert power.overhead_mw == pytest.approx(
        power.bus_mw + power.leakage_mw
    )
