"""The Section 4.2 U-parameter derivation chain."""

import pytest

from repro.power.tile_power import (
    NEC_SPXK5_MW_PER_MHZ,
    PAPER_U_MW_PER_MHZ,
    UParameterDerivation,
    u_reference_mw_per_mhz,
)


def test_tile_subtotal_is_1_89():
    assert UParameterDerivation().tile_subtotal == pytest.approx(1.89)


def test_synthesized_u_is_2_14():
    assert UParameterDerivation().synthesized_u == pytest.approx(2.14)


def test_custom_u_is_0_642():
    assert UParameterDerivation().custom_u == pytest.approx(0.642)


def test_u_at_one_volt_is_about_0_1():
    derived = u_reference_mw_per_mhz(1.0)
    assert derived == pytest.approx(0.1027, abs=1e-3)
    assert abs(derived - PAPER_U_MW_PER_MHZ) < 0.005


def test_u_scales_quadratically_with_reference_voltage():
    derivation = UParameterDerivation()
    assert derivation.u_at(2.0) == pytest.approx(4.0 * derivation.u_at(1.0))


def test_u_at_synthesis_voltage_recovers_custom_u():
    derivation = UParameterDerivation()
    assert derivation.u_at(2.5) == pytest.approx(derivation.custom_u)


def test_nec_comparison_is_same_order():
    """Section 4.2's sanity anchor: NEC SPXK5 at 0.07 mW/MHz."""
    ours = u_reference_mw_per_mhz(1.0)
    assert 0.5 < ours / NEC_SPXK5_MW_PER_MHZ < 2.0


def test_invalid_reference_voltage():
    with pytest.raises(ValueError):
        UParameterDerivation().u_at(0.0)


def test_memory_dominates_synthesized_power():
    """The 1.75 mW/MHz data memory dwarfs the 0.03 datapath - the
    observation that justifies the custom-logic assumption."""
    derivation = UParameterDerivation()
    assert derivation.memory > 0.8 * derivation.tile_subtotal
