"""Communication profiles."""

import pytest

from repro.power.interconnect import NO_COMMUNICATION, CommProfile


def test_defaults():
    profile = CommProfile()
    assert profile.words_per_cycle == 0.0
    assert profile.span_fraction == 1.0
    assert profile.switching_activity == 0.5


def test_validation():
    with pytest.raises(ValueError):
        CommProfile(words_per_cycle=-1.0)
    with pytest.raises(ValueError):
        CommProfile(span_fraction=1.5)
    with pytest.raises(ValueError):
        CommProfile(switching_activity=2.0)


def test_scaled():
    profile = CommProfile(words_per_cycle=4.0, span_fraction=0.5)
    doubled = profile.scaled(2.0)
    assert doubled.words_per_cycle == 8.0
    assert doubled.span_fraction == 0.5
    with pytest.raises(ValueError):
        profile.scaled(-1.0)


def test_scaled_zero_factor_silences_traffic():
    profile = CommProfile(
        words_per_cycle=4.0, span_fraction=0.5,
        switching_activity=0.3,
    )
    silent = profile.scaled(0.0)
    assert silent.words_per_cycle == 0.0
    # span and switching survive (they describe the wire, not the load)
    assert silent.span_fraction == 0.5
    assert silent.switching_activity == 0.3


def test_scaled_negative_factor_rejected_before_any_clamping():
    with pytest.raises(ValueError, match="non-negative"):
        CommProfile(1.0).scaled(-0.0001, span_fraction=0.5)


def test_scaled_span_override_clamped():
    profile = CommProfile(words_per_cycle=1.0, span_fraction=0.5)
    # measured spans can drift past [0, 1] through float accumulation
    assert profile.scaled(1.0, span_fraction=1.2).span_fraction == 1.0
    assert profile.scaled(1.0, span_fraction=-0.1).span_fraction == 0.0
    inside = profile.scaled(2.0, span_fraction=0.25)
    assert inside.span_fraction == 0.25
    assert inside.words_per_cycle == 2.0
    # no override keeps the original span
    assert profile.scaled(3.0).span_fraction == 0.5


def test_no_communication_constant():
    assert NO_COMMUNICATION.words_per_cycle == 0.0
