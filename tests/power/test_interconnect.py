"""Communication profiles."""

import pytest

from repro.power.interconnect import NO_COMMUNICATION, CommProfile


def test_defaults():
    profile = CommProfile()
    assert profile.words_per_cycle == 0.0
    assert profile.span_fraction == 1.0
    assert profile.switching_activity == 0.5


def test_validation():
    with pytest.raises(ValueError):
        CommProfile(words_per_cycle=-1.0)
    with pytest.raises(ValueError):
        CommProfile(span_fraction=1.5)
    with pytest.raises(ValueError):
        CommProfile(switching_activity=2.0)


def test_scaled():
    profile = CommProfile(words_per_cycle=4.0, span_fraction=0.5)
    doubled = profile.scaled(2.0)
    assert doubled.words_per_cycle == 8.0
    assert doubled.span_fraction == 0.5
    with pytest.raises(ValueError):
        profile.scaled(-1.0)


def test_no_communication_constant():
    assert NO_COMMUNICATION.words_per_cycle == 0.0
