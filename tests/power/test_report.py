"""Power report rendering."""

from repro.power.model import ComponentSpec, PowerModel
from repro.power.report import (
    format_application_power,
    format_component_rows,
    render_table,
)


def _apps():
    model = PowerModel()
    specs = [
        ComponentSpec("alpha", 2, 100.0),
        ComponentSpec("beta", 4, 400.0),
    ]
    multi = model.application_power("app", specs)
    single = model.application_power("app", specs, single_voltage=True)
    return multi, single


def test_rows_include_total():
    multi, single = _apps()
    rows = format_component_rows(multi, single)
    assert rows[-1][0] == "TOTAL"
    assert len(rows) == 3


def test_rows_savings_are_percentages():
    multi, single = _apps()
    for row in format_component_rows(multi, single):
        assert 0.0 <= row[6] <= 100.0


def test_format_application_power_mentions_components():
    multi, single = _apps()
    text = format_application_power(multi, single)
    assert "alpha" in text
    assert "beta" in text
    assert "TOTAL" in text


def test_render_table_alignment():
    text = render_table(("A", "B"), [("x", "1"), ("longer", "2")])
    lines = text.splitlines()
    assert len(lines) == 4
    assert lines[0].startswith("A")
    assert "longer" in lines[3]


def test_render_table_explicit_widths():
    text = render_table(
        ("A", "B"), [("x", "y")], widths=(10, 4)
    )
    header, rule, row = text.splitlines()
    assert header == "A".ljust(10) + "B".ljust(4)
    assert rule == "-" * 9 + " " + "-" * 3 + " "
    assert row == "x".ljust(10) + "y".ljust(4)


def test_render_table_column_width_tracks_widest_cell():
    text = render_table(("H", "I"), [("wide-cell", "1")])
    header = text.splitlines()[0]
    # the second header starts after the widest first-column cell
    assert header.index("I") == len("wide-cell") + 2


def test_total_row_blanks_frequency_and_voltage():
    """The TOTAL row has no single MHz/V; the renderer must print
    blanks there, not 'nan'."""
    multi, single = _apps()
    text = format_application_power(multi, single)
    total_line = [
        line for line in text.splitlines() if line.startswith("TOTAL")
    ][0]
    assert "nan" not in total_line
    assert "%" in total_line


def test_format_application_power_header_optional():
    multi, single = _apps()
    with_header = format_application_power(multi, single)
    without = format_application_power(multi, single, header=False)
    assert with_header.splitlines()[0].startswith("Algorithm")
    assert not without.splitlines()[0].startswith("Algorithm")
    assert len(with_header.splitlines()) \
        == len(without.splitlines()) + 1


def test_component_rows_align_multi_and_single_voltages():
    multi, single = _apps()
    rows = format_component_rows(multi, single)
    for name, tiles, mhz, volts, mw, single_mw, saved in rows:
        assert single_mw >= mw  # single-voltage never cheaper
