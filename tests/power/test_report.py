"""Power report rendering."""

from repro.power.model import ComponentSpec, PowerModel
from repro.power.report import (
    format_application_power,
    format_component_rows,
    render_table,
)


def _apps():
    model = PowerModel()
    specs = [
        ComponentSpec("alpha", 2, 100.0),
        ComponentSpec("beta", 4, 400.0),
    ]
    multi = model.application_power("app", specs)
    single = model.application_power("app", specs, single_voltage=True)
    return multi, single


def test_rows_include_total():
    multi, single = _apps()
    rows = format_component_rows(multi, single)
    assert rows[-1][0] == "TOTAL"
    assert len(rows) == 3


def test_rows_savings_are_percentages():
    multi, single = _apps()
    for row in format_component_rows(multi, single):
        assert 0.0 <= row[6] <= 100.0


def test_format_application_power_mentions_components():
    multi, single = _apps()
    text = format_application_power(multi, single)
    assert "alpha" in text
    assert "beta" in text
    assert "TOTAL" in text


def test_render_table_alignment():
    text = render_table(("A", "B"), [("x", "1"), ("longer", "2")])
    lines = text.splitlines()
    assert len(lines) == 4
    assert lines[0].startswith("A")
    assert "longer" in lines[3]
