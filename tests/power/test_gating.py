"""Gated-rail energy accounting: retention charge, wake pricing."""

import pytest

from repro.control.transitions import TransitionModel
from repro.errors import ConfigurationError
from repro.power.measured import EnergyLedger
from repro.power.model import ComponentPower

POWER = ComponentPower(
    name="col1",
    n_tiles=4,
    frequency_mhz=64.0,
    voltage_v=0.7,
    dynamic_mw=12.0,
    bus_mw=3.0,
    leakage_mw=2.0,
)


class TestChargeGated:
    def test_charges_only_retained_leakage(self):
        ledger = EnergyLedger()
        entry = ledger.charge_gated(
            POWER, 10.0, retained_leakage_fraction=0.05
        )
        assert entry.gated is True
        assert entry.active_nj == 0.0
        assert entry.idle_nj == 0.0
        assert entry.bus_nj == 0.0
        assert entry.leakage_nj == pytest.approx(2.0 * 10.0 * 0.05)
        assert entry.total_nj == pytest.approx(1.0)

    def test_gated_rate_is_far_below_the_ungated_window(self):
        ledger = EnergyLedger()
        gated = ledger.charge_gated(POWER, 10.0)
        ungated = ledger.charge(POWER, 10.0, busy_fraction=0.0)
        assert ungated.gated is False
        assert gated.total_nj < 0.01 * ungated.total_nj

    def test_gated_totals_aggregate(self):
        ledger = EnergyLedger()
        ledger.charge(POWER, 5.0)
        ledger.charge_gated(POWER, 10.0, retained_leakage_fraction=0.1)
        ledger.charge_gated(POWER, 20.0, retained_leakage_fraction=0.1)
        assert ledger.gated_time_us == pytest.approx(30.0)
        assert ledger.gated_nj == pytest.approx(2.0 * 30.0 * 0.1)
        # Conservation across mixed windows: total equals the sum of
        # each window's charged power x time.
        expected = POWER.total_mw * 5.0 + 2.0 * 30.0 * 0.1
        assert ledger.total_nj == pytest.approx(expected, rel=1e-12)

    def test_rejects_negative_time(self):
        with pytest.raises(ConfigurationError):
            EnergyLedger().charge_gated(POWER, -1.0)

    def test_rejects_out_of_range_retention(self):
        with pytest.raises(ConfigurationError):
            EnergyLedger().charge_gated(
                POWER, 1.0, retained_leakage_fraction=1.5
            )


class TestWakeEnergy:
    def test_wake_recharges_the_rail_from_zero(self):
        model = TransitionModel()
        # Waking into V equals a rail transition from 0 V to V.
        assert model.wake_energy_nj(1.0, 4) == pytest.approx(
            model.transition_energy_nj(0.0, 1.0, 4)
        )

    def test_scales_with_voltage_squared_and_tiles(self):
        model = TransitionModel()
        base = model.wake_energy_nj(0.7, 4)
        assert model.wake_energy_nj(1.4, 4) == pytest.approx(4 * base)
        assert model.wake_energy_nj(0.7, 8) == pytest.approx(2 * base)

    def test_rejects_negative_voltage(self):
        with pytest.raises(ConfigurationError):
            TransitionModel().wake_energy_nj(-0.1, 4)

    def test_wake_charge_lands_in_the_ledger_as_transition(self):
        model = TransitionModel()
        ledger = EnergyLedger()
        ledger.charge_gated(POWER, 10.0)
        wake = model.wake_energy_nj(0.7, 4)
        ledger.charge_transition("wake col1 t1024", wake)
        assert ledger.transition_nj == pytest.approx(wake)
        assert ledger.total_nj == pytest.approx(
            ledger.gated_nj + wake
        )
