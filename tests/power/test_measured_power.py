"""Measured-energy pipeline: activity extraction, adapters, ledger."""

import pytest

from repro.errors import ConfigurationError
from repro.kernels import (
    build_cic_chain_kernel,
    build_mixer_stream_kernel,
    run_kernel,
)
from repro.power.measured import (
    ActivityProfile,
    EnergyLedger,
    activity_from_stats,
    comm_profile_from_activity,
    spec_from_activity,
    verify_conservation,
)
from repro.power.model import PowerModel
from repro.sim.simulator import run_single_column
from repro.isa.assembler import assemble


@pytest.fixture(scope="module")
def chain_stats():
    return run_kernel(build_cic_chain_kernel()).stats


# ----------------------------------------------------------------------
# ActivityProfile extraction
# ----------------------------------------------------------------------
def test_activity_counts_match_stats(chain_stats):
    activity = activity_from_stats(chain_stats, name="chain")
    column = chain_stats.column(0)
    assert activity.n_tiles == 4
    assert activity.bus_words == column.bus_words
    assert activity.words_per_cycle == pytest.approx(
        column.bus_words_per_cycle
    )
    assert activity.busy_fraction == pytest.approx(column.issue_rate)
    assert activity.idle_fraction == pytest.approx(
        column.idle_fraction
    )
    assert activity.busy_fraction + activity.idle_fraction \
        == pytest.approx(1.0)


def test_span_measured_from_segment_usage(chain_stats):
    """Neighbour hops on the segmented bus charge less than the full
    run - the measured span must reflect that (Section 2.3)."""
    activity = activity_from_stats(chain_stats, name="chain")
    assert 0.2 <= activity.span_fraction < 1.0


def test_port_streaming_span_is_partial():
    stats = run_kernel(build_mixer_stream_kernel()).stats
    activity = activity_from_stats(stats, name="mixer")
    # tile i -> port spans (5-i)/5 of the bus; the mean over four
    # tiles is 0.7 exactly.
    assert activity.span_fraction == pytest.approx(0.7, abs=0.01)


def test_compute_only_run_defaults_to_full_span():
    _, stats = run_single_column(assemble("movi r0, 1\nhalt"))
    activity = activity_from_stats(stats, name="compute")
    assert activity.bus_words == 0
    assert activity.span_fraction == 1.0
    assert activity.words_per_cycle == 0.0


def test_domain_must_share_one_clock():
    from repro.arch.chip import Chip
    from repro.arch.config import ChipConfig, ColumnConfig
    from repro.sim.simulator import Simulator

    chip = Chip(
        ChipConfig(
            reference_mhz=400.0,
            columns=(ColumnConfig(divider=2), ColumnConfig(divider=4)),
        ),
        programs=[assemble("halt"), assemble("halt")],
    )
    stats = Simulator(chip).run()
    with pytest.raises(ConfigurationError, match="several clocks"):
        activity_from_stats(stats, columns=[0, 1], name="mixed")
    # one-column domains extract fine
    assert activity_from_stats(stats, columns=[1]).frequency_mhz \
        == 100.0


def test_scaled_to_aggregates_traffic(chain_stats):
    activity = activity_from_stats(chain_stats, name="chain")
    doubled = activity.scaled_to(8)
    assert doubled.n_tiles == 8
    assert doubled.words_per_cycle == pytest.approx(
        2 * activity.words_per_cycle
    )
    # intensive quantities unchanged
    assert doubled.busy_fraction == activity.busy_fraction
    assert doubled.span_fraction == activity.span_fraction
    with pytest.raises(ConfigurationError):
        activity.scaled_to(0)


# ----------------------------------------------------------------------
# adapters into the Section 4.1 model
# ----------------------------------------------------------------------
def test_spec_from_activity_at_operating_point(chain_stats):
    activity = activity_from_stats(chain_stats, name="chain")
    spec = spec_from_activity(
        activity, name="CIC Integrator", n_tiles=8,
        frequency_mhz=200.0,
    )
    assert spec.n_tiles == 8
    assert spec.frequency_mhz == 200.0
    assert spec.comm.words_per_cycle == pytest.approx(
        2 * activity.words_per_cycle
    )
    power = PowerModel().component_power(spec)
    assert power.bus_mw > 0.0


def test_comm_profile_span_clamped():
    activity = ActivityProfile(
        name="x", n_tiles=4, frequency_mhz=100.0, tile_cycles=10,
        issued=10, bus_words=5, words_per_cycle=0.5,
        span_fraction=1.2,  # drifted past physical range
        busy_fraction=1.0, idle_fraction=0.0,
    )
    assert comm_profile_from_activity(activity).span_fraction == 1.0


# ----------------------------------------------------------------------
# EnergyLedger
# ----------------------------------------------------------------------
@pytest.fixture()
def application_power():
    model = PowerModel()
    return model.application_power("app", [
        spec_from_activity(ActivityProfile(
            name="a", n_tiles=8, frequency_mhz=200.0, tile_cycles=100,
            issued=90, bus_words=50, words_per_cycle=0.5,
            span_fraction=0.5, busy_fraction=0.9, idle_fraction=0.1,
        )),
        spec_from_activity(ActivityProfile(
            name="b", n_tiles=4, frequency_mhz=100.0, tile_cycles=100,
            issued=100, bus_words=0, words_per_cycle=0.0,
            span_fraction=1.0, busy_fraction=1.0, idle_fraction=0.0,
        )),
    ])


def test_ledger_conserves_energy(application_power):
    ledger = EnergyLedger.from_application(application_power, 2.5)
    assert ledger.total_nj == pytest.approx(
        application_power.total_mw * 2.5
    )
    assert verify_conservation(ledger, application_power, 2.5) \
        < 1e-12


def test_ledger_splits_idle_energy(application_power):
    activities = {
        "a": ActivityProfile(
            name="a", n_tiles=8, frequency_mhz=200.0, tile_cycles=100,
            issued=90, bus_words=50, words_per_cycle=0.5,
            span_fraction=0.5, busy_fraction=0.9, idle_fraction=0.1,
        ),
    }
    ledger = EnergyLedger.from_application(
        application_power, 1.0, activities
    )
    domain = ledger.domain("a")
    assert domain.busy_fraction == pytest.approx(0.9)
    assert domain.idle_nj == pytest.approx(0.1 * domain.dynamic_nj)
    assert domain.gated_total_nj == pytest.approx(
        domain.total_nj - domain.idle_nj
    )
    # the idle split never breaks conservation
    assert ledger.total_nj == pytest.approx(
        application_power.total_mw * 1.0
    )
    # component without an activity is charged fully busy
    assert ledger.domain("b").idle_nj == 0.0


def test_ledger_charge_validation(application_power):
    ledger = EnergyLedger()
    with pytest.raises(ConfigurationError):
        ledger.charge(
            application_power.components[0], time_us=-1.0
        )


def test_conservation_violation_raises(application_power):
    ledger = EnergyLedger.from_application(application_power, 1.0)
    with pytest.raises(AssertionError, match="ledger energy"):
        verify_conservation(ledger, application_power, 2.0)


def test_ledger_attaches_to_stats(chain_stats, application_power):
    ledger = EnergyLedger.from_application(application_power, 1.0)
    annotated = ledger.attach(chain_stats)
    assert annotated.domain_energy == ledger.domains
    assert chain_stats.domain_energy == ()  # original untouched
    assert annotated.columns == chain_stats.columns
