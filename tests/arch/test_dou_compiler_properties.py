"""Property tests for the DOU schedule compiler."""

from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.arch.buffers import CommBuffer
from repro.arch.bus import SegmentedBus
from repro.arch.dou import Dou, DouProgram, DouState
from repro.arch.dou_compiler import Transfer, compile_cycle


def _endpoints():
    return st.lists(
        st.integers(min_value=0, max_value=4),
        min_size=2, max_size=3, unique=True,
    )


def _state_from_cycle(cycle) -> DouState:
    return DouState(
        closed=cycle.closed,
        drives=cycle.drives,
        captures=cycle.captures,
    )


@given(st.lists(_endpoints(), min_size=1, max_size=6))
@settings(max_examples=60, deadline=None)
def test_compiled_cycles_deliver_every_transfer(endpoint_lists):
    """Whatever transfer set the compiler accepts, executing the
    compiled cycle delivers a word to every destination with no bus
    conflicts - even in strict mode."""
    transfers = [
        Transfer(src=endpoints[0], dsts=tuple(endpoints[1:]))
        for endpoints in endpoint_lists
    ]
    try:
        cycle = compile_cycle(transfers)
    except ConfigurationError:
        return  # more overlapping transfers than splits - legal reject
    program = DouProgram(states=(_state_from_cycle(cycle),))
    bus = SegmentedBus("bus", n_positions=5, n_splits=8)
    writes = {i: CommBuffer(f"w{i}", capacity=16) for i in range(5)}
    reads = {i: CommBuffer(f"r{i}", capacity=16) for i in range(5)}
    dou = Dou(program, bus, writes, reads, strict=True)
    for transfer in transfers:
        writes[transfer.src].push(1000 + transfer.src)
    moved = dou.step()
    assert moved == sum(len(t.dsts) for t in transfers)
    for transfer in transfers:
        for dst in transfer.dsts:
            assert not reads[dst].is_empty


@given(src=st.integers(0, 4), dst=st.integers(0, 4))
@settings(max_examples=30, deadline=None)
def test_single_transfer_closes_exactly_its_path(src, dst):
    if src == dst:
        return
    cycle = compile_cycle([Transfer(src=src, dsts=(dst,))])
    low, high = min(src, dst), max(src, dst)
    split = cycle.drives[0][1]
    assert cycle.closed == frozenset(
        (split, boundary) for boundary in range(low, high)
    )


@given(st.lists(_endpoints(), min_size=2, max_size=8))
@settings(max_examples=40, deadline=None)
def test_no_two_overlapping_transfers_share_a_split(endpoint_lists):
    transfers = [
        Transfer(src=endpoints[0], dsts=tuple(endpoints[1:]))
        for endpoints in endpoint_lists
    ]
    try:
        cycle = compile_cycle(transfers)
    except ConfigurationError:
        return
    placements = list(zip(transfers, (s for _, s in cycle.drives)))
    for i, (transfer_a, split_a) in enumerate(placements):
        for transfer_b, split_b in placements[i + 1:]:
            if split_a != split_b:
                continue
            low_a, high_a = transfer_a.segment_range
            low_b, high_b = transfer_b.segment_range
            assert high_a < low_b or high_b < low_a
