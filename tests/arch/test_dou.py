"""DOU state machine (Figures 3 and 4)."""

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.arch.buffers import CommBuffer
from repro.arch.bus import SegmentedBus
from repro.arch.dou import (
    Dou,
    DouCycle,
    DouProgram,
    DouState,
    linear_schedule,
)


def _rig(program, strict=True, n_positions=5):
    bus = SegmentedBus("bus", n_positions=n_positions, n_splits=8)
    writes = {i: CommBuffer(f"w{i}") for i in range(n_positions)}
    reads = {i: CommBuffer(f"r{i}") for i in range(n_positions)}
    dou = Dou(program, bus, writes, reads, strict=strict)
    return dou, writes, reads


def _transfer_state(**kwargs):
    return DouState(
        closed=frozenset({(0, 0)}),
        drives=((0, 0),),
        captures=((1, 0),),
        **kwargs,
    )


def test_program_validation():
    with pytest.raises(ConfigurationError):
        DouProgram(states=())
    with pytest.raises(ConfigurationError):
        DouProgram(states=(DouState(next_otherwise=5),))
    with pytest.raises(ConfigurationError):
        DouProgram(states=(DouState(counter=0),))  # no counters declared
    with pytest.raises(ConfigurationError):
        # drive with no capture can never retire
        DouProgram(states=(DouState(drives=((0, 0),)),))
    with pytest.raises(ConfigurationError):
        DouProgram(states=tuple(DouState() for _ in range(129)))


def test_idle_program_moves_nothing():
    dou, writes, reads = _rig(DouProgram.idle())
    writes[0].push(1)
    for _ in range(5):
        assert dou.step() == 0
    assert reads[1].is_empty


def test_simple_transfer():
    program = DouProgram(states=(_transfer_state(),))
    dou, writes, reads = _rig(program)
    writes[0].push(42)
    assert dou.step() == 1
    assert reads[1].pop() == 42


def test_strict_underflow_raises():
    program = DouProgram(states=(_transfer_state(),))
    dou, writes, reads = _rig(program, strict=True)
    with pytest.raises(SimulationError):
        dou.step()


def test_permissive_retries_until_data_arrives():
    program = DouProgram(states=(_transfer_state(),))
    dou, writes, reads = _rig(program, strict=False)
    assert dou.step() == 0
    writes[0].push(7)
    assert dou.step() == 1
    assert reads[1].pop() == 7


def test_permissive_blocks_on_full_destination():
    program = DouProgram(states=(_transfer_state(),))
    dou, writes, reads = _rig(program, strict=False)
    for _ in range(reads[1].capacity):
        reads[1].push(0)
    writes[0].push(9)
    assert dou.step() == 0
    assert not writes[0].is_empty  # the word stays queued
    reads[1].pop()
    assert dou.step() == 1


def test_counter_semantics_match_figure3():
    """Counter != 0: decrement, go NXTSTATE1; == 0: reset, NXTSTATE0."""
    states = (
        DouState(counter=0, next_if_zero=1, next_otherwise=0),
        DouState(next_otherwise=1),  # park
    )
    program = DouProgram(states=states, counter_initial=(2,))
    dou, _, _ = _rig(program)
    assert dou.state_index == 0
    dou.step()  # counter 2 -> 1, stay
    assert dou.state_index == 0
    dou.step()  # counter 1 -> 0, stay
    assert dou.state_index == 0
    dou.step()  # counter == 0: reset to 2, exit to park
    assert dou.state_index == 1
    assert dou.counters[0] == 2


def test_linear_schedule_repeats_forever():
    cycle = DouCycle(closed=frozenset({(0, 0)}), drives=((0, 0),),
                     captures=((1, 0),))
    program = linear_schedule([cycle], repeat=None)
    dou, writes, reads = _rig(program, strict=False)
    for value in range(5):
        writes[0].push(value)
        dou.step()
    assert [reads[1].pop() for _ in range(5)] == [0, 1, 2, 3, 4]


def test_linear_schedule_repeat_count_then_parks():
    cycle = DouCycle(closed=frozenset({(0, 0)}), drives=((0, 0),),
                     captures=((1, 0),))
    program = linear_schedule([cycle], repeat=3)
    dou, writes, reads = _rig(program, strict=False)
    for value in range(10):
        writes[0].push(value)
        dou.step()
    # exactly 3 transfers happened, then the DOU parked
    assert len(reads[1]) == 3


def test_linear_schedule_validation():
    with pytest.raises(ConfigurationError):
        linear_schedule([])
    with pytest.raises(ConfigurationError):
        linear_schedule([DouCycle()], repeat=0)


def test_broadcast_counts_each_capture():
    state = DouState(
        closed=frozenset((0, b) for b in range(4)),
        drives=((0, 0),),
        captures=((1, 0), (2, 0), (3, 0)),
    )
    program = DouProgram(states=(state,))
    dou, writes, reads = _rig(program)
    writes[0].push(5)
    assert dou.step() == 3
    for position in (1, 2, 3):
        assert reads[position].pop() == 5
    assert writes[0].is_empty  # broadcast pops the source once
