"""Compiled per-state DOU plans: eligibility, equivalence, quiescence.

The fast path of ``Dou.step`` must be byte-for-byte indistinguishable
from the generic interpreter on every counter and every buffer, and
must refuse to compile states whose semantics need the interpreter
(structural hazards, undriven captures, missing ports).  The
quiescence analysis underpinning engine demotion is checked for
closure and monotonicity.
"""

import pytest

from repro.errors import SimulationError
from repro.arch.buffers import CommBuffer
from repro.arch.bus import SegmentedBus
from repro.arch.dou import (
    Dou,
    DouCycle,
    DouProgram,
    DouState,
    linear_schedule,
)
from repro.arch.dou_compiler import (
    Transfer,
    broadcast_schedule,
    chain_schedule,
    compile_schedule,
    exchange_schedule,
)


def _rig(program, strict=True, n_positions=5):
    bus = SegmentedBus("bus", n_positions=n_positions, n_splits=8)
    writes = {i: CommBuffer(f"w{i}") for i in range(n_positions)}
    reads = {i: CommBuffer(f"r{i}") for i in range(n_positions)}
    dou = Dou(program, bus, writes, reads, strict=strict)
    return dou, writes, reads


def _transfer_state(**kwargs):
    return DouState(
        closed=frozenset({(0, 0)}),
        drives=((0, 0),),
        captures=((1, 0),),
        **kwargs,
    )


# ----------------------------------------------------------------------
# plan eligibility
# ----------------------------------------------------------------------
def test_simple_transfer_state_compiles():
    dou, _, _ = _rig(DouProgram(states=(_transfer_state(),)))
    plan = dou._plans[0]
    assert plan is not None
    assert plan.n_drives == 1 and plan.n_captures == 1
    assert plan.spans == (2 / 5,)


def test_idle_state_compiles_to_trivial_plan():
    dou, _, _ = _rig(DouProgram.idle())
    plan = dou._plans[0]
    assert plan is not None
    assert plan.n_drives == 0 and plan.n_captures == 0


def test_undriven_capture_state_stays_interpreted():
    # Capture on split 1, which nothing drives: permissive mode skips
    # it, strict mode raises - both are the interpreter's business.
    state = DouState(
        closed=frozenset({(0, 0)}),
        drives=((0, 0),),
        captures=((1, 0), (2, 1)),
    )
    dou, _, _ = _rig(DouProgram(states=(state,)))
    assert dou._plans[0] is None


def test_structural_hazard_state_stays_interpreted():
    # Two drivers on one fused segment always raises at run time.
    state = DouState(
        closed=frozenset({(0, 0), (0, 1)}),
        drives=((0, 0), (1, 0)),
        captures=((2, 0),),
    )
    dou, writes, _ = _rig(DouProgram(states=(state,)))
    assert dou._plans[0] is None
    writes[0].push(1)
    writes[1].push(2)
    with pytest.raises(SimulationError, match="conflict"):
        dou.step()


def test_missing_port_state_stays_interpreted():
    program = DouProgram(states=(_transfer_state(),))
    bus = SegmentedBus("bus", n_positions=5, n_splits=8)
    writes = {}  # no write port at position 0
    reads = {i: CommBuffer(f"r{i}") for i in range(5)}
    dou = Dou(program, bus, writes, reads, strict=True)
    assert dou._plans[0] is None


def test_compiler_emitted_schedules_all_compile():
    for program in (
        chain_schedule(),
        broadcast_schedule(),
        exchange_schedule(),
        compile_schedule([[Transfer(src=0, dsts=(4,))]]),
    ):
        dou, _, _ = _rig(program, strict=False)
        transfer_states = [
            i for i, s in enumerate(program.states) if s.drives
        ]
        assert transfer_states
        for index in transfer_states:
            assert dou._plans[index] is not None, (
                f"{program.name}: state {index} did not compile"
            )


# ----------------------------------------------------------------------
# fast path == interpreter, counter for counter
# ----------------------------------------------------------------------
def _snapshot(dou, writes, reads):
    return (
        dou.state_index, tuple(dou.counters), dou.cycles,
        dou.words_moved, dou.words_retired, dou.span_words,
        dou.blocked_cycles, dou.bus.words_moved,
        dou.bus.cycles_with_traffic,
        tuple(tuple(b._words) for b in writes.values()),
        tuple(tuple(b._words) for b in reads.values()),
        tuple(b.total_pushed for b in writes.values()),
        tuple(b.total_popped for b in writes.values()),
        tuple(b.total_pushed for b in reads.values()),
    )


def _differential_run(program, feed, strict, steps=64):
    """Step a compiled rig and a plans-disabled twin in lockstep."""
    fast, fast_w, fast_r = _rig(program, strict=strict)
    slow, slow_w, slow_r = _rig(program, strict=strict)
    slow._plans = (None,) * len(program.states)
    for step in range(steps):
        for position, value in feed(step):
            # Both rigs are asserted identical, so fullness agrees.
            if not fast_w[position].is_full:
                fast_w[position].push(value)
                slow_w[position].push(value)
        # Consumers drain sporadically so full/empty phases alternate.
        if step % 7 == 3:
            for position in range(5):
                if not fast_r[position].is_empty:
                    assert fast_r[position].pop() == \
                        slow_r[position].pop()
        moved_fast = fast.step()
        moved_slow = slow.step()
        assert moved_fast == moved_slow, f"step {step}"
        assert _snapshot(fast, fast_w, fast_r) == \
            _snapshot(slow, slow_w, slow_r), f"step {step}"


def test_fast_path_matches_interpreter_through_starvation():
    """Permissive streaming: starved, transferring, and full phases."""
    program = broadcast_schedule()

    def feed(step):
        # Bursty: several words at once, then droughts.
        if step % 11 == 0:
            return [(0, step), (0, step + 1)]
        return []

    _differential_run(program, feed, strict=False)


def test_fast_path_matches_interpreter_on_chain():
    program = chain_schedule()

    def feed(step):
        if step % 3 == 0:
            return [(4, step), (0, step), (1, step), (2, step),
                    (3, step)]
        return []

    _differential_run(program, feed, strict=False)


def test_fast_path_matches_interpreter_with_counters():
    """repeat=k loops exercise the compiled counter transition."""
    cycle = DouCycle(closed=frozenset({(0, 0)}), drives=((0, 0),),
                     captures=((1, 0),))
    program = linear_schedule([cycle], repeat=5)

    def feed(step):
        return [(0, step)] if step % 2 == 0 else []

    _differential_run(program, feed, strict=False, steps=32)


def test_fast_path_strict_errors_match_interpreter():
    program = DouProgram(states=(_transfer_state(),))
    fast, fast_w, _ = _rig(program, strict=True)
    slow, slow_w, _ = _rig(program, strict=True)
    slow._plans = (None,) * len(program.states)
    with pytest.raises(SimulationError, match="underflow"):
        fast.step()
    with pytest.raises(SimulationError, match="underflow"):
        slow.step()


def test_fast_path_full_destination_matches_interpreter():
    program = DouProgram(states=(_transfer_state(),))
    fast, fast_w, fast_r = _rig(program, strict=False)
    slow, slow_w, slow_r = _rig(program, strict=False)
    slow._plans = (None,) * len(program.states)
    for rig_w, rig_r in ((fast_w, fast_r), (slow_w, slow_r)):
        for _ in range(rig_r[1].capacity):
            rig_r[1].push(0)
        rig_w[0].push(9)
    assert fast.step() == slow.step() == 0
    assert fast.blocked_cycles == slow.blocked_cycles == 1
    fast_r[1].pop(), slow_r[1].pop()
    assert fast.step() == slow.step() == 1


# ----------------------------------------------------------------------
# quiescence analysis
# ----------------------------------------------------------------------
def test_quiescent_states_of_repeat_schedule():
    cycle = DouCycle(closed=frozenset({(0, 0)}), drives=((0, 0),),
                     captures=((1, 0),))
    program = linear_schedule([cycle], repeat=3)
    # State 0 transfers; state 1 is the idle park.
    assert program.quiescent_states == frozenset({1})
    assert not program.is_inert()


def test_quiescent_states_ignore_unreachable_edges():
    # State 1 tests no counter, so its next_if_zero edge back to the
    # transferring state 0 can never be taken: it is still quiescent.
    states = (
        DouState(closed=frozenset({(0, 0)}), drives=((0, 0),),
                 captures=((1, 0),), next_otherwise=1),
        DouState(next_if_zero=0, next_otherwise=1),
    )
    program = DouProgram(states=states)
    assert program.quiescent_states == frozenset({1})


def test_inert_program_is_fully_quiescent():
    program = DouProgram.idle()
    assert program.is_inert()
    assert 0 in program.quiescent_states


def test_fast_forward_allowed_only_in_quiescent_orbit():
    cycle = DouCycle(closed=frozenset({(0, 0)}), drives=((0, 0),),
                     captures=((1, 0),))
    program = linear_schedule([cycle], repeat=2)
    dou, writes, _ = _rig(program, strict=False)
    assert not dou.is_quiescent()
    with pytest.raises(SimulationError, match="fast_forward"):
        dou.fast_forward(10)
    for _ in range(2):  # exhaust the repeats (starved cycles count)
        dou.step()
    assert dou.state_index == 1 and dou.is_quiescent()
    before = dou.cycles
    dou.fast_forward(10)
    assert dou.cycles == before + 10
    assert dou.words_moved == 0


def test_starved_self_loop_and_fast_stall():
    program = broadcast_schedule()  # single-state permissive loop
    dou, writes, reads = _rig(program, strict=False)
    assert dou.starved_self_loop()
    dou.fast_stall(7)
    assert dou.cycles == 7 and dou.blocked_cycles == 7
    writes[0].push(1)
    assert not dou.starved_self_loop()  # a word arrived
    dou.step()
    assert dou.words_retired == 1
    assert dou.starved_self_loop()  # drained again


def test_strict_schedules_never_stall_batch():
    program = broadcast_schedule()
    dou, _, _ = _rig(program, strict=True)
    # Strict starvation is an error, not a stall: batching must be off.
    assert not dou.starved_self_loop()
