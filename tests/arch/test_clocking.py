"""Clock tree: rationally related divided clocks."""

import pytest

from repro.errors import ConfigurationError
from repro.arch.clocking import ClockTree


def test_frequencies():
    tree = ClockTree(600.0, [1, 2, 3])
    assert tree.frequency_mhz(0) == 600.0
    assert tree.frequency_mhz(1) == 300.0
    assert tree.frequency_mhz(2) == 200.0


def test_tick_pattern():
    tree = ClockTree(100.0, [1, 2, 4])
    ticks = [
        [tree.ticks(col, t) for t in range(8)] for col in range(3)
    ]
    assert ticks[0] == [True] * 8
    assert ticks[1] == [True, False] * 4
    assert ticks[2] == [True, False, False, False] * 2


def test_hyperperiod():
    assert ClockTree(100.0, [2, 3]).hyperperiod() == 6
    assert ClockTree(100.0, [1, 1]).hyperperiod() == 1
    assert ClockTree(100.0, [4, 6, 10]).hyperperiod() == 60


def test_rational_ratios():
    tree = ClockTree(600.0, [2, 3])
    assert tree.ratio(0, 1) == (3, 2)  # f0 : f1 = 300 : 200
    assert tree.ratio(1, 0) == (2, 3)


def test_validation():
    with pytest.raises(ConfigurationError):
        ClockTree(0.0, [1])
    with pytest.raises(ConfigurationError):
        ClockTree(100.0, [])
    with pytest.raises(ConfigurationError):
        ClockTree(100.0, [0])
    with pytest.raises(ConfigurationError):
        ClockTree(100.0, [1.5])


def test_ddc_example_dividers():
    """Section 2's DDC: mixer 120 MHz, integrator 200 MHz off 600."""
    tree = ClockTree(600.0, [5, 3])
    assert tree.frequency_mhz(0) == pytest.approx(120.0)
    assert tree.frequency_mhz(1) == pytest.approx(200.0)
    assert tree.hyperperiod() == 15
