"""Clock tree: rationally related divided clocks."""

import pytest

from repro.errors import ConfigurationError
from repro.arch.clocking import ClockTree


def test_frequencies():
    tree = ClockTree(600.0, [1, 2, 3])
    assert tree.frequency_mhz(0) == 600.0
    assert tree.frequency_mhz(1) == 300.0
    assert tree.frequency_mhz(2) == 200.0


def test_tick_pattern():
    tree = ClockTree(100.0, [1, 2, 4])
    ticks = [
        [tree.ticks(col, t) for t in range(8)] for col in range(3)
    ]
    assert ticks[0] == [True] * 8
    assert ticks[1] == [True, False] * 4
    assert ticks[2] == [True, False, False, False] * 2


def test_hyperperiod():
    assert ClockTree(100.0, [2, 3]).hyperperiod() == 6
    assert ClockTree(100.0, [1, 1]).hyperperiod() == 1
    assert ClockTree(100.0, [4, 6, 10]).hyperperiod() == 60


def test_rational_ratios():
    tree = ClockTree(600.0, [2, 3])
    assert tree.ratio(0, 1) == (3, 2)  # f0 : f1 = 300 : 200
    assert tree.ratio(1, 0) == (2, 3)


def test_validation():
    with pytest.raises(ConfigurationError):
        ClockTree(0.0, [1])
    with pytest.raises(ConfigurationError):
        ClockTree(100.0, [])
    with pytest.raises(ConfigurationError):
        ClockTree(100.0, [0])
    with pytest.raises(ConfigurationError):
        ClockTree(100.0, [1.5])


def test_edge_schedule_single_unit_divider():
    """{1}: every tick is an edge of the one column."""
    tree = ClockTree(100.0, [1])
    assert tree.edge_schedule() == ((0,),)


def test_edge_schedule_mixed_small_dividers():
    """{1,2,3}: hyperperiod 6, columns interleave as expected."""
    tree = ClockTree(100.0, [1, 2, 3])
    assert tree.edge_schedule() == (
        (0, 1, 2),  # tick 0: everyone
        (0,),       # tick 1
        (0, 1),     # tick 2
        (0, 2),     # tick 3
        (0, 1),     # tick 4
        (0,),       # tick 5
    )


def test_edge_schedule_large_lcm():
    """{7,9,13}: an 819-tick hyperperiod stays exact."""
    tree = ClockTree(100.0, [7, 9, 13])
    schedule = tree.edge_schedule()
    assert len(schedule) == 819 == tree.hyperperiod()
    for column, divider in enumerate(tree.dividers):
        offsets = [
            offset for offset, columns in enumerate(schedule)
            if column in columns
        ]
        assert offsets == list(range(0, 819, divider))
        assert len(offsets) == 819 // divider
    # the table matches the per-tick oracle everywhere
    for offset, columns in enumerate(schedule):
        for column in range(3):
            assert (column in columns) == tree.ticks(column, offset)


def test_edges_in_counts_divided_edges():
    tree = ClockTree(100.0, [1, 4])
    assert tree.edges_in(0, 0, 10) == 10
    assert tree.edges_in(1, 0, 10) == 3   # ticks 0, 4, 8
    assert tree.edges_in(1, 1, 9) == 2    # ticks 4, 8
    assert tree.edges_in(1, 4, 5) == 1
    assert tree.edges_in(1, 5, 5) == 0
    assert tree.edges_in(1, 8, 4) == 0    # empty interval


def test_edges_in_matches_tick_oracle():
    tree = ClockTree(100.0, [3, 5])
    for column in range(2):
        for start in range(0, 20, 3):
            for stop in range(start, 40, 7):
                expected = sum(
                    tree.ticks(column, t) for t in range(start, stop)
                )
                assert tree.edges_in(column, start, stop) == expected


def test_ddc_example_dividers():
    """Section 2's DDC: mixer 120 MHz, integrator 200 MHz off 600."""
    tree = ClockTree(600.0, [5, 3])
    assert tree.frequency_mhz(0) == pytest.approx(120.0)
    assert tree.frequency_mhz(1) == pytest.approx(200.0)
    assert tree.hyperperiod() == 15
