"""Segmented bus semantics (Figure 2)."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SimulationError
from repro.arch.bus import SegmentedBus


def _bus():
    return SegmentedBus("bus", n_positions=5, n_splits=8)


def test_all_open_isolates_positions():
    bus = _bus()
    bus.configure(frozenset())
    for position in range(5):
        assert bus.segment_of(0, position) == position


def test_all_closed_is_broadcast():
    bus = _bus()
    bus.configure(frozenset((0, b) for b in range(4)))
    results = bus.resolve(
        [(0, 0, 99)], [(1, 0), (2, 0), (3, 0), (4, 0)]
    )
    assert all(value == 99 for value in results.values())


def test_disjoint_segments_carry_parallel_transfers():
    bus = _bus()
    bus.configure(frozenset({(0, 0), (0, 2)}))  # {0,1} and {2,3}, {4}
    results = bus.resolve(
        [(0, 0, 11), (2, 0, 22)], [(1, 0), (3, 0)]
    )
    assert results[(1, 0)] == 11
    assert results[(3, 0)] == 22


def test_conflict_on_shared_segment_raises():
    bus = _bus()
    bus.configure(frozenset((0, b) for b in range(4)))
    with pytest.raises(SimulationError):
        bus.resolve([(0, 0, 1), (3, 0, 2)], [(1, 0)])


def test_same_position_different_splits_independent():
    bus = _bus()
    bus.configure(frozenset({(0, 0), (1, 0)}))
    results = bus.resolve(
        [(0, 0, 5), (0, 1, 6)], [(1, 0), (1, 1)]
    )
    assert results[(1, 0)] == 5
    assert results[(1, 1)] == 6


def test_undriven_capture_returns_none():
    bus = _bus()
    bus.configure(frozenset())
    results = bus.resolve([], [(2, 0)])
    assert results[(2, 0)] is None


def test_open_switch_blocks_delivery():
    bus = _bus()
    bus.configure(frozenset({(0, 0)}))  # only 0-1 fused
    results = bus.resolve([(0, 0, 42)], [(1, 0), (2, 0)])
    assert results[(1, 0)] == 42
    assert results[(2, 0)] is None


def test_configure_validates_ranges():
    bus = _bus()
    with pytest.raises(SimulationError):
        bus.configure(frozenset({(9, 0)}))
    with pytest.raises(SimulationError):
        bus.configure(frozenset({(0, 7)}))


def test_span_of_transfer():
    bus = _bus()
    bus.configure(frozenset((0, b) for b in range(4)))
    assert bus.span_of_transfer(0, 0, 4) == pytest.approx(1.0)
    assert bus.span_of_transfer(0, 1, 2) == pytest.approx(0.4)
    bus.configure(frozenset())
    with pytest.raises(SimulationError):
        bus.span_of_transfer(0, 0, 1)


def test_traffic_counters():
    bus = _bus()
    bus.configure(frozenset({(0, 0)}))
    bus.resolve([(0, 0, 1)], [(1, 0)])
    bus.resolve([], [])
    assert bus.words_moved == 1
    assert bus.cycles_with_traffic == 1


def test_construction_validation():
    with pytest.raises(ValueError):
        SegmentedBus("b", n_positions=1)
    with pytest.raises(ValueError):
        SegmentedBus("b", n_positions=4, n_splits=0)


@given(
    closed=st.sets(
        st.tuples(st.integers(0, 7), st.integers(0, 3)), max_size=20
    ),
    src=st.integers(0, 4),
    dst=st.integers(0, 4),
    split=st.integers(0, 7),
)
def test_delivery_iff_connected(closed, src, dst, split):
    """A value is captured iff every switch between src and dst on the
    split is closed - never across an open segment boundary."""
    bus = SegmentedBus("bus", n_positions=5, n_splits=8)
    bus.configure(frozenset(closed))
    results = bus.resolve([(src, split, 123)], [(dst, split)])
    lo, hi = sorted((src, dst))
    path_closed = all(
        bus.is_closed(split, boundary) for boundary in range(lo, hi)
    )
    if path_closed:
        assert results[(dst, split)] == 123
    else:
        assert results[(dst, split)] is None
