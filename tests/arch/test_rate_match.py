"""Zero-Overhead Rate Matching (Section 2.4)."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.arch.rate_match import ZormCounter, rate_match_settings


def _simulate(zorm, cycles):
    """Run the controller-side protocol; return (issued, nops)."""
    issued = nops = 0
    for _ in range(cycles):
        if zorm.should_insert_nop():
            nops += 1
            continue
        issued += 1
        zorm.note_issue()
    return issued, nops


def test_disabled_by_default():
    zorm = ZormCounter()
    assert not zorm.enabled
    assert zorm.throughput_factor == 1.0
    issued, nops = _simulate(zorm, 100)
    assert (issued, nops) == (100, 0)


def test_one_nop_per_interval():
    zorm = ZormCounter(interval=3, nops=1)
    issued, nops = _simulate(zorm, 400)
    assert issued / (issued + nops) == pytest.approx(0.75, abs=0.01)


def test_burst_nops():
    zorm = ZormCounter(interval=1, nops=3)
    issued, nops = _simulate(zorm, 400)
    assert issued / (issued + nops) == pytest.approx(0.25, abs=0.01)


def test_validation():
    with pytest.raises(ConfigurationError):
        ZormCounter(interval=-1)
    with pytest.raises(ConfigurationError):
        ZormCounter(interval=0, nops=2)


def test_rate_match_settings_exact_ratio():
    interval, nops = rate_match_settings(200.0, 100.0)
    factor = interval / (interval + nops)
    assert factor == pytest.approx(0.5)


def test_rate_match_settings_no_throttle_needed():
    assert rate_match_settings(100.0, 100.0) == (0, 0)
    assert rate_match_settings(100.0, 200.0) == (0, 0)


def test_rate_match_settings_validation():
    with pytest.raises(ConfigurationError):
        rate_match_settings(0.0, 1.0)


@given(
    produced=st.floats(min_value=1.0, max_value=1000.0),
    consumed=st.floats(min_value=1.0, max_value=1000.0),
)
def test_rate_match_never_overruns(produced, consumed):
    """The chosen setting never lets the producer exceed the consumer."""
    interval, nops = rate_match_settings(produced, consumed)
    if interval == 0:
        assert consumed >= produced
        return
    effective = produced * interval / (interval + nops)
    assert effective <= consumed * (1.0 + 1e-9)
    # and it is reasonably tight: within 2% of the target ratio
    assert effective >= consumed * 0.98 or interval + nops > 4000


@given(st.integers(1, 20), st.integers(1, 20))
def test_simulated_throughput_matches_factor(interval, nops):
    zorm = ZormCounter(interval=interval, nops=nops)
    issued, total_nops = _simulate(zorm, 2000)
    assert issued / 2000 == pytest.approx(
        zorm.throughput_factor, abs=0.02
    )
