"""Communication buffer semantics."""

import pytest

from repro.errors import SimulationError
from repro.arch.buffers import CommBuffer


def test_fifo_order():
    buffer = CommBuffer("b", capacity=4)
    for value in (1, 2, 3):
        buffer.push(value)
    assert [buffer.pop() for _ in range(3)] == [1, 2, 3]


def test_overflow_raises():
    buffer = CommBuffer("b", capacity=2)
    buffer.push(1)
    buffer.push(2)
    assert buffer.is_full
    with pytest.raises(SimulationError):
        buffer.push(3)


def test_underflow_raises():
    buffer = CommBuffer("b")
    with pytest.raises(SimulationError):
        buffer.pop()
    with pytest.raises(SimulationError):
        buffer.peek()


def test_peek_does_not_consume():
    buffer = CommBuffer("b")
    buffer.push(7)
    assert buffer.peek() == 7
    assert len(buffer) == 1


def test_words_wrap_to_32_bits():
    buffer = CommBuffer("b")
    buffer.push(-1)
    assert buffer.pop() == 0xFFFFFFFF


def test_counters():
    buffer = CommBuffer("b")
    buffer.push(1)
    buffer.push(2)
    buffer.pop()
    assert buffer.total_pushed == 2
    assert buffer.total_popped == 1


def test_clear():
    buffer = CommBuffer("b")
    buffer.push(1)
    buffer.clear()
    assert buffer.is_empty


def test_capacity_validation():
    with pytest.raises(ValueError):
        CommBuffer("b", capacity=0)
