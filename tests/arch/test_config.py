"""Chip/column configuration validation."""

import pytest

from repro.errors import ConfigurationError
from repro.arch.config import ChipConfig, ColumnConfig


def test_column_defaults():
    column = ColumnConfig()
    assert column.divider == 1
    assert column.voltage_v is None
    assert column.powered


def test_column_validation():
    with pytest.raises(ConfigurationError):
        ColumnConfig(divider=0)
    with pytest.raises(ConfigurationError):
        ColumnConfig(voltage_v=-1.0)
    with pytest.raises(ConfigurationError):
        ColumnConfig(zorm=(1,))
    with pytest.raises(ConfigurationError):
        ColumnConfig(zorm=(-1, 0))


def test_chip_validation():
    with pytest.raises(ConfigurationError):
        ChipConfig(reference_mhz=0.0, columns=(ColumnConfig(),))
    with pytest.raises(ConfigurationError):
        ChipConfig(reference_mhz=100.0, columns=())
    with pytest.raises(ConfigurationError):
        ChipConfig(reference_mhz=100.0, columns=("not a column",))


def test_column_frequencies():
    config = ChipConfig(
        reference_mhz=600.0,
        columns=(ColumnConfig(divider=5), ColumnConfig(divider=3)),
    )
    assert config.column_frequency_mhz(0) == pytest.approx(120.0)
    assert config.column_frequency_mhz(1) == pytest.approx(200.0)
    assert config.n_columns == 2


def test_resolve_voltages_from_curve():
    """The DDC example: 120 MHz -> 0.8 V, 200 MHz -> 1.0 V."""
    config = ChipConfig(
        reference_mhz=600.0,
        columns=(ColumnConfig(divider=5), ColumnConfig(divider=3)),
    )
    assert config.resolve_voltages() == (0.8, 1.0)


def test_resolve_voltages_checks_explicit_settings():
    config = ChipConfig(
        reference_mhz=600.0,
        columns=(ColumnConfig(divider=1, voltage_v=0.7),),
    )
    with pytest.raises(ConfigurationError):
        config.resolve_voltages()  # 0.7 V cannot run 600 MHz


def test_resolve_voltages_accepts_valid_explicit():
    config = ChipConfig(
        reference_mhz=100.0,
        columns=(ColumnConfig(divider=2, voltage_v=0.8),),
    )
    assert config.resolve_voltages() == (0.8,)
