"""Column and chip assembly."""

import pytest

from repro.errors import ConfigurationError
from repro.arch.chip import BUBBLE, ISSUED, STALLED, Chip
from repro.arch.config import ChipConfig, ColumnConfig
from repro.arch.dou import DouProgram, DouState
from repro.isa.assembler import assemble


def _chip(programs, **kwargs):
    config = ChipConfig(
        reference_mhz=100.0,
        columns=tuple(ColumnConfig() for _ in programs),
        **kwargs,
    )
    return Chip(config, programs=[assemble(p) for p in programs])


def test_program_count_must_match_columns():
    config = ChipConfig(reference_mhz=100.0,
                        columns=(ColumnConfig(), ColumnConfig()))
    with pytest.raises(ConfigurationError):
        Chip(config, programs=[assemble("halt")])


def test_column_issue_outcomes():
    chip = _chip(["movi r0, 1\nrecv r1\nhalt"])
    column = chip.columns[0]
    assert column.step_tile_clock() == ISSUED   # movi
    assert column.step_tile_clock() == STALLED  # recv with empty buffer
    for tile in column.tiles:
        tile.read_buffer.push(5)
    assert column.step_tile_clock() == ISSUED   # recv now succeeds
    assert column.step_tile_clock() == BUBBLE   # halted
    assert all(t.regs.read("R1") == 5 for t in column.tiles)


def test_tmask_limits_execution_to_masked_tiles():
    chip = _chip(["tmask 0x1\nmovi r0, 9\nhalt"])
    column = chip.columns[0]
    column.step_tile_clock()
    assert column.tiles[0].regs.read("R0") == 9
    assert all(t.regs.read("R0") == 0 for t in column.tiles[1:])


def test_feed_and_drain_ports():
    chip = _chip(["halt", "halt"])
    chip.feed_column(0, [1, 2, 3])
    assert len(chip.columns[0].h_in) == 3
    chip.columns[1].h_out.push(9)
    assert chip.drain_column(1) == [9]


def test_horizontal_dou_requires_two_columns():
    config = ChipConfig(reference_mhz=100.0, columns=(ColumnConfig(),))
    with pytest.raises(ConfigurationError):
        Chip(config, programs=[assemble("halt")],
             horizontal_dou=DouProgram.idle())


def test_horizontal_bus_moves_between_columns():
    # Column 0's h_out drives horizontal split 0; column 1 captures.
    horizontal = DouProgram(states=(
        DouState(closed=frozenset({(0, 0)}),
                 drives=((0, 0),), captures=((1, 0),)),
    ))
    config = ChipConfig(
        reference_mhz=100.0,
        columns=(ColumnConfig(), ColumnConfig()),
        strict_schedules=False,
    )
    chip = Chip(config, programs=[assemble("halt"), assemble("halt")],
                horizontal_dou=horizontal)
    chip.columns[0].h_out.push(77)
    chip.step_reference_tick()
    assert chip.columns[1].h_in.pop() == 77


def test_all_halted():
    chip = _chip(["halt", "nop\nhalt"])
    assert not chip.all_halted
    for _ in range(5):
        chip.step_reference_tick()
    assert chip.all_halted


def test_divided_column_steps_less_often():
    config = ChipConfig(
        reference_mhz=100.0,
        columns=(ColumnConfig(divider=1), ColumnConfig(divider=4)),
    )
    chip = Chip(config, programs=[
        assemble("nop\n" * 8 + "halt"),
        assemble("nop\n" * 8 + "halt"),
    ])
    for _ in range(8):
        chip.step_reference_tick()
    fast = chip.columns[0].tile_cycles
    slow = chip.columns[1].tile_cycles
    assert fast == 8
    assert slow == 2
