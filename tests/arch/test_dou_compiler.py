"""DOU schedule compiler."""

import pytest

from repro.errors import ConfigurationError
from repro.arch.buffers import CommBuffer
from repro.arch.bus import SegmentedBus
from repro.arch.chip import PORT_POSITION
from repro.arch.dou import Dou
from repro.arch.dou_compiler import (
    Transfer,
    broadcast_schedule,
    chain_schedule,
    compile_cycle,
    compile_schedule,
    exchange_schedule,
)


def _rig(program, n_positions=5):
    bus = SegmentedBus("bus", n_positions=n_positions, n_splits=8)
    writes = {i: CommBuffer(f"w{i}") for i in range(n_positions)}
    reads = {i: CommBuffer(f"r{i}") for i in range(n_positions)}
    return Dou(program, bus, writes, reads, strict=False), writes, reads


class TestTransfer:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Transfer(src=0, dsts=())
        with pytest.raises(ConfigurationError):
            Transfer(src=0, dsts=(0,))

    def test_segment_range(self):
        assert Transfer(src=2, dsts=(0,)).segment_range == (0, 2)
        assert Transfer(src=0, dsts=(1, 3)).segment_range == (0, 3)


class TestCompileCycle:
    def test_disjoint_transfers_share_a_split(self):
        cycle = compile_cycle([
            Transfer(src=0, dsts=(1,)),
            Transfer(src=2, dsts=(3,)),
        ])
        splits = {split for _, split in cycle.drives}
        assert len(splits) == 1  # both fit on split 0

    def test_overlapping_transfers_get_distinct_splits(self):
        cycle = compile_cycle([
            Transfer(src=0, dsts=(2,)),
            Transfer(src=1, dsts=(3,)),
        ])
        splits = [split for _, split in cycle.drives]
        assert splits[0] != splits[1]

    def test_explicit_split_honoured(self):
        cycle = compile_cycle([Transfer(src=0, dsts=(1,), split=5)])
        assert cycle.drives == ((0, 5),)

    def test_explicit_conflict_rejected(self):
        with pytest.raises(ConfigurationError):
            compile_cycle([
                Transfer(src=0, dsts=(2,), split=0),
                Transfer(src=1, dsts=(3,), split=0),
            ])

    def test_out_of_range_position_rejected(self):
        with pytest.raises(ConfigurationError):
            compile_cycle([Transfer(src=9, dsts=(0,))])

    def test_split_exhaustion_detected(self):
        overlapping = [
            Transfer(src=0, dsts=(4,)) for _ in range(9)
        ]
        with pytest.raises(ConfigurationError, match="splits"):
            compile_cycle(overlapping)

    def test_minimal_switch_runs(self):
        cycle = compile_cycle([Transfer(src=1, dsts=(2,))])
        split = cycle.drives[0][1]
        assert cycle.closed == frozenset({(split, 1)})


class TestPatterns:
    def test_chain_moves_data_through_all_stages(self):
        program = chain_schedule(stages=4)
        dou, writes, reads = _rig(program)
        writes[PORT_POSITION].push(7)    # input port
        for tile in range(4):
            writes[tile].push(100 + tile)
        dou.step()
        assert reads[0].pop() == 7            # port -> t0
        assert reads[1].pop() == 100          # t0 -> t1
        assert reads[3].pop() == 102          # t2 -> t3
        assert reads[PORT_POSITION].pop() == 103  # t3 -> out

    def test_chain_validation(self):
        with pytest.raises(ConfigurationError):
            chain_schedule(stages=0)
        with pytest.raises(ConfigurationError):
            chain_schedule(stages=9)

    def test_broadcast_reaches_everyone(self):
        program = broadcast_schedule(src=0)
        dou, writes, reads = _rig(program)
        writes[0].push(42)
        dou.step()
        for tile in range(4):
            assert reads[tile].pop() == 42

    def test_exchange_swaps_pairs(self):
        program = exchange_schedule()
        dou, writes, reads = _rig(program)
        for tile in range(4):
            writes[tile].push(10 + tile)
        dou.step()
        assert reads[0].pop() == 11
        assert reads[1].pop() == 10
        assert reads[2].pop() == 13
        assert reads[3].pop() == 12

    def test_empty_schedule_rejected(self):
        with pytest.raises(ConfigurationError):
            compile_schedule([])
