"""SIMD controller: control/compute split, branch stall, loops."""

import pytest

from repro.errors import SimulationError
from repro.arch.rate_match import ZormCounter
from repro.arch.simd import SimdController
from repro.isa.assembler import assemble
from repro.isa.instructions import Opcode


def _drain(controller, limit=200):
    """Collect issued opcodes until halt (None = bubble)."""
    issued = []
    for _ in range(limit):
        if controller.halted and controller._pending is None:
            break
        instr = controller.next_instruction()
        if instr is None:
            issued.append(None)
            continue
        controller.commit()
        issued.append(instr.opcode)
    return issued


def test_zero_overhead_loop_has_no_bubbles():
    program = assemble("""
        loop 3
          addi r0, r0, 1
        endloop
        halt
    """)
    controller = SimdController(program, condition_source=lambda r: 0)
    issued = _drain(controller)
    compute = [op for op in issued if op is not None]
    assert compute == [Opcode.ADDI] * 3
    assert controller.branch_stalls == 0
    # Only the final halt-bubble appears; the loop itself is free.
    assert issued.count(None) <= 1


def test_conditional_branch_costs_one_bubble():
    program = assemble("""
        movi r0, 1
        beq r0, skip
        movi r1, 2
    skip:
        halt
    """)
    values = {"R0": 1}
    controller = SimdController(
        program, condition_source=lambda r: values.get(r.upper(), 0)
    )
    issued = _drain(controller)
    assert controller.branch_stalls == 1
    # not taken (r0 == 1): movi r1 executes after one bubble
    assert Opcode.MOVI in issued
    assert issued.count(None) >= 1


def test_branch_taken_skips_instructions():
    program = assemble("""
        movi r0, 1
        bne r0, skip
        movi r1, 2
    skip:
        halt
    """)
    executed = []
    controller = SimdController(program, condition_source=lambda r: 1)
    for _ in range(20):
        if controller.halted:
            break
        instr = controller.next_instruction()
        if instr is not None:
            controller.commit()
            executed.append(instr)
    # only the first movi executes; movi r1 was branched over
    destinations = [i.dst for i in executed]
    assert "R1" not in destinations


def test_nested_loops_multiply():
    program = assemble("""
        loop 2
          loop 3
            addi r0, r0, 1
          endloop
        endloop
        halt
    """)
    controller = SimdController(program, condition_source=lambda r: 0)
    issued = [op for op in _drain(controller) if op is not None]
    assert issued.count(Opcode.ADDI) == 6


def test_tmask_updates_active_mask():
    program = assemble("""
        tmask 0x3
        nop
        halt
    """)
    controller = SimdController(program, condition_source=lambda r: 0)
    instr = controller.next_instruction()
    assert instr.opcode is Opcode.NOP
    assert controller.active_mask == 0x3


def test_control_only_spin_detected():
    program = assemble("here: jump here")
    controller = SimdController(program, condition_source=lambda r: 0)
    with pytest.raises(SimulationError):
        controller.next_instruction()


def test_zorm_inserts_nops():
    program = assemble("""
        loop 8
          addi r0, r0, 1
        endloop
        halt
    """)
    controller = SimdController(
        program, condition_source=lambda r: 0,
        zorm=ZormCounter(interval=2, nops=1),
    )
    issued = _drain(controller)
    assert controller.zorm.total_nops == 4  # one nop per two issues
    assert issued.count(None) >= 4


def test_commit_without_pending_raises():
    program = assemble("halt")
    controller = SimdController(program, condition_source=lambda r: 0)
    with pytest.raises(SimulationError):
        controller.commit()


def test_missing_condition_source_raises():
    program = assemble("""
        beq r0, done
    done:
        halt
    """)
    controller = SimdController(program)
    with pytest.raises(SimulationError):
        controller.next_instruction()


def test_running_off_the_end_halts():
    program = assemble("nop")
    controller = SimdController(program, condition_source=lambda r: 0)
    instr = controller.next_instruction()
    controller.commit()
    assert controller.next_instruction() is None
    assert controller.halted
