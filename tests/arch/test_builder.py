"""Chip plans built from mapped applications."""

import pytest

from repro.errors import ConfigurationError
from repro.arch.builder import build_chip_plan
from repro.sdf import ColumnAssignment, SdfGraph, SdfMapper


def _mapped_ddc_front_end():
    graph = SdfGraph("ddc-front")
    graph.add_actor("mixer", 15.0)
    graph.add_actor("integrator", 25.0)
    graph.add_edge("mixer", "integrator", produce=1, consume=1)
    return SdfMapper().map(graph, [
        ColumnAssignment("Mixer", ("mixer",), 8),
        ColumnAssignment("Integrator", ("integrator",), 8),
    ], iteration_rate_msps=64.0)


def test_column_counts_follow_tiles():
    plan = build_chip_plan(_mapped_ddc_front_end(),
                           reference_mhz=600.0)
    assert plan.n_columns == 4  # 8 + 8 tiles = 2 + 2 columns
    assert plan.columns_of("Mixer") == (0, 1)
    assert plan.columns_of("Integrator") == (2, 3)


def test_dividers_realize_the_section2_example():
    """600 MHz reference: mixer /5 = 120, integrator /3 = 200."""
    plan = build_chip_plan(_mapped_ddc_front_end(),
                           reference_mhz=600.0)
    config = plan.config
    assert config.columns[0].divider == 5
    assert config.columns[2].divider == 3
    assert config.column_frequency_mhz(0) == pytest.approx(120.0)
    assert config.column_frequency_mhz(2) == pytest.approx(200.0)


def test_voltages_derived_from_actual_clocks():
    plan = build_chip_plan(_mapped_ddc_front_end(),
                           reference_mhz=600.0)
    assert plan.config.resolve_voltages() == (0.8, 0.8, 1.0, 1.0)


def test_exact_dividers_need_no_zorm():
    plan = build_chip_plan(_mapped_ddc_front_end(),
                           reference_mhz=600.0)
    for column in plan.config.columns:
        assert column.zorm == (0, 0)


def test_inexact_reference_gets_zorm_throttling():
    """A 500 MHz reference cannot hit 120/200 exactly: ZORM absorbs
    the residue."""
    plan = build_chip_plan(_mapped_ddc_front_end(),
                           reference_mhz=500.0)
    mixer_column = plan.config.columns[plan.columns_of("Mixer")[0]]
    actual = 500.0 / mixer_column.divider
    assert actual > 120.0
    interval, nops = mixer_column.zorm
    assert interval > 0 and nops > 0
    effective = actual * interval / (interval + nops)
    assert effective <= 120.0 + 1e-6


def test_unknown_component_lookup():
    plan = build_chip_plan(_mapped_ddc_front_end(),
                           reference_mhz=600.0)
    with pytest.raises(ConfigurationError):
        plan.columns_of("ghost")


def test_default_reference_is_max_frequency():
    plan = build_chip_plan(_mapped_ddc_front_end())
    assert plan.reference_mhz == pytest.approx(200.0)
