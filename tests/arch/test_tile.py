"""Tile datapath execution."""

import pytest

from repro.errors import SimulationError
from repro.arch.tile import Tile
from repro.isa.instructions import Instruction, Opcode


def _t():
    return Tile(tile_id=2, memory_words=64)


def _run(tile, *instrs):
    for instr in instrs:
        tile.execute(instr)


def test_movi_mov():
    tile = _t()
    _run(tile,
         Instruction(Opcode.MOVI, dst="R0", imm=7),
         Instruction(Opcode.MOV, dst="R1", srcs=("R0",)))
    assert tile.regs.read("R1") == 7


def test_arithmetic_wraps():
    tile = _t()
    _run(tile,
         Instruction(Opcode.MOVI, dst="R0", imm=0x7FFFFFFF),
         Instruction(Opcode.ADDI, dst="R0", srcs=("R0",), imm=1))
    assert tile.regs.read_signed("R0") == -(1 << 31)


def test_signed_min_max_abs_neg():
    tile = _t()
    _run(tile,
         Instruction(Opcode.MOVI, dst="R0", imm=-5),
         Instruction(Opcode.MOVI, dst="R1", imm=3),
         Instruction(Opcode.MIN, dst="R2", srcs=("R0", "R1")),
         Instruction(Opcode.MAX, dst="R3", srcs=("R0", "R1")),
         Instruction(Opcode.ABS, dst="R4", srcs=("R0",)),
         Instruction(Opcode.NEG, dst="R5", srcs=("R1",)))
    assert tile.regs.read_signed("R2") == -5
    assert tile.regs.read_signed("R3") == 3
    assert tile.regs.read_signed("R4") == 5
    assert tile.regs.read_signed("R5") == -3


def test_shifts():
    tile = _t()
    _run(tile,
         Instruction(Opcode.MOVI, dst="R0", imm=-8),
         Instruction(Opcode.ASR, dst="R1", srcs=("R0",), imm=1),
         Instruction(Opcode.LSR, dst="R2", srcs=("R0",), imm=1),
         Instruction(Opcode.MOVI, dst="R3", imm=3),
         Instruction(Opcode.LSL, dst="R4", srcs=("R3",), imm=4))
    assert tile.regs.read_signed("R1") == -4
    assert tile.regs.read("R2") == 0x7FFFFFFC
    assert tile.regs.read("R4") == 48


def test_mul_and_mulh():
    tile = _t()
    _run(tile,
         Instruction(Opcode.MOVI, dst="R0", imm=100000),
         Instruction(Opcode.MOVI, dst="R1", imm=100000),
         Instruction(Opcode.MUL, dst="R2", srcs=("R0", "R1")),
         Instruction(Opcode.MULH, dst="R3", srcs=("R0", "R1")))
    product = 100000 * 100000
    assert tile.regs.read("R2") == product & 0xFFFFFFFF
    assert tile.regs.read_signed("R3") == product >> 32


def test_mac_accumulates_40_bits():
    tile = _t()
    tile.execute(Instruction(Opcode.MOVI, dst="R0", imm=1 << 16))
    for _ in range(100):
        tile.execute(Instruction(Opcode.MAC, dst="A0",
                                 srcs=("R0", "R0")))
    assert tile.regs.read_signed("A0") == 100 * (1 << 32)
    assert tile.mac_operations == 100


def test_mac_requires_accumulator():
    tile = _t()
    with pytest.raises(SimulationError):
        tile.execute(Instruction(Opcode.MAC, dst="R0",
                                 srcs=("R1", "R2")))


def test_memory_load_store_post_increment():
    tile = _t()
    tile.load_memory(0, [10, 20, 30])
    _run(tile,
         Instruction(Opcode.MOVI, dst="P0", imm=0),
         Instruction(Opcode.LD, dst="R0", ptr="P0",
                     post_increment=True),
         Instruction(Opcode.LD, dst="R1", ptr="P0",
                     post_increment=True),
         Instruction(Opcode.ST, srcs=("R0",), ptr="P0", offset=1))
    assert tile.regs.read("R0") == 10
    assert tile.regs.read("R1") == 20
    assert tile.memory[3] == 10
    assert tile.regs.read("P0") == 2


def test_out_of_bounds_memory_raises():
    tile = _t()
    tile.execute(Instruction(Opcode.MOVI, dst="P0", imm=64))
    with pytest.raises(SimulationError):
        tile.execute(Instruction(Opcode.LD, dst="R0", ptr="P0"))
    with pytest.raises(SimulationError):
        tile.load_memory(60, [0] * 10)
    with pytest.raises(SimulationError):
        tile.read_memory(60, 10)


def test_tid():
    tile = _t()
    tile.execute(Instruction(Opcode.TID, dst="R0"))
    assert tile.regs.read("R0") == 2


def test_send_recv_buffers():
    tile = _t()
    tile.execute(Instruction(Opcode.MOVI, dst="R7", imm=99))
    tile.execute(Instruction(Opcode.SEND, srcs=("R7",)))
    assert tile.write_buffer.pop() == 99
    tile.read_buffer.push(55)
    tile.execute(Instruction(Opcode.RECV, dst="R3"))
    assert tile.regs.read("R3") == 55


def test_can_execute_blocking_rules():
    tile = _t()
    recv = Instruction(Opcode.RECV, dst="R0")
    assert not tile.can_execute(recv)
    tile.read_buffer.push(1)
    assert tile.can_execute(recv)
    send = Instruction(Opcode.SEND, srcs=("R0",))
    while not tile.write_buffer.is_full:
        tile.write_buffer.push(0)
    assert not tile.can_execute(send)


def test_control_opcode_rejected_by_tile():
    tile = _t()
    with pytest.raises(SimulationError):
        tile.execute(Instruction(Opcode.HALT))


def test_instruction_counter():
    tile = _t()
    _run(tile,
         Instruction(Opcode.NOP),
         Instruction(Opcode.MOVI, dst="R0", imm=1))
    assert tile.instructions_executed == 2
