"""Table 3 comparator registry and the headline efficiency bands."""

import pytest

from repro.units import mw_to_nw_per_sample
from repro.workloads.baselines import (
    TABLE3_PLATFORMS,
    efficiency_nw_per_sample,
    efficiency_ratio,
)


def test_section55_ddc_example():
    """2.43 W at 64 MS/s = 38.0 nW/sample (Section 5.5)."""
    assert efficiency_nw_per_sample(2430.0, 64.0e6) == pytest.approx(
        38.0, abs=0.1
    )


def test_section55_blackfin_example():
    """Blackfin: 280 mW at 112.6 kS/s = 2478 nW/sample."""
    blackfin = next(
        f for f in TABLE3_PLATFORMS["DDC"]
        if "Blackfin" in f.platform
    )
    assert blackfin.nw_per_sample == pytest.approx(2486.0, rel=0.01)


def test_section55_factor_of_60():
    """The DDC vs Blackfin ratio is the paper's 'factor of 60'."""
    blackfin = next(
        f for f in TABLE3_PLATFORMS["DDC"]
        if "Blackfin" in f.platform
    )
    ratio = efficiency_ratio(2430.0, 64.0e6, blackfin)
    assert ratio == pytest.approx(65.0, abs=5.0)


def test_graychip_asic_within_10x():
    """DDC vs the Graychip ASIC: we are ~10X less efficient."""
    graychip = next(
        f for f in TABLE3_PLATFORMS["DDC"] if "Graychip" in f.platform
    )
    ratio = efficiency_ratio(2430.0, 64.0e6, graychip)
    assert ratio is not None
    assert 1.0 / ratio == pytest.approx(9.7, abs=1.0)


def test_unknown_rate_returns_none():
    from repro.workloads.baselines import PlatformFigure
    figure = PlatformFigure("x", "y", "asic", None, None, 100.0, "?",
                            None)
    assert figure.nw_per_sample is None
    assert efficiency_ratio(100.0, 1e6, figure) is None


def test_every_application_has_comparators():
    for label in ("DDC", "Stereo Vision", "802.11a", "MPEG4 QCIF",
                  "MPEG4 CIF"):
        assert TABLE3_PLATFORMS[label]


def test_platform_kinds_are_classified():
    kinds = {
        f.kind for rows in TABLE3_PLATFORMS.values() for f in rows
    }
    assert kinds <= {"programmable", "asic", "fpga", "soc"}


def test_rate_validation():
    with pytest.raises(ValueError):
        mw_to_nw_per_sample(100.0, 0.0)
