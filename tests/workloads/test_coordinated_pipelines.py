"""Multi-column pipeline scenarios under coordinated governance."""

import pytest

from repro.control.coordinator import CoordinatedGovernor
from repro.errors import ConfigurationError
from repro.workloads.coordinated import (
    PIPELINE_GOVERNORS,
    IndependentSlackGovernor,
    PipelineScenario,
    PipelineStage,
    ddc_pipeline_scenario,
    pipeline_governor,
    run_pipeline,
    wlan_rx_pipeline_scenario,
)

FRAMES = 6


@pytest.fixture(scope="module")
def ddc_results():
    scenario = ddc_pipeline_scenario(frames=FRAMES)
    return scenario, {
        kind: run_pipeline(scenario, kind)
        for kind in PIPELINE_GOVERNORS
    }


class TestScenarioShape:
    def test_ddc_spans_four_columns(self):
        scenario = ddc_pipeline_scenario(frames=4)
        assert scenario.n_stages == 4
        chip = scenario.build_chip()
        assert len(chip.columns) == 4
        assert chip.horizontal_dou is not None

    def test_wlan_spans_three_columns(self):
        scenario = wlan_rx_pipeline_scenario(frames=4)
        assert scenario.n_stages == 3
        assert len(scenario.build_chip().columns) == 3

    def test_static_dividers_are_per_stage(self):
        scenario = ddc_pipeline_scenario(frames=4)
        dividers = scenario.static_dividers()
        assert len(dividers) == 4
        # The heavy CIC stage needs a faster rung than the light gain
        # stage - the paper's rational-clocking claim in provisioning.
        cycles = scenario.stage_cycles
        heavy = cycles.index(max(cycles))
        light = cycles.index(min(cycles))
        assert dividers[heavy] < dividers[light]

    def test_rejects_single_stage(self):
        with pytest.raises(ConfigurationError, match="two stages"):
            PipelineScenario(
                name="x", key="x", frame_loads=(8,),
                stages=(PipelineStage("only", 2),),
            )

    def test_rejects_unaligned_epochs(self):
        with pytest.raises(ConfigurationError, match="divide"):
            PipelineScenario(
                name="x", key="x", frame_loads=(8,),
                stages=(PipelineStage("a", 2), PipelineStage("b", 2)),
                frame_ticks=2048, epoch_ticks=768,
            )

    def test_rejects_empty_trace(self):
        with pytest.raises(ConfigurationError, match="no frames"):
            PipelineScenario(
                name="x", key="x", frame_loads=(),
                stages=(PipelineStage("a", 2), PipelineStage("b", 2)),
            )

    def test_rejects_non_positive_stage_work(self):
        with pytest.raises(ConfigurationError, match="positive"):
            PipelineStage("bad", 0)


class TestGovernorFactory:
    def test_builds_every_kind(self):
        scenario = wlan_rx_pipeline_scenario(frames=4)
        assert pipeline_governor("static", scenario).name == "static"
        independent = pipeline_governor("independent", scenario)
        assert isinstance(independent, IndependentSlackGovernor)
        coordinated = pipeline_governor("coordinated", scenario)
        assert isinstance(coordinated, CoordinatedGovernor)
        assert coordinated.n_stages == scenario.n_stages

    def test_unknown_kind_lists_choices(self):
        scenario = wlan_rx_pipeline_scenario(frames=4)
        with pytest.raises(ConfigurationError) as excinfo:
            pipeline_governor("thermal", scenario)
        message = str(excinfo.value)
        for kind in PIPELINE_GOVERNORS:
            assert kind in message


class TestPipelineRuns:
    def test_every_policy_clears_the_trace(self, ddc_results):
        scenario, results = ddc_results
        for result in results.values():
            final_tick, final_words = result.produced_samples[-1]
            assert final_words == scenario.total_words
            assert result.deadline_misses == 0

    def test_energy_ordering(self, ddc_results):
        _, results = ddc_results
        assert results["coordinated"].energy_nj \
            < results["independent"].energy_nj \
            < results["static"].energy_nj

    def test_conservation_exact_for_every_policy(self, ddc_results):
        _, results = ddc_results
        for result in results.values():
            assert result.conservation_error <= 1e-9

    def test_static_policy_never_retunes(self, ddc_results):
        _, results = ddc_results
        assert results["static"].transition_count == 0
        assert results["static"].gate_segments == ()

    def test_coordinated_gates_and_wakes(self, ddc_results):
        _, results = ddc_results
        coordinated = results["coordinated"]
        assert coordinated.gate_segments
        assert coordinated.wake_count >= 1
        gated_entries = [
            entry for entry in coordinated.ledger.domains
            if entry.gated
        ]
        assert gated_entries
        # Gated windows are charged at the gated rate: retention
        # leakage only, no dynamic or interconnect energy.
        for entry in gated_entries:
            assert entry.active_nj == 0.0
            assert entry.bus_nj == 0.0
        wakes = [
            t for t in coordinated.ledger.transitions
            if t.name.startswith("wake")
        ]
        assert len(wakes) == coordinated.wake_count
        assert all(t.energy_nj > 0 for t in wakes)

    def test_reference_and_compiled_runs_are_bit_identical(self):
        scenario = wlan_rx_pipeline_scenario(frames=FRAMES)
        for kind in PIPELINE_GOVERNORS:
            compiled = run_pipeline(scenario, kind, engine="compiled")
            reference = run_pipeline(
                scenario, kind, engine="reference"
            )
            assert compiled.run.stats == reference.run.stats
            assert compiled.run.timeline == reference.run.timeline
            assert compiled.run.transitions == reference.run.transitions
            assert compiled.energy_nj == reference.energy_nj

    def test_gating_override_applies_to_any_policy(self):
        scenario = wlan_rx_pipeline_scenario(frames=FRAMES)
        plain = run_pipeline(scenario, "independent")
        gated = run_pipeline(scenario, "independent", gating=True)
        assert plain.gate_segments == ()
        assert gated.gate_segments
        assert gated.energy_nj < plain.energy_nj
        assert gated.conservation_error <= 1e-9
