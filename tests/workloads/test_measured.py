"""Measured kernel runs feeding the power methodology."""

import pytest

from repro.kernels import build_cic_chain_kernel, run_kernel
from repro.power.model import ComponentSpec, PowerModel
from repro.workloads.measured import (
    comm_profile_from_run,
    measured_kernel_table,
)


@pytest.fixture(scope="module")
def table():
    return measured_kernel_table()


def test_table_covers_all_kernels(table):
    assert set(table) == {
        "fir-8tap", "complex-mixer", "cic-integrator-chain",
        "viterbi-acs-butterfly", "dct-8point-q14",
    }
    for entry in table.values():
        assert entry["cycles_per_sample"] > 0
        assert entry["issued"] > 0


def test_compute_only_kernels_have_no_traffic(table):
    assert table["fir-8tap"]["bus_words_per_cycle"] == 0.0
    assert table["dct-8point-q14"]["bus_words_per_cycle"] == 0.0


def test_communication_kernels_have_traffic(table):
    assert table["cic-integrator-chain"]["bus_words_per_cycle"] > 1.0
    assert table["viterbi-acs-butterfly"]["bus_words_per_cycle"] > 0.3


def test_comm_profile_bridge_to_power_model():
    """Measured traffic plugs straight into the Section 4.1 model."""
    run = run_kernel(build_cic_chain_kernel())
    profile = comm_profile_from_run(run, span_fraction=0.5)
    assert profile.words_per_cycle == pytest.approx(
        run.bus_words_per_cycle
    )
    model = PowerModel()
    power = model.component_power(ComponentSpec(
        "measured-cic", n_tiles=4, frequency_mhz=200.0, comm=profile,
    ))
    assert power.bus_mw > 0.0
    assert power.total_mw > power.dynamic_mw


def test_measured_integrator_matches_calibration_order():
    """The measured chain density supports the Table 4 calibration:
    the CIC Integrator's analytic 5.6 words/cycle (8 tiles, 2 columns)
    and the measured 4-tile chain (~1.9/column + port hops) agree on
    the order of magnitude."""
    run = run_kernel(build_cic_chain_kernel())
    measured_per_column = run.bus_words_per_cycle
    calibrated_per_column = 5.620 / 2.0
    ratio = calibrated_per_column / measured_per_column
    assert 0.3 < ratio < 3.0
