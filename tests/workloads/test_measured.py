"""Measured kernel runs feeding the power methodology."""

import pytest

from repro.kernels import build_cic_chain_kernel, run_kernel
from repro.power.model import ComponentSpec, PowerModel
from repro.workloads.measured import (
    comm_profile_from_run,
    measured_kernel_table,
)


@pytest.fixture(scope="module")
def table():
    return measured_kernel_table()


def test_table_covers_all_kernels(table):
    assert set(table) == {
        "fir-8tap", "complex-mixer", "mixer-stream",
        "cic-integrator-chain", "cic-comb-scatter",
        "viterbi-acs-butterfly", "dct-8point-q14",
    }
    for entry in table.values():
        assert entry["cycles_per_sample"] > 0
        assert entry["issued"] > 0


def test_compute_only_kernels_have_no_traffic(table):
    assert table["fir-8tap"]["bus_words_per_cycle"] == 0.0
    assert table["dct-8point-q14"]["bus_words_per_cycle"] == 0.0


def test_communication_kernels_have_traffic(table):
    assert table["cic-integrator-chain"]["bus_words_per_cycle"] > 1.0
    assert table["viterbi-acs-butterfly"]["bus_words_per_cycle"] > 0.3


def test_comm_profile_bridge_to_power_model():
    """Measured traffic plugs straight into the Section 4.1 model."""
    run = run_kernel(build_cic_chain_kernel())
    profile = comm_profile_from_run(run, span_fraction=0.5)
    assert profile.words_per_cycle == pytest.approx(
        run.bus_words_per_cycle
    )
    model = PowerModel()
    power = model.component_power(ComponentSpec(
        "measured-cic", n_tiles=4, frequency_mhz=200.0, comm=profile,
    ))
    assert power.bus_mw > 0.0
    assert power.total_mw > power.dynamic_mw


def test_measured_integrator_matches_calibration_order():
    """The measured chain density supports the Table 4 calibration:
    the CIC Integrator's analytic 5.6 words/cycle (8 tiles, 2 columns)
    and the measured 4-tile chain (~1.9/column + port hops) agree on
    the order of magnitude."""
    run = run_kernel(build_cic_chain_kernel())
    measured_per_column = run.bus_words_per_cycle
    calibrated_per_column = 5.620 / 2.0
    ratio = calibrated_per_column / measured_per_column
    assert 0.3 < ratio < 3.0


# ----------------------------------------------------------------------
# measured application pipeline (run_many -> ActivityProfile -> specs)
# ----------------------------------------------------------------------
def test_kernel_request_round_trip():
    """A kernel converts into a picklable request that replays its
    exact run."""
    import pickle

    from repro.sim.batch import execute
    from repro.workloads.measured import kernel_request

    kernel = build_cic_chain_kernel()
    request = kernel_request(kernel)
    pickle.dumps(request)  # must cross a process boundary
    stats = execute(request)
    direct = run_kernel(kernel).stats
    assert stats == direct


def test_measured_activities_run_once_via_run_many():
    from repro.workloads.measured import (
        _ACTIVITY_MEMO,
        measured_activities,
    )

    activities = measured_activities(
        ["cic-integrator-chain", "mixer-stream"]
    )
    assert activities["cic-integrator-chain"].words_per_cycle > 1.0
    assert activities["mixer-stream"].words_per_cycle > 0.3
    # memoized: a second call returns the identical objects
    again = measured_activities(["mixer-stream"])
    assert again["mixer-stream"] is activities["mixer-stream"]
    assert "mixer-stream" in _ACTIVITY_MEMO


def test_measured_application_mixes_sources():
    from repro.workloads.measured import measured_application

    app = measured_application("ddc")
    by_name = {c.name: c for c in app.components}
    assert by_name["CIC Integrator"].measured
    # the comb's gather/scatter kernel closed the last analytical gap
    assert by_name["CIC Comb"].measured
    # measured specs keep the Table 4 operating point
    assert by_name["CIC Integrator"].spec.frequency_mhz == 200.0
    assert by_name["CIC Integrator"].spec.n_tiles == 8
    assert app.measured_fraction == 1.0
    # components with no kernel equivalent still fall back verbatim
    wlan = measured_application("wlan")
    by_name = {c.name: c for c in wlan.components}
    assert not by_name["FFT"].measured
    assert by_name["FFT"].spec == by_name["FFT"].analytical
    assert 0.0 < wlan.measured_fraction < 1.0


def test_measured_mixer_matches_calibration():
    """The streaming mixer lands within ~2x of the calibrated
    1.112 words/cycle for the 8-tile component."""
    from repro.workloads.measured import measured_application

    app = measured_application("ddc")
    mixer = app.components[0]
    assert mixer.name == "Digital Mixer"
    assert mixer.words_ratio is not None
    assert 0.5 < mixer.words_ratio < 2.0
