"""Table 4 configurations reproduce the paper's rows."""

import pytest

from repro.power.model import PowerModel, savings_percent
from repro.workloads.configs import all_applications, application

#: Paper rows with internal inconsistencies (documented in
#: EXPERIMENTS.md) that the consistent model does not chase.
_KNOWN_DIVERGENT = {
    ("802.11a + AES", "FFT"),            # paper lists two FFT values
    ("MPEG4 QCIF", "DCT/Quant/IQ/IDCT"),  # row duplicates a demod row
    ("MPEG4 CIF", "DCT/Quant/IQ/IDCT"),   # below leakage+dynamic floor
}


def test_application_lookup():
    assert application("ddc").name == "DDC"
    with pytest.raises(KeyError):
        application("ghost")


def test_all_applications_complete():
    apps = all_applications()
    assert set(apps) == {
        "ddc", "stereo", "wlan", "wlan_aes", "mpeg4_qcif", "mpeg4_cif",
    }


@pytest.mark.parametrize("key", sorted(all_applications()))
def test_voltages_derive_to_paper_rails(power_model, key):
    """Every component lands on its Table 4 voltage via the curve."""
    expected_rails = {
        "ddc": {"Digital Mixer": 0.8, "CIC Integrator": 1.0,
                "CIC Comb": 0.7, "CFIR": 1.3, "PFIR": 1.3},
        "stereo": {"SVD": 1.5, "PFE": 1.2},
        "wlan": {"FFT": 0.8, "De-mod/De-Interleave": 0.7,
                 "Viterbi ACS": 1.7, "Viterbi Traceback": 1.2},
        "wlan_aes": {"AES": 0.8},
        "mpeg4_qcif": {"Motion Estimation": 0.7,
                       "DCT/Quant/IQ/IDCT": 0.7},
        "mpeg4_cif": {"Motion Estimation": 1.1,
                      "DCT/Quant/IQ/IDCT": 0.7},
    }
    config = application(key)
    power = power_model.application_power(config.name, config.specs)
    for name, rail in expected_rails[key].items():
        assert power.component(name).voltage_v == rail, name


@pytest.mark.parametrize("key", sorted(all_applications()))
def test_component_power_matches_paper_rows(power_model, key):
    """Consistent Table 4 rows reproduce within 2%."""
    config = application(key)
    power = power_model.application_power(config.name, config.specs)
    for component in power.components:
        paper = config.paper_component_mw[component.name]
        if (config.name, component.name) in _KNOWN_DIVERGENT:
            continue
        assert component.total_mw == pytest.approx(paper, rel=0.02), \
            component.name


def test_ddc_total_matches_row_sum(power_model):
    config = application("ddc")
    power = power_model.application_power(config.name, config.specs)
    row_sum = sum(config.paper_component_mw.values())
    assert power.total_mw == pytest.approx(row_sum, rel=0.01)


def test_stereo_savings_match_paper(power_model):
    """SV: 32% whole-application savings (Table 4)."""
    config = application("stereo")
    multi = power_model.application_power(config.name, config.specs)
    single = power_model.application_power(
        config.name, config.specs, single_voltage=True
    )
    saved = savings_percent(multi.total_mw, single.total_mw)
    assert saved == pytest.approx(32.0, abs=1.5)


def test_wlan_savings_small_as_paper_says(power_model):
    """802.11a gains little from voltage scaling (paper: 3%)."""
    config = application("wlan")
    multi = power_model.application_power(config.name, config.specs)
    single = power_model.application_power(
        config.name, config.specs, single_voltage=True
    )
    saved = savings_percent(multi.total_mw, single.total_mw)
    assert saved == pytest.approx(3.0, abs=1.5)


def test_pfe_single_voltage_row(power_model):
    """PFE at the app's 1.5 V rail: paper says 1151.55 mW."""
    config = application("stereo")
    single = power_model.application_power(
        config.name, config.specs, single_voltage=True
    )
    assert single.component("PFE").total_mw == pytest.approx(
        1151.55, rel=0.01
    )


def test_mixer_single_voltage_row(power_model):
    """Mixer at the DDC's 1.3 V rail: paper says 191.83 mW."""
    config = application("ddc")
    single = power_model.application_power(
        config.name, config.specs, single_voltage=True
    )
    assert single.component("Digital Mixer").total_mw == pytest.approx(
        191.83, rel=0.01
    )


def test_tile_counts_match_table4():
    expected = {"ddc": 50, "stereo": 17, "wlan": 20, "wlan_aes": 36,
                "mpeg4_qcif": 10, "mpeg4_cif": 16}
    for key, tiles in expected.items():
        assert application(key).n_tiles == tiles


def test_notes_document_paper_quirks():
    assert application("ddc").notes
    assert application("mpeg4_qcif").notes
    assert application("wlan_aes").notes
