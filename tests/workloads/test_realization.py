"""Integer-divider realization analysis."""

import pytest

from repro.errors import ConfigurationError
from repro.power.interconnect import CommProfile
from repro.power.model import ComponentSpec, PowerModel
from repro.workloads.configs import all_applications, application
from repro.workloads.realization import (
    best_reference,
    realize_application,
    realize_spec,
)


@pytest.fixture(scope="module")
def model():
    return PowerModel()


def test_exact_division_has_no_overhead(model):
    spec = ComponentSpec("x", 4, 100.0)
    realized = realize_spec(spec, reference_mhz=400.0, model=model)
    assert realized.divider == 4
    assert realized.actual_mhz == pytest.approx(100.0)
    assert realized.overhead_fraction == pytest.approx(0.0)


def test_inexact_division_overshoots_from_above(model):
    spec = ComponentSpec("x", 4, 120.0)
    realized = realize_spec(spec, reference_mhz=500.0, model=model)
    assert realized.divider == 4
    assert realized.actual_mhz == pytest.approx(125.0)
    assert realized.actual_mhz >= spec.frequency_mhz
    assert realized.realized_mw > realized.ideal_mw


def test_reference_below_requirement_rejected(model):
    spec = ComponentSpec("x", 4, 300.0)
    with pytest.raises(ConfigurationError):
        realize_spec(spec, reference_mhz=200.0, model=model)


def test_comm_words_per_second_preserved(model):
    spec = ComponentSpec("x", 4, 120.0, CommProfile(2.0))
    realized = realize_spec(spec, reference_mhz=500.0, model=model)
    # words/s = wpc * f must be invariant
    assert realized.actual_mhz * 2.0 * (120.0 / 125.0) \
        == pytest.approx(spec.frequency_mhz * 2.0)


def test_overshoot_can_cross_a_rail(model):
    """A 200 MHz task realized at 380 MHz needs 1.3 V, not 1.0 V -
    the hidden cost of integer dividers."""
    spec = ComponentSpec("integrator", 8, 200.0)
    realized = realize_spec(spec, reference_mhz=380.0, model=model)
    assert realized.actual_mhz == pytest.approx(380.0)
    assert realized.voltage_v == 1.3
    assert realized.overhead_fraction > 0.5


def test_application_realization_sums_components(model):
    config = application("stereo")
    result = realize_application(config.specs, 620.0, model)
    assert result.realized_mw == pytest.approx(
        sum(c.realized_mw for c in result.components)
    )
    assert result.realized_mw >= result.ideal_mw


@pytest.mark.parametrize("key", sorted(all_applications()))
def test_best_reference_keeps_overhead_single_digit(model, key):
    """With a well-chosen PLL frequency, the divider granularity
    costs under 10% on every application."""
    config = application(key)
    best = best_reference(config.specs, model=model)
    assert best.overhead_fraction < 0.10
    assert best.realized_mw >= best.ideal_mw * 0.999


def test_best_reference_beats_naive_choice(model):
    """Searching references matters: the naive 'max component
    frequency' reference is much worse for the DDC."""
    config = application("ddc")
    naive = realize_application(config.specs, 380.0, model)
    best = best_reference(config.specs, model=model)
    assert best.realized_mw < naive.realized_mw


def test_candidate_list_respected(model):
    config = application("mpeg4_qcif")
    result = best_reference(config.specs, candidates=[420.0],
                            model=model)
    assert result.reference_mhz == 420.0
