"""Figure 8 bus-width study and Figure 9/10 leakage sweeps."""

import math

import pytest

from repro.tech.leakage import LEAKAGE_SWEEP_MA_PER_TILE
from repro.workloads.explorer import LeakageStudy, ViterbiBusStudy
from repro.workloads.parallel import parallel_studies


@pytest.fixture(scope="module")
def bus_study():
    return ViterbiBusStudy()


class TestViterbiBusStudy:
    def test_anchor_point_matches_table4(self, bus_study):
        point = bus_study.evaluate(16, 256)
        assert point.feasible
        assert point.frequency_mhz == pytest.approx(540.0, rel=1e-6)
        assert point.voltage_v == 1.7
        assert point.power_mw == pytest.approx(3848.0, rel=0.01)

    def test_narrower_bus_needs_higher_frequency(self, bus_study):
        frequencies = [
            bus_study.required_frequency_mhz(16, w)
            for w in (32, 64, 128, 256, 512, 1024)
        ]
        assert frequencies == sorted(frequencies, reverse=True)

    def test_halving_width_doubles_comm_cycles(self, bus_study):
        wide = bus_study.comm_cycles_per_step(16, 256)
        narrow = bus_study.comm_cycles_per_step(16, 128)
        assert narrow == pytest.approx(2.0 * wide)

    def test_more_tiles_less_compute_per_tile(self, bus_study):
        assert (bus_study.compute_cycles_per_step(32)
                < bus_study.compute_cycles_per_step(16)
                < bus_study.compute_cycles_per_step(8))

    def test_paper_knee_at_256_bits(self, bus_study):
        """128->256 helps a lot; 256->512 helps much less (Sec 5.3)."""
        p128 = bus_study.evaluate(16, 128)
        p256 = bus_study.evaluate(16, 256)
        p512 = bus_study.evaluate(16, 512)
        first_doubling = p128.power_mw - p256.power_mw
        second_doubling = p256.power_mw - p512.power_mw
        assert first_doubling > 4.0 * max(second_doubling, 1.0)

    def test_wider_bus_lower_power_but_more_area(self, bus_study):
        """Sec 5.3: lower power is attainable past 256 bits, at a
        significant area cost."""
        p256 = bus_study.evaluate(16, 256)
        p512 = bus_study.evaluate(16, 512)
        assert p512.power_mw < p256.power_mw
        assert p512.area_mm2 > 1.25 * p256.area_mm2

    def test_narrow_buses_infeasible(self, bus_study):
        """32/64-bit buses cannot sustain 54 Mbps at any voltage."""
        for width in (32, 64):
            point = bus_study.evaluate(16, width)
            assert not point.feasible
            assert math.isnan(point.power_mw)

    def test_sweep_covers_grid(self, bus_study):
        points = bus_study.sweep()
        assert len(points) == 18
        assert {p.n_tiles for p in points} == {8, 16, 32}

    def test_32_tile_curve_reaches_figure8_right_edge(self, bus_study):
        """32 tiles at 1024 bits sits near 160 mm^2 in Figure 8."""
        point = bus_study.evaluate(32, 1024)
        assert point.area_mm2 == pytest.approx(157.0, abs=5.0)


class TestLeakageStudy:
    def test_series_cover_all_allocations(self):
        study = LeakageStudy(parallel_studies()["mpeg4"])
        series = study.series()
        assert [s.n_tiles for s in series] == [8, 12, 20, 36]
        for line in series:
            assert len(line.power_mw) == len(LEAKAGE_SWEEP_MA_PER_TILE)

    def test_power_increases_with_leakage(self):
        study = LeakageStudy(parallel_studies()["ddc"])
        for line in study.series():
            assert list(line.power_mw) == sorted(line.power_mw)

    def test_slope_scales_with_tile_count(self):
        """More tiles leak more: the 50-tile DDC line is steeper."""
        study = LeakageStudy(parallel_studies()["ddc"])
        series = {s.n_tiles: s for s in study.series()}
        def slope(line):
            return (line.power_mw[-1] - line.power_mw[0]) / (
                line.leakage_ma[-1] - line.leakage_ma[0]
            )
        assert slope(series[50]) > slope(series[26]) > slope(series[14])

    def test_mpeg4_crossover_near_paper(self):
        """Figure 10: the 12 vs 36 tile crossover sits near 14.8 mA."""
        study = LeakageStudy(parallel_studies()["mpeg4"])
        crossing = study.crossover_ma(12, 36)
        assert crossing is not None
        assert 7.4 < crossing < 22.2  # within one sweep gridpoint

    def test_crossover_consistent_with_series(self):
        """Below the crossover 36 tiles wins; above it 12 wins."""
        study = LeakageStudy(parallel_studies()["mpeg4"])
        crossing = study.crossover_ma(12, 36)
        below = study._power_at(36, crossing - 2.0) \
            - study._power_at(12, crossing - 2.0)
        above = study._power_at(36, crossing + 2.0) \
            - study._power_at(12, crossing + 2.0)
        assert below < 0 < above

    def test_ddc_50_vs_26_crossover_exists(self):
        """Figure 9 shows the 50-tile DDC losing at high leakage."""
        study = LeakageStudy(parallel_studies()["ddc"])
        crossing = study.crossover_ma(26, 50)
        assert crossing is not None
        assert 1.5 < crossing < 59.3

    def test_identical_configs_have_no_crossover(self):
        study = LeakageStudy(parallel_studies()["mpeg4"])
        assert study.crossover_ma(12, 12) is None
