"""Bursty scenarios and the governed scenario harness."""

import pytest

from repro.errors import ConfigurationError
from repro.workloads.dvfs import (
    BurstyScenario,
    mpeg4_scene_scenario,
    run_scenario,
    wlan_mcs_scenario,
)

FRAMES = 8  # short traces keep the suite fast


@pytest.fixture(scope="module")
def wlan():
    return wlan_mcs_scenario(frames=FRAMES)


@pytest.fixture(scope="module")
def mpeg4():
    return mpeg4_scene_scenario(frames=FRAMES)


class TestScenarioShape:
    def test_traces_are_deterministic(self):
        assert wlan_mcs_scenario().frame_loads \
            == wlan_mcs_scenario().frame_loads
        assert mpeg4_scene_scenario().frame_loads \
            == mpeg4_scene_scenario().frame_loads
        assert wlan_mcs_scenario(seed=1).frame_loads \
            != wlan_mcs_scenario(seed=2).frame_loads

    def test_traces_are_really_bursty(self, wlan, mpeg4):
        for scenario in (wlan, mpeg4):
            assert scenario.peak_words >= 3 * min(scenario.frame_loads)

    def test_static_divider_sustains_the_peak(self, wlan):
        divider = wlan.static_divider()
        budget = wlan.frame_ticks / divider
        assert budget >= wlan.peak_words * wlan.cycles_per_word
        # and the next slower rung would not make it
        ladder = wlan.divider_ladder
        slower = [d for d in ladder if d > divider]
        if slower:
            assert wlan.frame_ticks / slower[0] \
                < wlan.provision_guard * wlan.peak_words \
                * wlan.cycles_per_word

    def test_epoch_and_frame_alignment_is_validated(self):
        with pytest.raises(ConfigurationError, match="multiple"):
            BurstyScenario(
                name="bad", key="bad", frame_loads=(4,),
                frame_ticks=100, epoch_ticks=100,
                divider_ladder=(1, 8),
            )
        with pytest.raises(ConfigurationError, match="divide"):
            BurstyScenario(
                name="bad", key="bad", frame_loads=(4,),
                frame_ticks=2048, epoch_ticks=513,
                divider_ladder=(1,),
            )


class TestHarness:
    def test_every_word_is_processed(self, wlan):
        result = run_scenario(wlan, "static")
        assert result.produced_samples[-1][1] == wlan.total_words
        assert result.deadline_misses == 0

    def test_all_governors_meet_deadlines(self, mpeg4):
        for kind in ("static", "occupancy_pi", "slack"):
            result = run_scenario(mpeg4, kind)
            assert result.deadline_misses == 0, kind

    def test_feedback_governors_beat_static(self, wlan):
        static = run_scenario(wlan, "static")
        for kind in ("occupancy_pi", "slack"):
            governed = run_scenario(wlan, kind)
            assert governed.energy_nj < static.energy_nj, kind

    def test_energy_conservation_is_exact(self, wlan):
        for kind in ("static", "occupancy_pi", "slack"):
            result = run_scenario(wlan, kind)
            assert result.conservation_error <= 1e-9
            # every transition charge really landed in the ledger
            assert result.ledger.transition_nj == pytest.approx(
                sum(t.energy_nj for t in result.run.transitions)
            )

    def test_static_governor_never_transitions(self, wlan):
        result = run_scenario(wlan, "static")
        assert result.transition_count == 0
        assert result.transition_nj == 0.0

    def test_residency_spans_the_ladder_under_slack(self, wlan):
        result = run_scenario(wlan, "slack")
        residency = result.frequency_residency(0)
        assert len(residency) >= 2  # it really moved around
        assert sum(residency.values()) \
            == result.run.stats.reference_ticks

    def test_engines_agree_on_a_governed_scenario(self, wlan):
        reference = run_scenario(wlan, "slack", engine="reference")
        compiled = run_scenario(wlan, "slack", engine="compiled")
        assert compiled.run.stats == reference.run.stats
        assert compiled.run.timeline == reference.run.timeline
        assert compiled.energy_nj == reference.energy_nj
        assert compiled.deadline_misses == reference.deadline_misses
