"""Parallelization models (Figures 7/9/10 configurations)."""

import pytest

from repro.errors import ConfigurationError
from repro.power.interconnect import CommProfile
from repro.power.model import PowerModel
from repro.tech.parameters import PAPER_TECHNOLOGY
from repro.workloads.parallel import (
    ParallelComponent,
    ParallelStudy,
    parallel_studies,
)


@pytest.fixture(scope="module")
def exploration_model():
    return PowerModel(rails=PAPER_TECHNOLOGY.exploration_rails)


def test_anchor_reproduces_table4_frequency():
    component = ParallelComponent("CFIR", 16, 380.0)
    assert component.frequency_at(16) == pytest.approx(380.0)


def test_fewer_tiles_need_higher_frequency():
    component = ParallelComponent("CFIR", 16, 380.0)
    assert component.frequency_at(8) > 380.0
    assert component.frequency_at(32) < 380.0


def test_efficiency_penalty_grows_with_tiles():
    component = ParallelComponent("x", 8, 100.0, sigma=0.1)
    # aggregate MHz-tiles grows with the tile count
    assert (component.frequency_at(16) * 16
            > component.frequency_at(8) * 8)


def test_comm_zero_for_single_tile_and_silent_components():
    noisy = ParallelComponent("x", 8, 100.0, CommProfile(2.0))
    silent = ParallelComponent("y", 8, 100.0, CommProfile(0.0))
    assert noisy.comm_at(1).words_per_cycle == 0.0
    assert silent.comm_at(16).words_per_cycle == 0.0


def test_comm_words_grow_with_tiles():
    component = ParallelComponent("x", 8, 100.0, CommProfile(2.0))
    fewer = component.comm_at(4).words_per_cycle
    anchor = component.anchor_comm.words_per_cycle
    more = component.comm_at(16).words_per_cycle
    assert fewer < anchor < more


def test_span_shrinks_with_columns_but_respects_floor():
    component = ParallelComponent("x", 8, 100.0, CommProfile(2.0),
                                  span_floor=0.4)
    assert component.comm_at(32).span_fraction == pytest.approx(
        max(0.4, 3.0 / 9.0)
    )
    pinned = ParallelComponent("y", 8, 100.0, CommProfile(2.0),
                               span_floor=1.0)
    assert pinned.comm_at(32).span_fraction == 1.0


def test_spec_at_anchor_uses_anchor_comm():
    profile = CommProfile(2.0, span_fraction=0.5)
    component = ParallelComponent("x", 8, 100.0, profile)
    assert component.spec_at(8).comm == profile


def test_invalid_tile_count():
    component = ParallelComponent("x", 8, 100.0)
    with pytest.raises(ConfigurationError):
        component.efficiency_factor(0)


def test_studies_have_figure_axis_points():
    studies = parallel_studies()
    assert studies["ddc"].tile_points == [14, 26, 50]
    assert studies["stereo"].tile_points == [5, 9, 17]
    assert studies["wlan"].tile_points == [12, 20, 36]
    assert studies["mpeg4"].tile_points == [8, 12, 20, 36]


def test_allocation_sums_validated():
    with pytest.raises(ConfigurationError):
        ParallelStudy(
            name="bad",
            components=(ParallelComponent("a", 4, 100.0),),
            allocations={8: {"a": 4}},  # sums to 4, not 8
        )
    with pytest.raises(ConfigurationError):
        ParallelStudy(
            name="bad",
            components=(ParallelComponent("a", 4, 100.0),),
            allocations={4: {"b": 4}},  # wrong component name
        )


def test_unknown_allocation_rejected():
    study = parallel_studies()["ddc"]
    with pytest.raises(ConfigurationError):
        study.configuration(99)
    with pytest.raises(KeyError):
        study.component("ghost")


@pytest.mark.parametrize("key", ["ddc", "stereo", "wlan", "mpeg4"])
def test_all_configurations_feasible(exploration_model, key):
    """Every figure configuration quantizes onto some rail."""
    study = parallel_studies()[key]
    for total in study.tile_points:
        power = exploration_model.application_power(
            study.name, study.configuration(total)
        )
        assert power.total_mw > 0.0
        assert power.n_tiles == total


def test_anchor_configurations_match_table4(exploration_model,
                                            power_model):
    """The largest DDC/SV/802.11a points ARE the Table 4 mappings."""
    from repro.workloads.configs import application
    pairs = [("ddc", 50), ("stereo", 17), ("wlan", 20)]
    studies = parallel_studies()
    for key, tiles in pairs:
        study_power = exploration_model.application_power(
            key, studies[key].configuration(tiles)
        )
        config = application(key)
        table4_power = power_model.application_power(
            config.name, config.specs
        )
        assert study_power.total_mw == pytest.approx(
            table4_power.total_mw, rel=1e-6
        )


def test_parallelization_reduces_power_for_ddc_sv_mpeg4(
    exploration_model,
):
    """Figure 7's headline: more tiles, less power (at nominal leak)."""
    studies = parallel_studies()
    for key in ("ddc", "stereo", "mpeg4"):
        study = studies[key]
        totals = [
            exploration_model.application_power(
                study.name, study.configuration(t)
            ).total_mw
            for t in study.tile_points
        ]
        assert totals == sorted(totals, reverse=True), key


def test_wlan_shows_diminishing_returns(exploration_model):
    """802.11a's 36-tile point barely improves on 20 tiles while its
    interconnect share grows (Section 5.2)."""
    study = parallel_studies()["wlan"]
    p20 = exploration_model.application_power(
        study.name, study.configuration(20)
    )
    p36 = exploration_model.application_power(
        study.name, study.configuration(36)
    )
    gain = (p20.total_mw - p36.total_mw) / p20.total_mw
    assert gain < 0.10
    share20 = p20.overhead_mw / p20.total_mw
    share36 = p36.overhead_mw / p36.total_mw
    assert share36 > share20
