"""Batched runs: correctness, caching, and the parallel fan-out."""

import pytest

from repro.arch.config import ChipConfig, ColumnConfig
from repro.isa.assembler import assemble
from repro.sim.batch import (
    ResultCache,
    RunRequest,
    execute,
    parallel_map,
    request_key,
    run_many,
)
from repro.sim.simulator import run_single_column


def _square(x):
    return x * x


def make_request(iterations=20, divider=1, engine="compiled", label=""):
    program = assemble(f"""
        movi r0, 0
        loop {iterations}
          addi r0, r0, 1
        endloop
        halt
    """, "spin")
    return RunRequest(
        config=ChipConfig(
            reference_mhz=100.0,
            columns=(ColumnConfig(divider=divider),),
        ),
        programs=(program,),
        engine=engine,
        label=label,
    )


def test_execute_matches_run_single_column():
    request = make_request(iterations=15, divider=3)
    program = assemble("""
        movi r0, 0
        loop 15
          addi r0, r0, 1
        endloop
        halt
    """)
    _, expected = run_single_column(program, divider=3)
    assert execute(request) == expected


def test_request_key_distinguishes_configs_not_labels():
    base = make_request(divider=2, label="a")
    relabeled = make_request(divider=2, label="b")
    different = make_request(divider=4, label="a")
    assert request_key(base) == request_key(relabeled)
    assert request_key(base) != request_key(different)


def test_run_many_preserves_order_and_labels():
    requests = [
        make_request(divider=d, label=f"d{d}") for d in (4, 1, 2)
    ]
    results = run_many(requests)
    assert [r.label for r in results] == ["d4", "d1", "d2"]
    ticks = [r.stats.reference_ticks for r in results]
    assert ticks[0] > ticks[2] > ticks[1]  # slower divider, more ticks


def test_run_many_serves_repeats_from_cache():
    cache = ResultCache()
    requests = [make_request(divider=d) for d in (1, 2)]
    first = run_many(requests, cache=cache)
    assert [r.cached for r in first] == [False, False]
    second = run_many(requests, cache=cache)
    assert [r.cached for r in second] == [True, True]
    assert [r.stats for r in second] == [r.stats for r in first]
    assert cache.hits == 2 and cache.misses == 2


def test_run_many_dedupes_identical_requests_within_a_batch():
    cache = ResultCache()
    results = run_many([make_request(divider=2),
                        make_request(divider=2)], cache=cache)
    assert [r.cached for r in results] == [False, True]
    assert results[0].stats == results[1].stats
    # duplicates share one lookup: counters agree with executed work
    assert cache.misses == 1 and cache.hits == 0


def test_disk_cache_survives_a_new_cache_instance(tmp_path):
    request = make_request(divider=2)
    run_many([request], cache=ResultCache(tmp_path))
    rehydrated = ResultCache(tmp_path)
    results = run_many([request], cache=rehydrated)
    assert results[0].cached
    assert rehydrated.hits == 1


def test_run_many_engines_agree():
    reference = run_many([make_request(divider=4, engine="reference")])
    compiled = run_many([make_request(divider=4, engine="compiled")])
    assert reference[0].stats == compiled[0].stats


def test_run_many_across_worker_processes():
    requests = [make_request(divider=d) for d in (1, 2, 4)]
    parallel = run_many(requests, processes=2)
    serial = run_many(requests, processes=1)
    assert [r.stats for r in parallel] == [r.stats for r in serial]


def test_parallel_map_serial_and_pooled_agree():
    items = list(range(6))
    assert parallel_map(_square, items) == [x * x for x in items]
    assert parallel_map(_square, items, processes=2) \
        == [x * x for x in items]


def test_parallel_map_empty():
    assert parallel_map(_square, []) == []


def _explode_on_three(x):
    if x == 3:
        raise ValueError("boom")
    return x * x


def test_parallel_map_attaches_job_label_serial():
    with pytest.raises(ValueError) as excinfo:
        parallel_map(
            _explode_on_three, [1, 3, 5], processes=1,
            labels=["a", "b", "c"],
        )
    assert any("'b'" in note for note in excinfo.value.__notes__)


def test_parallel_map_attaches_job_label_pooled():
    with pytest.raises(ValueError) as excinfo:
        parallel_map(
            _explode_on_three, [1, 2, 3, 4], processes=2,
            labels=["w", "x", "y", "z"],
        )
    assert any("'y'" in note for note in excinfo.value.__notes__)


def test_parallel_map_default_labels_name_the_item_index():
    with pytest.raises(ValueError) as excinfo:
        parallel_map(_explode_on_three, [0, 3], processes=2)
    assert any("item 1" in note for note in excinfo.value.__notes__)


def test_parallel_map_rejects_mismatched_labels():
    with pytest.raises(ValueError):
        parallel_map(_square, [1, 2], labels=["only-one"])


def test_parallel_map_pool_is_usable_after_worker_error():
    # A failing batch must terminate its pool cleanly (no leaked
    # workers wedging the next call) and leave parallel_map fully
    # functional.
    with pytest.raises(ValueError):
        parallel_map(_explode_on_three, [3, 1], processes=2)
    assert parallel_map(_square, [5, 6], processes=2) == [25, 36]


def test_disk_cache_quarantines_truncated_pickle(tmp_path):
    """Regression (issue #9): a corrupt .stats entry crashed get()."""
    request = make_request(divider=2)
    from repro.sim.batch import request_key as key_of

    run_many([request], cache=ResultCache(tmp_path))
    key = key_of(request)
    # garbage where the pickle should be
    (tmp_path / f"{key}.stats").write_bytes(b"\x80\x04 truncated")
    poisoned = ResultCache(tmp_path)
    from repro.obs.events import subscribed

    events = []
    with subscribed(events.append):
        results = run_many([request], cache=poisoned)
    # treated as a miss, re-executed, quarantined - never a raise
    assert not results[0].cached
    assert poisoned.quarantined == 1
    assert (tmp_path / "quarantine" / f"{key}.stats").exists()
    assert not (tmp_path / "quarantine" / f"{key}.stats.tmp").exists()
    assert "cache_corrupt" in [event.name for event in events]
    # the rewritten entry serves clean again
    assert run_many([request], cache=ResultCache(tmp_path))[0].cached


def test_disk_cache_detects_flipped_byte_via_checksum(tmp_path):
    request = make_request(divider=4)
    from repro.sim.batch import request_key as key_of

    run_many([request], cache=ResultCache(tmp_path))
    key = key_of(request)
    path = tmp_path / f"{key}.stats"
    blob = bytearray(path.read_bytes())
    blob[len(blob) // 2] ^= 0xFF
    path.write_bytes(bytes(blob))
    poisoned = ResultCache(tmp_path)
    assert poisoned.get(key) is None
    assert poisoned.quarantined == 1
    assert poisoned.misses == 1


def test_disk_cache_quarantines_entry_missing_its_sidecar(tmp_path):
    request = make_request(divider=2)
    from repro.sim.batch import request_key as key_of

    cache = ResultCache(tmp_path)
    run_many([request], cache=cache)
    key = key_of(request)
    (tmp_path / f"{key}.sha256").unlink()
    rehydrated = ResultCache(tmp_path)
    assert rehydrated.get(key) is None
    assert rehydrated.quarantined == 1


def test_disk_cache_writes_are_atomic_with_sidecars(tmp_path):
    request = make_request(divider=2)
    from repro.sim.batch import CACHE_MAGIC, request_key as key_of

    run_many([request], cache=ResultCache(tmp_path))
    key = key_of(request)
    blob = (tmp_path / f"{key}.stats").read_bytes()
    assert blob.startswith(CACHE_MAGIC)
    import hashlib

    recorded = (tmp_path / f"{key}.sha256").read_text().strip()
    assert recorded == hashlib.sha256(blob).hexdigest()
    # no leftover temp files from the atomic rename
    assert not list(tmp_path.glob("*.tmp.*"))
