"""Dynamic quiescence demotion: parked DOUs leave the dense loop.

A ``repeat=k`` DOU program is statically *live* (its reset state
transfers), so the pre-demotion engine stepped it on every reference
tick forever - including the whole post-halt drain.  These tests pin
the new contract: once the machine parks in its closed idle orbit the
compiled engine stops stepping it (provably forever), the statistics
stay bit-identical to the reference engine through demotion, retunes,
and governed runs, and the drain never dense-steps a parked machine.
"""

import pytest

from repro.arch.chip import Chip
from repro.arch.config import ChipConfig, ColumnConfig
from repro.arch.dou_compiler import broadcast_schedule
from repro.control.epochs import run_governed
from repro.control.governor import Governor
from repro.isa.assembler import assemble
from repro.sim.engine import CompiledEngine, ReferenceEngine
from repro.sim.simulator import Simulator
from repro.sim.stats import collect

#: Words broadcast by the parking DOU before it idles forever.
WORDS = 6
#: Compute iterations that keep the column busy long after the park.
SPIN = 400


def _worker_program():
    return assemble(f"""
        loop {WORDS}
          recv r1
          add r2, r2, r1
        endloop
        movi r0, 0
        loop {SPIN}
          addi r0, r0, 1
        endloop
        halt
    """, "worker")


def build_parked_dou_chip(second_column: bool = False) -> Chip:
    """Column 0 broadcasts WORDS words then its DOU parks forever.

    The broadcast schedule uses ``repeat=WORDS``: statically live,
    dynamically quiescent after WORDS bus cycles - long before the
    column finishes its compute tail.  The words are primed into the
    write buffer so every transfer cycle succeeds under strict
    schedules.  ``second_column`` adds a compute-only column at a
    deeper divider so halts stagger and the engine switches striding
    modes mid-run.
    """
    columns = [ColumnConfig(divider=3)]
    programs = [_worker_program()]
    dous = [broadcast_schedule(src=0, repeat=WORDS)]
    if second_column:
        columns.append(ColumnConfig(divider=8))
        programs.append(assemble(f"""
            movi r0, 0
            loop {SPIN // 2}
              addi r0, r0, 1
            endloop
            halt
        """, "spinner"))
        dous.append(None)
    config = ChipConfig(
        reference_mhz=600.0,
        columns=tuple(columns),
    )
    chip = Chip(config, programs=programs, dou_programs=dous)
    for value in range(1, WORDS + 1):
        chip.columns[0].tiles[0].write_buffer.push(value)
    return chip


def _count_steps(chip) -> list:
    """Wrap every DOU's step() with a call counter (returned live)."""
    counts = []
    for column in chip.columns:
        dou = column.dou
        tally = [0]

        def wrapper(original=dou.step, tally=tally):
            tally[0] += 1
            return original()

        dou.step = wrapper
        counts.append(tally)
    return counts


# ----------------------------------------------------------------------
# differential: parked repeat=k programs
# ----------------------------------------------------------------------
@pytest.mark.parametrize("second_column", [False, True])
def test_differential_parked_dou(second_column):
    reference = Simulator(build_parked_dou_chip(second_column),
                          engine="reference").run()
    compiled = Simulator(build_parked_dou_chip(second_column),
                         engine="compiled").run()
    assert compiled == reference
    # The words really moved before the park.
    assert compiled.column(0).bus_words == WORDS


def test_differential_parked_dou_architectural_state():
    chips = {}
    for engine in ("reference", "compiled"):
        chip = build_parked_dou_chip()
        Simulator(chip, engine=engine).run()
        chips[engine] = chip
    for ref_tile, cmp_tile in zip(chips["reference"].columns[0].tiles,
                                  chips["compiled"].columns[0].tiles):
        assert cmp_tile.regs.read("R2") == ref_tile.regs.read("R2")


def test_compiled_engine_demotes_parked_dou():
    """The parked machine leaves the dense loop (far fewer steps)."""
    chip = build_parked_dou_chip()
    engine = CompiledEngine(chip)
    counts = _count_steps(chip)
    stats = engine.run()
    # The DOU parks after WORDS bus cycles; the demotion checkpoint
    # lets at most a small multiple of the check interval leak past.
    assert counts[0][0] < 3 * engine.DEMOTION_CHECK_TICKS
    assert counts[0][0] < stats.reference_ticks // 4
    # Cycles were still accounted in full.
    assert chip.columns[0].dou.cycles == stats.reference_ticks


def test_drain_never_steps_a_parked_dou():
    """Regression: the post-halt drain must honor quiescence."""
    chip = build_parked_dou_chip()
    engine = CompiledEngine(chip)
    counts = _count_steps(chip)
    engine.advance(10_000_000)  # runs to the all-halt observation tick
    steps_before_drain = counts[0][0]
    stats = engine.run()  # contributes only the post-halt drain
    assert counts[0][0] == steps_before_drain, (
        "drain dense-stepped a DOU that had already parked"
    )
    assert stats.reference_ticks == chip.reference_ticks


# ----------------------------------------------------------------------
# demotion across retune boundaries + plan invalidation
# ----------------------------------------------------------------------
def _drive_with_retunes(engine_name):
    chip = build_parked_dou_chip()
    engine = (ReferenceEngine if engine_name == "reference"
              else CompiledEngine)(chip)
    snapshots = []
    for dividers in ((6,), (3,), (6,), (12,)):
        consumed = engine.advance(120)  # 120 = multiple of every divider
        snapshots.append((consumed, collect(chip)))
        if chip.all_halted:
            break
        chip.retune(dividers)
    stats = engine.run()
    return snapshots, stats, engine


def test_demotion_survives_retune_boundaries():
    ref_snapshots, ref_stats, _ = _drive_with_retunes("reference")
    cmp_snapshots, cmp_stats, _ = _drive_with_retunes("compiled")
    assert cmp_snapshots == ref_snapshots
    assert cmp_stats == ref_stats


def test_plan_cache_invalidates_per_divider_tuple():
    _, _, engine = _drive_with_retunes("compiled")
    # One compiled plan per distinct divider tuple the run visited.
    assert set(engine._plans) >= {(6,), (3,)}
    for key, plan in engine._plans.items():
        assert plan.period == key[0]
        assert len(plan.edges) == plan.period
    # Revisiting an operating point reuses the cached object.
    chip = engine.chip
    assert engine._plan() is engine._plans[chip.clock.dividers]


# ----------------------------------------------------------------------
# governed runs (epoch layer) with a parking DOU
# ----------------------------------------------------------------------
class _HoppingGovernor(Governor):
    """Deterministically hops operating points for a few epochs.

    The hops stop after four decisions (each one costs a 60-tick
    PLL-relock gate, so endless alternation would starve the column),
    leaving the run to finish at the fast point.
    """

    name = "hopping"

    def __init__(self):
        self._count = 0

    def reset(self):
        self._count = 0

    def decide(self, telemetry):
        self._count += 1
        if self._count <= 4:
            return (6,) if self._count % 2 else (3,)
        return (3,)


@pytest.mark.parametrize("engine", ["reference", "compiled"])
def test_governed_run_with_parked_dou_is_engine_invariant(engine):
    runs = {}
    for name in ("reference", engine):
        chip = build_parked_dou_chip()
        runs[name] = run_governed(
            chip, _HoppingGovernor(), engine=name,
            epoch_hyperperiods=40,
        )
    assert runs[engine].stats == runs["reference"].stats
    assert runs[engine].timeline == runs["reference"].timeline
    assert runs[engine].transitions == runs["reference"].transitions
    assert len(runs[engine].timeline) > 2  # the run really epoch-split
