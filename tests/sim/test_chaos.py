"""Chaos suite: supervised sweeps survive every injected fault class.

The standing contract (ISSUE 9 / docs/robustness.md): with seeded
injection of worker kills, per-job timeouts, engine faults, and cache
corruption, ``run_many_outcomes`` completes the sweep with statistics
**bit-identical** to a fault-free run, and every retry, degradation,
and quarantine is visible in the outcomes, the counters, and on the
obs bus.

CI runs this file once per seed of its matrix (``CHAOS_SEED``); the
injector is a pure function of the seed, so any red cell replays
locally with the same environment variable.
"""

import os

import pytest

from repro.arch.config import ChipConfig, ColumnConfig
from repro.isa.assembler import assemble
from repro.obs.events import subscribed
from repro.sim.batch import ResultCache, run_many, RunRequest
from repro.sim.faultinject import FaultInjector, FaultSpec
from repro.sim.resilience import (
    FaultPolicy,
    outcomes_snapshot,
    reset_outcome_counters,
    run_many_outcomes,
)

SEED = int(os.environ.get("CHAOS_SEED", "11"))


class _Recorder:
    def __init__(self):
        self.names = []

    def handle(self, event):
        self.names.append(event.name)


@pytest.fixture(autouse=True)
def _clean_counters():
    reset_outcome_counters()
    yield
    reset_outcome_counters()


def _request(iterations, divider, label):
    program = assemble(f"""
        movi r0, 0
        loop {iterations}
          addi r0, r0, 1
        endloop
        halt
    """, "spin")
    return RunRequest(
        config=ChipConfig(
            reference_mhz=100.0,
            columns=(ColumnConfig(divider=divider),),
        ),
        programs=(program,),
        engine="compiled",
        label=label,
    )


def _sweep():
    """A small DSE-shaped sweep, in-batch duplicate included."""
    requests = [
        _request(iterations, divider, f"cfg{i}")
        for i, (iterations, divider) in enumerate(
            [(8, 1), (12, 2), (16, 4), (10, 8), (20, 2)]
        )
    ]
    requests.append(_request(12, 2, "cfg1-duplicate"))
    return requests


@pytest.fixture(scope="module")
def baseline():
    """Fault-free stats for the sweep (the bit-identity anchor)."""
    outcomes = run_many_outcomes(_sweep(), processes=1)
    assert all(o.status == "ok" for o in outcomes)
    return [o.stats for o in outcomes]


# The per-class injections below run at rate=1.0 on the first
# attempt: every job exercises the fault path, retries run clean, so
# the sweep must converge regardless of seed - while the seed still
# varies backoff jitter and corruption positions through the hash.

def test_worker_kills_serial(baseline):
    injector = FaultInjector(
        SEED, [FaultSpec("kill_worker", rate=1.0, attempts=(1,))]
    )
    recorder = _Recorder()
    with subscribed(recorder):
        outcomes = run_many_outcomes(
            _sweep(), processes=1,
            policy=FaultPolicy(max_retries=2, backoff_base_s=0.0),
            injector=injector,
        )
    assert all(o.ok for o in outcomes)
    assert [o.stats for o in outcomes] == baseline
    snapshot = outcomes_snapshot()
    assert snapshot["worker_crashed"] == 5  # unique jobs, not dupes
    assert snapshot["retries"] == 5
    assert recorder.names.count("job_worker_crashed") == 5
    assert recorder.names.count("job_retry") == 5


def test_worker_kills_real_processes(baseline):
    injector = FaultInjector(
        SEED, [FaultSpec("kill_worker", rate=1.0, attempts=(1,))]
    )
    outcomes = run_many_outcomes(
        _sweep(), processes=2,
        policy=FaultPolicy(max_retries=2, backoff_base_s=0.0),
        injector=injector,
    )
    assert all(o.ok for o in outcomes)
    assert [o.stats for o in outcomes] == baseline
    assert outcomes_snapshot()["worker_crashed"] == 5


def test_job_timeouts_serial(baseline):
    injector = FaultInjector(
        SEED, [FaultSpec("delay_job", rate=1.0, attempts=(1,),
                         delay_s=0.05)]
    )
    recorder = _Recorder()
    with subscribed(recorder):
        outcomes = run_many_outcomes(
            _sweep(), processes=1,
            policy=FaultPolicy(max_retries=2, timeout_s=0.02,
                               backoff_base_s=0.0),
            injector=injector,
        )
    assert all(o.ok for o in outcomes)
    assert [o.stats for o in outcomes] == baseline
    assert outcomes_snapshot()["timed_out"] == 5
    assert recorder.names.count("job_timeout") == 5


def test_job_timeouts_real_processes(baseline):
    injector = FaultInjector(
        SEED, [FaultSpec("delay_job", rate=1.0, attempts=(1,),
                         delay_s=0.8)]
    )
    outcomes = run_many_outcomes(
        _sweep(), processes=2,
        policy=FaultPolicy(max_retries=2, timeout_s=0.2,
                           backoff_base_s=0.0),
        injector=injector,
    )
    assert all(o.ok for o in outcomes)
    assert [o.stats for o in outcomes] == baseline
    assert outcomes_snapshot()["timed_out"] >= 5


def test_engine_faults_degrade_bit_identical(baseline):
    injector = FaultInjector(
        SEED, [FaultSpec("raise_in_engine", rate=1.0, attempts=(1,))]
    )
    recorder = _Recorder()
    with subscribed(recorder):
        outcomes = run_many_outcomes(
            _sweep(), processes=1,
            policy=FaultPolicy(max_retries=2, backoff_base_s=0.0),
            injector=injector,
        )
    assert all(o.ok for o in outcomes)
    assert all(o.status == "degraded" for o in outcomes)
    # the reference fallback is bit-identical - the engine contract
    assert [o.stats for o in outcomes] == baseline
    assert outcomes_snapshot()["degraded"] == 5
    assert recorder.names.count("job_degraded") == 5


def test_cache_corruption_quarantines_and_recomputes(
    baseline, tmp_path
):
    cache_dir = tmp_path / "cache"
    warm = ResultCache(cache_dir)
    first = run_many_outcomes(_sweep(), processes=1, cache=warm)
    assert [o.stats for o in first] == baseline
    injector = FaultInjector(
        SEED, [FaultSpec("corrupt_cache", rate=1.0)]
    )
    corrupted = injector.corrupt_cache(ResultCache(cache_dir))
    assert len(corrupted) == 5  # every unique on-disk entry
    recorder = _Recorder()
    rehydrated = ResultCache(cache_dir)
    with subscribed(recorder):
        again = run_many_outcomes(
            _sweep(), processes=1, cache=rehydrated
        )
    assert all(o.ok for o in again)
    assert [o.stats for o in again] == baseline
    assert rehydrated.quarantined == 5
    assert recorder.names.count("cache_corrupt") == 5
    assert outcomes_snapshot()["cache_quarantined"] == 5
    quarantine = cache_dir / "quarantine"
    assert len(list(quarantine.glob("*.stats"))) == 5
    # the refreshed entries verify clean on a third pass
    third = ResultCache(cache_dir)
    final = run_many_outcomes(_sweep(), processes=1, cache=third)
    assert all(o.cached for o in final)
    assert [o.stats for o in final] == baseline


def test_fault_storm_converges_bit_identical(baseline, tmp_path):
    """All fault classes armed at once, partial rates, seed-varied.

    Which jobs get hit depends on the seed (that is the point of the
    CI matrix); whatever fires, the sweep must converge to
    bit-identical statistics with every fault accounted for.
    """
    cache_dir = tmp_path / "storm-cache"
    warm = ResultCache(cache_dir)
    run_many_outcomes(_sweep(), processes=1, cache=warm)
    injector = FaultInjector(SEED, [
        FaultSpec("kill_worker", rate=0.5, attempts=(1,)),
        FaultSpec("raise_in_engine", rate=0.5, attempts=(1,)),
        FaultSpec("delay_job", rate=0.4, attempts=(1,),
                  delay_s=0.05),
        FaultSpec("corrupt_cache", rate=0.6),
    ])
    injector.corrupt_cache(ResultCache(cache_dir))
    cache = ResultCache(cache_dir)
    outcomes = run_many_outcomes(
        _sweep(), processes=1,
        policy=FaultPolicy(max_retries=3, timeout_s=0.02,
                           backoff_base_s=0.0),
        injector=injector, cache=cache,
    )
    assert all(o.ok for o in outcomes)
    assert [o.stats for o in outcomes] == baseline
    snapshot = outcomes_snapshot()
    assert snapshot["cache_quarantined"] == cache.quarantined
    # bookkeeping is self-consistent: every retry stems from a
    # classified fault attempt
    assert snapshot["retries"] == (
        snapshot["worker_crashed"] + snapshot["timed_out"]
        + snapshot["failed"]
    )


def test_supervised_run_many_is_a_drop_in_under_faults(baseline):
    """run_many(policy=..., injector=...) returns plain BatchResults."""
    injector = FaultInjector(
        SEED, [FaultSpec("kill_worker", rate=1.0, attempts=(1,))]
    )
    results = run_many(
        _sweep(), processes=1,
        policy=FaultPolicy(max_retries=2, backoff_base_s=0.0),
        injector=injector,
    )
    assert [r.stats for r in results] == baseline
