"""Supervised batch execution: outcomes, retries, degradation."""

import pytest

from repro.arch.config import ChipConfig, ColumnConfig
from repro.errors import BatchError
from repro.isa.assembler import assemble
from repro.obs.events import BUS, subscribed
from repro.sim import resilience
from repro.sim.batch import ResultCache, RunRequest, run_many
from repro.sim.faultinject import FaultInjector, FaultSpec
from repro.sim.resilience import (
    FaultPolicy,
    JobOutcome,
    backoff_delay,
    outcomes_snapshot,
    reset_outcome_counters,
    run_many_outcomes,
    set_default_policy,
)


class _Recorder:
    def __init__(self):
        self.events = []

    def handle(self, event):
        self.events.append(event)

    def names(self):
        return [event.name for event in self.events]


@pytest.fixture(autouse=True)
def _clean_counters():
    reset_outcome_counters()
    yield
    reset_outcome_counters()
    set_default_policy(None)


def make_request(iterations=12, divider=1, engine="compiled",
                 label=""):
    program = assemble(f"""
        movi r0, 0
        loop {iterations}
          addi r0, r0, 1
        endloop
        halt
    """, "spin")
    return RunRequest(
        config=ChipConfig(
            reference_mhz=100.0,
            columns=(ColumnConfig(divider=divider),),
        ),
        programs=(program,),
        engine=engine,
        label=label,
    )


FAST = FaultPolicy(max_retries=2, backoff_base_s=0.0)


def test_policy_validation():
    with pytest.raises(ValueError):
        FaultPolicy(max_retries=-1)
    with pytest.raises(ValueError):
        FaultPolicy(timeout_s=0.0)
    with pytest.raises(ValueError):
        FaultPolicy(backoff_factor=0.5)


def test_backoff_is_deterministic_capped_and_jittered():
    policy = FaultPolicy(backoff_base_s=0.1, backoff_factor=2.0,
                         backoff_max_s=0.5)
    first = backoff_delay(policy, "k" * 64, 1)
    assert first == backoff_delay(policy, "k" * 64, 1)
    assert 0.05 <= first < 0.15  # base x [0.5, 1.5)
    assert backoff_delay(policy, "k" * 64, 2) \
        != backoff_delay(policy, "j" * 64, 2)
    assert backoff_delay(policy, "k" * 64, 9) < 0.75  # capped x 1.5


def test_fault_free_outcomes_match_run_many():
    requests = [make_request(divider=d, label=f"d{d}")
                for d in (1, 2, 4)]
    outcomes = run_many_outcomes(requests, processes=1)
    plain = run_many(requests, processes=1)
    assert [o.status for o in outcomes] == ["ok"] * 3
    assert [o.stats for o in outcomes] == [r.stats for r in plain]
    assert [o.label for o in outcomes] == ["d1", "d2", "d4"]
    assert all(o.attempts == 1 and o.retries == 0 for o in outcomes)


def test_worker_crash_is_retried_to_success():
    requests = [make_request(divider=d) for d in (1, 2)]
    injector = FaultInjector(
        3, [FaultSpec("kill_worker", rate=1.0, attempts=(1,))]
    )
    recorder = _Recorder()
    with subscribed(recorder):
        outcomes = run_many_outcomes(
            requests, processes=1, policy=FAST, injector=injector
        )
    assert [o.status for o in outcomes] == ["ok", "ok"]
    assert [o.retries for o in outcomes] == [1, 1]
    assert recorder.names().count("job_worker_crashed") == 2
    assert recorder.names().count("job_retry") == 2
    snapshot = outcomes_snapshot()
    assert snapshot["worker_crashed"] == 2
    assert snapshot["retries"] == 2
    assert snapshot["ok"] == 2


def test_engine_fault_degrades_to_reference_bit_identical():
    request = make_request(divider=4, label="deg")
    baseline = run_many_outcomes([request], processes=1)
    injector = FaultInjector(
        5, [FaultSpec("raise_in_engine", rate=1.0, attempts=(1,))]
    )
    recorder = _Recorder()
    with subscribed(recorder):
        outcomes = run_many_outcomes(
            [request], processes=1, policy=FAST, injector=injector
        )
    outcome = outcomes[0]
    assert outcome.status == "degraded" and outcome.degraded
    assert outcome.ok
    assert outcome.retries == 0  # same attempt, fallback engine
    assert outcome.stats == baseline[0].stats
    assert "job_degraded" in recorder.names()
    assert outcomes_snapshot()["degraded"] == 1


def test_degradation_disabled_fails_instead():
    request = make_request(label="nodeg")
    injector = FaultInjector(
        5, [FaultSpec("raise_in_engine", rate=1.0,
                      attempts=(1, 2, 3))]
    )
    policy = FaultPolicy(max_retries=1, backoff_base_s=0.0,
                         degrade=False, keep_going=True)
    outcomes = run_many_outcomes(
        [request], processes=1, policy=policy, injector=injector
    )
    assert outcomes[0].status == "failed"
    assert not outcomes[0].ok
    assert outcomes[0].stats is None
    assert "injected compiled-engine fault" in outcomes[0].error


def test_serial_timeout_is_posthoc_and_retried():
    request = make_request(label="slow")
    injector = FaultInjector(
        7, [FaultSpec("delay_job", rate=1.0, attempts=(1,),
                      delay_s=0.05)]
    )
    policy = FaultPolicy(max_retries=1, timeout_s=0.01,
                         backoff_base_s=0.0)
    recorder = _Recorder()
    with subscribed(recorder):
        outcomes = run_many_outcomes(
            [request], processes=1, policy=policy, injector=injector
        )
    assert outcomes[0].status == "ok"
    assert outcomes[0].retries == 1
    assert "job_timeout" in recorder.names()
    assert outcomes_snapshot()["timed_out"] == 1


def test_fail_fast_raises_batch_error_with_label():
    requests = [make_request(divider=2, label="doomed")]
    injector = FaultInjector(
        9, [FaultSpec("kill_worker", rate=1.0, attempts=(1, 2))]
    )
    policy = FaultPolicy(max_retries=1, backoff_base_s=0.0)
    with pytest.raises(BatchError) as excinfo:
        run_many_outcomes(
            requests, processes=1, policy=policy, injector=injector
        )
    assert excinfo.value.label == "doomed"
    assert excinfo.value.outcome.status == "worker_crashed"
    assert excinfo.value.outcome.attempts == 2


def test_keep_going_supervises_every_job_to_a_terminal_outcome():
    doomed = make_request(divider=2, iterations=9, label="doomed")
    also_doomed = make_request(divider=4, label="also-doomed")
    injector = FaultInjector(
        9, [FaultSpec("kill_worker", rate=1.0, attempts=(1, 2, 3))]
    )
    policy = FaultPolicy(max_retries=1, backoff_base_s=0.0,
                         keep_going=True)
    cache = ResultCache()
    outcomes = run_many_outcomes(
        [doomed, also_doomed], processes=1, policy=policy,
        injector=injector, cache=cache,
    )
    assert len(outcomes) == 2
    assert {o.label for o in outcomes} == {"doomed", "also-doomed"}
    assert all(o.status == "worker_crashed" for o in outcomes)
    assert all(o.attempts == 2 for o in outcomes)
    assert len(cache) == 0  # crashed jobs never write back


def test_failfast_abort_still_caches_completed_jobs():
    ok_request = make_request(divider=1, label="done-first")
    doomed = make_request(divider=2, iterations=7, label="doomed")
    injector = FaultInjector(
        1,
        [FaultSpec("raise_in_engine", rate=1.0, attempts=(1, 2))],
    )
    # degrade=False turns injected engine faults into real failures;
    # the injector hits both jobs, so pick orderings apart by
    # running the clean job via cache pre-seeding instead.
    cache = ResultCache()
    clean = run_many_outcomes([ok_request], processes=1, cache=cache)
    assert clean[0].status == "ok"
    policy = FaultPolicy(max_retries=0, backoff_base_s=0.0,
                         degrade=False)
    with pytest.raises(BatchError):
        run_many_outcomes(
            [ok_request, doomed], processes=1, policy=policy,
            injector=injector, cache=cache,
        )
    # the pre-seeded job stayed served-from-cache; the doomed job
    # wrote nothing back
    assert cache.hits >= 1


def test_dedup_under_retry_executes_once_per_attempt(monkeypatch):
    """Identical requests execute once even when retried (issue #9).

    Two label-distinct but content-identical requests share one
    supervised execution; when the first attempt times out and is
    retried, the batch still performs exactly one execution per
    attempt - never one per duplicate - and the second result is
    served as cached.
    """
    calls = []
    real_execute = resilience.execute

    def counting_execute(request):
        calls.append(request.label)
        return real_execute(request)

    monkeypatch.setattr(resilience, "execute", counting_execute)
    twins = [make_request(divider=2, label="twin-a"),
             make_request(divider=2, label="twin-b")]
    injector = FaultInjector(
        13, [FaultSpec("delay_job", rate=1.0, attempts=(1,),
                       delay_s=0.05)]
    )
    policy = FaultPolicy(max_retries=1, timeout_s=0.01,
                         backoff_base_s=0.0)
    cache = ResultCache()
    outcomes = run_many_outcomes(
        twins, processes=1, policy=policy, injector=injector,
        cache=cache,
    )
    # one execution for the timed-out attempt + one for the retry -
    # NOT two per duplicate
    assert len(calls) == 2
    assert [o.label for o in outcomes] == ["twin-a", "twin-b"]
    assert [o.status for o in outcomes] == ["ok", "ok"]
    assert [o.cached for o in outcomes] == [False, True]
    assert outcomes[0].stats == outcomes[1].stats
    assert outcomes[0].retries == 1
    assert len(cache) == 1
    assert cache.misses == 1  # one lookup for the deduped group


def test_cache_hits_settle_without_attempts():
    cache = ResultCache()
    request = make_request(divider=2, label="memo")
    first = run_many_outcomes([request], processes=1, cache=cache)
    assert first[0].attempts == 1
    again = run_many_outcomes([request], processes=1, cache=cache)
    assert again[0].status == "ok"
    assert again[0].cached
    assert again[0].attempts == 0
    assert again[0].stats == first[0].stats


def test_process_mode_crash_containment_bit_identical():
    requests = [make_request(divider=d, label=f"d{d}")
                for d in (1, 2, 4)]
    baseline = run_many_outcomes(requests, processes=1)
    injector = FaultInjector(
        21, [FaultSpec("kill_worker", rate=1.0, attempts=(1,))]
    )
    outcomes = run_many_outcomes(
        requests, processes=2, policy=FAST, injector=injector
    )
    assert [o.status for o in outcomes] == ["ok"] * 3
    assert [o.retries for o in outcomes] == [1, 1, 1]
    assert [o.stats for o in outcomes] \
        == [o.stats for o in baseline]


def test_run_many_uses_default_policy_and_supervises():
    requests = [make_request(divider=2, label="via-default")]
    injector_free_baseline = run_many(requests, processes=1)
    set_default_policy(FaultPolicy(max_retries=1,
                                   backoff_base_s=0.0))
    supervised = run_many(requests, processes=1)
    assert [r.stats for r in supervised] \
        == [r.stats for r in injector_free_baseline]
    assert outcomes_snapshot()["ok"] >= 1


def test_run_many_with_policy_raises_batch_error_on_failure():
    requests = [make_request(divider=2, label="dead")]
    injector = FaultInjector(
        2, [FaultSpec("kill_worker", rate=1.0, attempts=(1, 2))]
    )
    with pytest.raises(BatchError) as excinfo:
        run_many(
            requests, processes=1,
            policy=FaultPolicy(max_retries=1, backoff_base_s=0.0,
                               keep_going=True),
            injector=injector,
        )
    assert "dead" in str(excinfo.value)


def test_outcome_ok_property():
    ok = JobOutcome(label="", key="k", status="ok")
    degraded = JobOutcome(label="", key="k", status="degraded",
                          degraded=True)
    dead = JobOutcome(label="", key="k", status="timed_out")
    assert ok.ok and degraded.ok and not dead.ok
