"""Statistics collection."""

import pytest

from repro.isa.assembler import assemble
from repro.sim.simulator import run_single_column


def _stats(source="movi r0, 1\nmovi r1, 2\nhalt", **kwargs):
    _, stats = run_single_column(assemble(source), **kwargs)
    return stats


def test_issue_counts():
    stats = _stats()
    column = stats.column(0)
    assert column.issued == 2
    assert column.tile_instructions == (2, 2, 2, 2)


def test_issue_rate_and_idle_fraction_bounds():
    stats = _stats()
    column = stats.column(0)
    assert 0.0 < column.issue_rate <= 1.0
    assert 0.0 <= column.idle_fraction < 1.0
    assert column.issue_rate + column.idle_fraction \
        == pytest.approx(1.0, abs=0.01)


def test_cycles_per_sample_validation():
    stats = _stats()
    with pytest.raises(ValueError):
        stats.cycles_per_sample(0, 0)


def test_frequency_scaling():
    stats = _stats(reference_mhz=150.0)
    assert stats.column(0).frequency_mhz == 150.0


def test_total_bus_words_zero_without_dou():
    stats = _stats()
    assert stats.total_bus_words == 0
