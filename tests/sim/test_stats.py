"""Statistics collection."""

import pytest

from repro.isa.assembler import assemble
from repro.sim.simulator import run_single_column


def _stats(source="movi r0, 1\nmovi r1, 2\nhalt", **kwargs):
    _, stats = run_single_column(assemble(source), **kwargs)
    return stats


def test_issue_counts():
    stats = _stats()
    column = stats.column(0)
    assert column.issued == 2
    assert column.tile_instructions == (2, 2, 2, 2)


def test_issue_rate_and_idle_fraction_bounds():
    stats = _stats()
    column = stats.column(0)
    assert 0.0 < column.issue_rate <= 1.0
    assert 0.0 <= column.idle_fraction < 1.0
    assert column.issue_rate + column.idle_fraction \
        == pytest.approx(1.0, abs=0.01)


def test_cycles_per_sample_validation():
    stats = _stats()
    with pytest.raises(ValueError):
        stats.cycles_per_sample(0, 0)


def test_frequency_scaling():
    stats = _stats(reference_mhz=150.0)
    assert stats.column(0).frequency_mhz == 150.0


def test_total_bus_words_zero_without_dou():
    stats = _stats()
    assert stats.total_bus_words == 0


def test_simulated_time_us():
    stats = _stats(reference_mhz=200.0)
    assert stats.reference_mhz == 200.0
    assert stats.simulated_time_us == pytest.approx(
        stats.reference_ticks / 200.0
    )


def test_span_defaults_to_full_bus_without_traffic():
    stats = _stats()
    column = stats.column(0)
    assert column.bus_span_words == 0.0
    assert column.mean_span_fraction == 1.0
    assert column.n_tiles == 4


def test_column_stats_validate_tile_instructions():
    from repro.sim.stats import ColumnStats

    with pytest.raises(ValueError, match="at least one tile"):
        ColumnStats(
            index=0, frequency_mhz=100.0, tile_cycles=1, issued=1,
            bubbles=0, comm_stalls=0, control_executed=0,
            branch_stalls=0, zorm_nops=0, bus_words=0,
            tile_instructions=(),
        )
    with pytest.raises(ValueError, match="non-negative"):
        ColumnStats(
            index=0, frequency_mhz=100.0, tile_cycles=-1, issued=0,
            bubbles=0, comm_stalls=0, control_executed=0,
            branch_stalls=0, zorm_nops=0, bus_words=0,
            tile_instructions=(1,),
        )
    # lists are normalized into tuples so stats stay hashable/frozen
    column = ColumnStats(
        index=0, frequency_mhz=100.0, tile_cycles=1, issued=1,
        bubbles=0, comm_stalls=0, control_executed=0,
        branch_stalls=0, zorm_nops=0, bus_words=0,
        tile_instructions=[1, 1],
    )
    assert column.tile_instructions == (1, 1)


def test_simulation_stats_validate_columns():
    from repro.sim.stats import ColumnStats, SimulationStats

    def column(index):
        return ColumnStats(
            index=index, frequency_mhz=100.0, tile_cycles=1, issued=1,
            bubbles=0, comm_stalls=0, control_executed=0,
            branch_stalls=0, zorm_nops=0, bus_words=0,
            tile_instructions=(1,),
        )

    with pytest.raises(ValueError, match="at least one column"):
        SimulationStats(
            reference_ticks=1, columns=(), horizontal_words=0
        )
    with pytest.raises(ValueError, match="reports index"):
        SimulationStats(
            reference_ticks=1, columns=(column(1),),
            horizontal_words=0,
        )
    with pytest.raises(ValueError, match="ColumnStats instances"):
        SimulationStats(
            reference_ticks=1, columns=("nope",), horizontal_words=0
        )
    stats = SimulationStats(
        reference_ticks=1, columns=[column(0)], horizontal_words=0
    )
    assert isinstance(stats.columns, tuple)
