"""Engine layer: reference/compiled differential and observer hook.

The compiled engine's contract is bit-identical ``SimulationStats``
to the tick-accurate reference engine on any chip; these tests
enforce it on the configurations the acceptance criteria name: the
DDC front-end pipeline, a WLAN kernel, and multi-column mixed-divider
chips, covering both striding modes (all-inert "sparse" and live-DOU
"dense").
"""

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.arch.chip import Chip, PORT_POSITION
from repro.arch.config import ChipConfig, ColumnConfig
from repro.arch.dou_compiler import Transfer, compile_schedule
from repro.isa.assembler import assemble
from repro.kernels.base import run_kernel
from repro.kernels.viterbi_acs import build_acs_kernel
from repro.sim.engine import (
    CompiledEngine,
    ReferenceEngine,
    create_engine,
)
from repro.sim.simulator import Simulator, run_single_column
from repro.sim.trace import Tracer

SAMPLES = 12


def spin_program(iterations: int):
    return assemble(f"""
        movi r0, 0
        loop {iterations}
          addi r0, r0, 1
        endloop
        halt
    """, "spin")


def build_ddc_front_end() -> Chip:
    """The Section 2 DDC front-end: mixer 120 MHz -> CIC 200 MHz.

    Two columns at dividers 5 and 3 off a 600 MHz reference, streaming
    through compiled DOU schedules and the horizontal bus - the same
    topology as the full-flow integration test.
    """
    producer = assemble(f"""
        tmask 0x1
        movi p0, 0
        loop {SAMPLES}
          ld r1, [p0++]
          lsl r1, r1, 1
          send r1
        endloop
        halt
    """, "producer")
    consumer = assemble(f"""
        movi r2, 0
        loop {SAMPLES}
          recv r1
          add r2, r2, r1
        endloop
        halt
    """, "consumer")
    to_port = compile_schedule(
        [[Transfer(src=0, dsts=(PORT_POSITION,))]], name="to-port"
    )
    fan_out = compile_schedule(
        [[Transfer(src=PORT_POSITION, dsts=(0, 1, 2, 3))]],
        name="fan-out",
    )
    horizontal = compile_schedule(
        [[Transfer(src=0, dsts=(1,))]], n_positions=2, name="hbus"
    )
    config = ChipConfig(
        reference_mhz=600.0,
        columns=(ColumnConfig(divider=5), ColumnConfig(divider=3)),
        strict_schedules=False,
    )
    chip = Chip(config, programs=[producer, consumer],
                dou_programs=[to_port, fan_out],
                horizontal_dou=horizontal)
    chip.columns[0].tiles[0].load_memory(0, list(range(1, SAMPLES + 1)))
    return chip


def build_mixed_divider_chip() -> Chip:
    """Compute-only columns at dividers 2/4/8, staggered halt times."""
    config = ChipConfig(
        reference_mhz=800.0,
        columns=(ColumnConfig(divider=2), ColumnConfig(divider=4),
                 ColumnConfig(divider=8)),
    )
    return Chip(config, programs=[
        spin_program(300), spin_program(120), spin_program(40),
    ])


# ----------------------------------------------------------------------
# differential: compiled == reference, bit for bit
# ----------------------------------------------------------------------
def test_differential_ddc_front_end_pipeline():
    reference = Simulator(build_ddc_front_end(),
                          engine="reference").run(max_ticks=100_000)
    compiled = Simulator(build_ddc_front_end(),
                         engine="compiled").run(max_ticks=100_000)
    assert compiled == reference


def test_differential_wlan_viterbi_acs_kernel():
    reference = run_kernel(build_acs_kernel(), engine="reference")
    compiled = run_kernel(build_acs_kernel(), engine="compiled")
    assert compiled.stats == reference.stats


def test_differential_multi_column_mixed_dividers():
    reference = Simulator(build_mixed_divider_chip(),
                          engine="reference").run()
    compiled = Simulator(build_mixed_divider_chip(),
                         engine="compiled").run()
    assert compiled == reference
    # Staggered halts really exercised the owed-edge reconstruction.
    assert compiled.column(0).bubbles > 0
    assert compiled.column(2).bubbles > 0


@pytest.mark.parametrize("divider", [1, 3, 4])
def test_differential_single_column_sweep(divider):
    program = spin_program(25)
    _, reference = run_single_column(program, divider=divider,
                                     engine="reference")
    _, compiled = run_single_column(program, divider=divider,
                                    engine="compiled")
    assert compiled == reference


def test_compiled_architectural_state_matches():
    """Not just stats: the architectural end state agrees too."""
    chips = {}
    for engine in ("reference", "compiled"):
        chip = build_ddc_front_end()
        Simulator(chip, engine=engine).run(max_ticks=100_000)
        chips[engine] = chip
    for reference_col, compiled_col in zip(
        chips["reference"].columns, chips["compiled"].columns
    ):
        for ref_tile, cmp_tile in zip(reference_col.tiles,
                                      compiled_col.tiles):
            assert cmp_tile.regs.read("R2") == ref_tile.regs.read("R2")


# ----------------------------------------------------------------------
# observer hook (the old hand-copied tracing loop is gone)
# ----------------------------------------------------------------------
def test_traced_and_untraced_runs_produce_identical_stats():
    untraced = Simulator(build_ddc_front_end()).run(max_ticks=100_000)
    tracer = Tracer()
    traced = Simulator(build_ddc_front_end(),
                       tracer=tracer).run(max_ticks=100_000)
    assert traced == untraced
    assert tracer.events  # the observer really saw the run


def test_tracer_as_engine_observer():
    tracer = Tracer()
    chip = build_mixed_divider_chip()
    engine = ReferenceEngine(chip, observers=(tracer,))
    stats = engine.run()
    issued = sum(1 for e in tracer.events if e.outcome == "issued")
    assert issued == sum(c.issued for c in stats.columns)


def test_compiled_with_observers_stays_tick_accurate():
    """Observers force the compiled engine onto the exact path."""
    tracer_ref, tracer_cmp = Tracer(), Tracer()
    ReferenceEngine(build_mixed_divider_chip(),
                    observers=(tracer_ref,)).run()
    CompiledEngine(build_mixed_divider_chip(),
                   observers=(tracer_cmp,)).run()
    assert tracer_cmp.events == tracer_ref.events


# ----------------------------------------------------------------------
# run() contract parity
# ----------------------------------------------------------------------
def test_compiled_until_predicate_matches_reference():
    def until(chip):
        return chip.reference_ticks >= 37

    reference = Simulator(build_mixed_divider_chip(),
                          engine="reference").run(until=until)
    compiled = Simulator(build_mixed_divider_chip(),
                         engine="compiled").run(until=until)
    assert compiled == reference
    assert compiled.reference_ticks == 37


@pytest.mark.parametrize("engine", ["reference", "compiled"])
def test_deadlock_detection_per_engine(engine):
    program = assemble("recv r0\nhalt")  # nobody ever sends
    with pytest.raises(SimulationError, match="exceeded 500"):
        run_single_column(program, max_ticks=500, engine=engine)


@pytest.mark.parametrize("engine", ["reference", "compiled"])
def test_deadlock_detection_mixed_dividers(engine):
    config = ChipConfig(
        reference_mhz=800.0,
        columns=(ColumnConfig(divider=2), ColumnConfig(divider=8)),
    )
    chip = Chip(config, programs=[
        spin_program(10), assemble("recv r0\nhalt"),
    ])
    with pytest.raises(SimulationError, match="exceeded 400"):
        Simulator(chip, engine=engine).run(max_ticks=400)


@pytest.mark.parametrize("build_chip", [
    build_mixed_divider_chip, build_ddc_front_end,
])
def test_budget_boundary_matches_reference(build_chip):
    """Engines agree at the exact max_ticks budget boundary.

    The reference loop spends one iteration observing all_halted after
    the final step, so a chip halting on its last in-budget tick still
    raises; the compiled engine must reproduce that exactly.
    """
    generous = Simulator(build_chip(), engine="reference").run(
        max_ticks=100_000
    )
    hyperperiod = build_chip().clock.hyperperiod()
    halt_tick = generous.reference_ticks - 2 * hyperperiod
    for engine in ("reference", "compiled"):
        with pytest.raises(SimulationError):
            Simulator(build_chip(), engine=engine).run(
                max_ticks=halt_tick
            )
        stats = Simulator(build_chip(), engine=engine).run(
            max_ticks=halt_tick + 1
        )
        assert stats == generous


def test_manual_stepping_then_run():
    """step() a few ticks by hand, then run() to completion."""
    reference = Simulator(build_mixed_divider_chip(),
                          engine="reference").run()
    sim = Simulator(build_mixed_divider_chip(), engine="compiled")
    for _ in range(5):
        sim.step()
    assert sim.chip.reference_ticks == 5
    assert sim.run() == reference


# ----------------------------------------------------------------------
# bounded windows (the epoch primitive)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("window", [1, 7, 64, 1000])
def test_advance_matches_reference_stepping(window):
    """advance(n) is bit-identical to n reference ticks on any chip."""
    reference = build_ddc_front_end()
    compiled = build_ddc_front_end()
    ref_engine = ReferenceEngine(reference)
    cmp_engine = CompiledEngine(compiled)
    while True:
        consumed_ref = ref_engine.advance(window)
        consumed_cmp = cmp_engine.advance(window)
        assert consumed_cmp == consumed_ref
        from repro.sim.stats import collect
        assert collect(compiled) == collect(reference)
        if consumed_ref < window:
            break
    assert reference.all_halted and compiled.all_halted


def test_advance_stops_at_the_halt_observation_tick():
    chip = build_mixed_divider_chip()
    halted = Simulator(build_mixed_divider_chip(),
                       engine="reference").run()
    engine = CompiledEngine(chip)
    consumed = engine.advance(10_000_000)
    # run() drains two hyperperiods past the halt observation tick.
    drain = 2 * chip.clock.hyperperiod()
    assert consumed == halted.reference_ticks - drain
    assert engine.advance(100) == 0  # already halted: consumes nothing


def test_advance_with_observers_stays_tick_accurate():
    tracer_ref, tracer_cmp = Tracer(), Tracer()
    ref_chip = build_mixed_divider_chip()
    cmp_chip = build_mixed_divider_chip()
    ReferenceEngine(ref_chip, observers=(tracer_ref,)).advance(50)
    CompiledEngine(cmp_chip, observers=(tracer_cmp,)).advance(50)
    assert tracer_cmp.events == tracer_ref.events
    assert tracer_cmp.events  # the window really was observed


# ----------------------------------------------------------------------
# factory / facade
# ----------------------------------------------------------------------
def test_create_engine_rejects_unknown_name():
    """Unknown engine names are a configuration mistake, not a
    simulation failure - callers can catch them separately."""
    with pytest.raises(ConfigurationError, match="unknown engine"):
        create_engine("warp", build_mixed_divider_chip())
    with pytest.raises(ConfigurationError, match="available"):
        Simulator(build_mixed_divider_chip(), engine="warp")


def test_auto_engine_defaults_to_compiled():
    """The ROADMAP lever: compiled is the default when no observers
    or until predicates need tick-accurate visibility."""
    chip = build_mixed_divider_chip()
    assert isinstance(create_engine("auto", chip), CompiledEngine)
    assert isinstance(Simulator(chip).engine, CompiledEngine)
    _, chip_and_stats = run_single_column(spin_program(5))
    # and the default still matches the reference bit for bit
    assert Simulator(build_mixed_divider_chip()).run() \
        == Simulator(build_mixed_divider_chip(),
                     engine="reference").run()


def test_auto_engine_with_observers_stays_tick_accurate():
    chip = build_mixed_divider_chip()
    tracer = Tracer()
    assert isinstance(
        create_engine("auto", chip, (tracer,)), ReferenceEngine
    )
    assert isinstance(
        Simulator(build_mixed_divider_chip(), tracer=Tracer()).engine,
        ReferenceEngine,
    )


def test_simulator_accepts_engine_instance():
    chip = build_mixed_divider_chip()
    sim = Simulator(chip, engine=CompiledEngine(chip))
    assert sim.run() == Simulator(build_mixed_divider_chip()).run()


def test_simulator_rejects_tracer_with_engine_instance():
    chip = build_mixed_divider_chip()
    with pytest.raises(ConfigurationError):
        Simulator(chip, tracer=Tracer(), engine=CompiledEngine(chip))
