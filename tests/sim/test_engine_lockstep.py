"""Cross-column lockstep rounds: differentials, guards, shared cache.

The compiled engine's top striding tier records one hyperperiod-
aligned round of the whole chip (every DOU step, every column edge,
every comm-headed runner call) at a recurring control signature,
compiles it to a generated round function, and replays it while the
entry checks hold.  These tests pin the hazard cases around that
tier:

* steady periodic streaming must actually engage rounds (counter
  assertions - a silent fall-back to dense ticking is a failure);
* a governor retuning the divider tuple every epoch invalidates and
  rebuilds plans across tuples, mid-lap, without breaking the
  bit-identical contract;
* tiny buffer capacities force backpressure mid-orbit, so recorded
  rounds abort on their occupancy checks and the dense path finishes
  the window - still bit-identical;
* a plan built by one engine is rebound through the shared
  cross-engine cache by a structurally identical fresh engine, which
  must produce the same statistics without ever recording.

Every case is differential against the reference engine.
"""

import pytest

from repro.arch.chip import Chip, PORT_POSITION
from repro.arch.config import ChipConfig, ColumnConfig
from repro.arch.dou_compiler import Transfer, compile_schedule
from repro.control import Governor, TransitionModel, run_governed
from repro.isa.assembler import assemble
from repro.sim import engine as engine_module
from repro.sim.engine import CompiledEngine
from repro.sim.simulator import Simulator


def build_streaming_pair(
    samples: int = 96, capacity: int = 8,
    dividers: tuple = (4, 2),
) -> Chip:
    """Producer column streaming into a consumer column.

    The producer loads, scales, and SENDs one word per iteration; the
    consumer RECVs and accumulates.  Both loops are long enough for
    the periodic steady state to recur at many hyperperiod
    boundaries, which is the shape the lockstep recorder needs.
    """
    producer = assemble(f"""
        tmask 0x1
        movi p0, 0
        loop {samples}
          ld r1, [p0++]
          lsl r1, r1, 1
          send r1
        endloop
        halt
    """, "producer")
    consumer = assemble(f"""
        movi r2, 0
        loop {samples}
          recv r1
          add r2, r2, r1
        endloop
        halt
    """, "consumer")
    to_port = compile_schedule(
        [[Transfer(src=0, dsts=(PORT_POSITION,))]], name="to-port"
    )
    fan_out = compile_schedule(
        [[Transfer(src=PORT_POSITION, dsts=(0, 1, 2, 3))]],
        name="fan-out",
    )
    horizontal = compile_schedule(
        [[Transfer(src=0, dsts=(1,))]], n_positions=2, name="hbus"
    )
    config = ChipConfig(
        reference_mhz=512.0,
        columns=(
            ColumnConfig(divider=dividers[0]),
            ColumnConfig(divider=dividers[1]),
        ),
        buffer_capacity=capacity,
        strict_schedules=False,
    )
    chip = Chip(config, programs=[producer, consumer],
                dou_programs=[to_port, fan_out],
                horizontal_dou=horizontal)
    chip.columns[0].tiles[0].load_memory(
        0, list(range(1, samples + 1))
    )
    return chip


class EveryEpochToggler(Governor):
    """Retunes to a different divider tuple on every epoch boundary."""

    name = "every-epoch-toggler"

    def __init__(self, patterns):
        self.patterns = tuple(tuple(p) for p in patterns)

    def decide(self, telemetry):
        return self.patterns[
            telemetry.epoch_index % len(self.patterns)
        ]


# ----------------------------------------------------------------------
# steady state: rounds engage and stay bit-identical
# ----------------------------------------------------------------------
def test_lockstep_rounds_engage_on_steady_stream():
    reference = Simulator(
        build_streaming_pair(), engine="reference"
    ).run(max_ticks=100_000)
    engine = CompiledEngine(build_streaming_pair())
    compiled = engine.run(max_ticks=100_000)
    assert compiled == reference
    snapshot = engine.profile_snapshot()
    assert snapshot["lockstep_batches"] > 0
    assert snapshot["fused_runner_calls"] > 0


# ----------------------------------------------------------------------
# retune mid-lap: plans invalidate and rebuild across divider tuples
# ----------------------------------------------------------------------
def test_every_epoch_retune_differential():
    """A retune on every epoch boundary lands mid-lap by design.

    The lockstep signature pins the divider tuple, so each retune
    strands the previous tuple's plans and the cache accumulates
    plans per tuple; replay across the boundary would be wrong and
    must never happen.
    """
    patterns = [(4, 2), (8, 4), (2, 2)]
    governed = {}
    engines = {}
    for engine_name in ("reference", "compiled"):
        chip = build_streaming_pair(samples=192)
        driver = (
            CompiledEngine(chip)
            if engine_name == "compiled" else engine_name
        )
        engines[engine_name] = driver
        governed[engine_name] = run_governed(
            chip, EveryEpochToggler(patterns), engine=driver,
            epoch_ticks=128,
            transition_model=TransitionModel(relock_us=0.01),
            max_ticks=400_000,
        )
    reference, compiled = governed["reference"], governed["compiled"]
    assert compiled.stats == reference.stats
    assert compiled.timeline == reference.timeline
    assert compiled.transitions == reference.transitions
    assert compiled.transition_count > 0
    driver = engines["compiled"]
    assert driver.profile_snapshot()["lockstep_batches"] > 0
    # Plans really accumulated across more than one divider tuple
    # (the signature's second element is the tuple).
    tuples = {sig[1] for sig in driver._lock_plans}
    assert len(tuples) >= 2


# ----------------------------------------------------------------------
# backpressure mid-orbit: entry checks abort, dense path finishes
# ----------------------------------------------------------------------
@pytest.mark.parametrize("capacity", [1, 2])
def test_backpressure_mid_orbit_differential(capacity):
    """Tiny buffers block the stream mid-round; stats stay identical.

    At capacity 1 every word must be consumed before the next can
    land, so the DOUs spend most cycles blocked against full
    destinations inside the very rounds the recorder captures.  The
    recorded occupancy checks and validated transfer primitives must
    reproduce every one of those blocked cycles - and rounds must
    still engage, because the blocked pattern itself is periodic.
    """
    reference = Simulator(
        build_streaming_pair(capacity=capacity), engine="reference"
    ).run(max_ticks=200_000)
    chip = build_streaming_pair(capacity=capacity)
    engine = CompiledEngine(chip)
    compiled = engine.run(max_ticks=200_000)
    assert compiled == reference
    # The squeeze really blocked transfers, and rounds still engaged.
    assert chip.columns[0].dou.blocked_cycles > 0
    assert engine.profile_snapshot()["lockstep_batches"] > 0


# ----------------------------------------------------------------------
# shared cross-engine plan cache
# ----------------------------------------------------------------------
def test_shared_plan_cache_rebinds_across_engines(monkeypatch):
    """A fresh engine replays rounds it never recorded.

    Engine one builds and publishes plans; a structurally identical
    engine two must probe them at the signatures' first sighting,
    rebind the structural paths against its own machine objects, and
    still match the reference bit for bit.
    """
    monkeypatch.setattr(engine_module, "_SHARED_LOCK_PLANS", {})
    monkeypatch.setattr(engine_module, "_FP_INTERN", {})
    reference = Simulator(
        build_streaming_pair(), engine="reference"
    ).run(max_ticks=100_000)
    first = CompiledEngine(build_streaming_pair())
    assert first.run(max_ticks=100_000) == reference
    assert engine_module._SHARED_LOCK_PLANS  # plans were published

    probe_hits = []
    original_probe = CompiledEngine._lock_probe

    def counting_probe(self, sig):
        plan = original_probe(self, sig)
        if plan is not None:
            probe_hits.append(sig)
        return plan

    monkeypatch.setattr(CompiledEngine, "_lock_probe", counting_probe)
    second = CompiledEngine(build_streaming_pair())
    compiled = second.run(max_ticks=100_000)
    assert compiled == reference
    assert probe_hits  # the fresh engine really rebound shared plans
    assert second.profile_snapshot()["lockstep_batches"] > 0


def test_shared_plans_do_not_cross_structures(monkeypatch):
    """A different program never hits another structure's plans.

    The fingerprint pins full program text; a chip with a different
    loop count must miss every shared entry and fall back to its own
    recording - and still match its own reference run.
    """
    monkeypatch.setattr(engine_module, "_SHARED_LOCK_PLANS", {})
    monkeypatch.setattr(engine_module, "_FP_INTERN", {})
    first = CompiledEngine(build_streaming_pair(samples=96))
    first.run(max_ticks=100_000)
    assert engine_module._SHARED_LOCK_PLANS

    probe_hits = []
    original_probe = CompiledEngine._lock_probe

    def counting_probe(self, sig):
        plan = original_probe(self, sig)
        if plan is not None:
            probe_hits.append(sig)
        return plan

    monkeypatch.setattr(CompiledEngine, "_lock_probe", counting_probe)
    reference = Simulator(
        build_streaming_pair(samples=80), engine="reference"
    ).run(max_ticks=100_000)
    other = CompiledEngine(build_streaming_pair(samples=80))
    assert other.run(max_ticks=100_000) == reference
    assert not probe_hits  # different fingerprint, no cross-hits
