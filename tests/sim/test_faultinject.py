"""Deterministic fault injector: decisions, specs, corruption."""

import pytest

from repro.sim.faultinject import (
    FaultInjector,
    FaultSpec,
    InjectedWorkerCrash,
    corrupt_file_bytes,
)


def test_spec_validation():
    with pytest.raises(ValueError):
        FaultSpec(kind="meteor_strike")
    with pytest.raises(ValueError):
        FaultSpec(kind="kill_worker", rate=1.5)
    with pytest.raises(ValueError):
        FaultSpec(kind="delay_job", delay_s=-1.0)
    with pytest.raises(TypeError):
        FaultInjector(1, ["kill_worker"])


def test_decisions_are_deterministic_per_seed():
    specs = [FaultSpec("kill_worker", rate=0.5, attempts=(1, 2))]
    one = FaultInjector(42, specs)
    twin = FaultInjector(42, specs)
    other = FaultInjector(43, specs)
    keys = [f"{i:064x}" for i in range(64)]
    pattern = [
        one.fires("kill_worker", key, 1) is not None for key in keys
    ]
    assert pattern == [
        twin.fires("kill_worker", key, 1) is not None for key in keys
    ]
    assert True in pattern and False in pattern  # rate 0.5 splits
    assert pattern != [
        other.fires("kill_worker", key, 1) is not None
        for key in keys
    ]


def test_rate_extremes_and_attempt_gating():
    always = FaultInjector(
        7, [FaultSpec("delay_job", rate=1.0, attempts=(1,))]
    )
    never = FaultInjector(
        7, [FaultSpec("delay_job", rate=0.0, attempts=(1,))]
    )
    assert always.fires("delay_job", "k", 1) is not None
    assert always.fires("delay_job", "k", 2) is None  # gated attempt
    assert always.fires("kill_worker", "k", 1) is None  # other kind
    assert never.fires("delay_job", "k", 1) is None


def test_kill_worker_raises_in_process():
    injector = FaultInjector(
        1, [FaultSpec("kill_worker", rate=1.0, attempts=(1,))]
    )
    with pytest.raises(InjectedWorkerCrash):
        injector.before_attempt("k", "job", 1, in_worker=False)
    # attempt 2 is clean
    injector.before_attempt("k", "job", 2, in_worker=False)


def test_corrupt_file_bytes_flips_deterministically(tmp_path):
    target = tmp_path / "entry.stats"
    target.write_bytes(b"0123456789")
    position = corrupt_file_bytes(target, seed=5)
    corrupted = target.read_bytes()
    assert corrupted != b"0123456789"
    assert len(corrupted) == 10
    assert corrupted[position] == b"0123456789"[position] ^ 0xFF
    # same seed, same file name -> same position
    target.write_bytes(b"0123456789")
    assert corrupt_file_bytes(target, seed=5) == position


def test_corrupt_empty_file_gains_a_byte(tmp_path):
    target = tmp_path / "empty.stats"
    target.write_bytes(b"")
    corrupt_file_bytes(target, seed=5)
    assert target.read_bytes() != b""


def test_corrupt_cache_skips_memory_only_cache():
    from repro.sim.batch import ResultCache

    injector = FaultInjector(
        3, [FaultSpec("corrupt_cache", rate=1.0)]
    )
    assert injector.corrupt_cache(ResultCache()) == []


def test_injector_survives_pickling():
    import pickle

    injector = FaultInjector(
        11, [FaultSpec("kill_worker", rate=0.5, attempts=(1,))]
    )
    clone = pickle.loads(pickle.dumps(injector))
    for key in ("a" * 64, "b" * 64, "c" * 64):
        assert (
            (clone.fires("kill_worker", key, 1) is None)
            == (injector.fires("kill_worker", key, 1) is None)
        )
