"""Compute-plane compilation differentials: runner vs reference.

The compiled engine pre-executes column compute through three layers -
per-run generated code blocks, closed-form loop iteration with numpy
batch arithmetic, and comm-headed run issue with lightweight ENDLOOP
resolution.  Each layer must be invisible: statistics and
architectural state bit-identical to the reference engine, errors
raised with the same message from the same cross-tile ordering.

These tests drive every dispatch kind the runner compiles (straight
runs, loop plans, comm-headed runs, light loop ends) plus the shapes
it must *refuse* (branches, dynamic TMASK) and the fallbacks it must
take (bounds pre-check failure), always differentially.
"""

import pytest

from repro.errors import SimulationError
from repro.arch.chip import Chip
from repro.arch.config import ChipConfig, ColumnConfig
from repro.arch.dou_compiler import exchange_schedule
from repro.isa.assembler import assemble
from repro.sim.engine import CompiledEngine
from repro.sim.simulator import Simulator, run_single_column


def _differential(source, divider=1, memory_images=None,
                  dou_program=None, strict=True, max_ticks=200_000):
    """Run one program under both engines; stats and registers agree.

    Returns the compiled-engine chip for extra architectural asserts.
    """
    program = assemble(source)
    chips = {}
    stats = {}
    for engine in ("reference", "compiled"):
        chip, run_stats = run_single_column(
            program,
            dou_program=dou_program,
            divider=divider,
            memory_images=memory_images,
            strict_schedules=strict,
            max_ticks=max_ticks,
            engine=engine,
        )
        chips[engine] = chip
        stats[engine] = run_stats
    assert stats["compiled"] == stats["reference"]
    for ref_tile, cmp_tile in zip(chips["reference"].columns[0].tiles,
                                  chips["compiled"].columns[0].tiles):
        assert cmp_tile.regs._values == ref_tile.regs._values
        assert cmp_tile.memory == ref_tile.memory
    return chips["compiled"]


# ----------------------------------------------------------------------
# arithmetic semantics through the generated code blocks
# ----------------------------------------------------------------------
def test_signed_arithmetic_block_semantics():
    """MIN/MAX/NEG/ABS/ASR on negative values, exact two's-complement."""
    chip = _differential("""
        movi r1, 0
        movi r2, 5
        sub r1, r1, r2      ; r1 = -5
        min r3, r1, r2
        max r4, r1, r2
        abs r5, r1
        neg r6, r2
        asr r7, r1, 1       ; arithmetic: -3
        lsr r0, r1, 1       ; logical: huge positive
        halt
    """)
    tile = chip.columns[0].tiles[0]
    assert tile.regs.read_signed("R3") == -5
    assert tile.regs.read_signed("R4") == 5
    assert tile.regs.read("R5") == 5
    assert tile.regs.read_signed("R6") == -5
    assert tile.regs.read_signed("R7") == -3
    assert tile.regs.read("R0") == (-5 & 0xFFFFFFFF) >> 1


def test_multiply_and_mac_block_semantics():
    """MUL/MULH 32x32 and the 40-bit signed MAC accumulator."""
    chip = _differential("""
        movi r1, 0
        movi r2, 70000
        sub r1, r1, r2      ; r1 = -70000
        mul r3, r2, r2      ; low 32 of 4.9e9: wraps
        mulh r4, r2, r2     ; high 32
        mac a0, r1, r2      ; A0 = -4.9e9 in 40-bit two's complement
        mac a0, r1, r2
        halt
    """)
    tile = chip.columns[0].tiles[0]
    assert tile.regs.read("R3") == (70000 * 70000) & 0xFFFFFFFF
    assert tile.regs.read("R4") == (70000 * 70000) >> 32
    assert tile.regs.read_signed("A0") == -2 * 70000 * 70000
    assert tile.mac_operations == 2


def test_memory_walk_with_post_increment():
    """LD/ST pointer walks, including the dst==ptr aliasing case."""
    words = list(range(10, 42))
    chip = _differential("""
        movi p0, 0
        movi p1, 16
        movi r2, 0
        loop 16
          ld r1, [p0++]
          add r2, r2, r1
          st [p1++], r2
        endloop
        ld p0, [p0]         ; dst aliases the post-read pointer
        halt
    """, memory_images={t: {0: words} for t in range(4)})
    tile = chip.columns[0].tiles[0]
    assert tile.regs.read("R2") == sum(words[:16])
    # mem[16..31] holds the running prefix sums of words[0..15].
    assert tile.memory[16] == words[0]
    assert tile.memory[31] == sum(words[:16])


# ----------------------------------------------------------------------
# shapes the runner must refuse or fall back on
# ----------------------------------------------------------------------
def test_branches_stay_differential():
    """Backward BNE off tile 0's register: control stays reference."""
    _differential("""
        movi r0, 6
        movi r1, 1
        movi r2, 0
        again:
          add r2, r2, r0
          sub r0, r0, r1
          bne r0, again
        halt
    """)


def test_tmask_phases_stay_differential():
    """Mask changes partition the run; per-tile divergence is exact."""
    chip = _differential("""
        tmask 0x3
        movi r1, 10
        tmask 0xF
        addi r1, r1, 5
        tmask 0x1
        addi r1, r1, 100
        tmask 0xF
        halt
    """)
    values = [t.regs.read("R1") for t in chip.columns[0].tiles]
    assert values == [115, 15, 5, 5]


def test_ld_bounds_error_matches_reference():
    """Both engines raise the same error from the same tile.

    Tile 0 stays in bounds; tile 1's TID-derived address is the first
    out-of-bounds access, so the generated block's pre-check must
    refuse the whole run and the scalar fallback must surface tile 1's
    error - not tile 0's partial progress, not a different tile.
    """
    source = """
        tid r1
        lsl r1, r1, 13      ; tile i -> address 8192*i
        movi p0, 0
        add p0, p0, r1
        ld r2, [p0]
        halt
    """
    program = assemble(source)
    errors = {}
    for engine in ("reference", "compiled"):
        with pytest.raises(SimulationError) as info:
            run_single_column(program, engine=engine)
        errors[engine] = str(info.value)
    assert errors["compiled"] == errors["reference"]
    assert "tile 1" in errors["reference"]


# ----------------------------------------------------------------------
# comm-headed runs and light ENDLOOP resolution
# ----------------------------------------------------------------------
def test_comm_headed_exchange_loop():
    """SEND/RECV at run heads inside a loop with a compute tail.

    The neighbour-exchange kernel shape: comm instructions may only
    issue as the first edge of a runner call (their buffer effects
    must land at exactly the current tick), and the loop's ENDLOOP
    resolves through the lightweight path because the body contains
    comm and therefore compiles no closed-form loop plan.
    """
    chip = _differential("""
        movi r2, 1
        movi r3, 0
        loop 20
          send r2
          recv r1
          add r3, r3, r1
          addi r2, r2, 1
        endloop
        mov r0, r3
        halt
    """, dou_program=exchange_schedule(), strict=False, divider=3)
    # Every tile swapped with its neighbour each iteration: the sums
    # are equal because both sides send the same series.
    values = [t.regs.read("R0") for t in chip.columns[0].tiles]
    assert values == [sum(range(1, 21))] * 4


def test_comm_headed_send_only_stream():
    """A SEND-headed producer into a pairwise exchange, no RECV."""
    _differential("""
        tmask 0x5           ; tiles 0 and 2 produce
        movi r1, 3
        loop 6
          send r1
          addi r1, r1, 2
        endloop
        halt
    """, dou_program=exchange_schedule(), strict=False, divider=2)


# ----------------------------------------------------------------------
# the numpy batch path
# ----------------------------------------------------------------------
def test_long_fir_loop_vectorizes():
    """A long LD/LD/MAC loop takes the numpy closed-form path."""
    taps = 4096
    program = assemble(f"""
        movi p0, 0
        movi p1, {taps}
        loop {taps}
          ld r1, [p0++]
          ld r2, [p1++]
          mac a0, r1, r2
        endloop
        halt
    """)
    config = ChipConfig(
        reference_mhz=100.0,
        columns=(ColumnConfig(divider=1),),
        memory_words=2 * taps + 8,
    )
    samples = [(i * 7 + 3) & 0xFFFF for i in range(taps)]
    coeffs = [(i * 5 + 1) & 0xFF for i in range(taps)]

    def build():
        chip = Chip(config, programs=[program])
        for tile in chip.columns[0].tiles:
            tile.load_memory(0, samples)
            tile.load_memory(taps, coeffs)
        return chip

    reference = Simulator(build(), engine="reference").run()
    chip = build()
    engine = CompiledEngine(chip)
    assert engine.run() == reference
    expected = sum(a * b for a, b in zip(samples, coeffs))
    assert chip.columns[0].tiles[0].regs.read_signed("A0") == expected
    profile = engine.profile_snapshot()
    assert profile["vector_batches"] > 0
    assert profile["vector_iterations"] > taps // 2
