"""Multi-state orbit batching and comm-parked column differentials.

The compiled engine's batching fast path settles three things
arithmetically that the reference engine steps tick by tick: DOUs
walking a closed orbit of states where no word can move, columns
parked on a RECV against empty buffers, and columns parked on a SEND
against full ones.  These tests pin the generalizations past the
original single-state/RECV-only fast path:

* period-2 and period-3 starved orbits (multi-state unconditional
  cycles, including an idle state inside a transferring orbit);
* SEND-parked columns under sustained backpressure, both the
  bounded-window deadlock shape and a run-to-completion pipeline;
* a runtime retune landing while a column is comm-parked (the
  governed epoch layer's hazard case).

Every case is differential - the compiled engine must stay
bit-identical to the reference engine - and the batching paths are
asserted to have actually engaged via the engine's event counters,
so a regression that silently falls back to dense stepping fails too.
"""

import pytest

from repro.arch.chip import Chip, PORT_POSITION
from repro.arch.config import ChipConfig, ColumnConfig
from repro.arch.dou_compiler import Transfer, compile_schedule
from repro.isa.assembler import assemble
from repro.sim.engine import CompiledEngine, ReferenceEngine
from repro.sim.simulator import Simulator
from repro.sim.stats import collect


def _exchange_cycles(period: int) -> list:
    """Pairwise-exchange transfer cycles padded to ``period`` states.

    Cycle 0 swaps tiles 0<->1, cycle 1 swaps 2<->3; a third state (for
    ``period=3``) is an idle cycle - transfer-free states must stay
    orbit-eligible inside a transferring orbit.
    """
    cycles = [
        [Transfer(src=0, dsts=(1,)), Transfer(src=1, dsts=(0,))],
        [Transfer(src=2, dsts=(3,)), Transfer(src=3, dsts=(2,))],
    ]
    if period == 3:
        cycles.append([])
    return cycles


def build_orbit_chip(period: int, steps: int = 24) -> Chip:
    """One column whose DOU walks a period-``period`` orbit.

    Every tile sends then receives each iteration; the exchange is
    spread over the orbit's states, and the compute tail between
    communications starves every state - the span the compiled engine
    must settle in one jump per column edge.
    """
    program = assemble(f"""
        movi r3, 0
        loop {steps}
          movi r1, 5
          send r1
          recv r2
          add r3, r3, r2
          addi r3, r3, 1
          addi r3, r3, 1
        endloop
        halt
    """, "exchange-compute")
    schedule = compile_schedule(
        _exchange_cycles(period), name=f"orbit{period}"
    )
    config = ChipConfig(
        reference_mhz=600.0,
        columns=(ColumnConfig(divider=5),),
        strict_schedules=False,
    )
    return Chip(config, programs=[program], dou_programs=[schedule])


@pytest.mark.parametrize("period", [2, 3])
def test_starved_orbit_differential(period):
    """Period-2/3 orbits: bit-identical stats, batching engaged."""
    reference = Simulator(build_orbit_chip(period),
                          engine="reference").run(max_ticks=100_000)
    chip = build_orbit_chip(period)
    # The orbit really has the advertised period - otherwise the test
    # exercises the single-state path it is meant to generalize.
    dou = chip.columns[0].dou
    assert any(
        orbit is not None and len(orbit) == period
        for orbit in dou._orbits
    )
    engine = CompiledEngine(chip)
    compiled = engine.run(max_ticks=100_000)
    assert compiled == reference
    assert engine.profile_snapshot()["batch_events"] > 0


@pytest.mark.parametrize("period", [2, 3])
def test_starved_orbit_architectural_state(period):
    """Not just stats: per-tile register state agrees too."""
    chips = {}
    for engine in ("reference", "compiled"):
        chip = build_orbit_chip(period)
        Simulator(chip, engine=engine).run(max_ticks=100_000)
        chips[engine] = chip
    for ref_tile, cmp_tile in zip(chips["reference"].columns[0].tiles,
                                  chips["compiled"].columns[0].tiles):
        assert cmp_tile.regs.read("R3") == ref_tile.regs.read("R3")


# ----------------------------------------------------------------------
# SEND-parked columns
# ----------------------------------------------------------------------
def build_choked_sender() -> Chip:
    """A column sending into a buffer nobody drains.

    Tile 0 streams words through the DOU into tile 1's read buffer;
    the program never RECVs, so once the read buffer (capacity 8)
    backs up the DOU stops capturing, the write buffer fills, and the
    column parks on SEND forever - sustained backpressure with no
    release, the pure SEND-parked batching shape.
    """
    program = assemble("""
        tmask 0x1
        movi r1, 9
        loop 64
          send r1
          addi r1, r1, 1
        endloop
        halt
    """, "choked-sender")
    schedule = compile_schedule(
        [[Transfer(src=0, dsts=(1,))]], name="to-neighbour"
    )
    config = ChipConfig(
        reference_mhz=600.0,
        columns=(ColumnConfig(divider=4),),
        strict_schedules=False,
    )
    return Chip(config, programs=[program], dou_programs=[schedule])


def test_send_parked_column_bounded_window_differential():
    """A permanently parked sender: windows agree edge for edge.

    The run can never complete (the reader is the test, not a
    program), so the differential runs over bounded ``advance``
    windows - which is exactly where parked-edge settlement must
    charge the right number of stall cycles at every window end.
    """
    ref_chip, cmp_chip = build_choked_sender(), build_choked_sender()
    ref_engine = ReferenceEngine(ref_chip)
    cmp_engine = CompiledEngine(cmp_chip)
    for window in (37, 500, 2_000):
        assert cmp_engine.advance(window) == ref_engine.advance(window)
        assert collect(cmp_chip) == collect(ref_chip)
    # The column really parked on SEND and the compiled engine really
    # settled those edges arithmetically.
    assert cmp_chip.columns[0].blocked_on_send()
    assert cmp_chip.columns[0].comm_stalls > 0
    assert cmp_engine.profile_snapshot()["parked_edges"] > 0


def build_backpressure_pipeline(samples: int = 48) -> Chip:
    """Fast producer, slow consumer: SEND parking that releases.

    The producer column (divider 2) can generate words far faster
    than the consumer column (divider 36) retires them, so its write
    buffer saturates and it spends most of the run parked on SEND -
    but every consumer RECV eventually releases it, and the run
    completes.
    """
    producer = assemble(f"""
        tmask 0x1
        movi r1, 0
        loop {samples}
          addi r1, r1, 3
          send r1
        endloop
        halt
    """, "producer")
    consumer = assemble(f"""
        movi r2, 0
        loop {samples}
          recv r1
          add r2, r2, r1
        endloop
        halt
    """, "consumer")
    to_port = compile_schedule(
        [[Transfer(src=0, dsts=(PORT_POSITION,))]], name="to-port"
    )
    fan_out = compile_schedule(
        [[Transfer(src=PORT_POSITION, dsts=(0, 1, 2, 3))]],
        name="fan-out",
    )
    horizontal = compile_schedule(
        [[Transfer(src=0, dsts=(1,))]], n_positions=2, name="hbus"
    )
    config = ChipConfig(
        reference_mhz=600.0,
        columns=(ColumnConfig(divider=2), ColumnConfig(divider=36)),
        strict_schedules=False,
        port_capacity=4,
    )
    return Chip(config, programs=[producer, consumer],
                dou_programs=[to_port, fan_out],
                horizontal_dou=horizontal)


def test_send_parked_pipeline_runs_to_completion():
    reference = Simulator(build_backpressure_pipeline(),
                          engine="reference").run(max_ticks=200_000)
    chip = build_backpressure_pipeline()
    engine = CompiledEngine(chip)
    compiled = engine.run(max_ticks=200_000)
    assert compiled == reference
    # Sustained backpressure: the producer stalled on SEND a lot, and
    # the batcher settled parked edges rather than stepping them.
    assert compiled.column(0).comm_stalls > 100
    assert engine.profile_snapshot()["parked_edges"] > 0
    # The integrator really saw every word (48 sends of 3,6,...,144).
    expected = sum(3 * (i + 1) for i in range(48))
    assert chip.columns[1].tiles[0].regs.read("R2") == expected


# ----------------------------------------------------------------------
# retune while parked (the governed epoch layer's hazard case)
# ----------------------------------------------------------------------
def test_retune_mid_parked_window_differential():
    """A runtime retune lands while the producer is SEND-parked.

    Drives both engines through the same epoch sequence by hand the
    way :mod:`repro.control.epochs` does: advance to a hyperperiod
    boundary (the producer is deep in backpressure parking by then),
    retune the dividers, gate the retuned column for relock, and run
    out.  The compiled engine recompiles its clock plan mid-run and
    must stay bit-identical through the parked/retune interleaving.
    """
    ref_chip = build_backpressure_pipeline()
    cmp_chip = build_backpressure_pipeline()
    ref_engine = ReferenceEngine(ref_chip)
    cmp_engine = CompiledEngine(cmp_chip)
    hyperperiod = ref_chip.clock.hyperperiod()
    window = 20 * hyperperiod
    assert cmp_engine.advance(window) == ref_engine.advance(window)
    assert collect(cmp_chip) == collect(ref_chip)
    # Both copies must actually be parked when the retune commits.
    assert ref_chip.columns[0].parked_on_comm()
    assert cmp_chip.columns[0].parked_on_comm()
    for chip in (ref_chip, cmp_chip):
        chip.retune((3, 24))
        chip.clock_gate_until[1] = chip.reference_ticks + 30
    consumed_ref = ref_engine.advance(400_000)
    consumed_cmp = cmp_engine.advance(400_000)
    assert consumed_cmp == consumed_ref
    assert ref_chip.all_halted and cmp_chip.all_halted
    assert collect(cmp_chip) == collect(ref_chip)


def test_governed_scenario_differential():
    """The full governed stack end to end, reference vs compiled."""
    from repro.workloads.dvfs import run_scenario, wlan_mcs_scenario

    results = {
        engine: run_scenario(
            wlan_mcs_scenario(frames=4), "occupancy_pi", engine=engine
        )
        for engine in ("reference", "compiled")
    }
    assert results["compiled"].run.stats == results["reference"].run.stats
