"""Trace recorder."""

import pytest

from repro.obs.events import BUS, subscribed
from repro.sim.trace import TraceEvent, Tracer


def test_record_and_filter():
    tracer = Tracer()
    tracer.record(0, 0, "issued", 0)
    tracer.record(0, 1, "stalled", 3)
    tracer.record(1, 0, "bubble", 1)
    assert len(tracer.for_column(0)) == 2
    assert tracer.outcomes(0) == "i."
    assert tracer.outcomes(1) == "s"


def test_limit_drops_excess():
    tracer = Tracer(limit=2)
    for tick in range(5):
        tracer.record(tick, 0, "issued", tick)
    assert len(tracer.events) == 2
    assert tracer.dropped == 3


def test_limit_validation():
    with pytest.raises(ValueError):
        Tracer(limit=0)


def test_event_fields():
    event = TraceEvent(3, 1, "issued", 7)
    assert event.tick == 3
    assert event.pc == 7


def test_total_counts_recorded_and_dropped():
    tracer = Tracer(limit=2)
    for tick in range(5):
        tracer.record(tick, 0, "issued", tick)
    assert tracer.total == 5
    assert len(tracer.events) == 2


def test_bus_subscription_folds_column_events():
    tracer = Tracer()
    with subscribed(tracer):
        BUS.instant("halted", tick=40, track="column1")
        BUS.counter("divider", 4, tick=0, track="column0")
        BUS.span("window:dense", 0, 100, track="engine")  # no column
        BUS.instant("govern", tick=8, track="governor")   # no column
    assert tracer.total == 2
    halted = tracer.for_column(1)
    assert len(halted) == 1
    assert halted[0].tick == 40
    assert halted[0].outcome == "halted"
    assert halted[0].pc == -1


def test_bus_subscription_traces_compiled_runs():
    # The compiled engine never calls the observer hook (that would
    # force the reference path); the bus subscription is how its runs
    # become traceable.
    from repro.eval.engines import build_ddc_stream_chip
    from repro.sim.engine import create_engine

    tracer = Tracer()
    with subscribed(tracer):
        create_engine(
            "compiled", build_ddc_stream_chip(samples=20)
        ).run()
    assert tracer.total > 0
    assert tracer.for_column(0) and tracer.for_column(1)


def test_bus_subscription_respects_limit():
    tracer = Tracer(limit=1)
    with subscribed(tracer):
        BUS.instant("halted", tick=1, track="column0")
        BUS.instant("halted", tick=2, track="column0")
    assert len(tracer.events) == 1
    assert tracer.dropped == 1
    assert tracer.total == 2
