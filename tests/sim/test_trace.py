"""Trace recorder."""

import pytest

from repro.sim.trace import TraceEvent, Tracer


def test_record_and_filter():
    tracer = Tracer()
    tracer.record(0, 0, "issued", 0)
    tracer.record(0, 1, "stalled", 3)
    tracer.record(1, 0, "bubble", 1)
    assert len(tracer.for_column(0)) == 2
    assert tracer.outcomes(0) == "i."
    assert tracer.outcomes(1) == "s"


def test_limit_drops_excess():
    tracer = Tracer(limit=2)
    for tick in range(5):
        tracer.record(tick, 0, "issued", tick)
    assert len(tracer.events) == 2
    assert tracer.dropped == 3


def test_limit_validation():
    with pytest.raises(ValueError):
        Tracer(limit=0)


def test_event_fields():
    event = TraceEvent(3, 1, "issued", 7)
    assert event.tick == 3
    assert event.pc == 7
