"""Cycle-level simulator end-to-end behaviours."""

import pytest

from repro.errors import SimulationError
from repro.arch.config import ChipConfig, ColumnConfig
from repro.arch.chip import Chip
from repro.arch.dou import DouCycle, DouProgram, DouState, linear_schedule
from repro.isa.assembler import assemble
from repro.sim.simulator import Simulator, run_single_column
from repro.sim.trace import Tracer


def test_mac_kernel_computes_dot_product():
    program = assemble("""
        movi p0, 0
        movi p1, 16
        movi a0, 0
        loop 4
          ld r1, [p0++]
          ld r2, [p1++]
          mac a0, r1, r2
        endloop
        mov r0, a0
        halt
    """)
    chip, stats = run_single_column(
        program,
        memory_images={0: {0: [1, 2, 3, 4], 16: [5, 6, 7, 8]}},
    )
    assert chip.columns[0].tiles[0].regs.read("R0") == 70
    # 3 setup + 4*3 loop body + 1 move = 16 issued instructions
    assert stats.column(0).issued == 16


def test_simd_executes_on_all_tiles_with_per_tile_data():
    program = assemble("""
        tid r0
        movi r1, 10
        mul r2, r0, r1
        halt
    """)
    chip, _ = run_single_column(program)
    values = [t.regs.read("R2") for t in chip.columns[0].tiles]
    assert values == [0, 10, 20, 30]


def test_dou_broadcast_synchronizes_column():
    program = assemble("""
        tid r0
        send r0
        recv r2
        halt
    """)
    cycle = DouCycle(
        closed=frozenset((0, b) for b in range(4)),
        drives=((0, 0),),
        captures=((0, 0), (1, 0), (2, 0), (3, 0)),
    )
    chip, stats = run_single_column(
        program,
        dou_program=linear_schedule([cycle]),
        strict_schedules=False,
        max_ticks=1000,
    )
    received = [t.regs.read("R2") for t in chip.columns[0].tiles]
    assert received == [0, 0, 0, 0]  # tile 0's id broadcast to all


def test_neighbour_exchange_on_disjoint_segments():
    program = assemble("""
        tid r0
        send r0
        recv r2
        halt
    """)
    cycle = DouCycle(
        closed=frozenset({(0, 0), (0, 2)}),
        drives=((0, 0), (2, 0)),
        captures=((0, 0), (1, 0), (2, 0), (3, 0)),
    )
    chip, _ = run_single_column(
        program,
        dou_program=linear_schedule([cycle]),
        strict_schedules=False,
        max_ticks=1000,
    )
    assert [t.regs.read("R2") for t in chip.columns[0].tiles] \
        == [0, 0, 2, 2]


def test_input_port_feeds_tiles():
    # The port position (4) drives split 0 to tile 0.
    program = assemble("""
        recv r0
        recv r1
        add r2, r0, r1
        halt
    """)
    cycle = DouCycle(
        closed=frozenset((0, b) for b in range(4)),
        drives=((4, 0),),
        captures=((0, 0), (1, 0), (2, 0), (3, 0)),
    )
    chip, _ = run_single_column(
        program,
        dou_program=linear_schedule([cycle]),
        input_words=[11, 22] * 4,
        strict_schedules=False,
        max_ticks=1000,
    )
    tile = chip.columns[0].tiles[0]
    assert tile.regs.read("R0") == 11
    assert tile.regs.read("R1") == 22
    assert tile.regs.read("R2") == 33


def test_deadlock_detection():
    program = assemble("recv r0\nhalt")  # nobody ever sends
    with pytest.raises(SimulationError):
        run_single_column(program, max_ticks=500)


def test_tracer_records_outcomes():
    tracer = Tracer(limit=100)
    program = assemble("movi r0, 1\nmovi r1, 2\nhalt")
    run_single_column(program, tracer=tracer, max_ticks=100)
    outcomes = tracer.outcomes(0)
    assert outcomes.startswith("ii")


def test_two_column_pipeline_through_horizontal_bus():
    """Producer column -> horizontal bus -> consumer column."""
    producer = assemble("""
        movi r0, 5
        loop 4
          addi r0, r0, 1
          send r0
        endloop
        halt
    """)
    consumer = assemble("""
        movi r3, 0
        loop 4
          recv r1
          add r3, r3, r1
        endloop
        halt
    """)
    # Column 0 vertical DOU: tile 0 -> port (position 4).
    v0 = linear_schedule([DouCycle(
        closed=frozenset((0, b) for b in range(4)),
        drives=((0, 0),),
        captures=((4, 0),),
    )])
    # Column 1 vertical DOU: port -> all four tiles.
    v1 = linear_schedule([DouCycle(
        closed=frozenset((0, b) for b in range(4)),
        drives=((4, 0),),
        captures=((0, 0), (1, 0), (2, 0), (3, 0)),
    )])
    horizontal = linear_schedule([DouCycle(
        closed=frozenset({(0, 0)}),
        drives=((0, 0),),
        captures=((1, 0),),
    )])
    config = ChipConfig(
        reference_mhz=100.0,
        columns=(ColumnConfig(), ColumnConfig()),
        strict_schedules=False,
    )
    chip = Chip(config, programs=[producer, consumer],
                dou_programs=[v0, v1], horizontal_dou=horizontal)
    Simulator(chip).run(max_ticks=2000)
    # producer sends 6,7,8,9 -> consumer sums to 30 on every tile
    assert all(
        t.regs.read("R3") == 30 for t in chip.columns[1].tiles
    )


def test_rate_matched_producer_consumer():
    """A 2x-faster producer throttled by ZORM never overruns."""
    producer = assemble("""
        tmask 0x1          ; only tile 0 produces (its buffer is the
                           ; one the DOU drains)
        loop 8
          movi r0, 1
          send r0
        endloop
        halt
    """)
    consumer = assemble("""
        movi r3, 0
        loop 8
          recv r1
          add r3, r3, r1
        endloop
        halt
    """)
    v0 = linear_schedule([DouCycle(
        closed=frozenset((0, b) for b in range(4)),
        drives=((0, 0),),
        captures=((4, 0),),
    )])
    v1 = linear_schedule([DouCycle(
        closed=frozenset((0, b) for b in range(4)),
        drives=((4, 0),),
        captures=((0, 0), (1, 0), (2, 0), (3, 0)),
    )])
    horizontal = linear_schedule([DouCycle(
        closed=frozenset({(0, 0)}),
        drives=((0, 0),),
        captures=((1, 0),),
    )])
    config = ChipConfig(
        reference_mhz=100.0,
        columns=(
            # producer: full rate but throttled 1 nop per 2 issues
            ColumnConfig(divider=1, zorm=(2, 1)),
            ColumnConfig(divider=2),
        ),
        strict_schedules=False,
        buffer_capacity=4,
    )
    chip = Chip(config, programs=[producer, consumer],
                dou_programs=[v0, v1], horizontal_dou=horizontal)
    stats = Simulator(chip).run(max_ticks=4000)
    assert all(t.regs.read("R3") == 8 for t in chip.columns[1].tiles)
    assert stats.column(0).zorm_nops > 0


def test_stats_frequency_helper():
    program = assemble("""
        loop 10
          nop
        endloop
        halt
    """)
    _, stats = run_single_column(program, reference_mhz=200.0)
    cps = stats.cycles_per_sample(0, samples=10)
    assert cps >= 1.0
    assert stats.frequency_for_rate(0, 10, 2.0) == pytest.approx(
        cps * 2.0
    )
