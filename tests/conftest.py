"""Shared fixtures."""

import numpy as np
import pytest

from repro.power import PowerModel
from repro.tech import PAPER_TECHNOLOGY, VoltageFrequencyCurve


@pytest.fixture
def rng():
    """Deterministic random generator for tests."""
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def curve():
    """The paper's 20 FO4 voltage-frequency curve."""
    return VoltageFrequencyCurve.from_technology()


@pytest.fixture(scope="session")
def power_model():
    """The paper's power model (Table 4 rails)."""
    return PowerModel()


@pytest.fixture(scope="session")
def tech():
    """The paper's technology parameters."""
    return PAPER_TECHNOLOGY
