"""The telemetry plane's standing contracts, asserted differentially.

Three invariants from the observability charter:

* **observe-only** - a fully subscribed run produces bit-identical
  :class:`~repro.sim.stats.SimulationStats` to a no-sink run;
* **near-zero inactive cost** - with no sink attached the
  instrumented engine's wall clock stays within a small margin of a
  subscribed run's (the emission sites sit off the per-tick hot
  path, so even the subscribed side is cheap);
* **deterministic export** - identical runs yield byte-identical
  Chrome-trace payloads (wall clock only enters via the writer's
  metadata stamp, which is excluded here by exporting pre-write).
"""

import json
import time

import pytest

from repro.obs import (
    BUS,
    ChromeTraceBuilder,
    CountingSink,
    JsonlSink,
    subscribed,
)


@pytest.fixture(autouse=True)
def _smoke(monkeypatch):
    """Shrink the benchmark workloads; assert no bus leaks out."""
    monkeypatch.setenv("BENCH_SMOKE", "1")
    assert not BUS.active
    yield
    assert not BUS.active


def _run(key):
    from repro.eval.engines import WORKLOADS

    return WORKLOADS[key][1]("compiled")


@pytest.mark.parametrize(
    "key", ["fir", "mixed_dividers", "ddc_pipeline", "governed_burst"]
)
def test_fully_subscribed_run_is_bit_identical(key, tmp_path):
    baseline = _run(key)
    builder = ChromeTraceBuilder()
    counting = CountingSink()
    jsonl = JsonlSink(tmp_path / "events.jsonl")
    with subscribed(builder), subscribed(counting), subscribed(jsonl):
        traced = _run(key)
    assert traced == baseline


def test_trace_sees_engine_activity(tmp_path):
    counting = CountingSink()
    with subscribed(counting):
        _run("ddc_pipeline")
    assert counting.total > 0
    assert counting.by_category.get("engine", 0) > 0


def test_governed_run_emits_control_and_power_events():
    counting = CountingSink()
    with subscribed(counting):
        _run("governed_burst")
    assert counting.by_category.get("control", 0) > 0
    assert counting.by_category.get("power", 0) > 0


def _best_of(fn, repeats=9):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.mark.parametrize("key", ["fir", "mixed_dividers"])
def test_inactive_bus_overhead_under_two_percent(key):
    """No-sink runs must not pay for the instrumentation.

    Strictly stronger than the contract: the comparison run has a
    live (no-op) sink, so it pays every emission site's event
    construction - the inactive side must still land within 2% of it
    (plus a small absolute epsilon for scheduler noise on sub-
    millisecond smoke runs).  The repeats interleave both sides so
    frequency drift biases them equally.
    """
    _run(key)  # warm caches (imports, kernels, lockstep plans)
    silent = float("inf")
    sunk = float("inf")
    noop = lambda event: None  # noqa: E731 - cheapest possible sink
    for _ in range(9):
        start = time.perf_counter()
        _run(key)
        silent = min(silent, time.perf_counter() - start)
        with subscribed(noop):
            start = time.perf_counter()
            _run(key)
            sunk = min(sunk, time.perf_counter() - start)
    assert silent <= sunk * 1.02 + 300e-6, (
        f"{key}: no-sink run {silent * 1e3:.3f} ms vs subscribed "
        f"{sunk * 1e3:.3f} ms - the inactive path is paying for "
        f"telemetry"
    )


@pytest.mark.parametrize("key", ["ddc_pipeline", "governed_burst"])
def test_exporter_output_is_deterministic(key):
    # One untraced run first: the process-wide lockstep plan caches
    # mean the very first run records rounds later runs replay, so
    # only runs after the warm-up emit identical event sequences.
    _run(key)
    payloads = []
    for _ in range(2):
        builder = ChromeTraceBuilder()
        with subscribed(builder):
            builder.process(key)
            _run(key)
        payloads.append(
            json.dumps(builder.to_chrome(), sort_keys=True)
        )
    assert payloads[0] == payloads[1]
