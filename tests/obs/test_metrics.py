"""Metrics registry: typed instruments over an adoptable store."""

import pytest

from repro.obs.metrics import Histogram, MetricsRegistry


def test_counter_increments():
    registry = MetricsRegistry()
    counter = registry.counter("events")
    counter.inc()
    counter.inc(4)
    assert counter.value == 5
    assert registry.snapshot()["events"] == 5


def test_counter_rejects_negative():
    counter = MetricsRegistry().counter("events")
    with pytest.raises(ValueError):
        counter.inc(-1)


def test_gauge_set_and_add():
    gauge = MetricsRegistry().gauge("dense_s")
    gauge.set(1.5)
    gauge.add(0.5)
    assert gauge.value == 2.0


def test_adopted_store_is_shared_both_ways():
    # The compiled engine's pattern: hot loops mutate the dict raw,
    # the registry reads/writes the same slots.
    store = {"dense_ticks": 10}
    registry = MetricsRegistry.adopt(store, namespace="engine")
    counter = registry.counter("dense_ticks")
    assert counter.value == 10
    store["dense_ticks"] += 5  # raw hot-loop increment
    assert counter.value == 15
    counter.inc(1)
    assert store["dense_ticks"] == 16
    assert registry.snapshot()["dense_ticks"] == 16


def test_kind_conflict_raises():
    registry = MetricsRegistry()
    registry.counter("x")
    with pytest.raises(ValueError):
        registry.gauge("x")
    assert registry.kind("x") == "counter"


def test_histogram_buckets_and_stats():
    histogram = MetricsRegistry().histogram("lat", bounds=[1, 10, 100])
    for value in (0, 1, 5, 50, 500):
        histogram.observe(value)
    assert histogram.count == 5
    assert histogram.min == 0 and histogram.max == 500
    assert histogram.mean == pytest.approx(111.2)
    rendered = histogram.to_dict()
    assert rendered["buckets"] == {
        "<=1": 2, "<=10": 1, "<=100": 1, ">100": 1,
    }


def test_histogram_requires_bounds():
    with pytest.raises(ValueError):
        Histogram("empty", bounds=[])


def test_histogram_renders_in_snapshot():
    registry = MetricsRegistry()
    registry.histogram("lat", bounds=[10]).observe(3)
    snapshot = registry.snapshot()
    assert snapshot["lat"]["count"] == 1


def test_snapshot_includes_unregistered_adopted_keys():
    # Adopted stores may carry keys never registered through the
    # typed API; the snapshot is a view of everything.
    registry = MetricsRegistry.adopt({"raw_key": 7})
    assert registry.snapshot() == {"raw_key": 7}
    assert registry.kind("raw_key") is None
