"""Event bus: typed events, subscription, the inactive fast path."""

import pytest

from repro.obs.events import (
    BUS,
    CounterEvent,
    EventBus,
    InstantEvent,
    SpanEvent,
    subscribed,
)


class Collector:
    def __init__(self):
        self.events = []

    def handle(self, event):
        self.events.append(event)


def test_inactive_until_subscribed():
    bus = EventBus()
    assert not bus.active
    sink = bus.subscribe(Collector())
    assert bus.active
    bus.unsubscribe(sink)
    assert not bus.active


def test_emission_helpers_build_typed_events():
    bus = EventBus()
    sink = bus.subscribe(Collector())
    bus.span("w", 10, 25, track="column0", args={"phase": "dense"})
    bus.instant("halted", tick=25, track="column1")
    bus.counter("divider", 3, tick=10, track="column0")
    span, instant, counter = sink.events
    assert isinstance(span, SpanEvent)
    assert span.tick == 10 and span.duration == 15
    assert span.args["phase"] == "dense"
    assert isinstance(instant, InstantEvent)
    assert instant.tick == 25 and instant.track == "column1"
    assert isinstance(counter, CounterEvent)
    assert counter.value == 3


def test_negative_span_duration_rejected():
    with pytest.raises(ValueError):
        SpanEvent(
            name="w", category="engine", track="engine", tick=10,
            duration=-1,
        )


def test_bare_callable_is_a_sink():
    bus = EventBus()
    seen = []
    bus.subscribe(seen.append)
    bus.instant("x")
    assert len(seen) == 1 and seen[0].name == "x"


def test_non_sink_rejected():
    bus = EventBus()
    with pytest.raises(TypeError):
        bus.subscribe(object())


def test_double_subscribe_is_noop():
    bus = EventBus()
    sink = Collector()
    bus.subscribe(sink)
    bus.subscribe(sink)
    bus.instant("x")
    assert len(sink.events) == 1


def test_fanout_to_every_sink():
    bus = EventBus()
    first, second = Collector(), Collector()
    bus.subscribe(first)
    bus.subscribe(second)
    bus.instant("x")
    assert len(first.events) == len(second.events) == 1


def test_unsubscribe_keeps_other_sinks_active():
    bus = EventBus()
    first, second = Collector(), Collector()
    bus.subscribe(first)
    bus.subscribe(second)
    bus.unsubscribe(first)
    assert bus.active
    bus.instant("x")
    assert not first.events and len(second.events) == 1


def test_sink_errors_propagate():
    bus = EventBus()

    def broken(event):
        raise RuntimeError("exporter died")

    bus.subscribe(broken)
    with pytest.raises(RuntimeError):
        bus.instant("x")


def test_subscribed_contextmanager_never_leaks():
    sink = Collector()
    with pytest.raises(RuntimeError):
        with subscribed(sink):
            assert BUS.active
            raise RuntimeError("mid-run failure")
    assert not BUS.active


def test_global_bus_default_inactive():
    # Other tests and the engine's untraced fast path both rely on
    # the process-wide bus resting inactive.
    assert not BUS.active
