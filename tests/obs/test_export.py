"""Exporters: Chrome-trace builder, JSONL sink, validation, writer."""

import json

import pytest

from repro.obs.events import EventBus
from repro.obs.export import (
    ChromeTraceBuilder,
    CountingSink,
    JsonlSink,
    validate_chrome_trace,
    write_chrome_trace,
)


def _emit_sample(bus):
    bus.span("window:dense", 0, 100, track="engine",
             args={"dense_ticks": 40})
    bus.counter("divider", 4, tick=0, track="column0")
    bus.instant("halted", tick=80, track="column0")
    bus.instant("charge", category="power", track="ledger",
                args={"energy_nj": 1.5})  # tickless


def test_chrome_builder_structure():
    bus = EventBus()
    builder = bus.subscribe(ChromeTraceBuilder())
    builder.process("ddc")
    _emit_sample(bus)
    payload = builder.to_chrome()
    assert validate_chrome_trace(payload) == []
    events = payload["traceEvents"]
    phases = [entry["ph"] for entry in events]
    assert phases.count("X") == 1
    assert phases.count("C") == 1
    assert phases.count("i") == 2
    processes = {
        entry["args"]["name"]
        for entry in events
        if entry["ph"] == "M" and entry["name"] == "process_name"
    }
    tracks = {
        entry["args"]["name"]
        for entry in events
        if entry["ph"] == "M" and entry["name"] == "thread_name"
    }
    assert "ddc" in processes
    assert {"engine", "column0", "ledger"} <= tracks


def test_reference_mhz_scales_timestamps():
    bus = EventBus()
    builder = bus.subscribe(ChromeTraceBuilder(reference_mhz=100.0))
    bus.span("w", 200, 400, track="engine")
    span = [
        entry for entry in builder.to_chrome()["traceEvents"]
        if entry["ph"] == "X"
    ][0]
    assert span["ts"] == pytest.approx(2.0)   # 200 ticks @ 100 MHz
    assert span["dur"] == pytest.approx(2.0)


def test_tickless_events_placed_at_latest_time():
    bus = EventBus()
    builder = bus.subscribe(ChromeTraceBuilder())
    bus.span("w", 0, 50, track="engine")
    bus.instant("charge", category="power", track="ledger")
    instant = [
        entry for entry in builder.to_chrome()["traceEvents"]
        if entry["ph"] == "i"
    ][0]
    assert instant["ts"] == 50.0


def test_validate_rejects_malformed_payloads():
    assert validate_chrome_trace([]) != []
    assert validate_chrome_trace({}) == ["missing traceEvents list"]
    assert "traceEvents is empty" in validate_chrome_trace(
        {"traceEvents": []}
    )
    bad_phase = {"traceEvents": [{"ph": "Z", "name": "x"}]}
    assert any(
        "unknown phase" in problem
        for problem in validate_chrome_trace(bad_phase)
    )
    bad_dur = {"traceEvents": [{
        "ph": "X", "name": "x", "pid": 1, "tid": 1, "ts": 0,
        "dur": -5,
    }]}
    assert any(
        "negative dur" in problem
        for problem in validate_chrome_trace(bad_dur)
    )


def test_write_chrome_trace_roundtrip(tmp_path):
    bus = EventBus()
    builder = bus.subscribe(ChromeTraceBuilder())
    _emit_sample(bus)
    target = tmp_path / "trace.json"
    written = write_chrome_trace(target, builder)
    loaded = json.loads(target.read_text())
    assert validate_chrome_trace(loaded) == []
    assert "written_unix_s" in loaded["metadata"]
    assert written["metadata"]["events"] == 4


def test_write_refuses_invalid_trace(tmp_path):
    target = tmp_path / "trace.json"
    with pytest.raises(ValueError):
        write_chrome_trace(target, {"traceEvents": "nope"})
    assert not target.exists()


def test_jsonl_sink_buffers_then_writes(tmp_path):
    bus = EventBus()
    target = tmp_path / "events.jsonl"
    sink = bus.subscribe(JsonlSink(target))
    _emit_sample(bus)
    assert len(sink.buffer) == 4
    assert not target.exists()  # buffered: nothing written yet
    sink.close()
    lines = [
        json.loads(line)
        for line in target.read_text().splitlines()
    ]
    assert [record["kind"] for record in lines] == [
        "span", "counter", "instant", "instant",
    ]
    assert lines[0]["duration"] == 100
    assert lines[1]["value"] == 4
    assert lines[3]["args"]["energy_nj"] == 1.5


def test_jsonl_sink_context_manager(tmp_path):
    bus = EventBus()
    target = tmp_path / "events.jsonl"
    with JsonlSink(target) as sink:
        bus.subscribe(sink)
        bus.instant("x")
    assert len(target.read_text().splitlines()) == 1


def test_counting_sink_summary():
    bus = EventBus()
    sink = bus.subscribe(CountingSink())
    _emit_sample(bus)
    summary = sink.summary()
    assert summary["events"] == 4
    assert summary["by_kind"] == {
        "counter": 1, "instant": 2, "span": 1,
    }
    assert summary["by_category"] == {"engine": 3, "power": 1}
