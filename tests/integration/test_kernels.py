"""Assembly kernels on the cycle-level simulator.

Each kernel carries its own functional oracle; these tests run them
and additionally pin down the measured architectural quantities
(instruction counts, communication densities) that feed the power
methodology.
"""

import pytest

from repro.kernels import (
    build_acs_kernel,
    build_cic_chain_kernel,
    build_dct_kernel,
    build_fir_kernel,
    build_mixer_kernel,
    run_kernel,
)


@pytest.mark.parametrize("builder", [
    build_fir_kernel,
    build_mixer_kernel,
    build_cic_chain_kernel,
    build_acs_kernel,
    build_dct_kernel,
], ids=["fir", "mixer", "cic", "acs", "dct"])
def test_kernel_passes_its_oracle(builder):
    run = run_kernel(builder())
    assert run.issued > 0
    assert run.cycles_per_sample > 0


class TestFirKernel:
    def test_instruction_count_is_exact(self):
        # per window: 2 movi + taps*(2 ld + mac) + mov + st = 4 + 3*taps
        # plus 2 global movi
        run = run_kernel(build_fir_kernel(taps=8, windows=6))
        assert run.issued == 2 + 6 * (4 + 3 * 8)

    def test_no_bus_traffic(self):
        run = run_kernel(build_fir_kernel())
        assert run.bus_words_per_cycle == 0.0

    def test_scales_with_taps(self):
        short = run_kernel(build_fir_kernel(taps=4, windows=4))
        long = run_kernel(build_fir_kernel(taps=16, windows=4))
        assert long.cycles_per_sample > short.cycles_per_sample


class TestMixerKernel:
    def test_cycles_per_sample(self):
        # 12 instructions per sample + 6 setup / 8 samples
        run = run_kernel(build_mixer_kernel(samples=8))
        assert run.issued == 6 + 8 * 12

    def test_frequency_derivation_matches_table4_scale(self):
        """At 64 MS/s split over 8 tiles (8 MS/s each), the measured
        mixer kernel lands in the same frequency regime as the paper's
        120 MHz mixer column."""
        run = run_kernel(build_mixer_kernel(samples=8))
        frequency = run.frequency_for_rate(sample_rate_msps=8.0)
        assert 80.0 <= frequency <= 140.0


class TestCicChainKernel:
    def test_moves_one_word_per_stage_per_sample(self):
        run = run_kernel(build_cic_chain_kernel(samples=24))
        # 5 hops (port->t0..t3->port) per sample
        assert run.stats.column(0).bus_words \
            == pytest.approx(5 * 24, abs=5)

    def test_comm_density_is_high(self):
        """The integrator chain is communication-bound - the paper's
        CIC Integrator carries the heaviest DDC traffic."""
        run = run_kernel(build_cic_chain_kernel())
        assert run.bus_words_per_cycle > 1.0


class TestAcsKernel:
    def test_exchange_traffic(self):
        run = run_kernel(build_acs_kernel(steps=16))
        # 4 metric words swap per step
        assert run.stats.column(0).bus_words \
            == pytest.approx(4 * 16, abs=8)

    def test_different_seeds_change_metrics(self):
        a = run_kernel(build_acs_kernel(seed=1))
        b = run_kernel(build_acs_kernel(seed=2))
        metrics_a = [t.regs.read_signed("R0")
                     for t in a.chip.columns[0].tiles]
        metrics_b = [t.regs.read_signed("R0")
                     for t in b.chip.columns[0].tiles]
        assert metrics_a != metrics_b


class TestDctKernel:
    def test_mac_count(self):
        run = run_kernel(build_dct_kernel())
        tile = run.chip.columns[0].tiles[0]
        assert tile.mac_operations == 64  # 8 outputs x 8 taps

    def test_q14_precision(self):
        # the oracle inside the kernel already asserts < 2 LSB error;
        # rerun with a different seed for coverage
        run_kernel(build_dct_kernel(seed=123))
