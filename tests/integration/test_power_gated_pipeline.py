"""Gated-rail accounting on a DDC pipeline that loses a column.

The DDC head stage (the mixer) finishes its trace while the heavier
downstream stages are still working: a column halts *mid-scenario*.
The coordinator must park it, the gate planner must turn its
remaining windows into a no-wake tail segment, the ledger must charge
those windows at the gated rate - and energy conservation must stay
exact through all of it, including the re-wake charges priced for the
light-frame idles earlier in the run.
"""

import pytest

from repro.workloads.coordinated import (
    ddc_pipeline_scenario,
    run_pipeline,
)

FRAMES = 8


@pytest.fixture(scope="module")
def coordinated_run():
    scenario = ddc_pipeline_scenario(frames=FRAMES)
    return scenario, run_pipeline(scenario, "coordinated")


def _quiet_from(result, column):
    """First epoch index after which the column never issues again."""
    timeline = result.run.timeline
    for index in range(len(timeline) - 1, -1, -1):
        if timeline[index].column_activity[column].issued != 0:
            return index + 1
    return 0


def test_head_column_halts_mid_scenario(coordinated_run):
    _, result = coordinated_run
    n_epochs = len(result.run.timeline)
    head_quiet = _quiet_from(result, 0)
    tail_quiet = _quiet_from(result, result.scenario.n_stages - 1)
    assert head_quiet < n_epochs  # the head really went quiet...
    assert head_quiet < tail_quiet  # ...while downstream still worked


def test_halted_column_is_parked_on_the_slowest_rung(coordinated_run):
    scenario, result = coordinated_run
    final = result.run.timeline[-1].dividers
    assert final[0] == scenario.divider_ladder[-1]


def test_halted_tail_is_gated_without_a_wake(coordinated_run):
    _, result = coordinated_run
    n_epochs = len(result.run.timeline)
    tails = [
        segment for segment in result.gate_segments
        if segment.column == 0 and not segment.wake
    ]
    assert len(tails) == 1
    tail = tails[0]
    assert tail.end_epoch == n_epochs
    assert tail.start_epoch == _quiet_from(result, 0)


def test_tail_gate_extends_through_the_drain(coordinated_run):
    # "Powers off for good" must include the post-halt drain window:
    # the drain segment for the halted head column is charged gated.
    _, result = coordinated_run
    n_epochs = len(result.run.timeline)
    drain = result.run.stats.reference_ticks \
        - result.run.timeline[-1].end_tick
    assert drain > 0  # the scenario really has a drain window
    drain_entry = result.ledger.domain(f"seg{n_epochs}.col0")
    assert drain_entry.gated is True


def test_gated_windows_charge_the_gated_rate(coordinated_run):
    _, result = coordinated_run
    gated = [e for e in result.ledger.domains if e.gated]
    assert gated
    for entry in gated:
        assert entry.active_nj == 0.0
        assert entry.idle_nj == 0.0
        assert entry.bus_nj == 0.0
        assert entry.leakage_nj >= 0.0
        assert entry.busy_fraction == 0.0


def test_rewakes_are_priced(coordinated_run):
    _, result = coordinated_run
    assert result.wake_count >= 1
    wakes = [
        t for t in result.ledger.transitions
        if t.name.startswith("wake")
    ]
    assert len(wakes) == result.wake_count
    for wake in wakes:
        assert wake.energy_nj > 0.0


def test_conservation_holds_with_a_mid_scenario_halt(coordinated_run):
    _, result = coordinated_run
    assert result.conservation_error <= 1e-9
    # The ledger total decomposes exactly into domain energy plus
    # every transition and wake charge - no window double-charged or
    # dropped around the halt boundary.
    domains = sum(e.total_nj for e in result.ledger.domains)
    transitions = result.ledger.transition_nj
    assert result.energy_nj == pytest.approx(
        domains + transitions, rel=1e-12
    )
