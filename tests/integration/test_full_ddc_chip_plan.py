"""The complete Table 4 DDC realized as a 13-column chip plan."""

import pytest

from repro.apps.ddc.pipeline import ddc_sdf_graph
from repro.arch.builder import build_chip_plan
from repro.sdf import ColumnAssignment, SdfMapper


@pytest.fixture(scope="module")
def ddc_plan():
    app = SdfMapper().map(ddc_sdf_graph(), [
        ColumnAssignment("Digital Mixer", ("mixer",), 8),
        ColumnAssignment("CIC Integrator", ("integrator",), 8),
        ColumnAssignment("CIC Comb", ("comb",), 2),
        ColumnAssignment("CFIR", ("cfir",), 16),
        ColumnAssignment("PFIR", ("pfir",), 16),
    ], iteration_rate_msps=1.0)
    # 400 MHz divides the paper's 200/40 exactly and lands every other
    # component within one ZORM notch (see workloads.realization).
    return build_chip_plan(app, reference_mhz=400.0)


def test_thirteen_columns(ddc_plan):
    """8+8+2+16+16 tiles in whole columns: 2+2+1+4+4 = 13."""
    assert ddc_plan.n_columns == 13
    assert ddc_plan.columns_of("Digital Mixer") == (0, 1)
    assert ddc_plan.columns_of("CIC Comb") == (4,)
    assert ddc_plan.columns_of("PFIR") == (9, 10, 11, 12)


def test_divided_clocks_meet_every_requirement(ddc_plan):
    requirements = {
        "Digital Mixer": 120.0,
        "CIC Integrator": 200.0,
        "CIC Comb": 40.0,
        "CFIR": 380.0,
        "PFIR": 370.0,
    }
    config = ddc_plan.config
    for name, needed in requirements.items():
        column_index = ddc_plan.columns_of(name)[0]
        actual = config.column_frequency_mhz(column_index)
        assert actual >= needed - 1e-9, name


def test_voltages_resolve_for_actual_clocks(ddc_plan):
    voltages = ddc_plan.config.resolve_voltages()
    assert len(voltages) == 13
    # integrator columns divide exactly to 200 MHz -> the 1.0 V rail
    integrator_column = ddc_plan.columns_of("CIC Integrator")[0]
    assert voltages[integrator_column] == 1.0
    # comb columns divide exactly to 40 MHz -> the floor rail
    comb_column = ddc_plan.columns_of("CIC Comb")[0]
    assert voltages[comb_column] == 0.7


def test_zorm_throttles_only_inexact_columns(ddc_plan):
    config = ddc_plan.config
    integrator = config.columns[ddc_plan.columns_of("CIC Integrator")[0]]
    assert integrator.zorm == (0, 0)  # 400/2 = 200 exact
    mixer = config.columns[ddc_plan.columns_of("Digital Mixer")[0]]
    interval, nops = mixer.zorm     # 400/3 = 133.3 > 120
    assert interval > 0 and nops > 0
    effective = (400.0 / mixer.divider) * interval / (interval + nops)
    assert effective <= 120.0 + 1e-6


def test_hyperperiod_is_bounded(ddc_plan):
    """Rationally related clocks realign quickly (no LCM blowup)."""
    from repro.arch.clocking import ClockTree

    tree = ClockTree(
        ddc_plan.config.reference_mhz,
        [c.divider for c in ddc_plan.config.columns],
    )
    assert tree.hyperperiod() <= 60
