"""Two clock domains end to end on a built chip.

A producer column at 120 MHz (divider 5 off a 600 MHz reference)
streams scaled samples through the horizontal bus into a consumer
column at 200 MHz (divider 3) - the Section 2 DDC front-end topology
with real programs, compiled DOU schedules, rationally related clocks,
and voltage-crossing buffers absorbing the rate mismatch.
"""

import pytest

from repro.arch.builder import build_chip_plan
from repro.arch.chip import Chip, PORT_POSITION
from repro.arch.dou_compiler import Transfer, compile_schedule
from repro.isa.assembler import assemble
from repro.sdf import ColumnAssignment, SdfGraph, SdfMapper
from repro.sim.simulator import Simulator

SAMPLES = 12


@pytest.fixture(scope="module")
def pipeline_chip():
    graph = SdfGraph("front-end")
    graph.add_actor("producer", cycles_per_firing=7.5)
    graph.add_actor("consumer", cycles_per_firing=12.5)
    graph.add_edge("producer", "consumer", produce=1, consume=1)
    app = SdfMapper().map(graph, [
        ColumnAssignment("Producer", ("producer",), 4),
        ColumnAssignment("Consumer", ("consumer",), 4),
    ], iteration_rate_msps=64.0)
    # Permissive schedules: the compiled DOU patterns are free-running
    # (they retry until data arrives) rather than cycle-exact.
    plan = build_chip_plan(app, reference_mhz=600.0,
                           strict_schedules=False)

    producer = assemble(f"""
        tmask 0x1            ; tile 0 owns the output stream
        movi p0, 0
        loop {SAMPLES}
          ld r1, [p0++]
          lsl r1, r1, 1      ; x2 "mix"
          send r1
        endloop
        halt
    """, "producer")
    consumer = assemble(f"""
        movi r2, 0
        loop {SAMPLES}
          recv r1
          add r2, r2, r1     ; running integrator
        endloop
        halt
    """, "consumer")

    to_port = compile_schedule(
        [[Transfer(src=0, dsts=(PORT_POSITION,))]], name="to-port"
    )
    fan_out = compile_schedule(
        [[Transfer(src=PORT_POSITION, dsts=(0, 1, 2, 3))]],
        name="fan-out",
    )
    horizontal = compile_schedule(
        [[Transfer(src=0, dsts=(1,))]],
        n_positions=2, name="hbus",
    )
    chip = Chip(
        plan.config,
        programs=[producer, consumer],
        dou_programs=[to_port, fan_out],
        horizontal_dou=horizontal,
    )
    chip.columns[0].tiles[0].load_memory(0, list(range(1, SAMPLES + 1)))
    stats = Simulator(chip).run(max_ticks=100_000)
    return chip, stats, plan


def test_clock_plan_matches_section2(pipeline_chip):
    _, _, plan = pipeline_chip
    config = plan.config
    assert config.columns[0].divider == 5   # 120 MHz
    assert config.columns[1].divider == 3   # 200 MHz
    assert config.resolve_voltages() == (0.8, 1.0)


def test_data_crosses_the_domains_correctly(pipeline_chip):
    chip, _, _ = pipeline_chip
    expected = sum(2 * x for x in range(1, SAMPLES + 1))
    for tile in chip.columns[1].tiles:
        assert tile.regs.read_signed("R2") == expected


def test_faster_consumer_stalls_on_the_slower_producer(pipeline_chip):
    """The 200 MHz consumer outruns the 120 MHz producer and waits in
    its RECV - absorbed by the buffers, not by failure."""
    chip, stats, _ = pipeline_chip
    assert chip.columns[1].comm_stalls > 0
    assert stats.column(1).issued == 1 + 2 * SAMPLES


def test_clock_ratio_observed(pipeline_chip):
    """Tile cycles accrue at the rational clock ratio (5:3 dividers)."""
    chip, stats, _ = pipeline_chip
    ratio = stats.column(1).tile_cycles / stats.column(0).tile_cycles
    assert ratio == pytest.approx(5.0 / 3.0, rel=0.05)


def test_every_word_crossed_the_horizontal_bus(pipeline_chip):
    _, stats, _ = pipeline_chip
    assert stats.horizontal_words == SAMPLES
