"""Failure injection: the machine model rejects illegal states loudly."""

import pytest

from repro.errors import SimulationError
from repro.arch.chip import Chip
from repro.arch.config import ChipConfig, ColumnConfig
from repro.arch.dou import DouProgram, DouState
from repro.isa.assembler import assemble
from repro.sim.simulator import Simulator, run_single_column


def test_bus_conflict_detected_at_runtime():
    """Two tiles driving one fused segment is a structural hazard."""
    program = assemble("""
        tid r0
        send r0
        recv r1
        halt
    """)
    conflict = DouProgram(states=(DouState(
        closed=frozenset((0, b) for b in range(4)),
        drives=((0, 0), (1, 0)),          # both on one broadcast net
        captures=((2, 0), (3, 0)),
    ),))
    with pytest.raises(SimulationError, match="conflict"):
        run_single_column(program, dou_program=conflict,
                          strict_schedules=False, max_ticks=100)


def test_strict_schedule_underflow_raises():
    program = assemble("nop\nhalt")
    hungry = DouProgram(states=(DouState(
        closed=frozenset({(0, 0)}),
        drives=((0, 0),),
        captures=((1, 0),),
    ),))
    with pytest.raises(SimulationError, match="underflow"):
        run_single_column(program, dou_program=hungry,
                          strict_schedules=True, max_ticks=100)


def test_runtime_loop_stack_overflow():
    """Dynamic nesting beyond 4 levels trips the hardware limit.

    The assembler catches static over-nesting; a jump into a loop body
    re-enters LOOP without unwinding, overflowing at runtime.
    """
    source = """
    top:
        loop 2
          nop
          jump top
        endloop
        halt
    """
    with pytest.raises(SimulationError, match="loop stack"):
        run_single_column(assemble(source), max_ticks=1000)


def test_memory_out_of_bounds_raises():
    program = assemble("""
        movi p0, 9000
        ld r0, [p0]
        halt
    """)
    with pytest.raises(SimulationError, match="out of bounds"):
        run_single_column(program, max_ticks=100)


def test_port_overflow_raises():
    """Filling a column's h_in beyond its capacity fails loudly."""
    config = ChipConfig(
        reference_mhz=100.0,
        columns=(ColumnConfig(),),
        port_capacity=4,
    )
    chip = Chip(config, programs=[assemble("halt")])
    with pytest.raises(SimulationError, match="overflow"):
        chip.feed_column(0, list(range(5)))


def test_tick_budget_exhaustion_reports_deadlock():
    program = assemble("recv r0\nhalt")
    with pytest.raises(SimulationError, match="deadlock"):
        run_single_column(program, max_ticks=200)


def test_simulation_continues_after_nonfatal_stalls():
    """Stalls are not errors: a late producer resolves them."""
    program = assemble("""
        tmask 0x1
        movi r0, 3
        send r0
        tmask 0xF
        recv r1
        halt
    """)
    from repro.arch.dou import DouCycle, linear_schedule
    broadcast = linear_schedule([DouCycle(
        closed=frozenset((0, b) for b in range(4)),
        drives=((0, 0),),
        captures=((0, 0), (1, 0), (2, 0), (3, 0)),
    )])
    chip, stats = run_single_column(
        program, dou_program=broadcast,
        strict_schedules=False, max_ticks=1000,
    )
    assert all(
        t.regs.read("R1") == 3 for t in chip.columns[0].tiles
    )
