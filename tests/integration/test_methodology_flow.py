"""The complete Section 4.1 procedure, end to end on real machinery.

Steps 1-9 of the paper's methodology: write a kernel, simulate it
cycle-accurately, measure cycles per input sample, derive the column
frequency from the target data rate, look up the voltage on the V-f
curve, and evaluate the power model.
"""

import pytest

from repro.arch.dou import DouCycle, linear_schedule
from repro.isa.assembler import assemble
from repro.power.interconnect import CommProfile
from repro.power.model import ComponentSpec, PowerModel
from repro.sim.simulator import run_single_column
from repro.tech.vf_curve import VoltageFrequencyCurve

#: An 8-tap MAC FIR inner loop: each iteration consumes one sample.
FIR_KERNEL = """
    .equ taps, 8
    movi p0, 0        ; coefficients at 0
    movi p1, 64       ; sample window at 64
    movi a0, 0
    loop taps
      ld r1, [p0++]
      ld r2, [p1++]
      mac a0, r1, r2
    endloop
    mov r7, a0
    send r7
    recv r0           ; wait for the word to round-trip (self capture)
    halt
"""


@pytest.fixture(scope="module")
def fir_run():
    coefficients = [1, -2, 3, -4, 5, -6, 7, -8]
    window = [2, 2, 2, 2, 2, 2, 2, 2]
    loopback = linear_schedule([DouCycle(
        closed=frozenset((0, boundary) for boundary in range(4)),
        drives=((0, 0),),
        captures=((0, 0), (1, 0), (2, 0), (3, 0)),
    )])
    chip, stats = run_single_column(
        assemble(FIR_KERNEL, "fir"),
        dou_program=loopback,
        memory_images={
            tile: {0: coefficients, 64: window} for tile in range(4)
        },
        strict_schedules=False,
        max_ticks=10_000,
    )
    return chip, stats


def test_step1_functional_correctness(fir_run):
    """The kernel computes the right dot product on every tile."""
    chip, _ = fir_run
    expected = sum(
        c * 2 for c in [1, -2, 3, -4, 5, -6, 7, -8]
    )
    for tile in chip.columns[0].tiles:
        assert tile.regs.read_signed("R0") == expected & 0xFFFFFFFF \
            or tile.regs.read_signed("R0") == expected


def test_step6_cycle_count(fir_run):
    """Cycle-accurate cost: 3 setup + 8*3 loop + 3 epilogue = 30
    issued instructions (plus comm stall cycles)."""
    _, stats = fir_run
    column = stats.column(0)
    assert column.issued == 30
    assert column.tile_cycles >= column.issued


def test_step7_frequency_derivation(fir_run):
    """cycles/sample x input rate = required column frequency."""
    _, stats = fir_run
    cycles_per_sample = stats.cycles_per_sample(0, samples=8)
    frequency = stats.frequency_for_rate(0, samples=8,
                                         sample_rate_msps=20.0)
    assert frequency == pytest.approx(cycles_per_sample * 20.0)
    assert 60.0 <= frequency <= 120.0


def test_steps8_9_voltage_and_power(fir_run):
    """V-f lookup then the three-term power model."""
    _, stats = fir_run
    curve = VoltageFrequencyCurve.from_technology()
    frequency = stats.frequency_for_rate(0, samples=8,
                                         sample_rate_msps=20.0)
    voltage = curve.quantize_voltage(frequency)
    assert voltage in (0.7, 0.8)

    column = stats.column(0)
    comm = CommProfile(words_per_cycle=column.bus_words_per_cycle)
    model = PowerModel()
    power = model.component_power(ComponentSpec(
        "fir-column", n_tiles=4, frequency_mhz=frequency, comm=comm,
    ))
    assert power.voltage_v == voltage
    # 4 tiles under ~100 MHz at <=0.8 V: tens of milliwatts
    assert 15.0 < power.total_mw < 60.0
    assert power.bus_mw > 0.0  # the send/recv traffic is charged
