"""Application graph -> mapping -> power, against Table 4."""

import pytest

from repro.apps.ddc.pipeline import ddc_sdf_graph
from repro.apps.mpeg4.encoder import mpeg4_sdf_graph
from repro.apps.stereo.pipeline import stereo_sdf_graph
from repro.apps.wlan.receiver import wlan_sdf_graph
from repro.sdf import (
    ColumnAssignment,
    SdfMapper,
    build_schedule,
    check_deadlock_free,
)


class TestDdcFlow:
    def test_graph_is_schedulable(self):
        graph = ddc_sdf_graph()
        check_deadlock_free(graph)
        schedule = build_schedule(graph)
        assert schedule.firings_of("mixer") == 64
        assert schedule.firings_of("pfir") == 1

    def test_mapping_reproduces_table4_operating_points(self):
        app = SdfMapper().map(ddc_sdf_graph(), [
            ColumnAssignment("Digital Mixer", ("mixer",), 8),
            ColumnAssignment("CIC Integrator", ("integrator",), 8),
            ColumnAssignment("CIC Comb", ("comb",), 2),
            ColumnAssignment("CFIR", ("cfir",), 16),
            ColumnAssignment("PFIR", ("pfir",), 16),
        ], iteration_rate_msps=1.0)  # 64 MS/s / 64-sample iterations
        assert app.max_frequency_mhz == pytest.approx(380.0)
        dividers = app.clock_dividers()
        assert dividers["CIC Comb"][0] == 9  # 380 / 9 = 42.2 MHz
        interval, nops = dividers["CIC Comb"][2]
        assert interval > 0  # residual throttling via ZORM


class TestWlanFlow:
    def test_mapping_matches_table4(self, power_model):
        app = SdfMapper().map(wlan_sdf_graph(), [
            ColumnAssignment("FFT", ("fft",), 2),
            ColumnAssignment("De-mod/De-Interleave", ("demod_deint",), 1),
            ColumnAssignment("Viterbi ACS", ("viterbi_acs",), 16),
            ColumnAssignment("Viterbi Traceback", ("viterbi_tb",), 1),
        ], iteration_rate_msps=0.25)  # 250k OFDM symbols/s
        assert app.component("FFT").frequency_mhz \
            == pytest.approx(90.0)
        assert app.component("Viterbi ACS").frequency_mhz \
            == pytest.approx(540.0)
        assert app.component("Viterbi ACS").voltage_v == 1.7
        power = power_model.application_power(
            "802.11a", app.component_specs()
        )
        # without bus traffic the ACS row is its compute+leak share
        assert power.component("Viterbi ACS").total_mw \
            == pytest.approx(2538.0, rel=0.01)


class TestStereoFlow:
    def test_mapping_matches_table4(self):
        app = SdfMapper().map(stereo_sdf_graph(), [
            ColumnAssignment("PFE", ("pfe",), 16),
            ColumnAssignment("SVD", ("svd",), 1),
        ], iteration_rate_msps=10.0e-6)  # 10 frames/s
        assert app.component("PFE").frequency_mhz \
            == pytest.approx(310.0)
        assert app.component("SVD").frequency_mhz \
            == pytest.approx(500.0)
        assert app.component("SVD").voltage_v == 1.5


class TestMpeg4Flow:
    @pytest.mark.parametrize("profile,me_tiles,dct_tiles,me_mhz", [
        ("qcif", 8, 2, 70.0),
        ("cif", 8, 8, 280.0),
    ])
    def test_mapping_matches_table4(self, profile, me_tiles, dct_tiles,
                                    me_mhz):
        app = SdfMapper().map(mpeg4_sdf_graph(profile), [
            ColumnAssignment("Motion Estimation", ("me",), me_tiles),
            ColumnAssignment("DCT/Quant/IQ/IDCT", ("dct",), dct_tiles),
        ], iteration_rate_msps=30.0e-6)  # 30 frames/s
        assert app.component("Motion Estimation").frequency_mhz \
            == pytest.approx(me_mhz)


def test_whole_suite_mapped_power_is_consistent(power_model):
    """Sanity: mapped operating points evaluated through the power
    model land in the right order across applications."""
    from repro.workloads.configs import all_applications

    totals = {}
    for key, config in all_applications().items():
        totals[key] = power_model.application_power(
            config.name, config.specs
        ).total_mw
    assert totals["mpeg4_qcif"] < totals["mpeg4_cif"] \
        < totals["stereo"] < totals["ddc"] < totals["wlan"]
