"""EnergyLedger over a real multi-column application run.

The measured-power pipeline was introduced against single-column
kernel slices; this test closes the ROADMAP lever by attaching the
per-domain energy breakdown to a *multi-column* DDC front-end
simulation: mixer column at 120 MHz and integrator column at 200 MHz
(Section 2's example), each column its own frequency/voltage domain,
with the horizontal bus crossing between them.
"""

import pytest

from repro.arch.chip import Chip, PORT_POSITION
from repro.arch.config import ChipConfig, ColumnConfig
from repro.arch.dou_compiler import Transfer, compile_schedule
from repro.isa.assembler import assemble
from repro.power.measured import (
    EnergyLedger,
    activity_from_stats,
    spec_from_activity,
    verify_conservation,
)
from repro.power.model import PowerModel
from repro.sim.simulator import Simulator

SAMPLES = 16


@pytest.fixture(scope="module")
def ddc_run():
    producer = assemble(f"""
        tmask 0x1
        movi p0, 0
        loop {SAMPLES}
          ld r1, [p0++]
          lsl r1, r1, 1
          send r1
        endloop
        halt
    """, "mixer")
    consumer = assemble(f"""
        movi r2, 0
        loop {SAMPLES}
          recv r1
          add r2, r2, r1
        endloop
        halt
    """, "integrator")
    to_port = compile_schedule(
        [[Transfer(src=0, dsts=(PORT_POSITION,))]], name="to-port"
    )
    fan_out = compile_schedule(
        [[Transfer(src=PORT_POSITION, dsts=(0, 1, 2, 3))]],
        name="fan-out",
    )
    horizontal = compile_schedule(
        [[Transfer(src=0, dsts=(1,))]], n_positions=2, name="hbus"
    )
    config = ChipConfig(
        reference_mhz=600.0,
        columns=(ColumnConfig(divider=5), ColumnConfig(divider=3)),
        strict_schedules=False,
    )
    chip = Chip(config, programs=[producer, consumer],
                dou_programs=[to_port, fan_out],
                horizontal_dou=horizontal)
    chip.columns[0].tiles[0].load_memory(0, list(range(1, SAMPLES + 1)))
    stats = Simulator(chip).run(max_ticks=100_000)
    return chip, stats


def test_each_column_is_its_own_energy_domain(ddc_run):
    _, stats = ddc_run
    model = PowerModel()
    ledger = EnergyLedger()
    time_us = stats.simulated_time_us
    assert time_us > 0
    powers = []
    for index, name in ((0, "mixer"), (1, "integrator")):
        activity = activity_from_stats(stats, columns=[index],
                                       name=name)
        power = model.component_power(spec_from_activity(activity))
        powers.append(power)
        ledger.charge(power, time_us,
                      busy_fraction=activity.busy_fraction)
    mixer, integrator = ledger.domains
    assert mixer.frequency_mhz == pytest.approx(120.0)
    assert integrator.frequency_mhz == pytest.approx(200.0)
    # Section 2's example rails, via the V-f curve
    assert mixer.voltage_v == pytest.approx(0.8)
    assert integrator.voltage_v == pytest.approx(1.0)
    # both domains really spent energy over the same wall clock
    assert mixer.total_nj > 0 and integrator.total_nj > 0
    assert mixer.time_us == integrator.time_us == time_us


def test_ledger_conserves_and_attaches_to_multi_column_stats(ddc_run):
    _, stats = ddc_run
    model = PowerModel()
    ledger = EnergyLedger()
    time_us = stats.simulated_time_us
    specs = []
    activities = {}
    for index, name in ((0, "mixer"), (1, "integrator")):
        activity = activity_from_stats(stats, columns=[index],
                                       name=name)
        activities[name] = activity
        specs.append(spec_from_activity(activity))
    application = model.application_power("ddc-front-end", specs)
    ledger = EnergyLedger.from_application(
        application, time_us, activities
    )
    error = verify_conservation(ledger, application, time_us)
    assert error <= 1e-9
    attached = ledger.attach(stats)
    assert len(attached.domain_energy) == 2
    assert attached.domain_energy == ledger.domains
    # the idle split reflects the measured stall behaviour: the
    # faster integrator column stalls on the slower mixer, so it
    # carries a real idle share
    assert attached.domain_energy[1].idle_nj > 0


def test_cross_domain_traffic_is_captured(ddc_run):
    _, stats = ddc_run
    mixer = activity_from_stats(stats, columns=[0], name="mixer")
    assert stats.horizontal_words == SAMPLES
    assert mixer.bus_words >= SAMPLES  # every sample crossed its bus
