"""PASS construction and bounded-memory certificates."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SdfError
from repro.sdf.analysis import repetition_vector
from repro.sdf.graph import SdfGraph
from repro.sdf.schedule import build_schedule


def _chain(rates):
    graph = SdfGraph()
    names = [f"n{i}" for i in range(len(rates) + 1)]
    for name in names:
        graph.add_actor(name)
    for i, (produce, consume) in enumerate(rates):
        graph.add_edge(names[i], names[i + 1], produce, consume)
    return graph, names


def test_schedule_fires_repetition_counts():
    graph, names = _chain([(3, 2)])
    schedule = build_schedule(graph)
    assert schedule.firings_of(names[0]) == 2
    assert schedule.firings_of(names[1]) == 3
    assert schedule.total_firings == 5


def test_deadlocked_graph_raises():
    graph = SdfGraph()
    graph.add_actor("a")
    graph.add_actor("b")
    graph.add_edge("a", "b", produce=1, consume=1)
    graph.add_edge("b", "a", produce=1, consume=1)
    with pytest.raises(SdfError):
        build_schedule(graph)


def test_priority_changes_order_not_counts():
    graph, names = _chain([(1, 1)])
    default = build_schedule(graph)
    swapped = build_schedule(graph, priority=[names[1], names[0]])
    assert default.repetitions == swapped.repetitions
    assert sorted(default.firing_order) == sorted(swapped.firing_order)


def test_priority_validates_names():
    graph, _ = _chain([(1, 1)])
    with pytest.raises(SdfError):
        build_schedule(graph, priority=["ghost"])


def test_buffer_bound():
    graph, names = _chain([(4, 1)])
    schedule = build_schedule(graph)
    bound = schedule.buffer_bound_words(tokens_to_words=2)
    assert bound == sum(schedule.max_occupancy.values()) * 2
    assert schedule.max_occupancy[(names[0], names[1])] >= 4


def test_demand_driven_priority_shrinks_buffers():
    """Firing the consumer eagerly keeps channel occupancy minimal."""
    graph, names = _chain([(1, 1)])
    eager_consumer = build_schedule(
        graph, priority=[names[1], names[0]]
    )
    assert eager_consumer.max_occupancy[(names[0], names[1])] == 1


@given(
    rates=st.lists(
        st.tuples(st.integers(1, 5), st.integers(1, 5)),
        min_size=1, max_size=5,
    )
)
def test_schedule_is_admissible(rates):
    """The PASS never underflows any channel and completes exactly the
    repetition vector - verified by re-simulating it."""
    graph, names = _chain(rates)
    schedule = build_schedule(graph)
    q = repetition_vector(graph)
    tokens = {
        (e.src, e.dst): e.initial_tokens for e in graph.edges
    }
    fired = {name: 0 for name in names}
    for actor in schedule.firing_order:
        for edge in graph.in_edges(actor):
            key = (edge.src, edge.dst)
            tokens[key] -= edge.consume
            assert tokens[key] >= 0, "channel underflow"
        for edge in graph.out_edges(actor):
            tokens[(edge.src, edge.dst)] += edge.produce
        fired[actor] += 1
    assert fired == q
    # occupancies reported are true maxima: rerun and compare
    assert all(v >= 0 for v in tokens.values())
