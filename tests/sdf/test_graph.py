"""SDF graph construction."""

import pytest

from repro.errors import SdfError
from repro.sdf.graph import Actor, Edge, SdfGraph


def _chain():
    graph = SdfGraph("chain")
    graph.add_actor("a", 10.0)
    graph.add_actor("b", 20.0)
    graph.add_edge("a", "b", produce=2, consume=1)
    return graph


def test_actor_validation():
    with pytest.raises(SdfError):
        Actor("", 1.0)
    with pytest.raises(SdfError):
        Actor("x", -1.0)
    with pytest.raises(SdfError):
        Actor("x", 1.0, parallel_tiles=0)


def test_edge_validation():
    with pytest.raises(SdfError):
        Edge("a", "b", produce=0, consume=1)
    with pytest.raises(SdfError):
        Edge("a", "b", produce=1, consume=1, initial_tokens=-1)


def test_duplicate_actor_rejected():
    graph = SdfGraph()
    graph.add_actor("a")
    with pytest.raises(SdfError):
        graph.add_actor("a")


def test_edge_to_unknown_actor_rejected():
    graph = SdfGraph()
    graph.add_actor("a")
    with pytest.raises(SdfError):
        graph.add_edge("a", "ghost", 1, 1)


def test_views():
    graph = _chain()
    assert set(graph.actors) == {"a", "b"}
    assert len(graph.edges) == 1
    assert graph.out_edges("a")[0].dst == "b"
    assert graph.in_edges("b")[0].src == "a"
    assert graph.actor("a").cycles_per_firing == 10.0
    with pytest.raises(SdfError):
        graph.actor("ghost")


def test_sources_and_sinks():
    graph = _chain()
    assert graph.sources() == ["a"]
    assert graph.sinks() == ["b"]


def test_connectivity():
    graph = _chain()
    assert graph.is_connected()
    graph.add_actor("island")
    assert not graph.is_connected()
    assert not SdfGraph().is_connected()


def test_networkx_export():
    nx_graph = _chain().to_networkx()
    assert set(nx_graph.nodes) == {"a", "b"}
    assert nx_graph.number_of_edges() == 1
