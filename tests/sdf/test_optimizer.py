"""Automatic parallelization (the paper's future-work tool)."""

import pytest

from repro.errors import MappingError
from repro.power.interconnect import CommProfile
from repro.power.model import PowerModel
from repro.sdf.optimizer import ParallelizationOptimizer
from repro.tech.parameters import PAPER_TECHNOLOGY
from repro.workloads.parallel import ParallelComponent, parallel_studies


@pytest.fixture(scope="module")
def optimizer():
    return ParallelizationOptimizer()


@pytest.fixture(scope="module")
def exploration_model():
    return PowerModel(rails=PAPER_TECHNOLOGY.exploration_rails)


def test_minimum_feasible_tiles(optimizer):
    # CFIR anchored at 16 tiles / 380 MHz cannot run on very few tiles
    cfir = ParallelComponent("CFIR", 16, 380.0, CommProfile(0.3174))
    minimum = optimizer.minimum_feasible_tiles(cfir)
    assert minimum >= 4
    assert optimizer.component_power_mw(cfir, minimum) is not None
    if minimum > 1:
        assert optimizer.component_power_mw(cfir, minimum - 1) is None


def test_infeasible_component_raises():
    optimizer = ParallelizationOptimizer(max_tiles_per_component=2)
    impossible = ParallelComponent("x", 16, 380.0)
    with pytest.raises(MappingError):
        optimizer.minimum_feasible_tiles(impossible)


def test_budget_too_small_raises(optimizer):
    components = list(parallel_studies()["ddc"].components)
    with pytest.raises(MappingError, match="budget"):
        optimizer.optimize(components, tile_budget=5)


def test_empty_component_list_raises(optimizer):
    with pytest.raises(MappingError):
        optimizer.optimize([], tile_budget=10)


def test_next_rail_crossing_lowers_voltage(optimizer):
    mixer = ParallelComponent("Digital Mixer", 8, 120.0)
    crossing = optimizer.next_rail_crossing(mixer, 2)
    assert crossing is not None
    before = optimizer.model.voltage_for(mixer.frequency_at(2))
    after = optimizer.model.voltage_for(mixer.frequency_at(crossing))
    assert after < before


def test_respects_budget(optimizer):
    components = list(parallel_studies()["mpeg4"].components)
    result = optimizer.optimize(components, tile_budget=12)
    assert result.tiles_used <= 12


def test_more_budget_never_hurts(optimizer):
    components = list(parallel_studies()["stereo"].components)
    small = optimizer.optimize(components, tile_budget=5)
    large = optimizer.optimize(components, tile_budget=17)
    assert large.power_mw <= small.power_mw + 1e-9


def test_history_is_monotone_improvement(optimizer):
    components = list(parallel_studies()["ddc"].components)
    result = optimizer.optimize(components, tile_budget=50)
    for step in result.history:
        assert step.gain_mw > 0.0
        assert step.power_after_mw < step.power_before_mw


@pytest.mark.parametrize("key,budget", [
    ("ddc", 50), ("stereo", 17), ("wlan", 20), ("mpeg4", 36),
])
def test_matches_or_beats_hand_allocation(optimizer,
                                          exploration_model, key,
                                          budget):
    """The auto-allocator should never lose to the paper-derived hand
    mappings at the same tile budget - the point of the tool the
    paper's Section 7 proposes."""
    study = parallel_studies()[key]
    components = list(study.components)
    auto = optimizer.optimize(components, tile_budget=budget)
    hand = exploration_model.application_power(
        study.name, study.configuration(budget)
    ).total_mw
    assert auto.power_mw <= hand * 1.001


def test_voltage_floor_stops_the_search():
    """Section 5.5: once at the voltage floor, stop parallelizing."""
    optimizer = ParallelizationOptimizer()
    # A load light enough to reach the 0.7 V floor with few tiles.
    light = ParallelComponent("light", 2, 100.0, sigma=0.01)
    result = optimizer.optimize([light], tile_budget=64)
    assert optimizer.voltage_floor_reached(
        [light], result.allocations
    )
    # and it did NOT spend the whole budget chasing nothing
    assert result.tiles_used < 64


def test_floor_detection(optimizer):
    slow = ParallelComponent("slow", 2, 40.0)
    fast = ParallelComponent("fast", 16, 540.0)
    assert optimizer.voltage_floor_reached([slow], {"slow": 2})
    assert not optimizer.voltage_floor_reached([fast], {"fast": 16})
