"""Repetition vectors, consistency, deadlock (Lee & Messerschmitt)."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SdfError
from repro.sdf.analysis import (
    check_deadlock_free,
    is_consistent,
    iteration_cycles,
    repetition_vector,
)
from repro.sdf.graph import SdfGraph


def test_simple_chain():
    graph = SdfGraph()
    graph.add_actor("a")
    graph.add_actor("b")
    graph.add_edge("a", "b", produce=3, consume=2)
    assert repetition_vector(graph) == {"a": 2, "b": 3}


def test_decimation_chain():
    graph = SdfGraph()
    graph.add_actor("mixer")
    graph.add_actor("cic")
    graph.add_edge("mixer", "cic", produce=1, consume=16)
    assert repetition_vector(graph) == {"mixer": 16, "cic": 1}


def test_inconsistent_cycle_detected():
    graph = SdfGraph()
    graph.add_actor("a")
    graph.add_actor("b")
    graph.add_edge("a", "b", produce=2, consume=1)
    graph.add_edge("b", "a", produce=1, consume=1)  # demands q_b == q_a
    assert not is_consistent(graph)
    with pytest.raises(SdfError):
        repetition_vector(graph)


def test_consistent_cycle_with_delay():
    graph = SdfGraph()
    graph.add_actor("a")
    graph.add_actor("b")
    graph.add_edge("a", "b", produce=1, consume=1)
    graph.add_edge("b", "a", produce=1, consume=1, initial_tokens=1)
    assert repetition_vector(graph) == {"a": 1, "b": 1}
    check_deadlock_free(graph)


def test_cycle_without_delay_deadlocks():
    graph = SdfGraph()
    graph.add_actor("a")
    graph.add_actor("b")
    graph.add_edge("a", "b", produce=1, consume=1)
    graph.add_edge("b", "a", produce=1, consume=1)  # no initial tokens
    with pytest.raises(SdfError, match="deadlock"):
        check_deadlock_free(graph)


def test_disconnected_graph_rejected():
    graph = SdfGraph()
    graph.add_actor("a")
    graph.add_actor("b")
    with pytest.raises(SdfError):
        repetition_vector(graph)


def test_empty_graph_rejected():
    with pytest.raises(SdfError):
        repetition_vector(SdfGraph())


def test_deadlock_free_returns_steady_state_tokens():
    graph = SdfGraph()
    graph.add_actor("a")
    graph.add_actor("b")
    graph.add_edge("a", "b", produce=2, consume=3, initial_tokens=1)
    tokens = check_deadlock_free(graph)
    # one iteration returns every channel to its initial marking
    assert tokens[("a", "b")] == 1


def test_iteration_cycles_divides_by_tiles():
    graph = SdfGraph()
    graph.add_actor("a", cycles_per_firing=100.0, parallel_tiles=4)
    graph.add_actor("b", cycles_per_firing=50.0)
    graph.add_edge("a", "b", produce=1, consume=2)
    cycles = iteration_cycles(graph)
    assert cycles["a"] == pytest.approx(2 * 100.0 / 4)
    assert cycles["b"] == pytest.approx(50.0)


@given(
    rates=st.lists(
        st.tuples(st.integers(1, 8), st.integers(1, 8)),
        min_size=1, max_size=6,
    )
)
def test_chain_balance_equations_hold(rates):
    """For any rate chain, q satisfies every balance equation with
    the smallest positive integers."""
    graph = SdfGraph()
    names = [f"n{i}" for i in range(len(rates) + 1)]
    for name in names:
        graph.add_actor(name)
    for i, (produce, consume) in enumerate(rates):
        graph.add_edge(names[i], names[i + 1], produce, consume)
    q = repetition_vector(graph)
    from math import gcd
    from functools import reduce
    for i, (produce, consume) in enumerate(rates):
        assert q[names[i]] * produce == q[names[i + 1]] * consume
    assert reduce(gcd, q.values()) == 1
    assert all(count >= 1 for count in q.values())
