"""SDF-to-column mapping (Section 4.1 steps 2-8)."""

import pytest

from repro.errors import MappingError
from repro.sdf.graph import SdfGraph
from repro.sdf.mapping import ColumnAssignment, SdfMapper


def _ddc_like():
    graph = SdfGraph("ddc")
    graph.add_actor("mixer", 15.0)
    graph.add_actor("integrator", 25.0)
    graph.add_edge("mixer", "integrator", produce=1, consume=1)
    return graph


def test_ddc_example_operating_points():
    """Section 2: mixer 8 tiles @ 120 MHz / 0.8 V, integrator 8 @ 200
    MHz / 1.0 V for 64 MS/s."""
    app = SdfMapper().map(
        _ddc_like(),
        [
            ColumnAssignment("Mixer", ("mixer",), 8),
            ColumnAssignment("Integrator", ("integrator",), 8),
        ],
        iteration_rate_msps=64.0,
    )
    mixer = app.component("Mixer")
    integrator = app.component("Integrator")
    assert mixer.frequency_mhz == pytest.approx(120.0)
    assert mixer.voltage_v == 0.8
    assert integrator.frequency_mhz == pytest.approx(200.0)
    assert integrator.voltage_v == 1.0
    assert app.n_tiles == 16
    assert app.max_frequency_mhz == pytest.approx(200.0)


def test_unassigned_actor_rejected():
    with pytest.raises(MappingError, match="unassigned"):
        SdfMapper().map(
            _ddc_like(),
            [ColumnAssignment("Mixer", ("mixer",), 8)],
            iteration_rate_msps=64.0,
        )


def test_double_assignment_rejected():
    with pytest.raises(MappingError, match="assigned to both"):
        SdfMapper().map(
            _ddc_like(),
            [
                ColumnAssignment("A", ("mixer", "integrator"), 8),
                ColumnAssignment("B", ("mixer",), 4),
            ],
            iteration_rate_msps=64.0,
        )


def test_unknown_actor_rejected():
    with pytest.raises(MappingError, match="unknown actor"):
        SdfMapper().map(
            _ddc_like(),
            [
                ColumnAssignment("A", ("mixer", "ghost"), 8),
                ColumnAssignment("B", ("integrator",), 8),
            ],
            iteration_rate_msps=64.0,
        )


def test_rate_validation():
    with pytest.raises(MappingError):
        SdfMapper().map(_ddc_like(), [], iteration_rate_msps=0.0)


def test_assignment_validation():
    with pytest.raises(MappingError):
        ColumnAssignment("x", (), 4)
    with pytest.raises(MappingError):
        ColumnAssignment("x", ("a",), 0)


def test_component_specs_bridge_to_power_model(power_model):
    app = SdfMapper().map(
        _ddc_like(),
        [
            ColumnAssignment("Mixer", ("mixer",), 8),
            ColumnAssignment("Integrator", ("integrator",), 8),
        ],
        iteration_rate_msps=64.0,
    )
    specs = app.component_specs()
    power = power_model.application_power("ddc", specs)
    # mixer row of Table 4: 76.29 mW is with bus traffic; without it
    # the dynamic+leakage share is ~71 mW
    assert power.component("Mixer").total_mw == pytest.approx(71.0,
                                                              rel=0.02)


def test_clock_divider_plan():
    app = SdfMapper().map(
        _ddc_like(),
        [
            ColumnAssignment("Mixer", ("mixer",), 8),
            ColumnAssignment("Integrator", ("integrator",), 8),
        ],
        iteration_rate_msps=64.0,
    )
    plan = app.clock_dividers(reference_mhz=600.0)
    divider, actual, zorm = plan["Mixer"]
    assert divider == 5
    assert actual == pytest.approx(120.0)
    assert zorm == (0, 0)  # exact match needs no throttling
    divider, actual, _ = plan["Integrator"]
    assert divider == 3
    assert actual == pytest.approx(200.0)


def test_zorm_plan_when_divider_overshoots():
    graph = SdfGraph("g")
    graph.add_actor("a", 10.0)
    app = SdfMapper().map(
        graph, [ColumnAssignment("A", ("a",), 1)],
        iteration_rate_msps=7.0,  # needs 70 MHz
    )
    plan = app.clock_dividers(reference_mhz=100.0)
    divider, actual, zorm = plan["A"]
    assert divider == 1
    assert actual == 100.0
    interval, nops = zorm
    assert interval > 0 and nops > 0
    assert interval / (interval + nops) <= 70.0 / 100.0 + 1e-9


def test_multiple_actors_share_a_column_group():
    graph = SdfGraph("g")
    graph.add_actor("x", 30.0)
    graph.add_actor("y", 10.0)
    graph.add_edge("x", "y", produce=1, consume=1)
    app = SdfMapper().map(
        graph, [ColumnAssignment("XY", ("x", "y"), 4)],
        iteration_rate_msps=2.0,
    )
    # (30 + 10) cycles / 4 tiles * 2 M/s = 20 MHz
    assert app.component("XY").frequency_mhz == pytest.approx(20.0)
    assert app.component("XY").n_columns == 1
