"""Table 1 constants and their internal consistency."""

import dataclasses

import pytest

from repro.tech.parameters import PAPER_TECHNOLOGY, TechnologyParameters


def test_paper_values():
    tech = PAPER_TECHNOLOGY
    assert tech.feature_size_nm == 130.0
    assert tech.v_min == 0.7
    assert tech.v_max == 1.65
    assert tech.v_threshold == 0.332
    assert tech.f_max_mhz == 600.0
    assert tech.tile_power_mw_per_mhz == 0.1
    assert tech.tile_area_mm2 == 1.82
    assert tech.wire_capacitance_ff_per_mm == 387.0


def test_bus_geometry_consistent():
    tech = PAPER_TECHNOLOGY
    assert tech.bus_splits * tech.split_width_bits == tech.bus_width_bits
    assert tech.bus_width_bits == 256
    assert tech.bus_splits == 8


def test_tile_leakage_is_about_1_5_ma():
    assert PAPER_TECHNOLOGY.tile_leakage_ma == pytest.approx(1.494, abs=1e-3)


def test_voltage_rails_sorted_and_within_curve():
    rails = PAPER_TECHNOLOGY.voltage_rails
    assert list(rails) == sorted(rails)
    assert rails[0] == 0.7
    assert rails[-1] == 1.7  # Table 4's Viterbi ACS rail


def test_exploration_rails_extend_nominal():
    tech = PAPER_TECHNOLOGY
    assert set(tech.voltage_rails) <= set(tech.exploration_rails)
    assert max(tech.exploration_rails) > max(tech.voltage_rails)


def test_invalid_configurations_rejected():
    with pytest.raises(ValueError):
        TechnologyParameters(v_min=2.0, v_max=1.0)
    with pytest.raises(ValueError):
        TechnologyParameters(bus_width_bits=100, bus_splits=8)
    with pytest.raises(ValueError):
        TechnologyParameters(voltage_rails=(1.0, 0.7))


def test_frozen():
    with pytest.raises(dataclasses.FrozenInstanceError):
        PAPER_TECHNOLOGY.v_min = 0.5
