"""Table 2 / Section 4.6 area model, validated against Table 3."""

import pytest

from repro.tech.area import (
    AreaModel,
    CONTROLLER_COMPONENT_AREAS_UM2,
    PAPER_TILE_TOTAL_UM2,
    TILE_COMPONENT_AREAS_UM2,
)


def test_tile_components_sum_to_paper_total():
    model = AreaModel()
    total = model.tile_component_total_um2()
    assert total == pytest.approx(7_272_620.0)
    assert total == pytest.approx(PAPER_TILE_TOTAL_UM2, rel=0.001)


def test_sram_dominates_tile_area():
    """The 32 KB SRAM is the largest tile component (Table 2)."""
    sram = TILE_COMPONENT_AREAS_UM2["32 KB SRAM"]
    assert sram == max(TILE_COMPONENT_AREAS_UM2.values())
    assert sram / sum(TILE_COMPONENT_AREAS_UM2.values()) > 0.7


def test_scaled_tile_area_near_paper():
    """Quadratic 0.25->0.13 um scaling lands within 10% of 1.82 mm^2."""
    model = AreaModel()
    scaled = model.tile_area_mm2(scaled=True)
    assert scaled == pytest.approx(1.97, abs=0.02)
    assert abs(scaled - model.tech.tile_area_mm2) / 1.82 < 0.10


def test_column_overhead():
    model = AreaModel()
    assert model.column_overhead_mm2() == pytest.approx(0.3375)


def test_columns_for_tiles():
    model = AreaModel()
    assert model.columns_for_tiles(1) == 1
    assert model.columns_for_tiles(4) == 1
    assert model.columns_for_tiles(5) == 2
    assert model.columns_for_tiles(16) == 4
    with pytest.raises(ValueError):
        model.columns_for_tiles(-1)


@pytest.mark.parametrize("tiles,paper_mm2,tolerance", [
    # Table 3 chip areas; the model reconstructs them within ~5%.
    ([8, 8, 2, 16, 16], 139.88, 0.05),   # DDC
    ([1, 16], 52.89, 0.05),              # Stereo Vision
    ([2, 1, 16, 1], 74.05, 0.05),        # 802.11a
    ([8, 2], 32.32, 0.08),               # MPEG4 QCIF
])
def test_chip_area_matches_table3(tiles, paper_mm2, tolerance):
    model = AreaModel()
    area = model.chip_area_mm2(tiles)
    assert abs(area - paper_mm2) / paper_mm2 < tolerance


def test_mpeg4_cif_paper_area_is_inconsistent():
    """Paper: CIF (16 tiles) smaller than QCIF (10 tiles) - we do not
    reproduce that; our model reports a consistent larger value."""
    model = AreaModel()
    qcif = model.chip_area_mm2([8, 2])
    cif = model.chip_area_mm2([8, 8])
    assert cif > qcif


def test_wider_bus_costs_area():
    model = AreaModel()
    narrow = model.chip_area_mm2([16], bus_width_bits=128)
    wide = model.chip_area_mm2([16], bus_width_bits=1024)
    assert wide > narrow


def test_controller_component_list_present():
    assert "DOU" in CONTROLLER_COMPONENT_AREAS_UM2
    assert "sequencer" in CONTROLLER_COMPONENT_AREAS_UM2
