"""The V-f curve must reproduce every (f, V) pair the paper reports."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import FrequencyRangeError
from repro.tech.vf_curve import ANCHORS_20FO4, VoltageFrequencyCurve

#: Every frequency-to-rail assignment appearing in Table 4 or the
#: Section 2 DDC example.
PAPER_PAIRS = [
    (40.0, 0.7), (60.0, 0.7), (70.0, 0.7),
    (90.0, 0.8), (110.0, 0.8), (120.0, 0.8),
    (200.0, 1.0),
    (280.0, 1.1),
    (310.0, 1.2), (330.0, 1.2),
    (370.0, 1.3), (380.0, 1.3),
    (500.0, 1.5),
    (540.0, 1.7),
]


@pytest.mark.parametrize("frequency,rail", PAPER_PAIRS)
def test_quantizes_to_paper_rail(curve, frequency, rail):
    assert curve.quantize_voltage(frequency) == pytest.approx(rail)


def test_table1_max_frequency_anchor(curve, tech):
    assert curve.max_frequency_mhz(tech.v_max) == pytest.approx(
        tech.f_max_mhz, rel=0.01
    )


def test_15fo4_is_faster_by_golden_ratio():
    c20 = VoltageFrequencyCurve.from_technology(fo4_depth=20)
    c15 = VoltageFrequencyCurve.from_technology(fo4_depth=15)
    for voltage in (0.7, 1.0, 1.3, 1.65):
        assert c15.max_frequency_mhz(voltage) == pytest.approx(
            c20.max_frequency_mhz(voltage) * 20.0 / 15.0
        )


def test_out_of_range_voltage_raises(curve):
    with pytest.raises(FrequencyRangeError):
        curve.max_frequency_mhz(0.3)
    with pytest.raises(FrequencyRangeError):
        curve.max_frequency_mhz(3.0)


def test_too_fast_frequency_raises(curve):
    with pytest.raises(FrequencyRangeError):
        curve.min_voltage_for(5000.0)
    with pytest.raises(FrequencyRangeError):
        curve.quantize_voltage(5000.0)


def test_min_voltage_below_floor_clamps(curve):
    assert curve.min_voltage_for(1.0) == curve.v_floor


def test_anchor_validation_rejects_non_monotone():
    with pytest.raises(ValueError):
        VoltageFrequencyCurve([(0.7, 100.0), (0.8, 90.0)])
    with pytest.raises(ValueError):
        VoltageFrequencyCurve([(0.8, 100.0), (0.7, 200.0)])
    with pytest.raises(ValueError):
        VoltageFrequencyCurve([(0.7, 100.0)])


def test_sweep_matches_pointwise(curve):
    points = curve.sweep([0.7, 1.0, 1.3])
    for voltage, frequency in points:
        assert frequency == curve.max_frequency_mhz(voltage)


@given(st.floats(min_value=0.60, max_value=2.12))
def test_monotone_in_voltage(voltage):
    curve = VoltageFrequencyCurve.from_technology()
    delta = 0.05
    if voltage + delta <= 2.12:
        assert (curve.max_frequency_mhz(voltage + delta)
                >= curve.max_frequency_mhz(voltage))


@given(st.floats(min_value=10.0, max_value=800.0))
def test_quantization_is_sound(frequency):
    """The returned rail always actually supports the frequency."""
    curve = VoltageFrequencyCurve.from_technology()
    tech_rails = (0.7, 0.8, 1.0, 1.1, 1.2, 1.3, 1.5, 1.7, 1.9, 2.1)
    try:
        rail = curve.quantize_voltage(frequency, tech_rails)
    except FrequencyRangeError:
        return
    assert curve.max_frequency_mhz(rail) >= frequency
    # minimality: no lower rail would do
    lower = [r for r in tech_rails if r < rail]
    if lower:
        assert curve.max_frequency_mhz(max(lower)) < frequency


@given(st.floats(min_value=31.0, max_value=830.0))
def test_min_voltage_inverse_property(frequency):
    """fmax(min_voltage_for(f)) >= f."""
    curve = VoltageFrequencyCurve.from_technology()
    voltage = curve.min_voltage_for(frequency)
    assert curve.max_frequency_mhz(voltage) >= frequency - 1e-6


def test_anchors_are_the_published_table():
    assert ANCHORS_20FO4[0] == (0.60, 30.0)
    assert (1.65, 600.0) in ANCHORS_20FO4
