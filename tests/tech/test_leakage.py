"""Section 4.4 leakage model."""

import pytest
from hypothesis import given, strategies as st

from repro.tech.leakage import (
    INTEL_LOW_VT_NA,
    LEAKAGE_SWEEP_MA_PER_TILE,
    LeakageModel,
    leakage_power_mw,
    per_transistor_na_for_tile_ma,
    thermal_voltage,
    tile_leakage_ma_from_per_transistor,
)


def test_thermal_voltage_at_room_temperature():
    # ~26 mV at room temperature, as the paper states.
    assert thermal_voltage(27.0) == pytest.approx(0.0259, abs=5e-4)


def test_calibrated_model_hits_830_pa():
    model = LeakageModel.calibrated(target_pa=830.0)
    assert model.off_current_pa_per_transistor() == pytest.approx(830.0)


def test_calibrated_tile_leakage_matches_paper():
    model = LeakageModel.calibrated()
    assert model.tile_leakage_ma() == pytest.approx(1.494, abs=1e-3)


def test_leakage_increases_with_temperature():
    cold = LeakageModel(temperature_c=40.0)
    hot = LeakageModel(temperature_c=80.0)
    assert (hot.off_current_pa_per_transistor()
            > cold.off_current_pa_per_transistor())


def test_leakage_decreases_with_threshold():
    low = LeakageModel(v_threshold=0.2)
    high = LeakageModel(v_threshold=0.4)
    assert (low.off_current_pa_per_transistor()
            > high.off_current_pa_per_transistor())


def test_sweep_matches_figure_axis():
    assert LEAKAGE_SWEEP_MA_PER_TILE[0] == 1.5
    assert LEAKAGE_SWEEP_MA_PER_TILE[-1] == 59.3
    assert list(LEAKAGE_SWEEP_MA_PER_TILE) == sorted(
        LEAKAGE_SWEEP_MA_PER_TILE
    )


def test_intel_low_vt_bound_matches_sweep_top():
    """59.3 mA/tile is the Intel all-low-Vt worst case [41]."""
    implied = tile_leakage_ma_from_per_transistor(INTEL_LOW_VT_NA * 1000.0)
    assert implied == pytest.approx(58.5, abs=0.1)
    assert abs(implied - LEAKAGE_SWEEP_MA_PER_TILE[-1]) < 1.0


def test_figure10_na_conversion():
    """14.8 mA/tile corresponds to ~8.3 nA/transistor (Sec 5.4)."""
    assert per_transistor_na_for_tile_ma(14.8) == pytest.approx(8.22,
                                                                abs=0.1)


def test_leakage_power():
    assert leakage_power_mw(1.5, 1.0, 8) == pytest.approx(12.0)
    assert leakage_power_mw(1.5, 0.7, 0) == 0.0
    with pytest.raises(ValueError):
        leakage_power_mw(1.5, 1.0, -1)


@given(
    st.floats(min_value=0.1, max_value=100.0),
    st.floats(min_value=0.5, max_value=2.0),
    st.integers(min_value=0, max_value=64),
)
def test_leakage_power_scales_linearly(ma, voltage, tiles):
    single = leakage_power_mw(ma, voltage, 1)
    assert leakage_power_mw(ma, voltage, tiles) == pytest.approx(
        single * tiles
    )


@given(st.floats(min_value=0.01, max_value=100.0))
def test_na_ma_roundtrip(tile_ma):
    na = per_transistor_na_for_tile_ma(tile_ma)
    back = tile_leakage_ma_from_per_transistor(na * 1000.0)
    assert back == pytest.approx(tile_ma)
