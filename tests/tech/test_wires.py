"""Section 4.3 interconnect model."""

import pytest
from hypothesis import given, strategies as st

from repro.tech.wires import BusGeometry, WireModel


def test_paper_wire_capacitance():
    """10 mm semi-global wire: ~3870 fF (Section 4.3)."""
    model = WireModel()
    assert model.wire_capacitance_ff(10.0) == pytest.approx(3870.0)


def test_drivers_are_negligible():
    """8 drivers at 10x min size: ~160 fF << 3870 fF wire."""
    model = WireModel()
    drivers = model.driver_capacitance_ff()
    assert drivers == pytest.approx(120.0, abs=60.0)
    assert drivers < 0.05 * model.wire_capacitance_ff(10.0)


def test_bus_geometry_validation():
    with pytest.raises(ValueError):
        BusGeometry(width_bits=100, n_splits=8)
    with pytest.raises(ValueError):
        BusGeometry(width_bits=0)
    assert BusGeometry(256, 8).split_width_bits == 32


def test_word_energy_paper_anchor():
    """32 wires over the full 10 mm at 1 V, activity 0.5: ~62 pJ."""
    model = WireModel()
    energy = model.word_energy_pj(1.0)
    assert energy == pytest.approx(61.92, abs=0.1)


def test_word_energy_scales_quadratically_with_voltage():
    model = WireModel()
    assert model.word_energy_pj(2.0) == pytest.approx(
        4.0 * model.word_energy_pj(1.0)
    )


def test_word_energy_scales_with_span():
    model = WireModel()
    assert model.word_energy_pj(1.0, span_fraction=0.5) == pytest.approx(
        0.5 * model.word_energy_pj(1.0)
    )


def test_bus_power_identity():
    """P = words/cycle * E_word * f (pJ * MHz = uW)."""
    model = WireModel()
    power = model.bus_power_mw(2.0, 100.0, 1.0)
    expected = 2.0 * model.word_energy_pj(1.0) * 100.0 / 1000.0
    assert power == pytest.approx(expected)


def test_bus_area_256_bits():
    """256 wires x 1.04 um x 10 mm = 2.66 mm^2."""
    model = WireModel()
    assert model.bus_area_mm2() == pytest.approx(2.662, abs=0.01)


def test_validation_errors():
    model = WireModel()
    with pytest.raises(ValueError):
        model.word_energy_pj(1.0, span_fraction=1.5)
    with pytest.raises(ValueError):
        model.word_energy_pj(1.0, switching_activity=-0.1)
    with pytest.raises(ValueError):
        model.bus_power_mw(-1.0, 100.0, 1.0)
    with pytest.raises(ValueError):
        model.wire_capacitance_ff(-1.0)


@given(
    st.floats(min_value=0.0, max_value=20.0),
    st.floats(min_value=0.0, max_value=1000.0),
    st.floats(min_value=0.5, max_value=2.1),
)
def test_bus_power_non_negative_and_linear_in_words(words, freq, volts):
    model = WireModel()
    power = model.bus_power_mw(words, freq, volts)
    assert power >= 0.0
    assert model.bus_power_mw(2 * words, freq, volts) == pytest.approx(
        2 * power, abs=1e-9
    )
