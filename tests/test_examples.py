"""The examples stay runnable (fast ones run here end to end)."""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run_example(name: str) -> None:
    path = EXAMPLES / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}",
                                                  path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.modules.pop(spec.name, None)


@pytest.mark.parametrize("name", [
    "quickstart",
    "simulated_kernels",
    "auto_parallelization",
])
def test_fast_example_runs(name, capsys):
    _run_example(name)
    out = capsys.readouterr().out
    assert out.strip()


def test_all_examples_exist():
    names = {path.stem for path in EXAMPLES.glob("*.py")}
    assert {
        "quickstart", "ddc_pipeline", "wlan_receiver",
        "stereo_vision", "mpeg4_encoder",
        "design_space_exploration", "auto_parallelization",
        "simulated_kernels",
    } <= names
