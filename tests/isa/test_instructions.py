"""Instruction construction and validation."""

import pytest

from repro.errors import AssemblyError
from repro.isa.instructions import (
    ALL_TILES_MASK,
    CONTROL_OPCODES,
    Instruction,
    Opcode,
)


def test_signature_validation():
    with pytest.raises(AssemblyError):
        Instruction(Opcode.ADD, dst="R0", srcs=("R1",))  # needs 2 srcs
    with pytest.raises(AssemblyError):
        Instruction(Opcode.MOVI, dst="R0")  # missing imm
    with pytest.raises(AssemblyError):
        Instruction(Opcode.JUMP)  # missing target
    with pytest.raises(AssemblyError):
        Instruction(Opcode.NOP, dst="R0")  # unexpected dst
    with pytest.raises(AssemblyError):
        Instruction(Opcode.LD, dst="R0")  # missing pointer


def test_loop_count_validation():
    with pytest.raises(AssemblyError):
        Instruction(Opcode.LOOP, imm=0)
    Instruction(Opcode.LOOP, imm=1)


def test_mask_validation():
    with pytest.raises(AssemblyError):
        Instruction(Opcode.NOP, mask=0x10)
    assert Instruction(Opcode.NOP).mask == ALL_TILES_MASK


def test_control_classification():
    assert Instruction(Opcode.HALT).is_control
    assert Instruction(Opcode.JUMP, target=0).is_control
    assert not Instruction(Opcode.ADD, dst="R0",
                           srcs=("R1", "R2")).is_control
    for opcode in CONTROL_OPCODES:
        assert opcode.value in {
            "jump", "beq", "bne", "blt", "bge", "loop", "endloop",
            "tmask", "halt",
        }


def test_conditional_branch_classification():
    assert Instruction(Opcode.BEQ, srcs=("R0",), target=0) \
        .is_conditional_branch
    assert not Instruction(Opcode.JUMP, target=0).is_conditional_branch


def test_with_target():
    branch = Instruction(Opcode.BNE, srcs=("R1",), target="loop_start")
    resolved = branch.with_target(5)
    assert resolved.target == 5
    assert resolved.opcode is Opcode.BNE


def test_text_rendering():
    instr = Instruction(Opcode.ADD, dst="R0", srcs=("R1", "R2"))
    assert instr.text() == "add r0, r1, r2"
    load = Instruction(Opcode.LD, dst="R1", ptr="P0", post_increment=True)
    assert "[p0++]" in load.text()
    store = Instruction(Opcode.ST, srcs=("R2",), ptr="P1", offset=4)
    assert "[p1+4]" in store.text()
