"""Program container validation."""

import pytest

from repro.errors import AssemblyError
from repro.isa.assembler import assemble
from repro.isa.instructions import Instruction, Opcode
from repro.isa.program import Program, halting


def test_target_out_of_range_rejected():
    with pytest.raises(AssemblyError):
        Program(instructions=(
            Instruction(Opcode.JUMP, target=5),
            Instruction(Opcode.HALT),
        ))


def test_unresolved_target_rejected():
    with pytest.raises(AssemblyError):
        Program(instructions=(
            Instruction(Opcode.JUMP, target="label"),
        ))


def test_iteration_and_indexing():
    program = assemble("nop\nnop\nhalt")
    assert len(program) == 3
    assert [i.opcode for i in program] == [
        Opcode.NOP, Opcode.NOP, Opcode.HALT
    ]
    assert program[2].opcode is Opcode.HALT


def test_halting_predicate():
    assert halting(assemble("nop\nhalt"))
    assert not halting(assemble("nop"))


def test_unknown_label_lookup():
    program = assemble("nop\nhalt")
    with pytest.raises(AssemblyError):
        program.address_of("missing")


def test_nested_loops_to_hardware_depth_accepted():
    source = (
        "loop 2\nloop 2\nloop 2\nloop 2\nnop\n"
        "endloop\nendloop\nendloop\nendloop\nhalt"
    )
    program = assemble(source)
    assert len(program) == 10
