"""Binary encoding round-trips."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import AssemblyError
from repro.isa.encoding import decode, encode
from repro.isa.instructions import Instruction, Opcode
from repro.isa.registers import ALL_REGISTERS


def test_simple_roundtrips():
    cases = [
        Instruction(Opcode.NOP),
        Instruction(Opcode.MOVI, dst="R0", imm=-42),
        Instruction(Opcode.ADD, dst="R1", srcs=("R2", "R3")),
        Instruction(Opcode.LD, dst="R4", ptr="P0", offset=-8),
        Instruction(Opcode.ST, srcs=("R5",), ptr="P1",
                    post_increment=True),
        Instruction(Opcode.JUMP, target=17),
        Instruction(Opcode.LOOP, imm=1000),
        Instruction(Opcode.MAC, dst="A0", srcs=("R1", "R2")),
        Instruction(Opcode.SEND, srcs=("R7",)),
        Instruction(Opcode.RECV, dst="R6"),
        Instruction(Opcode.HALT),
    ]
    for instr in cases:
        assert decode(encode(instr)) == instr


def test_unresolved_target_rejected():
    branch = Instruction(Opcode.JUMP, target="label")
    with pytest.raises(AssemblyError):
        encode(branch)


def test_payload_range_checked():
    with pytest.raises(AssemblyError):
        encode(Instruction(Opcode.MOVI, dst="R0", imm=1 << 40))


def test_decode_rejects_bad_words():
    with pytest.raises(AssemblyError):
        decode(-1)
    with pytest.raises(AssemblyError):
        decode(0x3F << 58)  # opcode index beyond the table


_reg = st.sampled_from([r for r in ALL_REGISTERS if not r.startswith("A")])
_imm = st.integers(min_value=-(1 << 31), max_value=(1 << 31) - 1)


@given(dst=_reg, imm=_imm, mask=st.integers(min_value=0, max_value=15))
def test_movi_roundtrip_property(dst, imm, mask):
    instr = Instruction(Opcode.MOVI, dst=dst, imm=imm, mask=mask)
    assert decode(encode(instr)) == instr


@given(dst=_reg, a=_reg, b=_reg)
def test_threeop_roundtrip_property(dst, a, b):
    for opcode in (Opcode.ADD, Opcode.SUB, Opcode.XOR, Opcode.MIN):
        instr = Instruction(opcode, dst=dst, srcs=(a, b))
        assert decode(encode(instr)) == instr


@given(
    dst=_reg,
    ptr=st.sampled_from(["P0", "P1", "P2", "P3", "P4", "P5"]),
    offset=st.integers(min_value=-2048, max_value=2047),
    inc=st.booleans(),
)
def test_load_roundtrip_property(dst, ptr, offset, inc):
    if inc:
        offset = 0
    instr = Instruction(Opcode.LD, dst=dst, ptr=ptr, offset=offset,
                        post_increment=inc)
    assert decode(encode(instr)) == instr


@given(st.integers(min_value=0, max_value=(1 << 16) - 1))
def test_branch_target_roundtrip_property(target):
    instr = Instruction(Opcode.BNE, srcs=("R0",), target=target)
    assert decode(encode(instr)) == instr
