"""Two-pass assembler."""

import pytest

from repro.errors import AssemblyError
from repro.isa.assembler import assemble
from repro.isa.instructions import Opcode


def test_basic_program():
    program = assemble("""
        movi r0, 5
        addi r0, r0, -1
        halt
    """)
    assert len(program) == 3
    assert program[0].opcode is Opcode.MOVI
    assert program[1].imm == -1


def test_labels_and_branches():
    program = assemble("""
    top:
        addi r0, r0, 1
        bne r0, top
        halt
    """)
    assert program.address_of("top") == 0
    assert program[1].target == 0


def test_label_on_same_line():
    program = assemble("start: movi r0, 1\n jump start")
    assert program.address_of("start") == 0


def test_equ_symbols():
    program = assemble("""
        .equ taps, 21
        .equ base, 0x100
        movi p0, base
        loop taps
        nop
        endloop
        halt
    """)
    assert program[0].imm == 0x100
    assert program[1].imm == 21
    assert program.symbols["taps"] == 21


def test_memory_operands():
    program = assemble("""
        ld r0, [p0]
        ld r1, [p0+4]
        ld r2, [p0-2]
        ld r3, [p1++]
        st [p2], r0
        st [p2++], r1
        halt
    """)
    assert program[0].offset == 0
    assert program[1].offset == 4
    assert program[2].offset == -2
    assert program[3].post_increment
    assert program[4].srcs == ("R0",)
    assert program[5].post_increment


def test_comments_stripped():
    program = assemble("""
        ; full-line comment
        movi r0, 1   ; trailing
        nop          # hash comment
        halt
    """)
    assert len(program) == 3


def test_case_insensitive():
    program = assemble("MOVI R0, 1\nHALT")
    assert program[0].dst == "R0"


def test_errors():
    with pytest.raises(AssemblyError):
        assemble("frobnicate r0")
    with pytest.raises(AssemblyError):
        assemble("movi r0")  # missing immediate
    with pytest.raises(AssemblyError):
        assemble("movi r0, xyz")  # bad immediate
    with pytest.raises(AssemblyError):
        assemble("jump nowhere\nhalt")  # unknown label
    with pytest.raises(AssemblyError):
        assemble("a: nop\na: halt")  # duplicate label
    with pytest.raises(AssemblyError):
        assemble("ld r0, [r1]")  # non-pointer memory base
    with pytest.raises(AssemblyError):
        assemble("add r0, r1, r2, r3\nhalt")  # extra operand
    with pytest.raises(AssemblyError):
        assemble("movi: nop")  # label shadows mnemonic


def test_loop_balance_checked():
    with pytest.raises(AssemblyError):
        assemble("loop 3\nnop\nhalt")  # unterminated
    with pytest.raises(AssemblyError):
        assemble("endloop\nhalt")  # unopened
    with pytest.raises(AssemblyError):
        assemble(
            "loop 2\n" * 5 + "nop\n" + "endloop\n" * 5 + "halt"
        )  # deeper than the 4-level hardware stack


def test_listing_roundtrip_mentions_labels():
    program = assemble("start: nop\n jump start")
    listing = program.listing()
    assert "start:" in listing
    assert "jump" in listing
