"""Register file semantics."""

import pytest

from repro.errors import SimulationError
from repro.isa.registers import (
    ACCUMULATORS,
    COMM_REGISTER,
    DATA_REGISTERS,
    POINTER_REGISTERS,
    RegisterFile,
    register_index,
    register_name,
    signed32,
    signed40,
    wrap32,
    wrap40,
)


def test_register_sets():
    assert len(DATA_REGISTERS) == 8
    assert len(POINTER_REGISTERS) == 6
    assert ACCUMULATORS == ("A0", "A1")
    assert COMM_REGISTER == "R7"


def test_index_roundtrip():
    for name in DATA_REGISTERS + POINTER_REGISTERS + ACCUMULATORS:
        assert register_name(register_index(name)) == name


def test_index_case_insensitive():
    assert register_index("r3") == register_index("R3")


def test_unknown_register_raises():
    with pytest.raises(SimulationError):
        register_index("R9")
    with pytest.raises(SimulationError):
        register_name(99)


def test_wrap32():
    assert wrap32(-1) == 0xFFFFFFFF
    assert wrap32(1 << 32) == 0
    assert signed32(0xFFFFFFFF) == -1
    assert signed32(0x7FFFFFFF) == 0x7FFFFFFF


def test_wrap40():
    assert wrap40(-1) == (1 << 40) - 1
    assert signed40((1 << 40) - 1) == -1


def test_register_file_widths():
    regs = RegisterFile()
    regs.write("R0", -1)
    assert regs.read("R0") == 0xFFFFFFFF
    assert regs.read_signed("R0") == -1
    regs.write("A0", -1)
    assert regs.read("A0") == (1 << 40) - 1
    assert regs.read_signed("A0") == -1


def test_accumulator_holds_40_bits():
    regs = RegisterFile()
    big = (1 << 38) + 12345
    regs.write("A0", big)
    assert regs.read("A0") == big  # would not fit in 32 bits


def test_register_file_unknown_name():
    regs = RegisterFile()
    with pytest.raises(SimulationError):
        regs.read("X1")
    with pytest.raises(SimulationError):
        regs.write("X1", 0)


def test_snapshot_is_copy():
    regs = RegisterFile()
    snap = regs.snapshot()
    snap["R0"] = 42
    assert regs.read("R0") == 0
