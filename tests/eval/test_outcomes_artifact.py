"""The CI outcomes-block validator: tools/check_outcomes_artifact."""

import importlib.util
import json
from pathlib import Path

_TOOL = (
    Path(__file__).parents[2] / "tools" / "check_outcomes_artifact.py"
)
_spec = importlib.util.spec_from_file_location(
    "check_outcomes_artifact", _TOOL
)
check_outcomes = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_outcomes)


def _payload(**overrides):
    outcomes = {name: 0 for name in check_outcomes.REQUIRED_KEYS}
    outcomes.update(overrides)
    return {"artifact": "BENCH_engine", "outcomes": outcomes}


def test_clean_block_passes():
    assert check_outcomes.check(_payload(ok=9)) == []


def test_missing_block_fails():
    failures = check_outcomes.check({"artifact": "BENCH_engine"})
    assert len(failures) == 1 and "outcomes" in failures[0]


def test_every_required_counter_must_be_present():
    payload = _payload()
    del payload["outcomes"]["worker_crashed"]
    failures = check_outcomes.check(payload)
    assert len(failures) == 1 and "worker_crashed" in failures[0]


def test_counters_must_be_nonnegative_integers():
    assert check_outcomes.check(_payload(retries=-1))
    assert check_outcomes.check(_payload(ok="3"))
    assert check_outcomes.check(_payload(degraded=True))


def test_nonzero_fault_counters_fail_strict_mode():
    failures = check_outcomes.check(_payload(ok=8, retries=2))
    assert len(failures) == 1
    assert "retries=2" in failures[0]


def test_allow_faults_permits_chaos_artifacts():
    dirty = _payload(ok=6, retries=4, worker_crashed=2, degraded=1)
    assert check_outcomes.check(dirty, allow_faults=True) == []
    # schema errors still fail even with --allow-faults
    broken = _payload(ok=None)
    assert check_outcomes.check(broken, allow_faults=True)


def test_unknown_extra_keys_are_ignored():
    assert check_outcomes.check(_payload(ok=1, future_counter=5)) == []


def test_cli_exit_codes(tmp_path, capsys):
    clean = tmp_path / "clean.json"
    clean.write_text(json.dumps(_payload(ok=4)))
    dirty = tmp_path / "dirty.json"
    dirty.write_text(json.dumps(_payload(ok=3, timed_out=1)))
    assert check_outcomes.main([str(clean)]) == 0
    assert check_outcomes.main([str(dirty)]) == 1
    assert check_outcomes.main([str(dirty), "--allow-faults"]) == 0
    captured = capsys.readouterr()
    assert "fault-free" in captured.out
    assert "timed_out=1" in captured.err
