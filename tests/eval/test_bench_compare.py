"""The baseline-compare tool: regression gates on BENCH_engine.json."""

import importlib.util
import json
from pathlib import Path

import pytest

_TOOL = Path(__file__).parents[2] / "tools" / "bench_compare.py"
_spec = importlib.util.spec_from_file_location("bench_compare", _TOOL)
bench_compare = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(bench_compare)


def _artifact(speedups, smoke=True):
    return {
        "artifact": "BENCH_engine",
        "smoke": smoke,
        "workloads": {
            key: {"speedup": speedup}
            for key, speedup in speedups.items()
        },
    }


def test_within_tolerance_passes(capsys):
    baseline = _artifact({"fir": 3.0, "ddc": 2.0})
    fresh = _artifact({"fir": 2.5, "ddc": 2.4})  # -17% and +20%
    assert bench_compare.compare(fresh, baseline, 0.2) == []
    out = capsys.readouterr().out
    assert "ok" in out and "REGRESSED" not in out


def test_regression_fails(capsys):
    baseline = _artifact({"fir": 3.0})
    fresh = _artifact({"fir": 2.0})  # -33%
    failures = bench_compare.compare(fresh, baseline, 0.2)
    assert len(failures) == 1 and "fir" in failures[0]
    assert "REGRESSED" in capsys.readouterr().out


def test_missing_workload_fails(capsys):
    failures = bench_compare.compare(
        _artifact({}), _artifact({"fir": 3.0}), 0.2
    )
    assert any("missing" in f for f in failures)


def test_smoke_mismatch_fails(capsys):
    failures = bench_compare.compare(
        _artifact({"fir": 3.0}, smoke=False),
        _artifact({"fir": 3.0}, smoke=True),
        0.2,
    )
    assert any("smoke" in f for f in failures)


def _profile(**overrides):
    block = {
        name: 0 for name in bench_compare.REQUIRED_PROFILE_COUNTERS
    }
    block.update(overrides)
    return block


def test_complete_profile_block_passes():
    fresh = _artifact({"fir": 3.0})
    fresh["workloads"]["fir"]["profile"] = _profile()
    assert bench_compare.compare(fresh, _artifact({"fir": 3.0}), 0.2) == []


def test_profile_missing_counters_fails_with_named_diff(capsys):
    fresh = _artifact({"fir": 3.0})
    profile = _profile()
    del profile["lockstep_batches"]
    del profile["orbit_laps"]
    fresh["workloads"]["fir"]["profile"] = profile
    failures = bench_compare.compare(fresh, _artifact({"fir": 3.0}), 0.2)
    assert len(failures) == 1
    assert "lockstep_batches" in failures[0]
    assert "orbit_laps" in failures[0]
    assert "fir" in failures[0]


def test_profile_schema_checked_on_extra_workloads():
    # A workload absent from the baseline skips the speedup gate but
    # still has its profile schema enforced.
    fresh = _artifact({"fir": 3.0, "new_workload": 1.0})
    fresh["workloads"]["new_workload"]["profile"] = {"dense_ticks": 1}
    failures = bench_compare.compare(fresh, _artifact({"fir": 3.0}), 0.2)
    assert len(failures) == 1 and "new_workload" in failures[0]


def test_profile_block_is_optional():
    # Runs without --profile carry no block; nothing to validate.
    assert bench_compare.validate_profile_schema(
        "fir", {"speedup": 3.0}
    ) == []


def test_improvements_and_extras_never_fail(capsys):
    baseline = _artifact({"fir": 3.0})
    fresh = _artifact({"fir": 30.0, "new_workload": 1.0})
    assert bench_compare.compare(fresh, baseline, 0.2) == []
    assert "unchecked: new_workload" in capsys.readouterr().out


def test_committed_baseline_is_valid():
    """The checked-in baseline parses and covers every workload."""
    from repro.eval.engines import WORKLOADS

    baseline = json.loads(
        Path(bench_compare.DEFAULT_BASELINE).read_text()
    )
    assert baseline["artifact"] == "BENCH_engine"
    assert baseline["smoke"] is True  # CI compares smoke runs
    assert set(baseline["workloads"]) == set(WORKLOADS)
    for entry in baseline["workloads"].values():
        assert entry["speedup"] > 0


def test_cli_exit_codes(tmp_path):
    baseline_path = tmp_path / "baseline.json"
    baseline_path.write_text(json.dumps(_artifact({"fir": 3.0})))
    good = tmp_path / "good.json"
    good.write_text(json.dumps(_artifact({"fir": 3.1})))
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps(_artifact({"fir": 1.0})))
    assert bench_compare.main(
        [str(good), "--baseline", str(baseline_path)]
    ) == 0
    assert bench_compare.main(
        [str(bad), "--baseline", str(baseline_path)]
    ) == 1


def _outcomes(**overrides):
    block = {name: 0 for name in bench_compare.OUTCOME_KEYS}
    block.update(overrides)
    return block


def test_clean_outcomes_block_passes(capsys):
    fresh = _artifact({"fir": 3.0})
    fresh["outcomes"] = _outcomes(ok=12)
    baseline = _artifact({"fir": 3.0})
    baseline["outcomes"] = _outcomes(ok=12)
    assert bench_compare.compare(fresh, baseline, 0.2) == []
    out = capsys.readouterr().out
    assert "outcome" in out and "NOT-CLEAN" not in out


def test_fresh_retries_fail_the_gate(capsys):
    fresh = _artifact({"fir": 3.0})
    fresh["outcomes"] = _outcomes(ok=11, retries=2, timed_out=2)
    failures = bench_compare.compare(
        fresh, _artifact({"fir": 3.0}), 0.2
    )
    assert len(failures) == 1 and "retries" in failures[0]
    assert "NOT-CLEAN" in capsys.readouterr().out


def test_fresh_degraded_jobs_fail_the_gate():
    fresh = _artifact({"fir": 3.0})
    fresh["outcomes"] = _outcomes(ok=12, degraded=1)
    failures = bench_compare.compare(
        fresh, _artifact({"fir": 3.0}), 0.2
    )
    assert len(failures) == 1 and "degraded" in failures[0]


def test_baseline_outcomes_never_fail_the_fresh_run(capsys):
    # Only the fresh run's cleanliness gates; a baseline recorded
    # before the counters existed (or with old faults) still compares.
    fresh = _artifact({"fir": 3.0})
    fresh["outcomes"] = _outcomes(ok=12)
    baseline = _artifact({"fir": 3.0})
    baseline["outcomes"] = _outcomes(ok=12, retries=3, degraded=1)
    assert bench_compare.compare(fresh, baseline, 0.2) == []


def test_missing_outcomes_blocks_are_forward_compatible(capsys):
    # Neither artifact has a block: no table, no failures.
    assert bench_compare.compare(
        _artifact({"fir": 3.0}), _artifact({"fir": 3.0}), 0.2
    ) == []
    assert "outcome" not in capsys.readouterr().out
    # Baseline predates the block: fresh still gated.
    fresh = _artifact({"fir": 3.0})
    fresh["outcomes"] = _outcomes(ok=12, retries=1)
    failures = bench_compare.compare(
        fresh, _artifact({"fir": 3.0}), 0.2
    )
    assert len(failures) == 1 and "retries" in failures[0]


def test_unknown_outcome_keys_and_junk_counts_are_ignored():
    fresh = _artifact({"fir": 3.0})
    fresh["outcomes"] = _outcomes(
        ok=12, future_counter=7, retries="not-a-number"
    )
    assert bench_compare.compare(
        fresh, _artifact({"fir": 3.0}), 0.2
    ) == []
