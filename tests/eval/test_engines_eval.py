"""Engine wall-clock evaluation and the BENCH_engine artifact."""

import json

import pytest

from repro.eval import engines
from repro.eval.runner import main


@pytest.fixture(autouse=True)
def _smoke(monkeypatch):
    # Shrink every workload: the eval's assertions (bit-identical
    # statistics between engines) are size-independent.
    monkeypatch.setenv("BENCH_SMOKE", "1")


def test_evaluate_workload_asserts_identical_stats():
    evaluation = engines.evaluate_workload("ddc_pipeline", repeats=1)
    assert evaluation["timings"]["reference"] > 0
    assert evaluation["timings"]["compiled"] > 0
    assert evaluation["stats"].total_bus_words > 0


def test_bench_payload_shape():
    evaluations = {
        key: engines.evaluate_workload(key, repeats=1)
        for key in ("fir", "ddc_pipeline")
    }
    payload = engines.bench_payload(evaluations)
    assert payload["artifact"] == "BENCH_engine"
    assert payload["smoke"] is True
    for key in ("fir", "ddc_pipeline"):
        workload = payload["workloads"][key]
        assert workload["identical_stats"] is True
        assert workload["speedup"] == pytest.approx(
            workload["reference_s"] / workload["compiled_s"], rel=0.01
        )
        assert workload["reference_ticks"] > 0


def test_render_lists_every_workload():
    evaluations = {
        "fir": engines.evaluate_workload("fir", repeats=1),
    }
    text = engines.render(evaluations)
    assert "fir" in text and "speedup" in text


def test_write_bench(tmp_path):
    evaluations = {
        "fir": engines.evaluate_workload("fir", repeats=1),
    }
    payload = engines.bench_payload(evaluations)
    target = engines.write_bench(tmp_path, payload)
    assert target.name == "BENCH_engine.json"
    assert json.loads(target.read_text())["artifact"] == "BENCH_engine"


def test_cli_engines_writes_artifact(tmp_path, capsys):
    main(["--engines", "--output", str(tmp_path)])
    out = capsys.readouterr().out
    assert "speedup" in out
    assert (tmp_path / "BENCH_engine.json").exists()
    payload = json.loads((tmp_path / "BENCH_engine.json").read_text())
    assert set(payload["workloads"]) == set(engines.WORKLOADS)


def test_cli_engines_rejects_conflicting_flags(capsys):
    with pytest.raises(SystemExit):
        main(["--engines", "--dvfs"])
    with pytest.raises(SystemExit):
        main(["--engines", "--experiment", "table1"])
    with pytest.raises(SystemExit):
        main(["--engines", "--jobs", "2"])


def test_ddc_stream_chip_is_live_and_rate_matched():
    chip = engines.build_ddc_stream_chip(samples=8)
    assert chip.clock.ratio(0, 1) == (3, 5)
    assert not chip.columns[0].dou.program.is_inert()
    assert not chip.columns[1].dou.program.is_inert()
    assert chip.horizontal_dou is not None
