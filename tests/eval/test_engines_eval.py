"""Engine wall-clock evaluation and the BENCH_engine artifact."""

import json

import pytest

from repro.eval import engines
from repro.eval.runner import main


@pytest.fixture(autouse=True)
def _smoke(monkeypatch):
    # Shrink every workload: the eval's assertions (bit-identical
    # statistics between engines) are size-independent.
    monkeypatch.setenv("BENCH_SMOKE", "1")


def test_evaluate_workload_asserts_identical_stats():
    evaluation = engines.evaluate_workload("ddc_pipeline", repeats=1)
    assert evaluation["timings"]["reference"] > 0
    assert evaluation["timings"]["compiled"] > 0
    assert evaluation["stats"].total_bus_words > 0


def test_bench_payload_shape():
    evaluations = {
        key: engines.evaluate_workload(key, repeats=1)
        for key in ("fir", "ddc_pipeline")
    }
    payload = engines.bench_payload(evaluations)
    assert payload["artifact"] == "BENCH_engine"
    assert payload["smoke"] is True
    for key in ("fir", "ddc_pipeline"):
        workload = payload["workloads"][key]
        assert workload["identical_stats"] is True
        assert workload["speedup"] == pytest.approx(
            workload["reference_s"] / workload["compiled_s"], rel=0.01
        )
        assert workload["reference_ticks"] > 0


def test_render_lists_every_workload():
    evaluations = {
        "fir": engines.evaluate_workload("fir", repeats=1),
    }
    text = engines.render(evaluations)
    assert "fir" in text and "speedup" in text


def test_write_bench(tmp_path):
    evaluations = {
        "fir": engines.evaluate_workload("fir", repeats=1),
    }
    payload = engines.bench_payload(evaluations)
    target = engines.write_bench(tmp_path, payload)
    assert target.name == "BENCH_engine.json"
    assert json.loads(target.read_text())["artifact"] == "BENCH_engine"


def test_cli_engines_writes_artifact(tmp_path, capsys):
    main(["--engines", "--output", str(tmp_path)])
    out = capsys.readouterr().out
    assert "speedup" in out
    assert (tmp_path / "BENCH_engine.json").exists()
    payload = json.loads((tmp_path / "BENCH_engine.json").read_text())
    assert set(payload["workloads"]) == set(engines.WORKLOADS)


def test_cli_engines_rejects_conflicting_flags(capsys):
    with pytest.raises(SystemExit):
        main(["--engines", "--dvfs"])
    with pytest.raises(SystemExit):
        main(["--engines", "--experiment", "table1"])
    with pytest.raises(SystemExit):
        main(["--engines", "--jobs", "2"])
    with pytest.raises(SystemExit):
        main(["--profile"])  # --profile needs --engines


# ----------------------------------------------------------------------
# recorded floors
# ----------------------------------------------------------------------
def _fake_evaluation(reference_s, compiled_s):
    class _Stats:
        reference_ticks = 100
        total_bus_words = 10

    return {
        "timings": {"reference": reference_s, "compiled": compiled_s},
        "stats": _Stats(),
    }


def test_below_floor_skipped_under_smoke():
    # fir floor is 3.5; a 1.0x evaluation is below it, but smoke runs
    # never enforce floors (they measure fixed costs, not striding).
    evaluations = {"fir": _fake_evaluation(1.0, 1.0)}
    assert engines.below_floor(evaluations) == []


def test_below_floor_detects_regression(monkeypatch):
    monkeypatch.delenv("BENCH_SMOKE", raising=False)
    evaluations = {
        "fir": _fake_evaluation(10.0, 1.0),       # 10x: fine
        "ddc_pipeline": _fake_evaluation(2.0, 1.0),  # 2x < 6.0 floor
    }
    assert engines.below_floor(evaluations) == ["ddc_pipeline"]
    payload = engines.bench_payload(evaluations)
    assert payload["workloads"]["fir"]["below_floor"] is False
    assert payload["workloads"]["ddc_pipeline"]["below_floor"] is True
    assert payload["workloads"]["ddc_pipeline"]["floor"] == 6.0
    assert "[below floor]" in engines.render(evaluations)


def test_every_workload_has_a_floor_of_at_least_3x():
    """The tentpole contract: every workload >= 3x, floors included."""
    assert set(engines.SPEEDUP_FLOORS) == set(engines.WORKLOADS)
    assert all(floor >= 3.0 for floor in
               engines.SPEEDUP_FLOORS.values())


# ----------------------------------------------------------------------
# --profile attribution
# ----------------------------------------------------------------------
def test_profile_attaches_phase_attribution(tmp_path):
    evaluation = engines.evaluate_workload(
        "ddc_pipeline", repeats=1, profile=True
    )
    profile = evaluation["profile"]
    assert profile["engines"] == 1
    assert profile["compile_s"] > 0
    assert profile["dense_s"] > 0
    assert profile["batch_events"] > 0
    assert profile["parked_edges"] > 0
    payload = engines.bench_payload({"ddc_pipeline": evaluation})
    entry = payload["workloads"]["ddc_pipeline"]
    assert entry["profile"]["batched_ticks"] > 0
    # The payload is JSON-serializable with the profile attached.
    json.dumps(payload)


def test_profile_registry_is_cleared_after_use():
    from repro.sim import engine as engine_module

    engines.evaluate_workload("fir", repeats=1, profile=True)
    assert engine_module.PROFILE_REGISTRY is None


def test_cli_engines_profile_flag(tmp_path, capsys):
    main(["--engines", "--profile", "--output", str(tmp_path)])
    payload = json.loads((tmp_path / "BENCH_engine.json").read_text())
    for entry in payload["workloads"].values():
        assert "profile" in entry
        assert entry["profile"]["runner_calls"] >= 0


def test_ddc_stream_chip_is_live_and_rate_matched():
    chip = engines.build_ddc_stream_chip(samples=8)
    assert chip.clock.ratio(0, 1) == (3, 5)
    assert not chip.columns[0].dou.program.is_inert()
    assert not chip.columns[1].dou.program.is_inert()
    assert chip.horizontal_dou is not None
