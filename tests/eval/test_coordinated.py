"""The --coordinated evaluation: contract, payload, CLI artifact."""

import json

import pytest

from repro.eval.coordinated import (
    GOVERNORS,
    bench_payload,
    check_contract,
    evaluate_all,
    render,
    write_bench,
)
from repro.eval.runner import main

FRAMES = 6


@pytest.fixture(scope="module")
def evaluations():
    return evaluate_all(frames=FRAMES)


def test_every_scenario_runs_every_policy(evaluations):
    assert set(evaluations) == {
        "ddc_pipeline", "wlan_rx_pipeline", "aes_pipeline",
        "mpeg4_pipeline", "stereo_pipeline",
    }
    for results in evaluations.values():
        assert set(results) == set(GOVERNORS)


def test_contract_holds(evaluations):
    findings = check_contract(evaluations)
    assert len(findings) == len(evaluations)
    for finding in findings:
        assert "zero misses" in finding
        assert "vs independent" in finding


def test_bench_payload_shape(evaluations):
    payload = bench_payload(evaluations)
    assert payload["artifact"] == "BENCH_coordinated"
    for key, scenario in payload["scenarios"].items():
        assert scenario["engines_bit_identical"] is True
        assert len(scenario["stages"]) == len(
            scenario["static_dividers"]
        )
        static = scenario["governors"]["static"]
        independent = scenario["governors"]["independent"]
        coordinated = scenario["governors"]["coordinated"]
        assert static["savings_percent"] is None
        assert static["transition_count"] == 0
        for governed in (static, independent, coordinated):
            assert governed["deadline_misses"] == 0
            assert governed["conservation_relative_error"] <= 1e-9
        assert coordinated["energy_nj"] < independent["energy_nj"]
        assert independent["energy_nj"] < static["energy_nj"]
        assert coordinated["savings_percent"] \
            > independent["savings_percent"]
        # Only the coordinator gates rails - and it prices re-wakes.
        assert coordinated["gated_segments"] > 0
        assert coordinated["rail_wakes"] > 0
        assert independent["gated_segments"] == 0
        # Per-column residency covers every stage.
        residency = coordinated["frequency_residency_ticks"]
        assert len(residency) == len(scenario["stages"])
        for table in residency.values():
            assert sum(table.values()) > 0
    assert json.dumps(payload)  # JSON-serializable end to end


def test_render_mentions_every_policy(evaluations):
    text = render(evaluations)
    for kind in GOVERNORS:
        assert kind in text
    assert "wakes" in text


def test_write_bench(tmp_path, evaluations):
    target = write_bench(tmp_path, bench_payload(evaluations))
    assert target.name == "BENCH_coordinated.json"
    loaded = json.loads(target.read_text())
    assert loaded["artifact"] == "BENCH_coordinated"


def test_cli_coordinated_writes_artifact(tmp_path, capsys, monkeypatch):
    monkeypatch.setenv("BENCH_SMOKE", "1")
    main(["--coordinated", "-o", str(tmp_path)])
    out = capsys.readouterr().out
    assert "BENCH_coordinated.json" in out
    artifact = tmp_path / "BENCH_coordinated.json"
    payload = json.loads(artifact.read_text())
    assert payload["smoke"] is True
    assert payload["contract"]


def test_cli_coordinated_rejects_conflicting_flags(tmp_path):
    with pytest.raises(SystemExit):
        main(["--coordinated", "-e", "table4", "-o", str(tmp_path)])
    with pytest.raises(SystemExit):
        main(["--coordinated", "--dvfs", "-o", str(tmp_path)])
    with pytest.raises(SystemExit):
        main(["--coordinated", "--engines", "-o", str(tmp_path)])
    with pytest.raises(SystemExit):
        main(["--coordinated", "-j", "4", "-o", str(tmp_path)])
