"""The --dvfs evaluation: contract, payload, CLI artifact."""

import json

import pytest

from repro.eval.dvfs import (
    GOVERNORS,
    bench_payload,
    check_contract,
    evaluate_all,
    render,
    write_bench,
)
from repro.eval.runner import main

FRAMES = 8


@pytest.fixture(scope="module")
def evaluations():
    return evaluate_all(frames=FRAMES)


def test_every_scenario_runs_every_governor(evaluations):
    assert set(evaluations) == {"wlan_mcs", "mpeg4_scene"}
    for results in evaluations.values():
        assert set(results) == set(GOVERNORS)


def test_contract_holds(evaluations):
    findings = check_contract(evaluations)
    # one finding per (scenario, feedback governor)
    assert len(findings) == len(evaluations) * (len(GOVERNORS) - 1)
    for finding in findings:
        assert "zero misses" in finding


def test_bench_payload_shape(evaluations):
    payload = bench_payload(evaluations)
    assert payload["artifact"] == "BENCH_dvfs"
    for key, scenario in payload["scenarios"].items():
        static = scenario["governors"]["static"]
        assert static["savings_percent"] is None
        assert static["deadline_misses"] == 0
        for kind in ("occupancy_pi", "slack"):
            governed = scenario["governors"][kind]
            assert governed["deadline_misses"] == 0
            assert governed["savings_percent"] > 0
            assert governed["energy_nj"] < static["energy_nj"]
            assert governed["conservation_relative_error"] <= 1e-9
            residency = governed["frequency_residency_ticks"]
            assert sum(residency.values()) > 0
            assert 0.0 <= governed["idle_fraction"] <= 1.0
        # worst-case provisioning shows up as stalled cycles
        assert static["idle_fraction"] > 0.3
    assert json.dumps(payload)  # JSON-serializable end to end


def test_render_mentions_every_governor(evaluations):
    text = render(evaluations)
    for kind in GOVERNORS:
        assert kind in text
    assert "vs static" in text


def test_write_bench(tmp_path, evaluations):
    target = write_bench(tmp_path, bench_payload(evaluations))
    assert target.name == "BENCH_dvfs.json"
    loaded = json.loads(target.read_text())
    assert loaded["artifact"] == "BENCH_dvfs"


def test_cli_dvfs_writes_artifact(tmp_path, capsys, monkeypatch):
    monkeypatch.setenv("BENCH_SMOKE", "1")
    main(["--dvfs", "-o", str(tmp_path)])
    out = capsys.readouterr().out
    assert "BENCH_dvfs.json" in out
    artifact = tmp_path / "BENCH_dvfs.json"
    payload = json.loads(artifact.read_text())
    assert payload["smoke"] is True
    assert payload["contract"]


def test_cli_dvfs_rejects_conflicting_flags(tmp_path):
    with pytest.raises(SystemExit):
        main(["--dvfs", "-e", "table4", "-o", str(tmp_path)])
    with pytest.raises(SystemExit):
        main(["--dvfs", "--measured", "-o", str(tmp_path)])
    with pytest.raises(SystemExit):
        main(["--dvfs", "-j", "4", "-o", str(tmp_path)])
