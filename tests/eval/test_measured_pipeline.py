"""Acceptance: eval regenerated from simulated activity via run_many.

The ISSUE 2 criteria: ``--measured`` rebuilds Table 4 and Figure 6
from measured activity, the measured interconnect power sits inside
the documented tolerance windows for DDC and the WLAN configurations,
and per-domain energy is conserved (ledger total == application power
x simulated time within float tolerance).
"""

import json

import pytest

from repro.eval import fig6, fig8, table4
from repro.eval.measured import (
    TOLERANCES,
    bench_payload,
    evaluate_all,
    write_bench,
)
from repro.eval.runner import main, run_measured


@pytest.fixture(scope="module")
def evaluations():
    return evaluate_all()


def test_interconnect_within_documented_tolerance(evaluations):
    for key, window_name in (
        ("ddc", "DDC"),
        ("wlan", "802.11a"),
        ("wlan_aes", "802.11a + AES"),
    ):
        evaluation = evaluations[key]
        low, high = TOLERANCES[window_name]
        ratio = evaluation.interconnect_ratio
        assert low <= ratio <= high, (
            f"{window_name}: interconnect ratio {ratio:.3f} outside "
            f"[{low}, {high}]"
        )
        assert evaluation.within_tolerance


def test_energy_conserved_per_application(evaluations):
    for evaluation in evaluations.values():
        expected = evaluation.measured.total_mw * evaluation.time_us
        assert evaluation.ledger.total_nj == pytest.approx(
            expected, rel=1e-9
        )
        assert evaluation.conservation_error < 1e-9
        # domains mirror components one to one
        assert len(evaluation.ledger.domains) \
            == len(evaluation.measured.components)


def test_measured_never_exceeds_calibrated_interconnect(evaluations):
    """Counted transfers undershoot the calibrated profiles (which
    back-solve Table 4 residuals); both DDC and WLAN stay below."""
    for key in ("ddc", "wlan"):
        assert evaluations[key].interconnect_ratio <= 1.0


def test_table4_measured_render(evaluations):
    text = table4.render_measured(evaluations)
    assert "Table 4 (measured)" in text
    assert "CIC Integrator" in text
    assert "sim" in text and "cal" in text
    assert "energy ledger" in text
    assert "documented window" in text


def test_fig6_measured_render(evaluations):
    text = fig6.render_measured(evaluations)
    assert "Figure 6 (measured)" in text
    assert "802.11a" in text
    bars = fig6.compute_measured(evaluations)
    assert len(bars) == 6
    for bar in bars:
        assert bar.unscaled_mw >= bar.scaled_mw


def test_fig8_measured_sweep_anchor():
    measured = fig8.measured_words_per_step()
    calibrated_study_words = 135.6
    assert 0.05 * calibrated_study_words <= measured \
        <= calibrated_study_words
    text = fig8.render_measured()
    assert "Figure 8 (measured)" in text
    assert "words/step" in text


def test_run_measured_selection():
    outputs = run_measured(["table4"])
    assert set(outputs) == {"table4", "BENCH_power"}
    with pytest.raises(KeyError):
        run_measured(["table1"])


def test_bench_payload_shape(evaluations):
    payload = bench_payload(evaluations)
    assert payload["artifact"] == "BENCH_power"
    ddc = payload["applications"]["ddc"]
    names = [c["name"] for c in ddc["components"]]
    assert "CIC Integrator" in names
    sources = {c["name"]: c["source"] for c in ddc["components"]}
    assert sources["CIC Integrator"] == "measured"
    assert sources["CIC Comb"] == "measured"  # gather/scatter kernel
    wlan = payload["applications"]["wlan"]
    wlan_sources = {
        c["name"]: c["source"] for c in wlan["components"]
    }
    assert wlan_sources["FFT"] == "analytical"  # still no kernel
    energy = ddc["energy"]
    assert energy["ledger_total_nj"] == pytest.approx(
        energy["power_times_time_nj"], rel=1e-9
    )
    assert ddc["within_tolerance"] is True


def test_cli_measured_writes_bench_artifact(tmp_path, capsys):
    main(["--measured", "-e", "table4", "-o", str(tmp_path)])
    out = capsys.readouterr().out
    assert "BENCH_power.json" in out
    artifact = tmp_path / "BENCH_power.json"
    assert artifact.exists()
    payload = json.loads(artifact.read_text())
    assert set(payload["applications"]) == {
        "ddc", "stereo", "wlan", "wlan_aes", "mpeg4_qcif",
        "mpeg4_cif",
    }
    assert (tmp_path / "table4.txt").exists()


def test_write_bench_roundtrip(tmp_path, evaluations):
    target = write_bench(tmp_path, bench_payload(evaluations))
    assert json.loads(target.read_text())["artifact"] == "BENCH_power"
