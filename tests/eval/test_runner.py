"""Runner CLI behaviours."""

import pytest

from repro.eval.runner import main, run_all, write_results


def test_run_all_selection():
    outputs = run_all(["table1", "fig5"])
    assert set(outputs) == {"table1", "fig5"}


def test_unknown_experiment_rejected():
    with pytest.raises(KeyError):
        run_all(["fig99"])


def test_write_results(tmp_path):
    outputs = run_all(["table1"])
    written = write_results(outputs, str(tmp_path / "results"))
    assert len(written) == 1
    assert written[0].read_text().startswith("Table 1")


def test_cli_single_experiment(capsys):
    main(["--experiment", "table2"])
    out = capsys.readouterr().out
    assert "== table2" in out
    assert "32 KB SRAM" in out


def test_cli_output_directory(tmp_path, capsys):
    main(["-e", "table1", "-o", str(tmp_path)])
    out = capsys.readouterr().out
    assert "wrote" in out
    assert (tmp_path / "table1.txt").exists()


def test_trace_requires_engines(capsys):
    with pytest.raises(SystemExit):
        main(["--trace", "out.json"])
    assert "--engines" in capsys.readouterr().err
