"""Runner CLI behaviours."""

import pytest

from repro.eval.runner import main, run_all, write_results


def test_run_all_selection():
    outputs = run_all(["table1", "fig5"])
    assert set(outputs) == {"table1", "fig5"}


def test_unknown_experiment_rejected():
    with pytest.raises(KeyError):
        run_all(["fig99"])


def test_write_results(tmp_path):
    outputs = run_all(["table1"])
    written = write_results(outputs, str(tmp_path / "results"))
    assert len(written) == 1
    assert written[0].read_text().startswith("Table 1")


def test_cli_single_experiment(capsys):
    main(["--experiment", "table2"])
    out = capsys.readouterr().out
    assert "== table2" in out
    assert "32 KB SRAM" in out


def test_cli_output_directory(tmp_path, capsys):
    main(["-e", "table1", "-o", str(tmp_path)])
    out = capsys.readouterr().out
    assert "wrote" in out
    assert (tmp_path / "table1.txt").exists()


def test_trace_requires_engines(capsys):
    with pytest.raises(SystemExit):
        main(["--trace", "out.json"])
    assert "--engines" in capsys.readouterr().err


def test_supervision_flags_install_a_default_policy(capsys):
    from repro.sim.resilience import (
        default_policy,
        set_default_policy,
    )

    assert default_policy() is None
    try:
        main([
            "--experiment", "table1",
            "--job-timeout", "120", "--retries", "3", "--keep-going",
        ])
        policy = default_policy()
        assert policy is not None
        assert policy.max_retries == 3
        assert policy.timeout_s == 120.0
        assert policy.keep_going is True
    finally:
        set_default_policy(None)


def test_no_supervision_flags_leave_the_fast_path_alone():
    from repro.sim.resilience import default_policy

    main(["--experiment", "table1"])
    assert default_policy() is None


def test_emit_artifact_stamps_outcomes_block(tmp_path):
    from repro.eval.runner import emit_artifact
    from repro.sim.resilience import reset_outcome_counters

    captured = {}

    def fake_write_bench(output, payload):
        captured.update(payload)
        return tmp_path / "BENCH_fake.json"

    reset_outcome_counters()
    emit_artifact(
        {"artifact": "BENCH_fake"}, fake_write_bench, str(tmp_path)
    )
    outcomes = captured["outcomes"]
    assert set(outcomes) >= {
        "ok", "degraded", "failed", "timed_out", "worker_crashed",
        "retries", "cache_quarantined",
    }
    assert all(count == 0 for count in outcomes.values())


def test_emit_artifact_accepts_explicit_outcomes(tmp_path):
    from repro.eval.runner import emit_artifact

    captured = {}

    def fake_write_bench(output, payload):
        captured.update(payload)
        return tmp_path / "BENCH_fake.json"

    emit_artifact(
        {"artifact": "BENCH_fake"}, fake_write_bench, str(tmp_path),
        outcomes={"ok": 7, "retries": 1},
    )
    assert captured["outcomes"] == {"ok": 7, "retries": 1}
