"""Figure drivers regenerate the paper's series."""

import pytest

from repro.eval import fig5, fig6, fig7, fig8, fig9, fig10


class TestFig5:
    def test_two_series(self):
        data = fig5.compute()
        assert set(data) == {15, 20}
        assert len(data[20]) == len(data[15])

    def test_15fo4_above_20fo4(self):
        data = fig5.compute()
        for (_, f20), (_, f15) in zip(data[20], data[15]):
            assert f15 > f20

    def test_render(self):
        assert "20 FO4" in fig5.render()


class TestFig6:
    def test_six_bars_in_paper_order(self):
        bars = fig6.compute()
        assert [b.application for b in bars] == [
            "DDC", "Stereo Vision", "802.11a", "MPEG4 CIF",
            "MPEG4 QCIF", "802.11a + AES",
        ]

    def test_stacked_heights(self):
        for bar in fig6.compute():
            assert bar.additional_unscaled_mw >= 0.0
            assert bar.unscaled_mw == pytest.approx(
                bar.scaled_mw + bar.additional_unscaled_mw
            )

    def test_stereo_shows_large_scaling_benefit(self):
        bars = {b.application: b for b in fig6.compute()}
        stereo = bars["Stereo Vision"]
        assert stereo.additional_unscaled_mw / stereo.unscaled_mw \
            == pytest.approx(0.32, abs=0.03)

    def test_render(self):
        assert "MPEG4" in fig6.render()


class TestFig7:
    def test_all_bars_present(self):
        bars = fig7.compute()
        labels = {(b.application, b.n_tiles) for b in bars}
        assert ("DDC", 14) in labels
        assert ("802.11a", 36) in labels
        assert ("MPEG4", 8) in labels
        assert len(bars) == 13

    def test_dark_share_grows_with_parallelism(self):
        bars = fig7.compute()
        for app in ("DDC", "SV", "802.11a", "MPEG4"):
            shares = [
                b.overhead_fraction for b in bars
                if b.application == app
            ]
            assert shares == sorted(shares), app

    def test_render(self):
        assert "Dark share" in fig7.render()


class TestFig8:
    def test_grid(self):
        points = fig8.compute()
        assert len(points) == 18

    def test_knee(self):
        gains = fig8.knee_gain()
        assert gains["128->256"] > 4.0 * max(gains["256->512"], 1.0)

    def test_render(self):
        text = fig8.render()
        assert "infeasible" in text
        assert "256" in text


class TestFig9:
    def test_series_labels(self):
        labels = {s.label for s in fig9.compute()}
        assert "DDC 50 Tiles" in labels
        assert "802.11a 12 Tiles" in labels

    def test_render(self):
        assert "Leakage sensitivity" in fig9.render()


class TestFig10:
    def test_series_labels(self):
        labels = {s.label for s in fig10.compute()}
        assert "SV 17 Tiles" in labels
        assert "MPEG4 36 Tiles" in labels

    def test_crossover_summary(self):
        crossing = fig10.mpeg4_crossover()
        assert crossing["paper_ma"] == 14.8
        assert crossing["crossover_ma"] == pytest.approx(14.8, abs=7.4)
        assert crossing["crossover_na_per_transistor"] \
            == pytest.approx(8.3, abs=4.0)

    def test_render(self):
        assert "crossover" in fig10.render()


def test_runner_runs_everything():
    from repro.eval.runner import run_all

    outputs = run_all()
    assert set(outputs) == {
        "table1", "table2", "table3", "table4",
        "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
    }
    for text in outputs.values():
        assert isinstance(text, str) and text
