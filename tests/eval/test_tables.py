"""Table drivers regenerate the paper's numbers."""

import pytest

from repro.eval import table1, table2, table3, table4


class TestTable1:
    def test_rows_cover_every_parameter(self):
        rows = table1.compute()
        names = {row[0] for row in rows}
        assert {"Technology", "Max Frequency", "Tile Power",
                "Wire Capacitance"} <= names

    def test_render_mentions_130nm(self):
        text = table1.render()
        assert "130 nm" in text
        assert "600 MHz" in text


class TestTable2:
    def test_totals(self):
        data = table2.compute()
        assert data["tile_total_um2"] == pytest.approx(7_272_620.0)
        assert data["tile_area_scaled_mm2"] == pytest.approx(1.97,
                                                             abs=0.02)
        assert data["column_overhead_mm2"] == pytest.approx(0.3375)

    def test_render(self):
        text = table2.render()
        assert "32 KB SRAM" in text
        assert "1.82" in text


class TestTable3:
    def test_synchroscalar_rows_near_paper(self):
        data = table3.compute()
        for label, (row, _, _) in data.items():
            assert row.power_mw == pytest.approx(
                row.paper_power_mw, rel=0.70
            ), label  # loose: two rows carry known paper quirks
        # the well-formed rows are tight
        ddc_row = data["DDC"][0]
        assert ddc_row.power_mw == pytest.approx(
            ddc_row.paper_power_mw, rel=0.01
        )

    def test_headline_bands(self):
        """Within 8-30X of ASICs, 10-60X better than DSPs/CPUs."""
        bands = table3.headline_ratios()
        low, high = bands["asic_within"]
        assert 5.0 < low < 35.0
        assert 5.0 < high < 40.0
        dsp_low, dsp_high = bands["dsp_better_by"]
        assert dsp_low > 3.0
        assert dsp_high > 50.0

    def test_render(self):
        text = table3.render()
        assert "Graychip" in text
        assert "Synchroscalar" in text
        assert "X of ASICs" in text


class TestTable4:
    def test_row_count(self):
        rows = table4.compute()
        totals = [r for r in rows if r.component == "TOTAL"]
        assert len(totals) == 6  # six application sections

    def test_consistent_rows_match_paper(self):
        known_divergent = {
            ("802.11a + AES", "FFT"),
            ("MPEG4 QCIF", "DCT/Quant/IQ/IDCT"),
            ("MPEG4 CIF", "DCT/Quant/IQ/IDCT"),
        }
        for row in table4.compute():
            if row.component == "TOTAL":
                continue
            if (row.application, row.component) in known_divergent:
                continue
            assert row.power_mw == pytest.approx(
                row.paper_power_mw, rel=0.02
            ), (row.application, row.component)

    def test_headline_savings(self):
        """Paper: up to 81% component, up to 32% application."""
        assert table4.max_component_savings() == pytest.approx(81.0,
                                                               abs=4.0)
        assert table4.max_application_savings() == pytest.approx(
            32.0, abs=3.0
        )

    def test_render(self):
        text = table4.render()
        assert "Viterbi ACS" in text
        assert "TOTAL" in text
