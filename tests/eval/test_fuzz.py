"""The --fuzz evaluation: payload shape, coverage counts, CLI."""

import json

import pytest

from repro.eval.fuzz import (
    DEFAULT_SEED,
    INVARIANTS,
    bench_payload,
    evaluate,
    render,
    write_bench,
)
from repro.eval.runner import main

COUNT = 15  # one full (app, topology) stratification lap


@pytest.fixture(scope="module")
def rows():
    return evaluate(DEFAULT_SEED, COUNT)


def test_evaluate_returns_one_row_per_case(rows):
    assert len(rows) == COUNT
    assert [row["index"] for row in rows] == list(range(COUNT))
    for row in rows:
        assert row["seed"] == DEFAULT_SEED
        assert row["deadline_misses"] == 0


def test_bench_payload_shape(rows):
    payload = bench_payload(rows, DEFAULT_SEED)
    assert payload["artifact"] == "BENCH_fuzz"
    assert payload["cases"] == COUNT
    assert payload["failures"] == 0
    assert payload["invariants"] == list(INVARIANTS)
    # 15 consecutive indices = every (app, topology) class once.
    assert all(
        count == 3 for count in payload["coverage"]["apps"].values()
    )
    assert all(
        count == 5
        for count in payload["coverage"]["topologies"].values()
    )
    assert sum(payload["coverage"]["classes"].values()) == COUNT
    assert payload["worst_conservation_error"] \
        <= payload["conservation_tolerance"]
    assert json.dumps(payload)  # JSON-serializable end to end


def test_render_names_every_class(rows):
    text = render(rows, DEFAULT_SEED)
    assert f"seed {DEFAULT_SEED}" in text
    for row in rows:
        assert row["class"] in text


def test_write_bench(tmp_path, rows):
    target = write_bench(tmp_path, bench_payload(rows, DEFAULT_SEED))
    assert target.name == "BENCH_fuzz.json"
    loaded = json.loads(target.read_text())
    assert loaded["artifact"] == "BENCH_fuzz"


def test_cli_fuzz_writes_artifact(tmp_path, capsys, monkeypatch):
    monkeypatch.delenv("BENCH_SMOKE", raising=False)
    main([
        "--fuzz", "--fuzz-seed", "23", "--fuzz-count", "15",
        "-o", str(tmp_path),
    ])
    out = capsys.readouterr().out
    assert "BENCH_fuzz.json" in out
    payload = json.loads((tmp_path / "BENCH_fuzz.json").read_text())
    assert payload["seed"] == 23
    assert payload["cases"] == 15
    assert payload["telemetry"]["events"] > 0
    assert payload["outcomes"]["ok"] >= 0


def test_cli_fuzz_rejects_conflicting_flags(tmp_path):
    with pytest.raises(SystemExit):
        main(["--fuzz", "-e", "table4", "-o", str(tmp_path)])
    with pytest.raises(SystemExit):
        main(["--fuzz", "--coordinated", "-o", str(tmp_path)])
    with pytest.raises(SystemExit):
        main(["--fuzz-seed", "23", "-o", str(tmp_path)])
    with pytest.raises(SystemExit):
        main(["--fuzz-count", "10", "-o", str(tmp_path)])
