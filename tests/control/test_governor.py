"""Governor policies: static, occupancy-PI, deadline slack."""

import pytest

from repro.control.governor import (
    OccupancyPIGovernor,
    SlackGovernor,
    StaticGovernor,
    Telemetry,
)
from repro.errors import ConfigurationError

LADDER = (1, 2, 4, 8)


def telemetry(
    dividers=(8,),
    input_fill=(0.0,),
    backlog=(0,),
    halted=(False,),
    extras=None,
    epoch=0,
):
    return Telemetry(
        epoch_index=epoch,
        reference_tick=epoch * 512,
        reference_mhz=512.0,
        dividers=tuple(dividers),
        halted=tuple(halted),
        input_fill=tuple(input_fill),
        output_fill=tuple(0.0 for _ in dividers),
        backlog_words=tuple(backlog),
        extras=dict(extras or {}),
    )


class TestStaticGovernor:
    def test_holds_configured_dividers(self):
        governor = StaticGovernor((2,))
        assert governor.decide(telemetry((8,))) == (2,)

    def test_defaults_to_current_dividers(self):
        governor = StaticGovernor()
        assert governor.decide(telemetry((4,))) == (4,)


class TestOccupancyPI:
    def test_speeds_up_on_backlog(self):
        governor = OccupancyPIGovernor(LADDER)
        out = governor.decide(
            telemetry((8,), input_fill=(0.5,), backlog=(256,))
        )
        assert out[0] < 8  # a heavy burst jumps several rungs

    def test_holds_near_setpoint(self):
        governor = OccupancyPIGovernor(LADDER)
        out = governor.decide(
            telemetry((4,), input_fill=(governor.setpoint,),
                      backlog=(20,))
        )
        assert out == (4,)

    def test_never_relaxes_with_backlog_pending(self):
        governor = OccupancyPIGovernor(LADDER)
        for epoch in range(10):
            out = governor.decide(telemetry(
                (2,), input_fill=(0.004,), backlog=(2,), epoch=epoch
            ))
            assert out == (2,)

    def test_relaxes_one_rung_when_empty(self):
        governor = OccupancyPIGovernor(LADDER)
        out = governor.decide(
            telemetry((2,), input_fill=(0.0,), backlog=(0,))
        )
        assert out == (4,)

    def test_anti_windup_keeps_bursts_responsive(self):
        """Long idle stretches must not bank slow-down debt."""
        governor = OccupancyPIGovernor(LADDER)
        for epoch in range(50):  # a long quiet period at the bottom
            governor.decide(telemetry(
                (8,), input_fill=(0.0,), backlog=(0,), epoch=epoch
            ))
        out = governor.decide(
            telemetry((8,), input_fill=(0.5,), backlog=(256,),
                      epoch=50)
        )
        assert out[0] < 8  # the burst still gets through

    def test_ignores_halted_columns(self):
        governor = OccupancyPIGovernor(LADDER)
        out = governor.decide(telemetry(
            (8, 8), input_fill=(0.9, 0.0), backlog=(400, 0),
            halted=(True, False),
        ))
        assert out[0] == 8

    def test_rejects_off_ladder_divider(self):
        governor = OccupancyPIGovernor(LADDER)
        with pytest.raises(ConfigurationError, match="ladder"):
            governor.decide(
                telemetry((3,), input_fill=(0.9,), backlog=(100,))
            )


class TestSlackGovernor:
    def extras(self, words, ticks, cpw=8.0):
        return {
            "words_to_deadline": words,
            "ticks_to_deadline": ticks,
            "cycles_per_word": cpw,
        }

    def test_picks_slowest_divider_meeting_the_deadline(self):
        governor = SlackGovernor(LADDER, guard=1.0)
        # 32 words x 8 cycles = 256 column cycles in 2048 ticks:
        # divider 8 exactly meets it
        out = governor.decide(telemetry(
            (2,), extras=self.extras(32, 2048)
        ))
        assert out == (8,)

    def test_guard_band_buys_headroom(self):
        relaxed = SlackGovernor(LADDER, guard=1.0)
        guarded = SlackGovernor(LADDER, guard=1.5)
        extras = self.extras(32, 2048)
        assert relaxed.decide(telemetry((2,), extras=extras)) == (8,)
        assert guarded.decide(telemetry((2,), extras=extras)) == (4,)

    def test_scales_with_owed_work(self):
        governor = SlackGovernor(LADDER, guard=1.0)
        assert governor.decide(telemetry(
            (8,), extras=self.extras(96, 2048)
        )) == (2,)
        assert governor.decide(telemetry(
            (8,), extras=self.extras(256, 2048)
        )) == (1,)

    def test_parks_slow_when_nothing_is_owed(self):
        governor = SlackGovernor(LADDER)
        assert governor.decide(telemetry(
            (1,), extras=self.extras(0, 2048)
        )) == (8,)

    def test_clamps_to_fastest_rung_when_overcommitted(self):
        governor = SlackGovernor(LADDER, guard=1.0)
        assert governor.decide(telemetry(
            (8,), extras=self.extras(10_000, 2048)
        )) == (1,)

    def test_holds_without_harness_extras(self):
        governor = SlackGovernor(LADDER)
        assert governor.decide(telemetry((4,))) == (4,)

    def test_rejects_sub_unity_guard(self):
        with pytest.raises(ConfigurationError, match="guard"):
            SlackGovernor(LADDER, guard=0.5)


class TestLadderValidation:
    def test_rejects_empty_ladder(self):
        with pytest.raises(ConfigurationError, match="at least one"):
            OccupancyPIGovernor(())

    def test_rejects_non_integer_rungs(self):
        with pytest.raises(ConfigurationError, match="positive integer"):
            SlackGovernor((1, 2.5))

    def test_rejects_non_comparable_rungs_as_configuration_error(self):
        # Type checks run before sorting, so a malformed entry fails
        # as the promised ConfigurationError, not sorted()'s TypeError.
        with pytest.raises(ConfigurationError, match="positive integer"):
            SlackGovernor((2, "4"))

    def test_rejects_non_positive_rungs(self):
        with pytest.raises(ConfigurationError, match="positive integer"):
            OccupancyPIGovernor((1, 0, 4))

    def test_rejects_duplicate_rungs(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            SlackGovernor((1, 2, 2, 4))

    def test_normalizes_order(self):
        assert SlackGovernor((8, 1, 4, 2)).ladder == (1, 2, 4, 8)


class TestCreateGovernor:
    def test_builds_each_registered_kind(self):
        from repro.control.governor import create_governor
        # The coordinator registers itself when the package imports.
        import repro.control  # noqa: F401

        assert isinstance(
            create_governor("static"), StaticGovernor
        )
        assert isinstance(
            create_governor("occupancy_pi", LADDER),
            OccupancyPIGovernor,
        )
        assert isinstance(
            create_governor("slack", LADDER, guard=1.5), SlackGovernor
        )

    def test_forwards_keyword_arguments(self):
        from repro.control.governor import create_governor

        governor = create_governor("slack", LADDER, guard=2.0)
        assert governor.guard == 2.0

    def test_unknown_name_lists_valid_choices(self):
        from repro.control.governor import create_governor
        import repro.control  # noqa: F401

        with pytest.raises(ConfigurationError) as excinfo:
            create_governor("thermal")
        message = str(excinfo.value)
        for kind in ("coordinated", "occupancy_pi", "slack", "static"):
            assert kind in message

    def test_bad_constructor_arguments_still_raise(self):
        from repro.control.governor import create_governor

        with pytest.raises(ConfigurationError):
            create_governor("slack", LADDER, guard=0.2)
