"""Chip-level coordinator: cross-domain policy and gate planning."""

import pytest

from repro.control.coordinator import (
    CoordinatedGovernor,
    GateSegment,
    plan_power_gating,
)
from repro.control.governor import (
    GOVERNOR_KINDS,
    SlackGovernor,
    StaticGovernor,
    Telemetry,
    create_governor,
)
from repro.errors import ConfigurationError
from repro.sim.stats import EpochColumnActivity, EpochRecord

LADDER = (1, 2, 4, 8)
CPW = (4.0, 10.0, 6.0)


def telemetry(
    dividers=(8, 8, 8),
    input_fill=(0.0, 0.0, 0.0),
    backlog=(0, 0, 0),
    halted=(False, False, False),
    extras=None,
    epoch=0,
):
    return Telemetry(
        epoch_index=epoch,
        reference_tick=epoch * 512,
        reference_mhz=512.0,
        dividers=tuple(dividers),
        halted=tuple(halted),
        input_fill=tuple(input_fill),
        output_fill=tuple(0.0 for _ in dividers),
        backlog_words=tuple(backlog),
        extras=dict(extras or {}),
    )


def deadline_extras(stage_words, ticks=2048):
    return {
        "words_to_deadline": stage_words[-1],
        "ticks_to_deadline": ticks,
        "stage_words_to_deadline": tuple(stage_words),
        "stage_cycles_per_word": CPW,
    }


class TestConstruction:
    def test_default_children_are_per_stage_slack(self):
        governor = CoordinatedGovernor(LADDER, CPW)
        assert governor.n_stages == 3
        assert all(
            isinstance(child, SlackGovernor)
            for child in governor.governors
        )
        assert [child.columns for child in governor.governors] == [
            (0,), (1,), (2,)
        ]

    def test_rejects_empty_stages(self):
        with pytest.raises(ConfigurationError):
            CoordinatedGovernor(LADDER, ())

    def test_rejects_non_positive_cycles(self):
        with pytest.raises(ConfigurationError):
            CoordinatedGovernor(LADDER, (4.0, 0.0))

    def test_rejects_mismatched_children(self):
        with pytest.raises(ConfigurationError):
            CoordinatedGovernor(
                LADDER, CPW, governors=[SlackGovernor(LADDER)]
            )

    def test_rejects_bad_ladder(self):
        with pytest.raises(ConfigurationError):
            CoordinatedGovernor((), CPW)
        with pytest.raises(ConfigurationError):
            CoordinatedGovernor((1, 0), CPW)

    def test_rejects_out_of_range_high_water(self):
        with pytest.raises(ConfigurationError):
            CoordinatedGovernor(LADDER, CPW, high_water=1.5)

    def test_rejects_out_of_range_match_occupancy(self):
        # A percent-vs-fraction typo must fail at construction, not
        # silently disable the rate-matching pass for the whole run.
        with pytest.raises(ConfigurationError):
            CoordinatedGovernor(LADDER, CPW, match_occupancy=25)
        with pytest.raises(ConfigurationError):
            CoordinatedGovernor(LADDER, CPW, match_occupancy=-0.1)

    def test_registered_for_create_governor(self):
        assert "coordinated" in GOVERNOR_KINDS
        governor = create_governor("coordinated", LADDER, CPW)
        assert isinstance(governor, CoordinatedGovernor)

    def test_reset_recurses_into_children(self):
        class Spy(StaticGovernor):
            def __init__(self):
                super().__init__()
                self.resets = 0

            def reset(self):
                self.resets += 1

        children = [Spy(), Spy(), Spy()]
        governor = CoordinatedGovernor(LADDER, CPW, governors=children)
        governor.reset()
        assert [child.resets for child in children] == [1, 1, 1]


class TestDecide:
    def test_rejects_telemetry_of_wrong_width(self):
        governor = CoordinatedGovernor(LADDER, CPW)
        with pytest.raises(ConfigurationError):
            governor.decide(telemetry(dividers=(8, 8)))

    def test_stage_deadline_floors_are_per_stage(self):
        # Stage 1 owes the full trace, stages 0 and 2 owe nothing:
        # only stage 1 speeds up, the others park on the slowest rung.
        governor = CoordinatedGovernor(LADDER, CPW)
        out = governor.decide(telemetry(
            backlog=(0, 800, 0),
            extras=deadline_extras((0, 800, 0)),
        ))
        assert out[1] == 1  # 800 words x 10 cycles needs full speed
        assert out[0] == 8 and out[2] == 8

    def test_upstream_slowdown_propagates_downstream(self):
        # A loaded pipeline: stage 1 holds 600 backlogged words, so
        # both it and its consumer must run flat out.
        governor = CoordinatedGovernor(LADDER, CPW)
        loaded = governor.decide(telemetry(
            backlog=(0, 600, 0),
            extras=deadline_extras((0, 600, 600), ticks=4096),
        ))
        assert loaded[1] == 1  # 600*10*1.25 cycles overcommits 4096
        assert loaded[2] == 1  # 409 deliverable words still need d=1
        # The same downstream claim under a *slow* upstream: stage 1
        # owes only 40 words and relaxes to divider 8, so it can
        # deliver just 4096/80 = 51 words; stage 2's naive 600-word
        # floor (divider 1) collapses to 51 * 6 * 1.25 cycles -> 8.
        relaxed = governor.decide(telemetry(
            backlog=(0, 40, 0),
            extras=deadline_extras((0, 40, 600), ticks=4096),
        ))
        assert relaxed[1] == 8
        assert relaxed[2] == 8

    def test_rate_match_binds_above_occupancy_threshold(self):
        governor = CoordinatedGovernor(LADDER, CPW)
        # Stage 0 is committed fast by its own floor while the channel
        # into stage 1 is filling (0.4 > 0.25): stage 1 must keep pace
        # even though its own deadline floor would let it idle.
        out = governor.decide(telemetry(
            dividers=(1, 8, 8),
            input_fill=(0.0, 0.4, 0.0),
            backlog=(999, 200, 0),
            extras=deadline_extras((999, 0, 0)),
        ))
        assert out[0] == 1  # overcommitted producer runs flat out
        # upstream interval 1 * 4 = 4; stage 1 needs 10 * d <= 4:
        # even divider 1 is too slow, so it clamps to the fastest rung.
        assert out[1] == 1

    def test_rate_match_ignores_draining_trickle(self):
        governor = CoordinatedGovernor(LADDER, CPW)
        out = governor.decide(telemetry(
            dividers=(1, 8, 8),
            input_fill=(0.0, 0.1, 0.0),  # below match_occupancy
            backlog=(0, 3, 0),
            extras=deadline_extras((0, 0, 0)),
        ))
        assert out[1] == 8  # the buffer absorbs burst skew

    def test_high_water_boosts_one_rung(self):
        governor = CoordinatedGovernor(
            LADDER, CPW, match_occupancy=1.0
        )
        out = governor.decide(telemetry(
            dividers=(8, 4, 8),
            input_fill=(0.0, 0.7, 0.0),
            extras=deadline_extras((0, 0, 0)),
        ))
        # Proposal parks at 8, but the current rung 4 is the floor the
        # emergency boost starts from: one rung faster is 2.
        assert out[1] == 2

    def test_high_water_tolerates_off_ladder_dividers(self):
        # A chip booted at an operating point the governor would
        # never pick (divider 3 is off the ladder): the emergency
        # boost must snap to a rung, not crash on ladder.index.
        governor = CoordinatedGovernor(
            LADDER, CPW, match_occupancy=1.0
        )
        out = governor.decide(telemetry(
            dividers=(8, 3, 8),
            input_fill=(0.0, 0.7, 0.0),
            extras=deadline_extras((0, 0, 0)),
        ))
        assert out[1] in LADDER
        assert out[1] <= 2  # at least one rung faster than ~3

    def test_high_water_never_slows_a_faster_than_ladder_stage(self):
        # A chip committed below the ladder's fastest rung: the
        # emergency boost must hold that speed, not drag the stage
        # down onto the ladder while its buffer overflows.
        governor = CoordinatedGovernor(
            (2, 4, 8), CPW, match_occupancy=1.0
        )
        out = governor.decide(telemetry(
            dividers=(8, 1, 8),
            input_fill=(0.0, 0.7, 0.0),
            extras={
                "words_to_deadline": 0,
                "ticks_to_deadline": 2048,
                "stage_words_to_deadline": (0, 0, 0),
                "stage_cycles_per_word": CPW,
            },
        ))
        assert out[1] == 1

    def test_parks_halted_columns_on_slowest_rung(self):
        governor = CoordinatedGovernor(LADDER, CPW)
        out = governor.decide(telemetry(
            dividers=(1, 2, 4),
            halted=(True, False, False),
            extras=deadline_extras((0, 0, 0)),
        ))
        assert out[0] == 8

    def test_park_can_be_disabled(self):
        governor = CoordinatedGovernor(LADDER, CPW, park_halted=False)
        out = governor.decide(telemetry(
            dividers=(1, 2, 4),
            halted=(True, False, False),
            extras=deadline_extras((0, 0, 0)),
        ))
        assert out[0] == 1

    def test_without_extras_holds_current_dividers(self):
        governor = CoordinatedGovernor(LADDER, CPW)
        out = governor.decide(telemetry(dividers=(2, 4, 8)))
        assert out == (2, 4, 8)

    def test_decisions_are_deterministic(self):
        governor = CoordinatedGovernor(LADDER, CPW)
        snapshot = telemetry(
            backlog=(10, 40, 5),
            input_fill=(0.1, 0.3, 0.05),
            extras=deadline_extras((100, 300, 400)),
        )
        assert governor.decide(snapshot) == governor.decide(snapshot)


def record(index, start, end, dividers, quiet):
    return EpochRecord(
        index=index,
        start_tick=start,
        end_tick=end,
        dividers=dividers,
        column_activity=tuple(
            EpochColumnActivity(
                tile_cycles=(end - start) // d,
                issued=0 if q else 10,
                idle=(end - start) // d if q else 5,
                bus_words=0 if q else 4,
            )
            for d, q in zip(dividers, quiet)
        ),
    )


class TestGatePlanning:
    def test_empty_timeline_plans_nothing(self):
        assert plan_power_gating(()) == ()

    def test_requires_column_activity(self):
        bare = EpochRecord(
            index=0, start_tick=0, end_tick=512, dividers=(1,)
        )
        with pytest.raises(ConfigurationError):
            plan_power_gating((bare,))

    def test_merges_consecutive_quiescent_windows(self):
        timeline = (
            record(0, 0, 512, (1, 2), (False, True)),
            record(1, 512, 1024, (1, 2), (False, True)),
            record(2, 1024, 1536, (1, 2), (False, False)),
        )
        segments = plan_power_gating(timeline)
        assert segments == (GateSegment(
            column=1, start_epoch=0, end_epoch=2,
            start_tick=0, end_tick=1024, wake=True,
        ),)
        assert segments[0].epochs == 2
        assert segments[0].duration_ticks == 1024

    def test_tail_segment_owes_no_wake(self):
        timeline = (
            record(0, 0, 512, (1, 2), (False, False)),
            record(1, 512, 1024, (1, 2), (True, False)),
            record(2, 1024, 1536, (1, 2), (True, False)),
        )
        segments = plan_power_gating(timeline)
        assert len(segments) == 1
        assert segments[0].column == 0
        assert segments[0].wake is False
        assert segments[0].end_tick == 1536

    def test_busy_columns_never_gate(self):
        timeline = (
            record(0, 0, 512, (1, 2), (False, False)),
            record(1, 512, 1024, (1, 2), (False, False)),
        )
        assert plan_power_gating(timeline) == ()

    def test_interleaved_idles_produce_two_segments(self):
        timeline = (
            record(0, 0, 512, (4,), (True,)),
            record(1, 512, 1024, (4,), (False,)),
            record(2, 1024, 1536, (4,), (True,)),
        )
        segments = plan_power_gating(timeline)
        assert [s.start_epoch for s in segments] == [0, 2]
        assert [s.wake for s in segments] == [True, False]
