"""Transition model: legality, relock latency, rail energy."""

import pytest

from repro.arch.clocking import ClockTree
from repro.control.transitions import TransitionModel
from repro.errors import ConfigurationError


@pytest.fixture
def model():
    return TransitionModel(relock_us=0.1)


def test_relock_scales_with_reference_clock(model):
    assert model.relock_ticks(100.0) == 10
    assert model.relock_ticks(512.0) == 52  # ceil(51.2)
    assert TransitionModel(relock_us=0.0).relock_ticks(512.0) == 0


def test_voltage_comes_from_the_shared_rail_set(model):
    # 512 MHz needs the 1.5 V rail; 64 MHz runs at the 0.7 V floor
    assert model.voltage_for(512.0, 1) == pytest.approx(1.5)
    assert model.voltage_for(512.0, 8) == pytest.approx(0.7)


def test_rail_energy_is_symmetric_and_zero_on_same_rail(model):
    up = model.transition_energy_nj(0.7, 1.5, n_tiles=4)
    down = model.transition_energy_nj(1.5, 0.7, n_tiles=4)
    assert up == pytest.approx(down)
    assert up > 0
    assert model.transition_energy_nj(1.1, 1.1, 4) == 0.0
    # energy follows 1/2 C |V2^2 - V1^2| with C = 50 x 0.1 nF per tile
    expected = 0.5 * 5.0 * 4 * abs(1.5 ** 2 - 0.7 ** 2)
    assert up == pytest.approx(expected)


def test_commits_only_at_hyperperiod_boundaries(model):
    clock = ClockTree(512.0, [2, 8])  # hyperperiod 8
    model.check_legal(0, clock)
    model.check_legal(8, clock)
    model.check_legal(1024, clock)
    with pytest.raises(ConfigurationError, match="hyperperiod"):
        model.check_legal(3, clock)
    with pytest.raises(ConfigurationError, match="hyperperiod"):
        model.plan(12, clock, [2, 4])


def test_plan_prices_only_changed_columns(model):
    clock = ClockTree(512.0, [2, 4, 8])
    records = model.plan(8, clock, [2, 2, 4], tiles_per_column=4)
    assert [r.column for r in records] == [1, 2]
    by_column = {r.column: r for r in records}
    assert by_column[1].from_divider == 4
    assert by_column[1].to_divider == 2
    # 128 MHz (0.8 V) -> 256 MHz (1.1 V): a real rail move
    assert by_column[1].from_voltage_v == pytest.approx(0.8)
    assert by_column[1].to_voltage_v == pytest.approx(1.1)
    assert by_column[1].energy_nj > 0
    assert by_column[1].relock_ticks == model.relock_ticks(512.0)


def test_plan_rejects_wrong_width(model):
    clock = ClockTree(512.0, [2, 4])
    with pytest.raises(ConfigurationError, match="columns"):
        model.plan(0, clock, [2, 4, 8])


def test_rejects_unreachable_operating_points(model):
    clock = ClockTree(800.0, [2])
    with pytest.raises(ConfigurationError):
        model.plan(0, clock, [1])  # 800 MHz exceeds every rail
