"""Epoch runner: equivalence, differential contract, gating, cache."""

import pytest

from repro.arch.chip import Chip, PORT_POSITION
from repro.arch.config import ChipConfig, ColumnConfig
from repro.arch.dou_compiler import Transfer, compile_schedule
from repro.control import (
    Governor,
    StaticGovernor,
    TransitionModel,
    run_governed,
)
from repro.errors import ConfigurationError, SimulationError
from repro.isa.assembler import assemble
from repro.sim.engine import CompiledEngine
from repro.sim.simulator import Simulator

SAMPLES = 12


def spin_program(iterations: int):
    return assemble(f"""
        movi r0, 0
        loop {iterations}
          addi r0, r0, 1
        endloop
        halt
    """, "spin")


def build_mixed_divider_chip() -> Chip:
    config = ChipConfig(
        reference_mhz=512.0,
        columns=(ColumnConfig(divider=2), ColumnConfig(divider=4),
                 ColumnConfig(divider=8)),
    )
    return Chip(config, programs=[
        spin_program(300), spin_program(120), spin_program(40),
    ])


def build_streaming_chip() -> Chip:
    """Two columns with live DOU traffic (the dense striding mode)."""
    producer = assemble(f"""
        tmask 0x1
        movi p0, 0
        loop {SAMPLES}
          ld r1, [p0++]
          lsl r1, r1, 1
          send r1
        endloop
        halt
    """, "producer")
    consumer = assemble(f"""
        movi r2, 0
        loop {SAMPLES}
          recv r1
          add r2, r2, r1
        endloop
        halt
    """, "consumer")
    to_port = compile_schedule(
        [[Transfer(src=0, dsts=(PORT_POSITION,))]], name="to-port"
    )
    fan_out = compile_schedule(
        [[Transfer(src=PORT_POSITION, dsts=(0, 1, 2, 3))]],
        name="fan-out",
    )
    horizontal = compile_schedule(
        [[Transfer(src=0, dsts=(1,))]], n_positions=2, name="hbus"
    )
    config = ChipConfig(
        reference_mhz=512.0,
        columns=(ColumnConfig(divider=4), ColumnConfig(divider=2)),
        strict_schedules=False,
    )
    chip = Chip(config, programs=[producer, consumer],
                dou_programs=[to_port, fan_out],
                horizontal_dou=horizontal)
    chip.columns[0].tiles[0].load_memory(0, list(range(1, SAMPLES + 1)))
    return chip


class Toggler(Governor):
    """Deterministic divider wiggling across the whole ladder."""

    name = "toggler"

    def __init__(self, patterns):
        self.patterns = tuple(tuple(p) for p in patterns)

    def decide(self, telemetry):
        return self.patterns[
            telemetry.epoch_index % len(self.patterns)
        ]


# ----------------------------------------------------------------------
# the satellite acceptance: epoch-split == un-epoched, bit for bit
# ----------------------------------------------------------------------
@pytest.mark.parametrize("epoch_ticks", [8, 64, 1000])
@pytest.mark.parametrize("build", [
    build_mixed_divider_chip, build_streaming_chip,
])
def test_constant_governor_epochs_match_plain_compiled_run(
    build, epoch_ticks
):
    plain = Simulator(build(), engine="compiled").run(
        max_ticks=100_000
    )
    governed = run_governed(
        build(), StaticGovernor(), engine="compiled",
        epoch_ticks=epoch_ticks, max_ticks=100_000,
    )
    assert governed.stats == plain
    assert governed.transitions == ()
    assert len(governed.timeline) >= 1
    # collect() never attaches epochs; the attached variant carries
    # the full timeline without disturbing the underlying counters
    assert governed.stats.epochs == ()
    attached = governed.stats_with_epochs
    assert attached.epochs == governed.timeline
    assert attached.columns == plain.columns


# ----------------------------------------------------------------------
# differential: reference == compiled under any governor
# ----------------------------------------------------------------------
@pytest.mark.parametrize("build,patterns", [
    (build_mixed_divider_chip, [(2, 4, 8), (4, 8, 2), (8, 2, 4)]),
    (build_streaming_chip, [(4, 2), (8, 4), (2, 2)]),
])
def test_differential_governed_mixed_dividers(build, patterns):
    governed = {}
    for engine in ("reference", "compiled"):
        governed[engine] = run_governed(
            build(), Toggler(patterns), engine=engine,
            epoch_ticks=64,
            transition_model=TransitionModel(relock_us=0.01),
            max_ticks=200_000,
        )
    reference, compiled = governed["reference"], governed["compiled"]
    assert compiled.stats == reference.stats
    assert compiled.timeline == reference.timeline
    assert compiled.transitions == reference.transitions
    assert compiled.transition_count > 0  # retuning really happened


def test_epoch_activity_deltas_sum_to_run_totals():
    governed = run_governed(
        build_streaming_chip(),
        Toggler([(4, 2), (8, 4)]),
        epoch_ticks=64,
        transition_model=TransitionModel(relock_us=0.01),
    )
    halt_tick = governed.timeline[-1].end_tick
    for column in range(2):
        epoch_cycles = sum(
            e.column_activity[column].tile_cycles
            for e in governed.timeline
        )
        epoch_issued = sum(
            e.column_activity[column].issued
            for e in governed.timeline
        )
        stats_column = governed.stats.column(column)
        # the run's totals exceed the epochs' share only by the
        # post-halt drain bubbles
        assert epoch_issued == stats_column.issued
        drain = governed.stats.reference_ticks - halt_tick
        assert epoch_cycles <= stats_column.tile_cycles \
            <= epoch_cycles + drain


def test_frequency_residency_covers_the_whole_run():
    governed = run_governed(
        build_mixed_divider_chip(),
        Toggler([(2, 4, 8), (4, 4, 8)]),
        epoch_ticks=32,
        transition_model=TransitionModel(relock_us=0.01),
    )
    stats = governed.stats_with_epochs
    for column in range(3):
        residency = stats.frequency_residency(column)
        assert sum(residency.values()) == stats.reference_ticks
    # column 0 toggled between 256 and 128 MHz
    assert set(stats.frequency_residency(0)) == {256.0, 128.0}
    # column 2 never changed
    assert set(stats.frequency_residency(2)) == {64.0}


def test_relock_gating_freezes_the_retuned_column():
    """During the relock window the retuned column gets no edges."""
    relocked = run_governed(
        build_mixed_divider_chip(),
        Toggler([(2, 4, 8), (4, 4, 8)]),
        epoch_ticks=32,
        transition_model=TransitionModel(relock_us=0.05),  # 26 ticks
    )
    instant = run_governed(
        build_mixed_divider_chip(),
        Toggler([(2, 4, 8), (4, 4, 8)]),
        epoch_ticks=32,
        transition_model=TransitionModel(relock_us=0.0),
    )
    # same total work, but the gated run needs more wall-clock ticks
    assert relocked.stats.column(0).issued \
        == instant.stats.column(0).issued
    assert relocked.stats.reference_ticks \
        > instant.stats.reference_ticks


def test_compiled_plan_cache_is_keyed_by_divider_tuple():
    chip = build_mixed_divider_chip()
    engine = CompiledEngine(chip)
    run_governed(
        chip, Toggler([(2, 4, 8), (4, 8, 2), (2, 4, 8)]),
        engine=engine, epoch_ticks=32,
        transition_model=TransitionModel(relock_us=0.0),
    )
    # two distinct operating points -> exactly two compiled plans,
    # regardless of how many epochs revisited them
    assert set(engine._plans) == {(2, 4, 8), (4, 8, 2)}


def test_illegal_epoch_alignment_is_impossible_by_construction():
    """Every epoch END lands on the committed clock's hyperperiod
    grid, so every commit is legal - even with odd epoch_ticks."""
    governed = run_governed(
        build_mixed_divider_chip(),
        Toggler([(2, 4, 8), (4, 8, 2)]),
        epoch_ticks=37,  # not a multiple of the hyperperiod (8)
        transition_model=TransitionModel(relock_us=0.0),
    )
    for epoch in governed.timeline[:-1]:
        assert epoch.end_tick % 8 == 0


def test_off_phase_ladder_with_odd_dividers():
    """A divider-3 epoch entered at an off-phase tick must still
    commit its successor legally (the end tick, not merely the
    duration, is what the hyperperiod grid constrains)."""
    config = ChipConfig(
        reference_mhz=240.0,
        columns=(ColumnConfig(divider=2),),
    )
    def build():
        return Chip(config, programs=[spin_program(200)])

    runs = {}
    for engine in ("reference", "compiled"):
        runs[engine] = run_governed(
            build(), Toggler([(2,), (3,), (2,), (3,)]),
            engine=engine, epoch_ticks=4,
            transition_model=TransitionModel(relock_us=0.0),
        )
    assert runs["compiled"].stats == runs["reference"].stats
    assert runs["compiled"].timeline == runs["reference"].timeline
    assert runs["compiled"].transition_count > 0
    # each full epoch ends on its own clock's grid (the outgoing
    # clock at the next commit); the last may end early at halt
    for epoch in runs["compiled"].timeline[:-1]:
        assert epoch.end_tick % epoch.dividers[0] == 0


def test_direct_retune_off_boundary_is_rejected():
    chip = build_mixed_divider_chip()
    Simulator(chip, engine="reference").engine.advance(3)
    with pytest.raises(ConfigurationError, match="hyperperiod"):
        chip.retune((4, 4, 8))


def test_engine_instance_must_drive_the_governed_chip():
    chip_a, chip_b = build_mixed_divider_chip(), \
        build_mixed_divider_chip()
    with pytest.raises(ConfigurationError, match="different chip"):
        run_governed(chip_a, StaticGovernor(),
                     engine=CompiledEngine(chip_b))


def test_non_positive_epoch_windows_are_rejected():
    for kwargs in ({"epoch_ticks": 0}, {"epoch_ticks": -8},
                   {"epoch_hyperperiods": 0}):
        with pytest.raises(ConfigurationError, match="positive"):
            run_governed(build_mixed_divider_chip(),
                         StaticGovernor(), **kwargs)


def test_budget_error_when_workload_never_halts():
    with pytest.raises(SimulationError, match="exceeded"):
        run_governed(build_streaming_chip(), StaticGovernor(),
                     epoch_ticks=16, max_ticks=48)


def test_budget_parity_with_plain_run_on_partial_final_window():
    """A budget that is not a whole number of epochs still lets the
    chip halt inside the tail, exactly like a plain run would."""
    plain = Simulator(build_mixed_divider_chip(),
                      engine="reference").run()
    drain = 2 * build_mixed_divider_chip().clock.hyperperiod()
    halt_tick = plain.reference_ticks - drain
    budget = halt_tick + 3  # deliberately unaligned tail
    governed = run_governed(
        build_mixed_divider_chip(), StaticGovernor(),
        epoch_ticks=64, max_ticks=budget,
    )
    assert governed.stats == plain


def test_reused_stateful_governor_replays_identically():
    """A reused OccupancyPIGovernor must not leak integral state
    between runs - the cross-engine differential depends on it."""
    from repro.control import OccupancyPIGovernor

    governor = OccupancyPIGovernor((2, 4, 8))
    runs = {}
    for engine in ("reference", "compiled"):
        runs[engine] = run_governed(
            build_streaming_chip(), governor, engine=engine,
            epoch_ticks=64,
            transition_model=TransitionModel(relock_us=0.01),
        )
    assert runs["compiled"].stats == runs["reference"].stats
    assert runs["compiled"].timeline == runs["reference"].timeline
