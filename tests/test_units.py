"""Unit conventions and conversions."""

import pytest

from repro.units import (
    mw_to_nw_per_sample,
    pj_mhz_to_mw,
    scale_factor,
)


def test_pj_mhz_identity():
    # 10 pJ at 100 MHz = 1 mW
    assert pj_mhz_to_mw(10.0, 100.0) == pytest.approx(1.0)


def test_nw_per_sample_paper_example():
    """Section 5.5: 2.43 W at 64e6 samples/s = 38.0 nW/sample."""
    assert mw_to_nw_per_sample(2430.0, 64.0e6) == pytest.approx(
        37.97, abs=0.05
    )


def test_nw_per_sample_validation():
    with pytest.raises(ValueError):
        mw_to_nw_per_sample(1.0, 0.0)


def test_scale_factor():
    assert scale_factor(250.0, 130.0) == pytest.approx(0.2704)
    assert scale_factor(130.0, 130.0) == 1.0
    with pytest.raises(ValueError):
        scale_factor(0.0, 130.0)


def test_errors_hierarchy():
    from repro.errors import (
        AssemblyError,
        ConfigurationError,
        FrequencyRangeError,
        MappingError,
        ReproError,
        SdfError,
        SimulationError,
    )

    for error in (AssemblyError, ConfigurationError, MappingError,
                  SdfError, SimulationError):
        assert issubclass(error, ReproError)
    assert issubclass(FrequencyRangeError, ConfigurationError)
