"""Drain-window gating: a rail declared off stays off through drain.

A wake-free tail gate segment means the coordinator powered a column
down for good; the post-halt drain window - the segment appended
after the last epoch while the tail stage drains its final words -
must then be charged at the gated (retention-only) rate, every
applied re-wake must be priced into the ledger, and the books must
still balance term by term.

The scenario under test is a generated fork/join case whose
coordinated run is known (deterministically - the generator is a pure
function of the pair) to apply both wake-free tail gates and priced
re-wakes, so one run exercises the whole accounting path.
"""

import pytest

from repro.workloads.generate import generate_scenario
from repro.workloads.coordinated import run_pipeline

# aes/fork_join under the coordinated governor: applies >10 gate
# segments, re-wakes on most, and ends with wake-free tail gates on
# several columns.  Regenerated, not hand-built, so this test also
# pins the generator's determinism for one concrete case.
SEED, INDEX = 11, 10


@pytest.fixture(scope="module")
def result():
    generated = generate_scenario(SEED, INDEX)
    assert generated.governor == "coordinated"
    return run_pipeline(
        generated.scenario, generated.governor, engine="compiled"
    )


def _tail_gates(result):
    n_epochs = len(result.run.timeline)
    return [
        segment for segment in result.gate_segments
        if not segment.wake and segment.end_epoch == n_epochs
    ]


def test_the_case_exercises_both_gate_flavours(result):
    assert _tail_gates(result), "expected wake-free tail gates"
    assert result.wake_count > 0, "expected priced re-wakes"


def test_tail_drain_window_is_charged_gated(result):
    # The drain segment is indexed one past the last epoch; a column
    # whose tail gate is wake-free must have that window gated too -
    # charging it ungated would bill full power on a rail the
    # coordinator declared permanently off.
    n_epochs = len(result.run.timeline)
    drain_names = {
        f"seg{n_epochs}.col{segment.column}"
        for segment in _tail_gates(result)
    }
    gated_names = {
        entry.name for entry in result.ledger.domains if entry.gated
    }
    assert drain_names, "no tail gates to check"
    assert drain_names <= gated_names
    # The drain window itself existed (the charger saw the post-halt
    # segment, not just the epoch windows).
    assert any(
        entry.name.startswith(f"seg{n_epochs}.")
        for entry in result.ledger.domains
    )


def test_gated_windows_carry_retention_leakage_only(result):
    gated = [e for e in result.ledger.domains if e.gated]
    assert gated
    for entry in gated:
        assert entry.active_nj == 0
        assert entry.idle_nj == 0
        assert entry.bus_nj == 0
        assert entry.leakage_nj > 0


def test_every_applied_wake_is_priced(result):
    wakes = [
        record for record in result.ledger.transitions
        if record.name.startswith("wake col")
    ]
    assert len(wakes) == result.wake_count
    for record in wakes:
        assert record.energy_nj > 0


def test_books_balance_through_the_gated_drain(result):
    ledger = result.ledger
    parts = sum(entry.total_nj for entry in ledger.domains) \
        + ledger.transition_nj
    assert abs(ledger.total_nj - parts) \
        <= 1e-9 * max(abs(ledger.total_nj), 1.0)
    assert result.conservation_error <= 1e-9
    assert result.deadline_misses == 0


def test_gating_saves_energy_and_is_optional(result):
    generated = generate_scenario(SEED, INDEX)
    ungated = run_pipeline(
        generated.scenario, generated.governor, engine="compiled",
        gating=False,
    )
    assert ungated.gate_segments == ()
    assert ungated.gated_nj == 0
    assert result.energy_nj < ungated.energy_nj
    # Gating is an accounting overlay: the governed run underneath is
    # identical (same timeline, same commits) either way.
    assert ungated.run.timeline == result.run.timeline
    assert ungated.run.stats == result.run.stats
