"""Property-based invariant fuzzing over generated scenarios.

Each case regenerates one ``(seed, index)`` sample and drives it
through the standing invariant suite
(:func:`repro.workloads.generate.check_invariants`): engine
bit-identity, run determinism, zero deadline misses, energy
conservation, and balanced ledger books.  Shrinking is by
construction - a failing parameterization *is* its two-integer repro
(replay verbosely with ``python tools/repro_fuzz_case.py SEED INDEX``).

``FUZZ_SEED`` / ``FUZZ_COUNT`` select the sweep: tier-1 runs a small
default shard, CI's fuzz matrix runs 200 cases per seed (11 / 23 /
47), covering every app, every topology, and non-1:1 rate ratios.
"""

import os

import pytest

from repro.workloads.generate import (
    APPS,
    TOPOLOGIES,
    check_case,
    generate_scenario,
)

SEED = int(os.environ.get("FUZZ_SEED", "11"))
COUNT = int(os.environ.get("FUZZ_COUNT", "24"))


@pytest.mark.parametrize("index", range(COUNT))
def test_generated_case_holds_every_invariant(index):
    row = check_case((SEED, index))
    assert row["seed"] == SEED
    assert row["index"] == index
    assert row["deadline_misses"] == 0
    assert row["conservation_error"] <= 1e-9
    assert row["total_exit_words"] > 0


def test_sweep_covers_the_full_matrix():
    # The stratification makes this structural, not statistical: any
    # sweep of >= 15 cases covers every (app, topology) class, so
    # non-1:1 ratios and fork/join graphs are exercised every run.
    assert COUNT >= 15, "fuzz sweeps below 15 cases lose coverage"
    classes = {
        (generated.app, generated.topology)
        for generated in (
            generate_scenario(SEED, index) for index in range(COUNT)
        )
    }
    assert classes == {
        (app, topology) for app in APPS for topology in TOPOLOGIES
    }
