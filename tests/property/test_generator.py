"""The generative scenario engine's own contract.

Before the generated scenarios are trusted to fuzz the governance
invariants, the generator itself must hold its reproduction contract:
``(seed, index)`` fully determine a sample, coverage is stratified by
construction, every sample is feasible and picklable, and bad inputs
fail with the offending parameter named.
"""

import pickle

import pytest

from repro.errors import ConfigurationError
from repro.workloads.coordinated import PIPELINE_GOVERNORS
from repro.workloads.generate import (
    APPS,
    TOPOLOGIES,
    GeneratedScenario,
    generate_scenario,
    generate_suite,
)

SEED = 11


def test_same_pair_regenerates_an_equal_scenario():
    # The whole repro story: a failing case replays from the two
    # integers alone, so regeneration must be exact (frozen
    # dataclasses compare by value, scenario included).
    for index in (0, 7, 14, 33):
        first = generate_scenario(SEED, index)
        second = generate_scenario(SEED, index)
        assert first == second
        assert first.scenario == second.scenario


def test_different_indices_differ():
    suite = generate_suite(SEED, 30)
    keys = {generated.scenario.key for generated in suite}
    assert len(keys) == 30


def test_stratified_coverage_over_fifteen_consecutive_indices():
    # App rotates with index % 5, topology with index // 5: any 15
    # consecutive indices cover every (app, topology) class.
    for start in (0, 4, 20):
        classes = {
            (generated.app, generated.topology)
            for generated in (
                generate_scenario(SEED, start + offset)
                for offset in range(15)
            )
        }
        assert classes == {
            (app, topology)
            for app in APPS for topology in TOPOLOGIES
        }


def test_sampled_fields_stay_in_their_domains():
    for generated in generate_suite(SEED, 30):
        assert generated.app in APPS
        assert generated.topology in TOPOLOGIES
        assert generated.governor in PIPELINE_GOVERNORS
        assert generated.class_key == (
            f"{generated.app}/{generated.topology}/"
            f"{generated.governor}"
        )


def test_generated_scenarios_are_picklable():
    # Sweeps fan out through parallel_map, which ships cases to
    # worker processes by pickle.
    for index in (0, 5, 10):
        generated = generate_scenario(SEED, index)
        clone = pickle.loads(pickle.dumps(generated))
        assert isinstance(clone, GeneratedScenario)
        assert clone == generated


def test_loads_are_quantum_multiples_and_feasible():
    for generated in generate_suite(SEED, 30):
        scenario = generated.scenario
        quantum = scenario.load_quantum
        for load in scenario.frame_loads:
            assert load % quantum == 0
        # Feasibility by construction: static provisioning must
        # exist (the construction every governor's safety net rests
        # on), which PipelineScenario would reject otherwise - so
        # reaching here proves it; spot-check the dividers anyway.
        dividers = scenario.static_dividers()
        assert len(dividers) == scenario.n_stages
        assert all(d in scenario.divider_ladder for d in dividers)


def test_drain_allowance_within_frame():
    for generated in generate_suite(SEED, 30):
        scenario = generated.scenario
        assert 0 < scenario.drain_allowance_ticks \
            < scenario.frame_ticks


def test_topologies_realize_their_shapes():
    for generated in generate_suite(SEED, 45):
        scenario = generated.scenario
        ratios = [stage.rate_ratio for stage in scenario.stages]
        if generated.topology == "linear":
            assert scenario.is_linear
            assert all(ratio == 1 for ratio in ratios)
        elif generated.topology == "decimating":
            assert any(ratio != 1 for ratio in ratios)
        else:  # fork_join
            preds = scenario.stage_predecessors
            assert any(len(entry) > 1 for entry in preds)
            successors = scenario.stage_successors
            assert any(len(entry) > 1 for entry in successors)


def test_negative_identity_is_rejected_with_the_pair_named():
    with pytest.raises(ConfigurationError, match=r"\(-1, 0\)"):
        generate_scenario(-1, 0)
    with pytest.raises(ConfigurationError, match=r"\(11, -3\)"):
        generate_scenario(11, -3)
