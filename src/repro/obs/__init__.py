"""Unified telemetry plane: event bus, metrics, exporters.

Synchroscalar's whole argument is about where time and energy go -
per-domain frequency residency, stall/starve behaviour at domain
boundaries, gating windows - and this package is the one structured
surface every layer reports into and every consumer reads from:

:mod:`repro.obs.events`
    Typed span/instant/counter events on a process-wide
    :data:`~repro.obs.events.BUS`.  Emission compiles down to a
    single attribute check when no sink is subscribed, so the
    instrumented engine/control/power/batch layers cost nothing on
    untraced runs (the contract the overhead tests pin down).

:mod:`repro.obs.metrics`
    Counters, gauges, and histograms in a :class:`MetricsRegistry`.
    The compiled engine's profile counters are registry-backed; its
    ``profile_snapshot()`` remains as the compatibility view the
    ``BENCH_engine.json`` schema and CI counter checks consume.

:mod:`repro.obs.export`
    Sinks and exporters: a Chrome-trace/Perfetto JSON builder that
    renders a run as a timeline with one track per clock domain, a
    JSONL streaming sink for service-style consumers, and a counting
    sink for cheap run summaries.

Tracing never changes simulation behaviour: a fully subscribed run
and a no-sink run produce bit-identical
:class:`~repro.sim.stats.SimulationStats` (asserted differentially),
because sinks only observe - no emission site steers control flow.
"""

from repro.obs.events import (
    BUS,
    CounterEvent,
    Event,
    EventBus,
    InstantEvent,
    SpanEvent,
    subscribed,
)
from repro.obs.export import (
    ChromeTraceBuilder,
    CountingSink,
    JsonlSink,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)

__all__ = [
    "BUS",
    "ChromeTraceBuilder",
    "Counter",
    "CounterEvent",
    "CountingSink",
    "Event",
    "EventBus",
    "Gauge",
    "Histogram",
    "InstantEvent",
    "JsonlSink",
    "MetricsRegistry",
    "SpanEvent",
    "subscribed",
    "validate_chrome_trace",
    "write_chrome_trace",
]
