"""Sinks and exporters for the telemetry bus.

:class:`ChromeTraceBuilder`
    Subscribes to the bus and renders the run as Chrome-trace /
    Perfetto JSON: one *process* per workload, one *thread* (track)
    per clock domain or layer row, spans as ``"X"`` complete events,
    instants as ``"i"``, sampled counters as ``"C"``.  Load the file
    in ``chrome://tracing`` or https://ui.perfetto.dev.

:class:`JsonlSink`
    One JSON object per event, for streaming/service consumers.
    Buffers in memory and writes on :meth:`~JsonlSink.flush` /
    :meth:`~JsonlSink.close` - forked batch workers inherit a copy of
    the bus, and a buffered sink guarantees they cannot interleave
    partial lines into the parent's file.

:class:`CountingSink`
    Cheap run summary: event totals by kind and category.  This is
    what the eval runner stamps into every ``BENCH_*`` artifact.

Determinism contract: every field the builders derive comes from the
events themselves (tick-based timestamps, stable track/pid ordering),
so two identical runs export byte-identical JSON.  Wall-clock only
enters through :func:`write_chrome_trace`'s top-level metadata stamp,
which comparisons strip.
"""

from __future__ import annotations

import json
import time
from typing import IO

from repro.obs.events import CounterEvent, Event, SpanEvent

__all__ = [
    "ChromeTraceBuilder",
    "CountingSink",
    "JsonlSink",
    "validate_chrome_trace",
    "write_chrome_trace",
]

#: Wall-clock metadata keys that determinism comparisons must ignore.
WALL_CLOCK_METADATA_KEYS = ("written_unix_s",)


def _event_to_record(event: Event) -> dict:
    """Flatten one bus event to a JSON-ready dict (JSONL line shape)."""
    record = {
        "kind": event.kind,
        "name": event.name,
        "category": event.category,
        "track": event.track,
        "tick": event.tick,
    }
    if isinstance(event, SpanEvent):
        record["duration"] = event.duration
    elif isinstance(event, CounterEvent):
        record["value"] = event.value
    if event.args:
        record["args"] = dict(event.args)
    return record


class CountingSink:
    """Totals by event kind and category - the cheapest useful sink."""

    def __init__(self) -> None:
        self.total = 0
        self.by_kind: dict = {}
        self.by_category: dict = {}

    def handle(self, event: Event) -> None:
        self.total += 1
        self.by_kind[event.kind] = self.by_kind.get(event.kind, 0) + 1
        self.by_category[event.category] = (
            self.by_category.get(event.category, 0) + 1
        )

    def summary(self) -> dict:
        """JSON-ready rollup (sorted keys for stable artifacts)."""
        return {
            "events": self.total,
            "by_kind": dict(sorted(self.by_kind.items())),
            "by_category": dict(sorted(self.by_category.items())),
        }


class JsonlSink:
    """Buffer events as JSON lines; write on flush/close.

    ``stream`` may be a path (opened lazily on first flush) or an
    already-open text file object.  Lines are ``sort_keys`` JSON so
    the stream is byte-deterministic for identical runs.
    """

    def __init__(self, stream) -> None:
        self._path = None
        self._file: IO | None = None
        if hasattr(stream, "write"):
            self._file = stream
        else:
            self._path = stream
        self.buffer: list = []

    def handle(self, event: Event) -> None:
        self.buffer.append(_event_to_record(event))

    def flush(self) -> None:
        """Write and clear the buffered events."""
        if not self.buffer:
            return
        if self._file is None:
            self._file = open(self._path, "a", encoding="utf-8")
        for record in self.buffer:
            self._file.write(json.dumps(record, sort_keys=True))
            self._file.write("\n")
        self._file.flush()
        self.buffer = []

    def close(self) -> None:
        self.flush()
        if self._file is not None and self._path is not None:
            self._file.close()
            self._file = None

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class ChromeTraceBuilder:
    """Render bus events as a Chrome-trace JSON timeline.

    Timestamps: Chrome traces are in microseconds.  With
    ``reference_mhz`` set, one reference tick is ``1/reference_mhz``
    µs, so the timeline reads in real time at the modelled reference
    clock; without it, one tick maps to one µs.  Events with
    ``tick=None`` (ledger totals, batch lifecycle) are placed at the
    latest timestamp seen so far in their process, keeping them
    visible without inventing a time base for them.

    Processes: call :meth:`process` to open a named process row
    (e.g. one per benchmarked workload); events emitted before any
    call land in a default ``"run"`` process.
    """

    def __init__(self, reference_mhz: float | None = None) -> None:
        self.reference_mhz = reference_mhz
        self._events: list = []
        #: process name -> pid, in first-open order (pid 1, 2, ...)
        self._pids: dict = {}
        #: (pid, track name) -> tid, in first-appearance order per pid
        self._tids: dict = {}
        self._pid = self._ensure_pid("run")
        self._last_ts: dict = {self._pid: 0.0}

    # -- structure -----------------------------------------------------
    def _ensure_pid(self, name: str) -> int:
        pid = self._pids.get(name)
        if pid is None:
            pid = len(self._pids) + 1
            self._pids[name] = pid
        return pid

    def process(self, name: str) -> None:
        """Route subsequent events into the process row ``name``."""
        self._pid = self._ensure_pid(name)
        self._last_ts.setdefault(self._pid, 0.0)

    def _tid(self, track: str) -> int:
        key = (self._pid, track)
        tid = self._tids.get(key)
        if tid is None:
            tid = sum(1 for p, _ in self._tids if p == self._pid) + 1
            self._tids[key] = tid
        return tid

    def _ts(self, tick: int | None) -> float:
        if tick is None:
            return self._last_ts[self._pid]
        ts = (
            tick / self.reference_mhz if self.reference_mhz
            else float(tick)
        )
        if ts > self._last_ts[self._pid]:
            self._last_ts[self._pid] = ts
        return ts

    # -- sink ----------------------------------------------------------
    def handle(self, event: Event) -> None:
        pid = self._pid
        tid = self._tid(event.track)
        ts = self._ts(event.tick)
        if isinstance(event, SpanEvent):
            duration = (
                event.duration / self.reference_mhz
                if self.reference_mhz else float(event.duration)
            )
            end = ts + duration
            if end > self._last_ts[pid]:
                self._last_ts[pid] = end
            entry = {
                "ph": "X", "name": event.name, "cat": event.category,
                "pid": pid, "tid": tid, "ts": ts, "dur": duration,
            }
        elif isinstance(event, CounterEvent):
            entry = {
                "ph": "C", "name": event.name, "cat": event.category,
                "pid": pid, "tid": tid, "ts": ts,
                "args": {"value": event.value},
            }
        else:
            entry = {
                "ph": "i", "name": event.name, "cat": event.category,
                "pid": pid, "tid": tid, "ts": ts, "s": "t",
            }
        if event.args and not isinstance(event, CounterEvent):
            entry["args"] = dict(event.args)
        self._events.append(entry)

    # -- export --------------------------------------------------------
    def _metadata_events(self) -> list:
        out = []
        for name, pid in self._pids.items():
            out.append({
                "ph": "M", "name": "process_name", "pid": pid,
                "tid": 0, "ts": 0,
                "args": {"name": name},
            })
        for (pid, track), tid in self._tids.items():
            out.append({
                "ph": "M", "name": "thread_name", "pid": pid,
                "tid": tid, "ts": 0,
                "args": {"name": track},
            })
        return out

    def to_chrome(self) -> dict:
        """The full Chrome-trace payload (deterministic)."""
        return {
            "traceEvents": self._metadata_events() + list(self._events),
            "displayTimeUnit": "ms",
            "metadata": {
                "tool": "repro.obs",
                "reference_mhz": self.reference_mhz,
                "processes": len(self._pids),
                "tracks": len(self._tids),
                "events": len(self._events),
            },
        }


def validate_chrome_trace(payload) -> list:
    """Structural problems with a Chrome-trace payload (empty = valid).

    Checks the shape ``chrome://tracing`` / Perfetto actually require:
    a ``traceEvents`` list whose entries carry a phase, a name, and -
    for timed phases - numeric pid/tid/ts (plus non-negative ``dur``
    for complete events).
    """
    problems = []
    if not isinstance(payload, dict):
        return [f"payload is {type(payload).__name__}, expected dict"]
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["missing traceEvents list"]
    if not events:
        problems.append("traceEvents is empty")
    for index, entry in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(entry, dict):
            problems.append(f"{where}: not an object")
            continue
        phase = entry.get("ph")
        if phase not in ("X", "i", "C", "M", "B", "E"):
            problems.append(f"{where}: unknown phase {phase!r}")
            continue
        if not isinstance(entry.get("name"), str):
            problems.append(f"{where}: missing name")
        for field in ("pid", "tid"):
            if not isinstance(entry.get(field), int):
                problems.append(f"{where}: non-integer {field}")
        if phase != "M":
            if not isinstance(entry.get("ts"), (int, float)):
                problems.append(f"{where}: non-numeric ts")
        if phase == "X":
            duration = entry.get("dur")
            if not isinstance(duration, (int, float)):
                problems.append(f"{where}: complete event missing dur")
            elif duration < 0:
                problems.append(f"{where}: negative dur {duration}")
    return problems


def write_chrome_trace(path, trace) -> dict:
    """Validate and write a trace; returns the written payload.

    ``trace`` is a :class:`ChromeTraceBuilder` or an already-built
    payload dict.  Raises ``ValueError`` listing every structural
    problem rather than writing a file viewers reject.  The payload
    gains one wall-clock stamp in ``metadata`` (see
    :data:`WALL_CLOCK_METADATA_KEYS`); everything else is
    deterministic.
    """
    payload = (
        trace.to_chrome() if isinstance(trace, ChromeTraceBuilder)
        else trace
    )
    problems = validate_chrome_trace(payload)
    if problems:
        raise ValueError(
            "refusing to write invalid Chrome trace:\n  "
            + "\n  ".join(problems)
        )
    payload.setdefault("metadata", {})["written_unix_s"] = round(
        time.time(), 3
    )
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return payload
