"""Typed metrics: counters, gauges, histograms in one registry.

The registry is the structured successor to the compiled engine's
hand-rolled ``_profile`` dict: instruments are created by name,
read/written through typed objects, and snapshot as one plain dict
suitable for JSON artifacts.

Hot-path design: an instrument does not own its value - it reads and
writes a slot in the registry's backing ``store`` dict.  A registry
can therefore *adopt* an existing dict
(:meth:`MetricsRegistry.adopt`), which is how the compiled engine
keeps its inner loops on raw ``dict[key] += n`` operations (the
fastest increment CPython has) while the same numbers are readable
through the typed instrument API and land in
:meth:`MetricsRegistry.snapshot`.  ``profile_snapshot()`` on the
engine remains as the compatibility view of the same store, so the
``BENCH_engine.json`` schema and the CI counter checks keep working
unchanged.
"""

from __future__ import annotations

from bisect import bisect_left

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


class Counter:
    """A monotonically increasing count backed by a registry slot."""

    __slots__ = ("name", "_store")

    def __init__(self, name: str, store: dict) -> None:
        self.name = name
        self._store = store
        store.setdefault(name, 0)

    def inc(self, amount: int | float = 1) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError(
                f"counter {self.name!r}: negative increment {amount}"
            )
        self._store[self.name] += amount

    @property
    def value(self) -> int | float:
        return self._store[self.name]


class Gauge:
    """A point-in-time value backed by a registry slot."""

    __slots__ = ("name", "_store")

    def __init__(self, name: str, store: dict) -> None:
        self.name = name
        self._store = store
        store.setdefault(name, 0.0)

    def set(self, value: float) -> None:
        self._store[self.name] = value

    def add(self, delta: float) -> None:
        """Accumulate into the gauge (phase-timing style usage)."""
        self._store[self.name] += delta

    @property
    def value(self) -> float:
        return self._store[self.name]


class Histogram:
    """Fixed-bucket distribution with count/sum/min/max.

    ``buckets`` are the inclusive upper bounds of each bin; values
    above the last bound land in the implicit overflow bin.  The
    histogram keeps its own state object in the registry store so a
    snapshot renders it as a plain dict.
    """

    __slots__ = ("name", "bounds", "counts", "count", "total",
                 "min", "max")

    DEFAULT_BOUNDS = (1, 10, 100, 1_000, 10_000, 100_000)

    def __init__(self, name: str, bounds=None) -> None:
        self.name = name
        self.bounds = tuple(
            sorted(bounds if bounds is not None
                   else self.DEFAULT_BOUNDS)
        )
        if not self.bounds:
            raise ValueError(
                f"histogram {name!r}: needs at least one bucket bound"
            )
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None

    def observe(self, value: float) -> None:
        """Record one sample."""
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        """JSON-ready rendering (bucket bounds paired with counts)."""
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "buckets": {
                f"<={bound}": count
                for bound, count in zip(self.bounds, self.counts)
            } | {f">{self.bounds[-1]}": self.counts[-1]},
        }


class MetricsRegistry:
    """Create-or-get instruments by name; snapshot as one dict.

    A name is permanently bound to its first instrument kind -
    re-requesting it with a different kind raises, which catches the
    classic silent aliasing bug where a counter and a gauge fight
    over one slot.
    """

    def __init__(
        self, namespace: str = "", store: dict | None = None
    ) -> None:
        self.namespace = namespace
        #: the backing value dict - possibly adopted, see
        #: :meth:`adopt`; histograms store their state object here.
        self.store = store if store is not None else {}
        self._kinds: dict = {}

    @classmethod
    def adopt(cls, store: dict, namespace: str = "") -> "MetricsRegistry":
        """A registry whose instruments read/write ``store`` in place.

        The adopter's hot loops may keep mutating the dict directly;
        instruments and snapshots see every update because there is
        only one storage location.
        """
        return cls(namespace=namespace, store=store)

    def _register(self, name: str, kind: str):
        seen = self._kinds.get(name)
        if seen is None:
            self._kinds[name] = kind
        elif seen != kind:
            raise ValueError(
                f"metric {name!r} already registered as {seen}, "
                f"requested {kind}"
            )

    def counter(self, name: str) -> Counter:
        self._register(name, "counter")
        return Counter(name, self.store)

    def gauge(self, name: str) -> Gauge:
        self._register(name, "gauge")
        return Gauge(name, self.store)

    def histogram(self, name: str, bounds=None) -> Histogram:
        self._register(name, "histogram")
        histogram = self.store.get(name)
        if not isinstance(histogram, Histogram):
            histogram = Histogram(name, bounds=bounds)
            self.store[name] = histogram
        return histogram

    def kind(self, name: str) -> str | None:
        """The registered instrument kind of ``name`` (None if free)."""
        return self._kinds.get(name)

    def snapshot(self) -> dict:
        """One JSON-ready dict over every slot in the store.

        Adopted stores may hold keys never registered through the
        typed API (the engine's raw-dict fast path); they are
        included verbatim - the registry is a view, not a gatekeeper.
        """
        out = {}
        for name, value in self.store.items():
            out[name] = (
                value.to_dict() if isinstance(value, Histogram)
                else value
            )
        return out

    def __len__(self) -> int:
        return len(self.store)
