"""The structured event bus every layer emits into.

Three typed event shapes cover the whole telemetry surface:

:class:`SpanEvent`
    Something with extent on the reference-tick timeline - an engine
    striding window, an epoch, a PLL-relock gate, the post-halt bus
    drain.

:class:`InstantEvent`
    A point occurrence - a governor decision, a retune commit, a
    lockstep round replay, a column halt, a batch job completing, a
    ledger wake charge.

:class:`CounterEvent`
    A sampled value on a track - a column's divider rung, cumulative
    issued instructions, buffer occupancy, accumulated energy.

Every event carries a ``category`` (which layer emitted it:
``engine`` / ``control`` / ``power`` / ``batch``) and a ``track``
(which timeline row it belongs on: ``column<i>`` for per-clock-domain
rows, or a layer row like ``engine``, ``governor``, ``jobs``).  The
``tick`` is the reference-tick time base shared by both simulation
engines; events from layers without a tick (the energy ledger, the
batch scheduler) carry ``tick=None`` and are placed by the exporter.

The emission contract is the hot-path design constraint: when no sink
is subscribed, :attr:`EventBus.active` is ``False`` and every
instrumentation site reduces to one attribute check.  Subscribing a
sink never changes simulation behaviour - sinks observe, they do not
steer - so a fully subscribed run produces bit-identical
:class:`~repro.sim.stats.SimulationStats` to a silent one.

Sinks are objects with a ``handle(event)`` method (a bare callable
works too).  A sink that raises propagates: telemetry consumers are
part of the run's correctness envelope, and swallowing their errors
would hide broken exporters.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Mapping

__all__ = [
    "BUS",
    "CounterEvent",
    "Event",
    "EventBus",
    "InstantEvent",
    "SpanEvent",
    "subscribed",
]


@dataclass(frozen=True)
class Event:
    """Common shape: what happened, which layer, which timeline row."""

    name: str
    category: str
    track: str
    tick: int | None
    args: Mapping = field(default_factory=dict)

    #: Discriminator the exporters and sinks dispatch on; each
    #: concrete event class pins its own value.
    kind = "event"


@dataclass(frozen=True)
class SpanEvent(Event):
    """An extent on the reference-tick timeline.

    ``tick`` is the span's start; ``duration`` its length in
    reference ticks (never negative; zero-length spans are legal and
    render as instants in most viewers).
    """

    duration: int = 0
    kind = "span"

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValueError(
                f"span {self.name!r}: negative duration "
                f"{self.duration}"
            )


@dataclass(frozen=True)
class InstantEvent(Event):
    """A point occurrence on the timeline."""

    kind = "instant"


@dataclass(frozen=True)
class CounterEvent(Event):
    """A sampled value on a track at one point in time."""

    value: float = 0.0
    kind = "counter"


class EventBus:
    """Subscriber fan-out with a one-attribute-check inactive path.

    ``active`` is the public fast-path flag: instrumentation sites
    guard every emission with ``if BUS.active:`` so an untraced run
    pays exactly one attribute read per site visit.  It is kept in
    lockstep with the subscriber tuple by :meth:`subscribe` /
    :meth:`unsubscribe` and must not be written directly.
    """

    __slots__ = ("active", "_sinks", "_handlers")

    def __init__(self) -> None:
        self.active = False
        self._sinks: tuple = ()
        self._handlers: tuple = ()

    @property
    def sinks(self) -> tuple:
        """The subscribed sinks, in subscription order."""
        return self._sinks

    def subscribe(self, sink):
        """Attach a sink; returns it for with-statement chaining.

        ``sink`` either exposes ``handle(event)`` or is itself
        callable with one event argument.  Double-subscribing the
        same object is a no-op.
        """
        if sink in self._sinks:
            return sink
        handler = getattr(sink, "handle", None)
        if handler is None:
            if not callable(sink):
                raise TypeError(
                    f"sink {sink!r} has no handle() method and is "
                    f"not callable"
                )
            handler = sink
        self._sinks = self._sinks + (sink,)
        self._handlers = self._handlers + (handler,)
        self.active = True
        return sink

    def unsubscribe(self, sink) -> None:
        """Detach a sink; unknown sinks are ignored."""
        if sink not in self._sinks:
            return
        kept = [
            (s, h) for s, h in zip(self._sinks, self._handlers)
            if s is not sink and s != sink
        ]
        self._sinks = tuple(s for s, _ in kept)
        self._handlers = tuple(h for _, h in kept)
        self.active = bool(self._sinks)

    def emit(self, event: Event) -> None:
        """Deliver one already-built event to every sink."""
        for handler in self._handlers:
            handler(event)

    # ------------------------------------------------------------------
    # emission helpers - the vocabulary instrumentation sites speak.
    # Each allocates only when the bus is active; callers still guard
    # with ``if BUS.active:`` so the inactive path never gets here.
    # ------------------------------------------------------------------
    def span(
        self,
        name: str,
        start_tick: int,
        end_tick: int,
        *,
        category: str = "engine",
        track: str = "engine",
        args: Mapping | None = None,
    ) -> None:
        """Emit a span covering ``[start_tick, end_tick)``."""
        self.emit(SpanEvent(
            name=name, category=category, track=track,
            tick=start_tick, duration=end_tick - start_tick,
            args=args or {},
        ))

    def instant(
        self,
        name: str,
        *,
        tick: int | None = None,
        category: str = "engine",
        track: str = "engine",
        args: Mapping | None = None,
    ) -> None:
        """Emit a point event."""
        self.emit(InstantEvent(
            name=name, category=category, track=track, tick=tick,
            args=args or {},
        ))

    def counter(
        self,
        name: str,
        value: float,
        *,
        tick: int | None = None,
        category: str = "engine",
        track: str = "engine",
        args: Mapping | None = None,
    ) -> None:
        """Emit a sampled counter value."""
        self.emit(CounterEvent(
            name=name, category=category, track=track, tick=tick,
            value=value, args=args or {},
        ))


#: The process-wide bus every instrumented layer emits into.  A
#: single global keeps the inactive check to one attribute read with
#: no plumbing through constructor signatures; consumers subscribe
#: around the runs they care about (``with subscribed(sink): ...``).
#: Forked batch workers inherit a copy - events they emit go to their
#: copy of the sinks and die with the worker, which is why the
#: streaming sinks buffer instead of writing incrementally by
#: default.
BUS = EventBus()


@contextmanager
def subscribed(sink, bus: EventBus | None = None):
    """Subscribe ``sink`` for the duration of a with-block.

    Yields the sink; always unsubscribes, so a raising run cannot
    leak an active bus into later (supposedly untraced) runs.
    """
    target = bus if bus is not None else BUS
    target.subscribe(sink)
    try:
        yield sink
    finally:
        target.unsubscribe(sink)
