"""8-point DCT row pass in Q14 fixed point.

The MPEG-4 DCT component's inner loop: each tile transforms its own
8-sample vector with a MAC loop per output coefficient (64 MACs per
vector).  Coefficients are the orthonormal DCT-II basis scaled by
2^14; the oracle is the float transform within quantization error.
"""

from __future__ import annotations

import numpy as np

from repro.apps.mpeg4.dct import dct_matrix
from repro.isa.assembler import assemble
from repro.isa.registers import signed32
from repro.kernels.base import Kernel

COEFF_BASE = 0      # 64 words, row-major C * 2^14
INPUT_BASE = 128    # 8 words
OUTPUT_BASE = 160   # 8 words
Q_SHIFT = 14

_PROGRAM_TEXT = f"""
    movi p0, {COEFF_BASE}
    movi p2, {OUTPUT_BASE}
    loop 8
      movi p1, {INPUT_BASE}
      movi a0, 0
      loop 8
        ld r1, [p0++]
        ld r2, [p1++]
        mac a0, r1, r2
      endloop
      mov r3, a0
      asr r3, r3, {Q_SHIFT}
      st [p2++], r3
    endloop
    halt
"""


def build_dct_kernel(seed: int = 9) -> Kernel:
    """One 8-point DCT per tile over random pixel-valued vectors."""
    rng = np.random.default_rng(seed)
    basis = dct_matrix(8)
    q14 = np.round(basis * (1 << Q_SHIFT)).astype(np.int64)
    vectors = {
        tile: rng.integers(-128, 128, size=8) for tile in range(4)
    }
    memory_images = {
        tile: {
            COEFF_BASE: [int(c) for c in q14.ravel()],
            INPUT_BASE: [int(v) for v in vectors[tile]],
        }
        for tile in range(4)
    }

    def checker(chip, stats) -> None:
        for tile_index, tile in enumerate(chip.columns[0].tiles):
            measured = np.array([
                signed32(w)
                for w in tile.read_memory(OUTPUT_BASE, 8)
            ], dtype=np.float64)
            exact = basis @ vectors[tile_index]
            # Q14 coefficients over 8 taps: worst-case rounding error
            # well under 2 LSBs of the output.
            assert np.max(np.abs(measured - exact)) < 2.0, tile_index

    return Kernel(
        name="dct-8point-q14",
        program=assemble(_PROGRAM_TEXT, "dct"),
        samples=8,   # one 8-sample vector per tile
        checker=checker,
        memory_images=memory_images,
    )
