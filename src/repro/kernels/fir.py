"""Block FIR kernel: the CFIR/PFIR inner loop.

Each tile filters its own sample stream (the data-parallel split the
paper's 16-tile FIR columns use): coefficients live at address 0,
precomputed tap windows follow, and each output is one MAC loop.
"""

from __future__ import annotations

import numpy as np

from repro.isa.assembler import assemble
from repro.isa.registers import signed32
from repro.kernels.base import Kernel

COEFF_BASE = 0
WINDOW_BASE = 64
OUTPUT_BASE = 512


def _program(taps: int, windows: int):
    return assemble(f"""
        .equ taps, {taps}
        .equ windows, {windows}
        movi p1, {WINDOW_BASE}
        movi p2, {OUTPUT_BASE}
        loop windows
          movi p0, {COEFF_BASE}
          movi a0, 0
          loop taps
            ld r1, [p0++]
            ld r2, [p1++]
            mac a0, r1, r2
          endloop
          mov r3, a0
          st [p2++], r3
        endloop
        halt
    """, "fir")


def build_fir_kernel(
    taps: int = 8,
    windows: int = 6,
    seed: int = 0,
) -> Kernel:
    """FIR kernel with per-tile random data and an exact oracle."""
    rng = np.random.default_rng(seed)
    coefficients = rng.integers(-64, 64, size=taps)
    tile_windows = {
        tile: rng.integers(-128, 128, size=(windows, taps))
        for tile in range(4)
    }
    expected = {
        tile: [int(np.dot(coefficients, window))
               for window in tile_windows[tile]]
        for tile in range(4)
    }

    memory_images = {
        tile: {
            COEFF_BASE: [int(c) for c in coefficients],
            WINDOW_BASE: [int(v) for v in tile_windows[tile].ravel()],
        }
        for tile in range(4)
    }

    def checker(chip, stats) -> None:
        for tile_index, tile in enumerate(chip.columns[0].tiles):
            outputs = [
                signed32(word)
                for word in tile.read_memory(OUTPUT_BASE, windows)
            ]
            assert outputs == expected[tile_index], (
                f"tile {tile_index}: {outputs} != "
                f"{expected[tile_index]}"
            )

    return Kernel(
        name=f"fir-{taps}tap",
        program=_program(taps, windows),
        samples=windows,
        checker=checker,
        memory_images=memory_images,
    )
