"""CIC integrator chain across the whole column.

One integrator stage per tile: samples enter at the column's
horizontal port, hop tile-to-tile through the DOU's compiled chain
schedule (every hop concurrent on its own split - Section 2.3's
mesh-equivalent bandwidth), and the 4-stage integrated stream leaves
through the port.  This is the communication pattern behind the
Table 4 "CIC Integrator" component.
"""

from __future__ import annotations

import numpy as np

from repro.arch.dou_compiler import chain_schedule
from repro.isa.assembler import assemble
from repro.isa.registers import signed32
from repro.kernels.base import Kernel


def _program(samples: int):
    return assemble(f"""
        .equ samples, {samples}
        movi r2, 0           ; integrator state
        loop samples
          recv r1
          add r2, r2, r1
          send r2
        endloop
        halt
    """, "cic-chain")


def _pipeline_reference(signal: list, stages: int = 4) -> list:
    """What the primed lockstep pipeline emits.

    Each downstream tile starts with one zero token (the SDF initial
    token that lets all tiles RECV in the same SIMD cycle), so stage
    i's input stream is one sample behind stage i-1's output.
    """
    stream = list(signal)
    n = len(signal)
    for stage in range(stages):
        if stage > 0:
            stream = [0] + stream[:n - 1]
        total = 0
        integrated = []
        for value in stream:
            total += value
            integrated.append(total)
        stream = integrated
    return stream


def build_cic_chain_kernel(samples: int = 24, seed: int = 3) -> Kernel:
    """Four integrator stages chained through the segmented bus."""
    rng = np.random.default_rng(seed)
    signal = [int(v) for v in rng.integers(-500, 500, samples)]
    expected = _pipeline_reference(signal, stages=4)

    def checker(chip, stats) -> None:
        outputs = [signed32(w) for w in chip.drain_column(0)]
        assert outputs == expected, (
            f"chain output {outputs[:6]}... != {expected[:6]}..."
        )

    return Kernel(
        name="cic-integrator-chain",
        program=_program(samples),
        samples=samples,
        checker=checker,
        dou_program=chain_schedule(stages=4),
        input_words=signal,
        read_primes={1: [0], 2: [0], 3: [0]},
        max_ticks=50_000,
    )
