"""CIC integrator chain across the whole column.

One integrator stage per tile: samples enter at the column's
horizontal port, hop tile-to-tile through the DOU's compiled chain
schedule (every hop concurrent on its own split - Section 2.3's
mesh-equivalent bandwidth), and the 4-stage integrated stream leaves
through the port.  This is the communication pattern behind the
Table 4 "CIC Integrator" component.
"""

from __future__ import annotations

import numpy as np

from repro.arch.chip import PORT_POSITION
from repro.arch.dou_compiler import Transfer, chain_schedule, \
    compile_schedule
from repro.isa.assembler import assemble
from repro.isa.registers import signed32
from repro.kernels.base import Kernel


def _program(samples: int):
    return assemble(f"""
        .equ samples, {samples}
        movi r2, 0           ; integrator state
        loop samples
          recv r1
          add r2, r2, r1
          send r2
        endloop
        halt
    """, "cic-chain")


def _pipeline_reference(signal: list, stages: int = 4) -> list:
    """What the primed lockstep pipeline emits.

    Each downstream tile starts with one zero token (the SDF initial
    token that lets all tiles RECV in the same SIMD cycle), so stage
    i's input stream is one sample behind stage i-1's output.
    """
    stream = list(signal)
    n = len(signal)
    for stage in range(stages):
        if stage > 0:
            stream = [0] + stream[:n - 1]
        total = 0
        integrated = []
        for value in stream:
            total += value
            integrated.append(total)
        stream = integrated
    return stream


def _comb_program(samples: int, delay: int):
    return assemble(f"""
        .equ samples, {samples}
        tmask 0x1
        movi p0, 0           ; delay-line read pointer (x[n-D])
        movi p1, {delay}     ; delay-line write pointer (x[n])
        loop samples
          tmask 0x1
          recv r1            ; decimated sample from the port
          ld r2, [p0++]      ; x[n-D]
          st [p1++], r1
          sub r3, r1, r2     ; comb: y[n] = x[n] - x[n-D]
          send r3            ; scatter y to the FIR stand-ins
          tmask 0x6
          recv r4            ; tiles 1+2 take their copies...
          send r4            ; ...and redistribute toward the port
        endloop
        halt
    """, "cic-comb")


def _comb_reference(signal: list, delay: int) -> list:
    padded = [0] * delay + list(signal)
    return [x - padded[i] for i, x in enumerate(signal)]


def build_cic_comb_kernel(
    samples: int = 24, delay: int = 4, seed: int = 5
) -> Kernel:
    """The comb stage's gather/scatter (Table 4 "CIC Comb").

    The comb column *receives* the decimated stream through its port,
    differences it against a D-deep delay line, and *redistributes*
    every output to both FIR columns on its behalf - modelled here as
    tiles 1 and 2 each capturing the scattered comb output and
    forwarding their copy to the port.  Communication dominates
    compute (four bus words per sample against seven issued
    instructions), which is exactly why the paper's comb row is
    traffic-heavy despite its 40 MHz clock.
    """
    rng = np.random.default_rng(seed)
    signal = [int(v) for v in rng.integers(-500, 500, samples)]
    expected = _comb_reference(signal, delay)

    schedule = compile_schedule([
        [Transfer(src=PORT_POSITION, dsts=(0,))],     # sample in
        [Transfer(src=0, dsts=(1, 2))],               # scatter y
        [Transfer(src=1, dsts=(PORT_POSITION,)),      # gather both
         Transfer(src=2, dsts=(PORT_POSITION,))],     # copies out
    ], name="comb-gather-scatter")

    def checker(chip, stats) -> None:
        drained = [signed32(w) for w in chip.drain_column(0)]
        assert len(drained) == 2 * samples, (
            f"expected {2 * samples} redistributed words, "
            f"got {len(drained)}"
        )
        for index, value in enumerate(expected):
            pair = drained[2 * index:2 * index + 2]
            assert pair == [value, value], (
                f"sample {index}: redistributed {pair} != "
                f"comb output {value}"
            )

    return Kernel(
        name="cic-comb-scatter",
        program=_comb_program(samples, delay),
        samples=samples,
        checker=checker,
        dou_program=schedule,
        input_words=signal,
        memory_images={0: {0: [0] * delay}},
        max_ticks=50_000,
    )


def build_cic_chain_kernel(samples: int = 24, seed: int = 3) -> Kernel:
    """Four integrator stages chained through the segmented bus."""
    rng = np.random.default_rng(seed)
    signal = [int(v) for v in rng.integers(-500, 500, samples)]
    expected = _pipeline_reference(signal, stages=4)

    def checker(chip, stats) -> None:
        outputs = [signed32(w) for w in chip.drain_column(0)]
        assert outputs == expected, (
            f"chain output {outputs[:6]}... != {expected[:6]}..."
        )

    return Kernel(
        name="cic-integrator-chain",
        program=_program(samples),
        samples=samples,
        checker=checker,
        dou_program=chain_schedule(stages=4),
        input_words=signal,
        read_primes={1: [0], 2: [0], 3: [0]},
        max_ticks=50_000,
    )
