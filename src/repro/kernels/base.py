"""Kernel harness: bundle program + schedule + data + reference."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.arch.dou import DouProgram
from repro.isa.program import Program
from repro.sim.simulator import run_single_column
from repro.sim.stats import SimulationStats


@dataclass
class Kernel:
    """A runnable column kernel with its correctness oracle.

    ``checker`` receives the finished chip and statistics and raises
    ``AssertionError`` if the architectural state disagrees with the
    functional reference.  ``samples`` is the logical sample count the
    kernel processes, used for cycles-per-sample derivation.
    """

    name: str
    program: Program
    samples: int
    checker: Callable
    dou_program: DouProgram | None = None
    memory_images: dict = field(default_factory=dict)
    input_words: list = field(default_factory=list)
    read_primes: dict = field(default_factory=dict)
    strict: bool = False
    max_ticks: int = 200_000


@dataclass
class KernelRun:
    """A completed kernel execution."""

    kernel: Kernel
    chip: object
    stats: SimulationStats

    @property
    def cycles_per_sample(self) -> float:
        """Tile cycles per logical sample (Section 4.1 step 6)."""
        return self.stats.cycles_per_sample(0, self.kernel.samples)

    @property
    def issued(self) -> int:
        """Instructions issued by the column."""
        return self.stats.column(0).issued

    @property
    def bus_words_per_cycle(self) -> float:
        """Measured communication density (feeds CommProfile)."""
        return self.stats.column(0).bus_words_per_cycle

    def frequency_for_rate(self, sample_rate_msps: float) -> float:
        """Required clock for a target input rate (step 7)."""
        return self.stats.frequency_for_rate(
            0, self.kernel.samples, sample_rate_msps
        )


def run_kernel(kernel: Kernel, engine: str = "reference") -> KernelRun:
    """Execute a kernel to halt and verify it against its reference."""
    chip, stats = run_single_column(
        kernel.program,
        dou_program=kernel.dou_program,
        memory_images=kernel.memory_images,
        input_words=kernel.input_words,
        read_primes=kernel.read_primes,
        strict_schedules=kernel.strict,
        max_ticks=kernel.max_ticks,
        engine=engine,
    )
    run = KernelRun(kernel=kernel, chip=chip, stats=stats)
    kernel.checker(chip, stats)
    return run
