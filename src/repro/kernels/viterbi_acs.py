"""Viterbi ACS butterfly slice with pairwise metric exchange.

Each tile owns one path metric.  Every trellis step: broadcast your
metric to your butterfly partner (both directions of each pair move in
the same bus cycle on different splits), then add-compare-select:

    m_new = min(m_mine + b_stay, m_partner + b_cross)

This is the per-step communication that makes the ACS "the most
demanding communications requirements of any of the individual
algorithms" (Section 5.3) and the subject of Figure 8.
"""

from __future__ import annotations

import numpy as np

from repro.arch.dou_compiler import exchange_schedule
from repro.isa.assembler import assemble
from repro.kernels.base import Kernel

B_STAY_BASE = 0
B_CROSS_BASE = 64


def _program(steps: int):
    return assemble(f"""
        .equ steps, {steps}
        movi p0, {B_STAY_BASE}
        movi p1, {B_CROSS_BASE}
        tid r2               ; initial metric = tile id
        loop steps
          send r2
          recv r3            ; partner's metric
          ld r4, [p0++]
          ld r5, [p1++]
          add r4, r2, r4     ; stay path
          add r5, r3, r5     ; cross path
          min r2, r4, r5
        endloop
        mov r0, r2
        halt
    """, "viterbi-acs")


def _reference(steps: int, stay: dict, cross: dict) -> list:
    metrics = [0, 1, 2, 3]  # tid seeds
    partner = {0: 1, 1: 0, 2: 3, 3: 2}
    for step in range(steps):
        snapshot = list(metrics)
        for tile in range(4):
            metrics[tile] = min(
                snapshot[tile] + stay[tile][step],
                snapshot[partner[tile]] + cross[tile][step],
            )
    return metrics


def build_acs_kernel(steps: int = 16, seed: int = 5) -> Kernel:
    """ACS slice over random branch metrics, with an exact oracle."""
    rng = np.random.default_rng(seed)
    stay = {t: [int(v) for v in rng.integers(0, 16, steps)]
            for t in range(4)}
    cross = {t: [int(v) for v in rng.integers(0, 16, steps)]
             for t in range(4)}
    expected = _reference(steps, stay, cross)

    memory_images = {
        tile: {B_STAY_BASE: stay[tile], B_CROSS_BASE: cross[tile]}
        for tile in range(4)
    }

    def checker(chip, stats) -> None:
        final = [
            tile.regs.read_signed("R0")
            for tile in chip.columns[0].tiles
        ]
        assert final == expected, f"{final} != {expected}"

    return Kernel(
        name="viterbi-acs-butterfly",
        program=_program(steps),
        samples=steps,
        checker=checker,
        dou_program=exchange_schedule(),
        memory_images=memory_images,
        max_ticks=50_000,
    )
