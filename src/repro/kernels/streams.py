"""Streaming kernel variants for the measured-power pipeline.

The plain kernels in this package keep their data tile-local, which is
right for measuring compute cost but blind to the bus traffic their
Table 4 components generate: the DDC mixer's power row is dominated by
*shipping* mixed samples onward, not by computing them.  This module
adds streaming variants that move their results through the column's
DOU and port exactly the way the application mapping does, so
:mod:`repro.power.measured` can extract communication densities from
counted transfers instead of calibrated constants.
"""

from __future__ import annotations

import numpy as np

from repro.arch.chip import PORT_POSITION
from repro.arch.dou_compiler import Transfer, compile_schedule
from repro.isa.assembler import assemble
from repro.isa.registers import signed32
from repro.kernels.base import Kernel

A_BASE, B_BASE, C_BASE, D_BASE = 0, 32, 64, 96


def _program(samples: int):
    return assemble(f"""
        .equ samples, {samples}
        movi p0, {A_BASE}
        movi p1, {B_BASE}
        movi p2, {C_BASE}
        movi p3, {D_BASE}
        loop samples
          ld r1, [p0++]      ; a
          ld r2, [p1++]      ; b
          ld r3, [p2++]      ; c
          ld r4, [p3++]      ; d
          mul r5, r1, r3     ; ac
          mul r6, r2, r4     ; bd
          sub r5, r5, r6
          send r5            ; real -> port
          mul r5, r1, r4     ; ad
          mul r6, r2, r3     ; bc
          add r5, r5, r6
          send r5            ; imag -> port
        endloop
        halt
    """, "mixer-stream")


def build_mixer_stream_kernel(samples: int = 8, seed: int = 1) -> Kernel:
    """Mixer that streams every result word out through the port.

    Each tile mixes its own I/Q slice and SENDs real and imaginary
    parts; the DOU drains all four write buffers to the port each bus
    cycle on separate splits - the neighbour-to-port pattern whose
    measured words/cycle and span feed the DDC mixer's power row.
    """
    rng = np.random.default_rng(seed)
    streams = {
        tile: {
            "a": rng.integers(-1000, 1000, samples),
            "b": rng.integers(-1000, 1000, samples),
            "c": rng.integers(-1000, 1000, samples),
            "d": rng.integers(-1000, 1000, samples),
        }
        for tile in range(4)
    }
    memory_images = {
        tile: {
            A_BASE: [int(v) for v in data["a"]],
            B_BASE: [int(v) for v in data["b"]],
            C_BASE: [int(v) for v in data["c"]],
            D_BASE: [int(v) for v in data["d"]],
        }
        for tile, data in streams.items()
    }
    expected = []
    for data in streams.values():
        product = (data["a"] + 1j * data["b"]) * (data["c"] + 1j * data["d"])
        expected.extend(int(v) for v in product.real)
        expected.extend(int(v) for v in product.imag)

    to_port = compile_schedule(
        [[Transfer(src=tile, dsts=(PORT_POSITION,))
          for tile in range(4)]],
        name="mixer-to-port",
    )

    def checker(chip, stats) -> None:
        drained = [signed32(w) for w in chip.drain_column(0)]
        assert sorted(drained) == sorted(expected), (
            f"streamed {len(drained)} words, "
            f"expected {len(expected)}"
        )

    return Kernel(
        name="mixer-stream",
        program=_program(samples),
        samples=samples,
        checker=checker,
        dou_program=to_port,
        memory_images=memory_images,
        max_ticks=50_000,
    )
