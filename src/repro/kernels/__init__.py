"""Hand-written Synchroscalar assembly kernels (paper Section 4.5).

The paper compiles applications to assembly and hand-optimizes the
inner loops; these kernels are our equivalents, executed on the
cycle-level simulator to produce the cycles-per-sample and
communication measurements the Section 4.1 methodology consumes.

Each kernel bundles a column program, an (optionally compiled) DOU
schedule, tile memory images, and a correctness check against its
functional reference.
"""

from repro.kernels.base import Kernel, KernelRun, run_kernel
from repro.kernels.fir import build_fir_kernel
from repro.kernels.mixer import build_mixer_kernel
from repro.kernels.cic import build_cic_chain_kernel, \
    build_cic_comb_kernel
from repro.kernels.viterbi_acs import build_acs_kernel
from repro.kernels.dct import build_dct_kernel
from repro.kernels.streams import build_mixer_stream_kernel

__all__ = [
    "Kernel",
    "KernelRun",
    "run_kernel",
    "build_fir_kernel",
    "build_mixer_kernel",
    "build_cic_chain_kernel",
    "build_cic_comb_kernel",
    "build_acs_kernel",
    "build_dct_kernel",
    "build_mixer_stream_kernel",
]
