"""Complex mixer kernel: the DDC's first stage per-sample work.

Each tile multiplies its slice of the IF stream (a + jb) by the NCO's
local-oscillator samples (c + jd):

    real = a*c - b*d        imag = a*d + b*c

Everything is tile-local - the mixer's bus traffic in the Table 4
configuration comes from shipping results onward, not from computing
them.
"""

from __future__ import annotations

import numpy as np

from repro.isa.assembler import assemble
from repro.isa.registers import signed32
from repro.kernels.base import Kernel

A_BASE, B_BASE, C_BASE, D_BASE = 0, 32, 64, 96
REAL_BASE, IMAG_BASE = 128, 192


def _program(samples: int):
    return assemble(f"""
        .equ samples, {samples}
        movi p0, {A_BASE}
        movi p1, {B_BASE}
        movi p2, {C_BASE}
        movi p3, {D_BASE}
        movi p4, {REAL_BASE}
        movi p5, {IMAG_BASE}
        loop samples
          ld r1, [p0++]      ; a
          ld r2, [p1++]      ; b
          ld r3, [p2++]      ; c
          ld r4, [p3++]      ; d
          mul r5, r1, r3     ; ac
          mul r6, r2, r4     ; bd
          sub r5, r5, r6
          st [p4++], r5      ; real
          mul r5, r1, r4     ; ad
          mul r6, r2, r3     ; bc
          add r5, r5, r6
          st [p5++], r5      ; imag
        endloop
        halt
    """, "mixer")


def build_mixer_kernel(samples: int = 8, seed: int = 1) -> Kernel:
    """Mixer kernel over random fixed-point I/Q data."""
    rng = np.random.default_rng(seed)
    streams = {
        tile: {
            "a": rng.integers(-1000, 1000, samples),
            "b": rng.integers(-1000, 1000, samples),
            "c": rng.integers(-1000, 1000, samples),
            "d": rng.integers(-1000, 1000, samples),
        }
        for tile in range(4)
    }
    memory_images = {
        tile: {
            A_BASE: [int(v) for v in data["a"]],
            B_BASE: [int(v) for v in data["b"]],
            C_BASE: [int(v) for v in data["c"]],
            D_BASE: [int(v) for v in data["d"]],
        }
        for tile, data in streams.items()
    }

    def checker(chip, stats) -> None:
        for tile_index, tile in enumerate(chip.columns[0].tiles):
            data = streams[tile_index]
            complex_in = data["a"] + 1j * data["b"]
            local_osc = data["c"] + 1j * data["d"]
            product = complex_in * local_osc
            real = [signed32(w)
                    for w in tile.read_memory(REAL_BASE, samples)]
            imag = [signed32(w)
                    for w in tile.read_memory(IMAG_BASE, samples)]
            assert real == [int(v) for v in product.real], tile_index
            assert imag == [int(v) for v in product.imag], tile_index

    return Kernel(
        name="complex-mixer",
        program=_program(samples),
        samples=samples,
        checker=checker,
        memory_images=memory_images,
    )
