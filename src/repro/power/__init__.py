"""Power methodology (paper Section 4.1) - the evaluation core.

Implements the three-term model

    P_total = P_tile + P_interconnect + P_leakage

with per-column frequency/voltage domains, the U normalized-power
parameter derivation (Section 4.2), switched-capacitance bus power
(Section 4.3), and single- versus multiple-voltage comparisons
(Section 5.1, Table 4, Figure 6).
"""

from repro.power.interconnect import CommProfile
from repro.power.measured import (
    ActivityProfile,
    DomainEnergy,
    EnergyLedger,
    activity_from_stats,
    comm_profile_from_activity,
    spec_from_activity,
)
from repro.power.model import (
    ApplicationPower,
    ComponentPower,
    ComponentSpec,
    PowerModel,
)
from repro.power.tile_power import (
    UParameterDerivation,
    u_reference_mw_per_mhz,
)
from repro.power.report import format_application_power, format_component_rows

__all__ = [
    "ActivityProfile",
    "CommProfile",
    "ComponentSpec",
    "ComponentPower",
    "ApplicationPower",
    "DomainEnergy",
    "EnergyLedger",
    "PowerModel",
    "activity_from_stats",
    "comm_profile_from_activity",
    "spec_from_activity",
    "UParameterDerivation",
    "u_reference_mw_per_mhz",
    "format_application_power",
    "format_component_rows",
]
