"""Measured-energy pipeline: simulation activity -> Section 4.1 inputs.

The analytical route hand-calibrates each Table 4 component's
:class:`~repro.power.interconnect.CommProfile`; this module closes the
sim->power gap by deriving the same quantities from a cycle-level run:

* :class:`ActivityProfile` - one clock domain's measured activity
  (bus words per cycle from counted transfers, utilization from
  issue/idle fractions, span from actual segment usage);
* :func:`comm_profile_from_activity` / :func:`spec_from_activity` -
  adapters producing the :class:`~repro.power.model.ComponentSpec` and
  :class:`~repro.power.interconnect.CommProfile` the
  :class:`~repro.power.model.PowerModel` evaluates;
* :class:`EnergyLedger` - per-domain dynamic + interconnect + leakage
  energy accumulated over simulated time, with the dynamic term split
  between busy cycles and idle (clock-toggling) intervals so the sum
  over domains exactly equals application power x simulated time.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Mapping, Sequence

from repro.errors import ConfigurationError
from repro.obs.events import BUS
from repro.power.interconnect import CommProfile
from repro.power.model import ApplicationPower, ComponentPower, ComponentSpec
from repro.sim.stats import SimulationStats

__all__ = [
    "ActivityProfile",
    "DomainEnergy",
    "EnergyLedger",
    "TransitionEnergy",
    "activity_from_stats",
    "comm_profile_from_activity",
    "spec_from_activity",
]


@dataclass(frozen=True)
class ActivityProfile:
    """Measured activity of one clock domain (a group of columns).

    All rates are per *tile* (domain) clock cycle, matching the units
    Section 4.1's interconnect term consumes.  ``span_fraction`` is
    the mean fraction of the bus length charged per retired word,
    recorded transfer by transfer from the segmented-bus switch state.
    """

    name: str
    n_tiles: int
    frequency_mhz: float
    tile_cycles: int
    issued: int
    bus_words: int
    words_per_cycle: float
    span_fraction: float
    busy_fraction: float
    idle_fraction: float

    def __post_init__(self) -> None:
        if self.n_tiles <= 0:
            raise ConfigurationError(
                f"{self.name}: n_tiles must be positive"
            )
        if self.tile_cycles < 0:
            raise ConfigurationError(
                f"{self.name}: tile_cycles must be non-negative"
            )

    @property
    def time_us(self) -> float:
        """Simulated duration of the domain's run (microseconds)."""
        if self.frequency_mhz <= 0:
            return 0.0
        return self.tile_cycles / self.frequency_mhz

    def scaled_to(self, n_tiles: int) -> "ActivityProfile":
        """The same activity replicated onto ``n_tiles`` tiles.

        A Table 4 component spreads one column's measured schedule
        over several identical columns; traffic aggregates linearly
        with the column count (each column drives its own vertical
        bus) while per-cycle utilization and span are intensive.
        """
        if n_tiles <= 0:
            raise ConfigurationError("n_tiles must be positive")
        factor = n_tiles / self.n_tiles
        return replace(
            self,
            n_tiles=n_tiles,
            bus_words=round(self.bus_words * factor),
            words_per_cycle=self.words_per_cycle * factor,
        )


def activity_from_stats(
    stats: SimulationStats,
    columns: Sequence[int] | None = None,
    name: str = "domain",
) -> ActivityProfile:
    """Extract one clock domain's activity from a simulated run.

    ``columns`` selects the domain's columns (default: all); they must
    share one divided clock.  Bus words aggregate across the domain's
    vertical buses, utilization and idle fractions are issue-weighted
    across its columns, and the span fraction is the word-weighted
    mean of the per-transfer spans the DOUs recorded.
    """
    indices = list(range(len(stats.columns))) if columns is None \
        else list(columns)
    if not indices:
        raise ConfigurationError("a domain needs at least one column")
    selected = [stats.columns[index] for index in indices]
    frequencies = {column.frequency_mhz for column in selected}
    if len(frequencies) != 1:
        raise ConfigurationError(
            f"{name}: columns {indices} span several clocks "
            f"{sorted(frequencies)} - not one domain"
        )
    cycles = max(column.tile_cycles for column in selected)
    total_cycles = sum(column.tile_cycles for column in selected)
    issued = sum(column.issued for column in selected)
    bus_words = sum(column.bus_words for column in selected)
    span_words = sum(column.bus_span_words for column in selected)
    busy = issued / total_cycles if total_cycles else 0.0
    idle = sum(
        column.bubbles + column.comm_stalls for column in selected
    ) / total_cycles if total_cycles else 0.0
    return ActivityProfile(
        name=name,
        n_tiles=sum(column.n_tiles for column in selected),
        frequency_mhz=selected[0].frequency_mhz,
        tile_cycles=cycles,
        issued=issued,
        bus_words=bus_words,
        words_per_cycle=bus_words / cycles if cycles else 0.0,
        span_fraction=(
            min(1.0, span_words / bus_words) if bus_words else 1.0
        ),
        busy_fraction=busy,
        idle_fraction=idle,
    )


def comm_profile_from_activity(
    activity: ActivityProfile,
    n_tiles: int | None = None,
    switching_activity: float = 0.5,
) -> CommProfile:
    """A measured :class:`CommProfile`, optionally rescaled in tiles."""
    scaled = activity if n_tiles is None else activity.scaled_to(n_tiles)
    return CommProfile(
        words_per_cycle=scaled.words_per_cycle,
        switching_activity=switching_activity,
    ).scaled(1.0, span_fraction=scaled.span_fraction)


def spec_from_activity(
    activity: ActivityProfile,
    name: str | None = None,
    n_tiles: int | None = None,
    frequency_mhz: float | None = None,
    switching_activity: float = 0.5,
) -> ComponentSpec:
    """A :class:`ComponentSpec` whose communication is measured.

    ``n_tiles`` and ``frequency_mhz`` default to the measured run's
    shape; pass the Table 4 operating point to evaluate the measured
    activity *density* at the paper's mapping (words per cycle is a
    per-cycle ratio, so it carries across clock rates unchanged).
    """
    return ComponentSpec(
        name=name or activity.name,
        n_tiles=n_tiles or activity.n_tiles,
        frequency_mhz=frequency_mhz or activity.frequency_mhz,
        comm=comm_profile_from_activity(
            activity, n_tiles=n_tiles,
            switching_activity=switching_activity,
        ),
    )


@dataclass(frozen=True)
class DomainEnergy:
    """Energy of one frequency/voltage domain over a time window.

    Units are nanojoules (mW x us).  The dynamic term is split between
    busy cycles (``active_nj``) and idle cycles where the clock still
    toggles (``idle_nj``); ``gated_total_nj`` shows what per-domain
    clock gating of the idle share would leave.
    """

    name: str
    n_tiles: int
    frequency_mhz: float
    voltage_v: float
    time_us: float
    busy_fraction: float
    active_nj: float
    idle_nj: float
    bus_nj: float
    leakage_nj: float
    #: True when the domain's supply rail was power-gated for the
    #: whole window: dynamic and interconnect terms are zero and only
    #: the retention share of leakage accrues (see
    #: :meth:`EnergyLedger.charge_gated`).
    gated: bool = False

    @property
    def dynamic_nj(self) -> float:
        """Tile dynamic energy, busy and idle cycles together."""
        return self.active_nj + self.idle_nj

    @property
    def total_nj(self) -> float:
        """Dynamic + interconnect + leakage energy."""
        return self.active_nj + self.idle_nj + self.bus_nj \
            + self.leakage_nj

    @property
    def gated_total_nj(self) -> float:
        """Total if idle cycles were clock-gated (savings bound)."""
        return self.total_nj - self.idle_nj

    @property
    def average_mw(self) -> float:
        """Mean power over the window."""
        if self.time_us <= 0:
            return 0.0
        return self.total_nj / self.time_us


@dataclass(frozen=True)
class TransitionEnergy:
    """One DVFS transition's energy charge (rail move, relock).

    Kept deliberately generic - the control layer supplies the label -
    so the power layer stays free of control-package imports.
    """

    name: str
    energy_nj: float

    def __post_init__(self) -> None:
        if self.energy_nj < 0:
            raise ConfigurationError(
                f"{self.name}: transition energy must be non-negative"
            )


class EnergyLedger:
    """Accumulates per-domain energy over simulated time.

    Conservation is exact by construction: each charge splits a
    :class:`ComponentPower`'s terms over the window, so the ledger's
    total equals the application power times the simulated time -
    plus any explicitly charged DVFS transition energy - to float
    tolerance; the invariant the acceptance tests assert.  Under a
    time-varying clock the ledger is charged once per (epoch, domain)
    window at that epoch's frequency and rail, so the same invariant
    holds epoch by epoch.
    """

    def __init__(self) -> None:
        self._domains: list = []
        self._transitions: list = []

    @property
    def domains(self) -> tuple:
        """Every charged :class:`DomainEnergy`, in charge order."""
        return tuple(self._domains)

    @property
    def transitions(self) -> tuple:
        """Every charged :class:`TransitionEnergy`, in charge order."""
        return tuple(self._transitions)

    def domain(self, name: str) -> DomainEnergy:
        """Look one domain up by name."""
        for entry in self._domains:
            if entry.name == name:
                return entry
        raise KeyError(name)

    def charge(
        self,
        power: ComponentPower,
        time_us: float,
        busy_fraction: float = 1.0,
    ) -> DomainEnergy:
        """Charge one domain for ``time_us`` of simulated time.

        ``busy_fraction`` attributes the dynamic term between busy and
        idle cycles; leakage and interconnect accrue over the whole
        window regardless (tiles leak while clock-gated, and the bus
        term already averages over idle cycles via words-per-cycle).
        """
        if time_us < 0:
            raise ConfigurationError("time_us must be non-negative")
        busy = min(1.0, max(0.0, busy_fraction))
        dynamic_nj = power.dynamic_mw * time_us
        entry = DomainEnergy(
            name=power.name,
            n_tiles=power.n_tiles,
            frequency_mhz=power.frequency_mhz,
            voltage_v=power.voltage_v,
            time_us=time_us,
            busy_fraction=busy,
            active_nj=dynamic_nj * busy,
            idle_nj=dynamic_nj * (1.0 - busy),
            bus_nj=power.bus_mw * time_us,
            leakage_nj=power.leakage_mw * time_us,
        )
        self._domains.append(entry)
        if BUS.active:
            BUS.instant(
                "charge", category="power", track="ledger",
                args={
                    "domain": entry.name,
                    "time_us": time_us,
                    "busy_fraction": busy,
                    "energy_nj": entry.total_nj,
                },
            )
        return entry

    def charge_gated(
        self,
        power: ComponentPower,
        time_us: float,
        retained_leakage_fraction: float = 0.05,
    ) -> DomainEnergy:
        """Charge one domain for ``time_us`` on a power-gated rail.

        Models Section 2.2's per-column supply gating applied at run
        time: with the rail disconnected the domain's dynamic and
        interconnect terms are exactly zero, and leakage drops to the
        ``retained_leakage_fraction`` share drawn by the retention
        circuitry (state-holding latches and the gating header itself).
        Units match :meth:`charge`: mW x us = nJ.  The caller prices
        re-connecting the rail separately through
        :meth:`charge_transition` (see
        :meth:`repro.control.transitions.TransitionModel.wake_energy_nj`),
        so conservation stays exact: the ledger total still equals the
        sum of charged power x time plus explicit transition charges.
        """
        if time_us < 0:
            raise ConfigurationError("time_us must be non-negative")
        if not 0.0 <= retained_leakage_fraction <= 1.0:
            raise ConfigurationError(
                "retained_leakage_fraction must be within [0, 1]"
            )
        entry = DomainEnergy(
            name=power.name,
            n_tiles=power.n_tiles,
            frequency_mhz=power.frequency_mhz,
            voltage_v=power.voltage_v,
            time_us=time_us,
            busy_fraction=0.0,
            active_nj=0.0,
            idle_nj=0.0,
            bus_nj=0.0,
            leakage_nj=power.leakage_mw * time_us
            * retained_leakage_fraction,
            gated=True,
        )
        self._domains.append(entry)
        if BUS.active:
            BUS.instant(
                "charge_gated", category="power", track="ledger",
                args={
                    "domain": entry.name,
                    "time_us": time_us,
                    "retained_leakage_fraction":
                        retained_leakage_fraction,
                    "energy_nj": entry.total_nj,
                },
            )
        return entry

    @classmethod
    def from_application(
        cls,
        application: ApplicationPower,
        time_us: float,
        activities: Mapping[str, ActivityProfile] | None = None,
    ) -> "EnergyLedger":
        """Charge every component of an application over one window.

        ``activities`` supplies measured busy fractions by component
        name; components without one are charged fully busy (the
        analytical Table 4 assumption).
        """
        ledger = cls()
        activities = activities or {}
        for component in application.components:
            activity = activities.get(component.name)
            busy = activity.busy_fraction if activity is not None else 1.0
            ledger.charge(component, time_us, busy_fraction=busy)
        return ledger

    def charge_transition(
        self, name: str, energy_nj: float
    ) -> TransitionEnergy:
        """Charge one DVFS transition (rail charge/discharge).

        Rail *wake* charges (reconnecting a gated column) flow
        through here too - the transition name distinguishes them on
        the telemetry stream.
        """
        entry = TransitionEnergy(name=name, energy_nj=energy_nj)
        self._transitions.append(entry)
        if BUS.active:
            BUS.instant(
                "charge_transition", category="power", track="ledger",
                args={"transition": name, "energy_nj": energy_nj},
            )
        return entry

    @property
    def transition_nj(self) -> float:
        """Energy charged to DVFS transitions."""
        return sum(entry.energy_nj for entry in self._transitions)

    @property
    def total_nj(self) -> float:
        """Energy over every charged domain plus transitions."""
        return sum(entry.total_nj for entry in self._domains) \
            + self.transition_nj

    @property
    def idle_nj(self) -> float:
        """Dynamic energy attributed to idle (non-issuing) cycles."""
        return sum(entry.idle_nj for entry in self._domains)

    @property
    def gated_nj(self) -> float:
        """Retention energy accrued over power-gated windows."""
        return sum(
            entry.total_nj for entry in self._domains if entry.gated
        )

    @property
    def gated_time_us(self) -> float:
        """Simulated time spent with some domain's rail gated."""
        return sum(
            entry.time_us for entry in self._domains if entry.gated
        )

    def attach(self, stats: SimulationStats) -> SimulationStats:
        """A copy of ``stats`` carrying this per-domain breakdown."""
        return replace(stats, domain_energy=self.domains)


def _conservation_error(
    ledger: EnergyLedger, application: ApplicationPower, time_us: float
) -> float:
    """Relative error of ledger total vs power x time (+ transitions).

    Transition charges are added to the expected side because they
    are energy injected outside the power-model terms; a ledger with
    no transitions reduces to the original invariant.
    """
    expected = application.total_mw * time_us + ledger.transition_nj
    if expected == 0:
        return abs(ledger.total_nj)
    return abs(ledger.total_nj - expected) / expected


def verify_conservation(
    ledger: EnergyLedger,
    application: ApplicationPower,
    time_us: float,
    tolerance: float = 1e-9,
) -> float:
    """Assert energy conservation; returns the relative error."""
    error = _conservation_error(ledger, application, time_us)
    if error > tolerance:
        raise AssertionError(
            f"{application.name}: ledger energy {ledger.total_nj:.6g} nJ "
            f"!= power x time {application.total_mw * time_us:.6g} nJ "
            f"(relative error {error:.3g})"
        )
    return error
