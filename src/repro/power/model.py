"""The Section 4.1 power model: P = P_tile + P_interconnect + P_leakage.

Each mapped application component (one row of Table 4) occupies a group
of columns forming a frequency/voltage domain.  The model computes

    P_tile         = U * (V / V_ref)^2 * f * n
    P_interconnect = words/cycle * E_word(V) * f
    P_leakage      = I_leak * V * n

per component, where V is either the minimum rail supporting f
(multiple-voltage mode, the Synchroscalar design point) or the single
highest rail in the application (single-voltage mode, the baseline of
Table 4's right-hand columns and Figure 6's dark bars).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Sequence

from repro.errors import ConfigurationError
from repro.power.interconnect import CommProfile
from repro.tech.parameters import PAPER_TECHNOLOGY, TechnologyParameters
from repro.tech.vf_curve import VoltageFrequencyCurve
from repro.tech.wires import BusGeometry, WireModel


@dataclass(frozen=True)
class ComponentSpec:
    """One algorithmic block mapped onto a group of columns.

    ``voltage_v`` is normally left ``None`` and derived from the V-f
    curve; pass a value only to pin a rail (e.g. reproducing a paper
    row verbatim).
    """

    name: str
    n_tiles: int
    frequency_mhz: float
    comm: CommProfile = CommProfile()
    voltage_v: float | None = None

    def __post_init__(self) -> None:
        if self.n_tiles <= 0:
            raise ConfigurationError(f"{self.name}: n_tiles must be positive")
        if self.frequency_mhz <= 0:
            raise ConfigurationError(
                f"{self.name}: frequency must be positive"
            )


@dataclass(frozen=True)
class ComponentPower:
    """Power breakdown of one component at one operating point."""

    name: str
    n_tiles: int
    frequency_mhz: float
    voltage_v: float
    dynamic_mw: float
    bus_mw: float
    leakage_mw: float

    @property
    def total_mw(self) -> float:
        """Dynamic + interconnect + leakage power."""
        return self.dynamic_mw + self.bus_mw + self.leakage_mw

    @property
    def overhead_mw(self) -> float:
        """The non-compute share (interconnect + leakage, Figure 7)."""
        return self.bus_mw + self.leakage_mw


@dataclass(frozen=True)
class ApplicationPower:
    """Power of a full application mapping (one Table 4 section)."""

    name: str
    components: tuple

    @property
    def total_mw(self) -> float:
        """Sum of component totals (the Table 4 TOTAL row)."""
        return sum(c.total_mw for c in self.components)

    @property
    def n_tiles(self) -> int:
        """Total powered tiles across all components."""
        return sum(c.n_tiles for c in self.components)

    @property
    def compute_mw(self) -> float:
        """Dynamic tile power only (light bars of Figure 7)."""
        return sum(c.dynamic_mw for c in self.components)

    @property
    def overhead_mw(self) -> float:
        """Interconnect + leakage (dark bars of Figure 7)."""
        return sum(c.overhead_mw for c in self.components)

    @property
    def max_voltage(self) -> float:
        """Highest rail used - the single-voltage baseline supply."""
        return max(c.voltage_v for c in self.components)

    def component(self, name: str) -> ComponentPower:
        """Look up one component's breakdown by name."""
        for comp in self.components:
            if comp.name == name:
                return comp
        raise KeyError(name)


class PowerModel:
    """Evaluates the Section 4.1 equations for component groups."""

    def __init__(
        self,
        tech: TechnologyParameters = PAPER_TECHNOLOGY,
        curve: VoltageFrequencyCurve | None = None,
        u_mw_per_mhz: float | None = None,
        leakage_ma_per_tile: float | None = None,
        rails: Sequence[float] | None = None,
        bus_geometry: BusGeometry | None = None,
    ) -> None:
        self.tech = tech
        self.curve = curve or VoltageFrequencyCurve.from_technology(tech)
        self.u_mw_per_mhz = (
            tech.tile_power_mw_per_mhz if u_mw_per_mhz is None
            else u_mw_per_mhz
        )
        self.v_reference = tech.u_reference_voltage
        self.leakage_ma_per_tile = (
            tech.tile_leakage_ma if leakage_ma_per_tile is None
            else leakage_ma_per_tile
        )
        self.rails = tuple(rails) if rails is not None else tech.voltage_rails
        self.bus_geometry = bus_geometry or BusGeometry(
            width_bits=tech.bus_width_bits,
            n_splits=tech.bus_splits,
            length_mm=tech.bus_length_mm,
        )
        self._wires = WireModel(tech)
        # Exact-input memo for the name-independent terms of
        # component_power: epoch-by-epoch energy ledgers evaluate the
        # same few (tiles, frequency, comm) operating points hundreds
        # of times per run.
        self._component_memo: dict = {}

    def with_leakage(self, leakage_ma_per_tile: float) -> "PowerModel":
        """A copy of this model at a different leakage current."""
        return PowerModel(
            tech=self.tech,
            curve=self.curve,
            u_mw_per_mhz=self.u_mw_per_mhz,
            leakage_ma_per_tile=leakage_ma_per_tile,
            rails=self.rails,
            bus_geometry=self.bus_geometry,
        )

    # ------------------------------------------------------------------
    # primitive terms
    # ------------------------------------------------------------------
    def voltage_for(self, frequency_mhz: float) -> float:
        """Minimum rail supporting ``frequency_mhz`` (Sec 4.1 step 8)."""
        return self.curve.quantize_voltage(frequency_mhz, self.rails)

    def tile_dynamic_mw(
        self, n_tiles: int, frequency_mhz: float, voltage_v: float
    ) -> float:
        """P_tile for one domain: U * (V/V_ref)^2 * f * n."""
        ratio = voltage_v / self.v_reference
        return self.u_mw_per_mhz * ratio * ratio * frequency_mhz * n_tiles

    def bus_mw(
        self, comm: CommProfile, frequency_mhz: float, voltage_v: float
    ) -> float:
        """P_interconnect for one domain's communication pattern."""
        return self._wires.bus_power_mw(
            words_per_cycle=comm.words_per_cycle,
            frequency_mhz=frequency_mhz,
            voltage=voltage_v,
            span_fraction=comm.span_fraction,
            switching_activity=comm.switching_activity,
            geometry=self.bus_geometry,
        )

    def leakage_mw(self, n_tiles: int, voltage_v: float) -> float:
        """P_leakage for ``n_tiles`` powered tiles at ``voltage_v``."""
        return self.leakage_ma_per_tile * voltage_v * n_tiles

    # ------------------------------------------------------------------
    # component / application evaluation
    # ------------------------------------------------------------------
    def component_power(
        self,
        spec: ComponentSpec,
        voltage_override: float | None = None,
    ) -> ComponentPower:
        """Evaluate one component at its own (or an overridden) rail."""
        comm = spec.comm
        key = (
            spec.n_tiles, spec.frequency_mhz,
            voltage_override if voltage_override is not None
            else spec.voltage_v,
            comm.words_per_cycle, comm.span_fraction,
            comm.switching_activity,
        )
        terms = self._component_memo.get(key)
        if terms is None:
            if voltage_override is not None:
                voltage = voltage_override
            elif spec.voltage_v is not None:
                voltage = spec.voltage_v
            else:
                voltage = self.voltage_for(spec.frequency_mhz)
            terms = (
                voltage,
                self.tile_dynamic_mw(
                    spec.n_tiles, spec.frequency_mhz, voltage
                ),
                self.bus_mw(comm, spec.frequency_mhz, voltage),
                self.leakage_mw(spec.n_tiles, voltage),
            )
            self._component_memo[key] = terms
        return ComponentPower(
            name=spec.name,
            n_tiles=spec.n_tiles,
            frequency_mhz=spec.frequency_mhz,
            voltage_v=terms[0],
            dynamic_mw=terms[1],
            bus_mw=terms[2],
            leakage_mw=terms[3],
        )

    def application_power(
        self,
        name: str,
        specs: Iterable[ComponentSpec],
        single_voltage: bool = False,
    ) -> ApplicationPower:
        """Evaluate a whole application mapping.

        ``single_voltage=True`` reruns every component at the highest
        rail any component needs - the baseline the paper compares
        against in Table 4 and Figure 6.
        """
        spec_list = list(specs)
        if not spec_list:
            raise ConfigurationError(f"{name}: application has no components")
        multi = [self.component_power(s) for s in spec_list]
        if not single_voltage:
            return ApplicationPower(name=name, components=tuple(multi))
        v_max = max(c.voltage_v for c in multi)
        pinned = [
            self.component_power(replace(s, voltage_v=None),
                                 voltage_override=v_max)
            for s in spec_list
        ]
        return ApplicationPower(name=name, components=tuple(pinned))


def savings_percent(multi_mw: float, single_mw: float) -> float:
    """Percent power saved by multiple voltage domains (Table 4)."""
    if single_mw <= 0:
        raise ValueError("single-voltage power must be positive")
    return 100.0 * (1.0 - multi_mw / single_mw)
