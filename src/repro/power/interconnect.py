"""Communication profiles feeding the interconnect power term.

A :class:`CommProfile` summarizes how a mapped component uses the
segmented buses: how many 32-bit words it moves per clock cycle
(aggregated across the vertical buses of all its columns plus the
horizontal bus), what fraction of the bus length each transfer spans,
and the bit switching activity.  Section 4.1 step 5 and Section 4.3 of
the paper reduce interconnect power to exactly this summary:
``P_interconnect = a * C * V^2 * f``.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CommProfile:
    """Static communication summary of one mapped component.

    Attributes
    ----------
    words_per_cycle:
        Average 32-bit bus transfers per component clock cycle,
        aggregated over every bus the component drives.  A column's
        vertical bus carries at most 8 concurrent words (one per
        split), so an n-column component can sustain up to ``8n + 8``.
    span_fraction:
        Fraction of the 10 mm bus length charged per transfer;
        segmentation lets neighbour-to-neighbour transfers charge only
        their own segments (Section 2.3).
    switching_activity:
        Fraction of data bits toggling per transfer (0.5 = random).
    """

    words_per_cycle: float = 0.0
    span_fraction: float = 1.0
    switching_activity: float = 0.5

    def __post_init__(self) -> None:
        if self.words_per_cycle < 0:
            raise ValueError("words_per_cycle must be non-negative")
        if not 0.0 <= self.span_fraction <= 1.0:
            raise ValueError("span_fraction must lie in [0, 1]")
        if not 0.0 <= self.switching_activity <= 1.0:
            raise ValueError("switching_activity must lie in [0, 1]")

    def scaled(
        self, factor: float, span_fraction: float | None = None
    ) -> "CommProfile":
        """A profile with ``words_per_cycle`` scaled by ``factor``.

        ``span_fraction``, when given, replaces the profile's span and
        is clamped into [0, 1] - measured spans can drift slightly
        past the physical range through floating-point accumulation.
        """
        if factor < 0:
            raise ValueError("factor must be non-negative")
        if span_fraction is None:
            span = self.span_fraction
        else:
            span = min(1.0, max(0.0, span_fraction))
        return CommProfile(
            words_per_cycle=self.words_per_cycle * factor,
            span_fraction=span,
            switching_activity=self.switching_activity,
        )


#: A component that never touches the global buses (e.g. the 1-tile SVD).
NO_COMMUNICATION = CommProfile(words_per_cycle=0.0)
