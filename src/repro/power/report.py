"""Text rendering of power results in the paper's Table 4 shape."""

from __future__ import annotations

from typing import Sequence

from repro.power.model import ApplicationPower, savings_percent


def format_component_rows(
    multi: ApplicationPower,
    single: ApplicationPower,
) -> list:
    """Rows of (name, tiles, MHz, V, mW, single-V mW, % savings)."""
    rows = []
    for comp_multi, comp_single in zip(multi.components, single.components):
        rows.append((
            comp_multi.name,
            comp_multi.n_tiles,
            comp_multi.frequency_mhz,
            comp_multi.voltage_v,
            comp_multi.total_mw,
            comp_single.total_mw,
            savings_percent(comp_multi.total_mw, comp_single.total_mw),
        ))
    rows.append((
        "TOTAL",
        multi.n_tiles,
        float("nan"),
        float("nan"),
        multi.total_mw,
        single.total_mw,
        savings_percent(multi.total_mw, single.total_mw),
    ))
    return rows


def format_application_power(
    multi: ApplicationPower,
    single: ApplicationPower,
    header: bool = True,
) -> str:
    """Render one application section the way Table 4 prints it."""
    lines = []
    if header:
        lines.append(
            f"{'Algorithm':<28}{'Tiles':>6}{'MHz':>8}{'V':>6}"
            f"{'mW':>12}{'1-V mW':>12}{'% saved':>9}"
        )
    for name, tiles, mhz, volts, mw, single_mw, saved in (
        format_component_rows(multi, single)
    ):
        mhz_text = f"{mhz:>8.0f}" if mhz == mhz else f"{'':>8}"
        v_text = f"{volts:>6.1f}" if volts == volts else f"{'':>6}"
        lines.append(
            f"{name:<28}{tiles:>6}{mhz_text}{v_text}"
            f"{mw:>12.2f}{single_mw:>12.2f}{saved:>8.0f}%"
        )
    return "\n".join(lines)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    widths: Sequence[int] | None = None,
) -> str:
    """Minimal fixed-width table renderer shared by the eval drivers."""
    if widths is None:
        widths = []
        for col, head in enumerate(headers):
            cells = [str(row[col]) for row in rows]
            widths.append(max(len(head), *(len(c) for c in cells)) + 2)
    parts = ["".join(h.ljust(w) for h, w in zip(headers, widths))]
    parts.append("".join("-" * (w - 1) + " " for w in widths))
    for row in rows:
        parts.append(
            "".join(str(cell).ljust(w) for cell, w in zip(row, widths))
        )
    return "\n".join(parts)
