"""Derivation of the U normalized-power parameter (paper Section 4.2).

The paper builds U (mW per MHz per tile) from synthesized and published
component figures:

* synthesized datapath, scaled to 130 nm:      0.03 mW/MHz
* 32x32 4R/2W register file [27]:              0.11 mW/MHz
* 32 KB data memory [28]:                      1.75 mW/MHz
*   => tile subtotal                           1.89 mW/MHz
* amortized SIMD controller + DOU (4 tiles):   0.25 mW/MHz
*   => synthesized U                           2.14 mW/MHz

A custom-logic implementation is then assumed to reduce this to about
30% (0.642 mW/MHz at the 2.5 V synthesis supply), which voltage-scales
to ~0.1 mW/MHz at the 1.0 V reference - the Table 1 "Tile Power" figure
used by every result in the paper.  The NEC SPXK5, a comparable 130 nm
DSP core, is quoted at 0.07 mW/MHz as a sanity anchor.
"""

from __future__ import annotations

from dataclasses import dataclass

SYNTHESIZED_DATAPATH_MW_PER_MHZ = 0.03
REGFILE_MW_PER_MHZ = 0.11
DATA_MEMORY_MW_PER_MHZ = 1.75
CONTROL_OVERHEAD_MW_PER_MHZ = 0.25
CUSTOM_LOGIC_FACTOR = 0.3
SYNTHESIS_VOLTAGE = 2.5
NEC_SPXK5_MW_PER_MHZ = 0.07
PAPER_U_MW_PER_MHZ = 0.1


@dataclass(frozen=True)
class UParameterDerivation:
    """The full U derivation chain, exposed for sensitivity studies."""

    datapath: float = SYNTHESIZED_DATAPATH_MW_PER_MHZ
    regfile: float = REGFILE_MW_PER_MHZ
    memory: float = DATA_MEMORY_MW_PER_MHZ
    control: float = CONTROL_OVERHEAD_MW_PER_MHZ
    custom_logic_factor: float = CUSTOM_LOGIC_FACTOR
    synthesis_voltage: float = SYNTHESIS_VOLTAGE

    @property
    def tile_subtotal(self) -> float:
        """Datapath + register file + data memory: 1.89 mW/MHz."""
        return self.datapath + self.regfile + self.memory

    @property
    def synthesized_u(self) -> float:
        """Synthesized U including control overhead: 2.14 mW/MHz."""
        return self.tile_subtotal + self.control

    @property
    def custom_u(self) -> float:
        """After the custom-logic assumption: ~0.642 mW/MHz at 2.5 V."""
        return self.synthesized_u * self.custom_logic_factor

    def u_at(self, reference_voltage: float = 1.0) -> float:
        """U voltage-scaled to ``reference_voltage``: ~0.1 mW/MHz at 1 V."""
        if reference_voltage <= 0:
            raise ValueError("reference voltage must be positive")
        ratio = reference_voltage / self.synthesis_voltage
        return self.custom_u * ratio * ratio


def u_reference_mw_per_mhz(reference_voltage: float = 1.0) -> float:
    """The paper's derived U at the given reference voltage."""
    return UParameterDerivation().u_at(reference_voltage)
