"""Exception hierarchy for the Synchroscalar reproduction.

Every error raised by this package derives from :class:`ReproError` so
callers can catch library failures without masking programming errors.
"""


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ConfigurationError(ReproError):
    """A chip, column, or application configuration is inconsistent."""


class FrequencyRangeError(ConfigurationError):
    """A requested frequency cannot be supported by any voltage rail."""


class AssemblyError(ReproError):
    """Assembly source could not be parsed or encoded."""


class SimulationError(ReproError):
    """The cycle-level simulator reached an illegal machine state."""


class BatchError(ReproError):
    """A batched run failed after every permitted retry.

    Carries the originating job's ``label`` and, when the supervision
    layer produced one, the terminal
    :class:`~repro.sim.resilience.JobOutcome` under ``outcome``.
    """

    def __init__(self, message, label=None, outcome=None):
        super().__init__(message)
        self.label = label
        self.outcome = outcome


class SdfError(ReproError):
    """A synchronous dataflow graph is inconsistent or unschedulable."""


class MappingError(ReproError):
    """An application mapping violates architectural constraints."""
