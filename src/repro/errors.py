"""Exception hierarchy for the Synchroscalar reproduction.

Every error raised by this package derives from :class:`ReproError` so
callers can catch library failures without masking programming errors.
"""


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ConfigurationError(ReproError):
    """A chip, column, or application configuration is inconsistent."""


class FrequencyRangeError(ConfigurationError):
    """A requested frequency cannot be supported by any voltage rail."""


class AssemblyError(ReproError):
    """Assembly source could not be parsed or encoded."""


class SimulationError(ReproError):
    """The cycle-level simulator reached an illegal machine state."""


class SdfError(ReproError):
    """A synchronous dataflow graph is inconsistent or unschedulable."""


class MappingError(ReproError):
    """An application mapping violates architectural constraints."""
