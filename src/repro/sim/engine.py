"""Pluggable simulation engines.

The reference clock is the only time base in Synchroscalar, and the
single-PLL/integer-divider clock tree makes the whole chip's activity
pattern periodic in the clock hyperperiod (Section 2.4).  This module
exploits that in two interchangeable engines behind one interface:

``ReferenceEngine``
    The tick-accurate stepper: one Python iteration per reference
    tick, with tracing folded in as an observer hook so traced and
    untraced runs share a single stepping loop.

``CompiledEngine``
    Precompiles the per-hyperperiod activity schedule from the
    :class:`~repro.arch.clocking.ClockTree` (which reference ticks
    carry column clock edges, which DOUs can ever move a word) and
    advances in hyperperiod-sized strides: dead ticks are skipped
    outright, inert DOUs are never stepped, halted columns accrue
    their bubble cycles arithmetically, and the post-halt bus drain is
    settled in O(columns) instead of O(ticks).  By construction it
    produces :class:`~repro.sim.stats.SimulationStats` identical to
    the reference engine - a property enforced by differential tests.

Engines only require the :class:`~repro.arch.chip.Chip` duck type:
``columns``, ``clock``, ``horizontal_dou``, ``all_halted``,
``reference_ticks``, and ``step_reference_tick``.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import SimulationError
from repro.arch.chip import Chip
from repro.sim.stats import SimulationStats, collect

DEFAULT_MAX_TICKS = 2_000_000


def _budget_error(max_ticks: int) -> SimulationError:
    return SimulationError(
        f"simulation exceeded {max_ticks} reference ticks "
        f"(deadlocked schedule?)"
    )


def _run_ticked(
    chip: Chip,
    observers: tuple,
    max_ticks: int,
    until: Callable[[Chip], bool] | None,
    drain_hyperperiods: int,
) -> SimulationStats:
    """The canonical tick-by-tick run loop (shared fallback path)."""
    for _ in range(max_ticks):
        if until is not None and until(chip):
            return collect(chip)
        if chip.all_halted:
            break
        chip.step_reference_tick(observers)
    else:
        raise _budget_error(max_ticks)
    for _ in range(drain_hyperperiods * chip.clock.hyperperiod()):
        chip.step_reference_tick(observers)
    return collect(chip)


class Engine:
    """Common interface: advance a chip and collect its statistics.

    ``observers`` receive ``record(tick, column, outcome, pc)`` for
    every tile-clock step - :class:`~repro.sim.trace.Tracer` plugs in
    directly.
    """

    name = "engine"

    def __init__(self, chip: Chip, observers: tuple = ()) -> None:
        self.chip = chip
        self.observers = tuple(observers)

    def step(self) -> None:
        """Advance exactly one reference tick."""
        self.chip.step_reference_tick(self.observers)

    def run(
        self,
        max_ticks: int = DEFAULT_MAX_TICKS,
        until: Callable[[Chip], bool] | None = None,
        drain_hyperperiods: int = 2,
    ) -> SimulationStats:
        """Run until every column halts (or ``until`` fires).

        After all columns halt, the buses are drained for
        ``drain_hyperperiods`` clock hyperperiods so in-flight words
        settle into their destination buffers.

        Raises
        ------
        SimulationError
            If the tick budget is exhausted first - almost always a
            deadlocked communication schedule.
        """
        raise NotImplementedError


class ReferenceEngine(Engine):
    """Tick-accurate stepping - the architectural reference."""

    name = "reference"

    def run(
        self,
        max_ticks: int = DEFAULT_MAX_TICKS,
        until: Callable[[Chip], bool] | None = None,
        drain_hyperperiods: int = 2,
    ) -> SimulationStats:
        return _run_ticked(
            self.chip, self.observers, max_ticks, until,
            drain_hyperperiods,
        )


class CompiledEngine(Engine):
    """Hyperperiod-compiled stepping: skip what cannot change state.

    At construction the engine classifies every DOU (inert programs
    can never move a word, so stepping them is invisible to the
    statistics) and compiles the clock tree's edge schedule.  Two
    striding modes follow:

    * every DOU inert ("sparse"): only reference ticks carrying at
      least one live column edge are visited; everything between is
      jumped over in O(1).
    * some DOU live ("dense"): every tick steps the live DOUs (they
      run at the reference rate by definition), but column edges come
      from the precompiled table and halted columns are never
      re-entered.

    In both modes a column that has halted stops being stepped; the
    bubbles and tile cycles the reference engine would have accrued on
    its remaining clock edges are reconstructed arithmetically before
    statistics are collected, as is the post-halt drain.  ``until``
    predicates and observers need tick-accurate visibility, so their
    presence falls back to the shared tick-by-tick loop.
    """

    name = "compiled"

    def __init__(self, chip: Chip, observers: tuple = ()) -> None:
        super().__init__(chip, observers)
        self._hyperperiod = chip.clock.hyperperiod()
        self._edges = chip.clock.edge_schedule()
        self._active_offsets = tuple(
            offset for offset, columns in enumerate(self._edges)
            if columns
        )
        self._inert = [
            column.dou.program.is_inert() for column in chip.columns
        ]
        self._horizontal_inert = (
            chip.horizontal_dou is None
            or chip.horizontal_dou.program.is_inert()
        )
        self._all_inert = all(self._inert) and self._horizontal_inert
        self._live_dous = [
            column.dou
            for index, column in enumerate(chip.columns)
            if not self._inert[index]
        ]
        self._live_horizontal = (
            None if self._horizontal_inert else chip.horizontal_dou
        )

    def run(
        self,
        max_ticks: int = DEFAULT_MAX_TICKS,
        until: Callable[[Chip], bool] | None = None,
        drain_hyperperiods: int = 2,
    ) -> SimulationStats:
        if until is not None or self.observers:
            return _run_ticked(
                self.chip, self.observers, max_ticks, until,
                drain_hyperperiods,
            )
        # Snapshot cycle counters so the owed-edge arithmetic in
        # _settle can tell skipped edges from stepped ones even when
        # the chip was advanced before run() was called.
        self._initial_cycles = [
            column.tile_cycles for column in self.chip.columns
        ]
        start = self.chip.reference_ticks
        if self._all_inert:
            halt_tick = self._advance_sparse(max_ticks)
        else:
            halt_tick = self._advance_dense(max_ticks)
        # The reference loop spends one budget iteration *observing*
        # all_halted after the final step, so a chip halting on the
        # very last tick in budget still exhausts it.
        if halt_tick - start >= max_ticks:
            raise _budget_error(max_ticks)
        self._settle(halt_tick, drain_hyperperiods)
        return collect(self.chip)

    # ------------------------------------------------------------------
    # striding
    # ------------------------------------------------------------------
    def _advance_sparse(self, max_ticks: int) -> int:
        """All DOUs inert: jump from live edge to live edge.

        Returns the tick at which the reference loop would observe
        ``all_halted`` (one past the last stepped tick).
        """
        chip = self.chip
        columns = chip.columns
        period = self._hyperperiod
        edges = self._edges
        active = self._active_offsets
        start = chip.reference_ticks
        deadline = start + max_ticks
        live = sum(not column.halted for column in columns)
        tick = start
        while live:
            offset = tick % period
            base = tick - offset
            jump = None
            for candidate in active:
                if candidate >= offset:
                    jump = base + candidate
                    break
            if jump is None:
                jump = base + period + active[0]
            if jump >= deadline:
                raise _budget_error(max_ticks)
            for index in edges[jump % period]:
                column = columns[index]
                if column.halted:
                    continue
                column.step_tile_clock()
                if column.halted:
                    live -= 1
            tick = jump + 1
        return tick

    def _advance_dense(self, max_ticks: int) -> int:
        """Some DOU moves data: step every tick, skip what is dead."""
        chip = self.chip
        columns = chip.columns
        period = self._hyperperiod
        edges = self._edges
        live_dous = self._live_dous
        horizontal = self._live_horizontal
        start = chip.reference_ticks
        deadline = start + max_ticks
        live = sum(not column.halted for column in columns)
        tick = start
        while live:
            if tick >= deadline:
                raise _budget_error(max_ticks)
            for dou in live_dous:
                dou.step()
            if horizontal is not None:
                horizontal.step()
            for index in edges[tick % period]:
                column = columns[index]
                if column.halted:
                    continue
                column.step_tile_clock()
                if column.halted:
                    live -= 1
            tick += 1
        return tick

    # ------------------------------------------------------------------
    # post-halt settlement
    # ------------------------------------------------------------------
    def _settle(self, halt_tick: int, drain_hyperperiods: int) -> None:
        """Reconstruct everything the striding skipped.

        The reference engine drains ``drain_hyperperiods`` full
        hyperperiods after the halt tick, and on every skipped clock
        edge of a halted column it would have recorded exactly one
        bubble tile cycle (the controller refuses to fetch past HALT).
        Both are recovered here in closed form.  A live DOU may still
        hold in-flight words at halt time, so the dense drain steps
        those faithfully; inert DOUs just have their skipped cycles
        accounted.
        """
        chip = self.chip
        clock = chip.clock
        start = chip.reference_ticks
        drain = drain_hyperperiods * self._hyperperiod
        end = halt_tick + drain
        if not self._all_inert:
            # Step the live DOUs through the drain window tick by
            # tick; words parked in write buffers keep moving exactly
            # as under the reference engine.
            for _ in range(drain):
                for dou in self._live_dous:
                    dou.step()
                if self._live_horizontal is not None:
                    self._live_horizontal.step()
        for index, column in enumerate(chip.columns):
            # Edges the column saw while skipped: from run start to
            # the drain's end, minus the ones actually stepped.
            owed = (
                clock.edges_in(index, start, end)
                - (column.tile_cycles - self._initial_cycles[index])
            )
            if owed:
                column.tile_cycles += owed
                column.controller.bubbles += owed
            if self._inert[index]:
                column.dou.fast_forward(end - start)
        if self._horizontal_inert and chip.horizontal_dou is not None:
            chip.horizontal_dou.fast_forward(end - start)
        chip.reference_ticks = end


ENGINES = {
    ReferenceEngine.name: ReferenceEngine,
    CompiledEngine.name: CompiledEngine,
}

#: Name that resolves to the fastest engine safe for the run shape.
AUTO_ENGINE = "auto"


def create_engine(
    name: str, chip: Chip, observers: tuple = ()
) -> Engine:
    """Instantiate an engine by registry name.

    ``"auto"`` picks the compiled fast path when no observers are
    attached (tick-accurate visibility is not needed, and an ``until``
    predicate at run time still falls back to the shared tick loop);
    with observers it picks the reference engine outright.
    """
    if name == AUTO_ENGINE:
        name = ReferenceEngine.name if observers else CompiledEngine.name
    try:
        factory = ENGINES[name]
    except KeyError:
        raise SimulationError(
            f"unknown engine {name!r}; available: {sorted(ENGINES)}"
        ) from None
    return factory(chip, observers)
