"""Pluggable simulation engines.

The reference clock is the only time base in Synchroscalar, and the
single-PLL/integer-divider clock tree makes the whole chip's activity
pattern periodic in the clock hyperperiod (Section 2.4).  This module
exploits that in two interchangeable engines behind one interface:

``ReferenceEngine``
    The tick-accurate stepper: one Python iteration per reference
    tick, with tracing folded in as an observer hook so traced and
    untraced runs share a single stepping loop.

``CompiledEngine``
    Precompiles the per-hyperperiod activity schedule from the
    :class:`~repro.arch.clocking.ClockTree` (which reference ticks
    carry column clock edges, which DOUs can ever move a word) and
    advances in hyperperiod-sized strides: dead ticks are skipped
    outright, inert DOUs are never stepped, halted columns accrue
    their bubble cycles arithmetically, and the post-halt bus drain is
    settled in O(columns) instead of O(ticks).  By construction it
    produces :class:`~repro.sim.stats.SimulationStats` identical to
    the reference engine - a property enforced by differential tests.

Both engines expose :meth:`Engine.advance` - run for a bounded window
of reference ticks - which is the primitive the runtime-DVFS epoch
layer (:mod:`repro.control.epochs`) builds on: each epoch retunes the
clock tree at a hyperperiod boundary and advances one window.  The
compiled engine recompiles its activity plan per divider tuple behind
a cache, so a governor revisiting an operating point pays for its
edge schedule once.

Engines only require the :class:`~repro.arch.chip.Chip` duck type:
``columns``, ``clock``, ``horizontal_dou``, ``all_halted``,
``reference_ticks``, ``clock_gate_until``, and
``step_reference_tick``.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import ConfigurationError, SimulationError
from repro.arch.chip import Chip
from repro.sim.stats import SimulationStats, collect

DEFAULT_MAX_TICKS = 2_000_000


def _budget_error(max_ticks: int) -> SimulationError:
    return SimulationError(
        f"simulation exceeded {max_ticks} reference ticks "
        f"(deadlocked schedule?)"
    )


def _run_ticked(
    chip: Chip,
    observers: tuple,
    max_ticks: int,
    until: Callable[[Chip], bool] | None,
    drain_hyperperiods: int,
) -> SimulationStats:
    """The canonical tick-by-tick run loop (shared fallback path)."""
    for _ in range(max_ticks):
        if until is not None and until(chip):
            return collect(chip)
        if chip.all_halted:
            break
        chip.step_reference_tick(observers)
    else:
        raise _budget_error(max_ticks)
    for _ in range(drain_hyperperiods * chip.clock.hyperperiod()):
        chip.step_reference_tick(observers)
    return collect(chip)


def _advance_ticked(chip: Chip, observers: tuple, ticks: int) -> int:
    """Advance up to ``ticks`` reference ticks, stopping at all-halt.

    Mirrors the main loop of :func:`_run_ticked` exactly (all_halted
    is observed *before* each step), so windowed and open-ended runs
    agree tick for tick.  Returns the ticks actually consumed.
    """
    consumed = 0
    while consumed < ticks:
        if chip.all_halted:
            break
        chip.step_reference_tick(observers)
        consumed += 1
    return consumed


class Engine:
    """Common interface: advance a chip and collect its statistics.

    ``observers`` receive ``record(tick, column, outcome, pc)`` for
    every tile-clock step - :class:`~repro.sim.trace.Tracer` plugs in
    directly.
    """

    name = "engine"

    def __init__(self, chip: Chip, observers: tuple = ()) -> None:
        self.chip = chip
        self.observers = tuple(observers)

    def step(self) -> None:
        """Advance exactly one reference tick."""
        self.chip.step_reference_tick(self.observers)

    def advance(self, ticks: int) -> int:
        """Advance up to ``ticks`` reference ticks; stop at all-halt.

        The epoch primitive: between calls the control layer may
        retune the chip's clock tree (at a hyperperiod boundary) and
        gate relocking columns; within a call the clock is constant.
        Returns the number of ticks actually consumed, which is less
        than ``ticks`` only when every column halted inside the
        window.
        """
        return _advance_ticked(self.chip, self.observers, ticks)

    def run(
        self,
        max_ticks: int = DEFAULT_MAX_TICKS,
        until: Callable[[Chip], bool] | None = None,
        drain_hyperperiods: int = 2,
    ) -> SimulationStats:
        """Run until every column halts (or ``until`` fires).

        After all columns halt, the buses are drained for
        ``drain_hyperperiods`` clock hyperperiods so in-flight words
        settle into their destination buffers.

        Raises
        ------
        SimulationError
            If the tick budget is exhausted first - almost always a
            deadlocked communication schedule.
        """
        raise NotImplementedError


class ReferenceEngine(Engine):
    """Tick-accurate stepping - the architectural reference."""

    name = "reference"

    def run(
        self,
        max_ticks: int = DEFAULT_MAX_TICKS,
        until: Callable[[Chip], bool] | None = None,
        drain_hyperperiods: int = 2,
    ) -> SimulationStats:
        return _run_ticked(
            self.chip, self.observers, max_ticks, until,
            drain_hyperperiods,
        )


class CompiledEngine(Engine):
    """Hyperperiod-compiled stepping: skip what cannot change state.

    At construction the engine classifies every DOU (inert programs
    can never move a word, so stepping them is invisible to the
    statistics); the clock tree's edge schedule is compiled lazily,
    per divider tuple, into a plan cache - runtime retuning through
    :meth:`~repro.arch.chip.Chip.retune` just selects another plan.
    Two striding modes follow:

    * every DOU inert ("sparse"): only reference ticks carrying at
      least one live column edge are visited; everything between is
      jumped over in O(1).
    * some DOU live ("dense"): every tick steps the live DOUs (they
      run at the reference rate by definition), but column edges come
      from the precompiled table and halted columns are never
      re-entered.

    In both modes a column that has halted stops being stepped; the
    bubbles and tile cycles the reference engine would have accrued on
    its remaining clock edges are reconstructed arithmetically at the
    end of each window, as is the post-halt bus drain.  PLL-relock
    gates (``chip.clock_gate_until``) suppress a column's edges the
    same way the reference stepping loop does.  ``until`` predicates
    and observers need tick-accurate visibility, so their presence
    falls back to the shared tick-by-tick loop.
    """

    name = "compiled"

    def __init__(self, chip: Chip, observers: tuple = ()) -> None:
        super().__init__(chip, observers)
        #: divider tuple -> (hyperperiod, edge table, active offsets)
        self._plans: dict = {}
        self._inert = [
            column.dou.program.is_inert() for column in chip.columns
        ]
        self._horizontal_inert = (
            chip.horizontal_dou is None
            or chip.horizontal_dou.program.is_inert()
        )
        self._all_inert = all(self._inert) and self._horizontal_inert
        self._live_dous = [
            column.dou
            for index, column in enumerate(chip.columns)
            if not self._inert[index]
        ]
        self._live_horizontal = (
            None if self._horizontal_inert else chip.horizontal_dou
        )

    def _plan(self) -> tuple:
        """The compiled activity schedule for the current dividers.

        Cached per divider tuple, so an epoch run that revisits an
        operating point compiles its edge table exactly once.
        """
        key = self.chip.clock.dividers
        plan = self._plans.get(key)
        if plan is None:
            clock = self.chip.clock
            period = clock.hyperperiod()
            edges = clock.edge_schedule()
            active = tuple(
                offset for offset, columns in enumerate(edges)
                if columns
            )
            plan = (period, edges, active)
            self._plans[key] = plan
        return plan

    def advance(self, ticks: int) -> int:
        if self.observers:
            return _advance_ticked(self.chip, self.observers, ticks)
        if ticks <= 0 or self.chip.all_halted:
            return 0
        start = self.chip.reference_ticks
        end = self._stride_window(start + ticks)
        return end - start

    def run(
        self,
        max_ticks: int = DEFAULT_MAX_TICKS,
        until: Callable[[Chip], bool] | None = None,
        drain_hyperperiods: int = 2,
    ) -> SimulationStats:
        if until is not None or self.observers:
            return _run_ticked(
                self.chip, self.observers, max_ticks, until,
                drain_hyperperiods,
            )
        start = self.chip.reference_ticks
        end = self._stride_window(start + max_ticks)
        # The reference loop spends one budget iteration *observing*
        # all_halted after the final step, so a chip halting on the
        # very last tick in budget still exhausts it.
        if end - start >= max_ticks:
            raise _budget_error(max_ticks)
        period = self._plan()[0]
        self._drain(drain_hyperperiods * period)
        return collect(self.chip)

    # ------------------------------------------------------------------
    # striding
    # ------------------------------------------------------------------
    def _stride_window(self, limit: int) -> int:
        """Advance from the current tick to at most ``limit``.

        Stops early the moment every column has halted (at the same
        tick the reference loop would observe ``all_halted``), settles
        the skipped arithmetic for the window, and returns the end
        tick.
        """
        chip = self.chip
        start = chip.reference_ticks
        initial_cycles = [
            column.tile_cycles for column in chip.columns
        ]
        if self._all_inert:
            end = self._sparse_until(start, limit)
        else:
            end = self._dense_until(start, limit)
        self._settle_window(start, end, initial_cycles)
        chip.reference_ticks = end
        return end

    def _sparse_until(self, start: int, limit: int) -> int:
        """All DOUs inert: jump from live edge to live edge."""
        chip = self.chip
        columns = chip.columns
        gates = list(chip.clock_gate_until)
        period, edges, active = self._plan()
        live = sum(not column.halted for column in columns)
        tick = start
        while live and tick < limit:
            offset = tick % period
            base = tick - offset
            jump = None
            for candidate in active:
                if candidate >= offset:
                    jump = base + candidate
                    break
            if jump is None:
                jump = base + period + active[0]
            if jump >= limit:
                return limit
            for index in edges[jump % period]:
                column = columns[index]
                if column.halted or jump < gates[index]:
                    continue
                column.step_tile_clock()
                if column.halted:
                    live -= 1
            tick = jump + 1
        return tick if live == 0 else limit

    def _dense_until(self, start: int, limit: int) -> int:
        """Some DOU moves data: step every tick, skip what is dead."""
        chip = self.chip
        columns = chip.columns
        gates = list(chip.clock_gate_until)
        period, edges, _ = self._plan()
        live_dous = self._live_dous
        horizontal = self._live_horizontal
        live = sum(not column.halted for column in columns)
        tick = start
        while live and tick < limit:
            for dou in live_dous:
                dou.step()
            if horizontal is not None:
                horizontal.step()
            for index in edges[tick % period]:
                column = columns[index]
                if column.halted or tick < gates[index]:
                    continue
                column.step_tile_clock()
                if column.halted:
                    live -= 1
            tick += 1
        return tick

    # ------------------------------------------------------------------
    # post-window settlement
    # ------------------------------------------------------------------
    def _settle_window(
        self, start: int, end: int, initial_cycles: list
    ) -> None:
        """Reconstruct everything the striding skipped in [start, end).

        On every skipped clock edge of a halted column the reference
        engine would have recorded exactly one bubble tile cycle (the
        controller refuses to fetch past HALT); edges suppressed by a
        PLL-relock gate are skipped by both engines and owe nothing.
        Inert DOUs have their skipped cycles accounted in closed form.
        The clock tree is constant within a window (retunes commit
        only between windows), so ``edges_in`` is exact.
        """
        chip = self.chip
        clock = chip.clock
        span = end - start
        if span <= 0:
            return
        for index, column in enumerate(chip.columns):
            gate = chip.clock_gate_until[index]
            low = min(end, max(start, gate))
            owed = (
                clock.edges_in(index, low, end)
                - (column.tile_cycles - initial_cycles[index])
            )
            if owed:
                column.tile_cycles += owed
                column.controller.bubbles += owed
            if self._inert[index]:
                column.dou.fast_forward(span)
        if self._horizontal_inert and chip.horizontal_dou is not None:
            chip.horizontal_dou.fast_forward(span)

    def _drain(self, ticks: int) -> None:
        """Drain the buses for ``ticks`` after every column halted.

        A live DOU may still hold in-flight words at halt time, so the
        dense drain steps those faithfully; everything else (owed
        bubble edges, inert DOU cycles) settles arithmetically.
        """
        chip = self.chip
        start = chip.reference_ticks
        initial_cycles = [
            column.tile_cycles for column in chip.columns
        ]
        if not self._all_inert:
            for _ in range(ticks):
                for dou in self._live_dous:
                    dou.step()
                if self._live_horizontal is not None:
                    self._live_horizontal.step()
        self._settle_window(start, start + ticks, initial_cycles)
        chip.reference_ticks = start + ticks


ENGINES = {
    ReferenceEngine.name: ReferenceEngine,
    CompiledEngine.name: CompiledEngine,
}

#: Name that resolves to the fastest engine safe for the run shape.
AUTO_ENGINE = "auto"


def create_engine(
    name: str, chip: Chip, observers: tuple = ()
) -> Engine:
    """Instantiate an engine by registry name.

    ``"auto"`` picks the compiled fast path when no observers are
    attached (tick-accurate visibility is not needed, and an ``until``
    predicate at run time still falls back to the shared tick loop);
    with observers it picks the reference engine outright.

    Raises
    ------
    ConfigurationError
        For names outside the registry - a configuration mistake, not
        a simulation failure, so it is distinguishable from runtime
        errors like deadlocked schedules.
    """
    if name == AUTO_ENGINE:
        name = ReferenceEngine.name if observers else CompiledEngine.name
    try:
        factory = ENGINES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown engine {name!r}; available: {sorted(ENGINES)}"
        ) from None
    return factory(chip, observers)
