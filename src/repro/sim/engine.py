"""Pluggable simulation engines.

The reference clock is the only time base in Synchroscalar, and the
single-PLL/integer-divider clock tree makes the whole chip's activity
pattern periodic in the clock hyperperiod (Section 2.4).  This module
exploits that in two interchangeable engines behind one interface:

``ReferenceEngine``
    The tick-accurate stepper: one Python iteration per reference
    tick, with tracing folded in as an observer hook so traced and
    untraced runs share a single stepping loop.

``CompiledEngine``
    Precompiles the per-hyperperiod activity schedule from the
    :class:`~repro.arch.clocking.ClockTree` (which reference ticks
    carry column clock edges, which DOUs can ever move a word) and
    advances in hyperperiod-sized strides: dead ticks are skipped
    outright, inert DOUs are never stepped, halted columns accrue
    their bubble cycles arithmetically, and the post-halt bus drain is
    settled in O(columns) instead of O(ticks).  By construction it
    produces :class:`~repro.sim.stats.SimulationStats` identical to
    the reference engine - a property enforced by differential tests.

Both engines expose :meth:`Engine.advance` - run for a bounded window
of reference ticks - which is the primitive the runtime-DVFS epoch
layer (:mod:`repro.control.epochs`) builds on: each epoch retunes the
clock tree at a hyperperiod boundary and advances one window.  The
compiled engine recompiles its activity plan per divider tuple behind
a cache, so a governor revisiting an operating point pays for its
edge schedule once.

Engines only require the :class:`~repro.arch.chip.Chip` duck type:
``columns``, ``clock``, ``horizontal_dou``, ``all_halted``,
``reference_ticks``, ``clock_gate_until``, and
``step_reference_tick``.
"""

from __future__ import annotations

from time import perf_counter
from typing import Callable

from repro.errors import ConfigurationError, SimulationError
from repro.arch.chip import STALLED, Chip
from repro.arch.column_exec import compile_column_runner
from repro.obs.events import BUS
from repro.obs.metrics import MetricsRegistry
from repro.sim.stats import SimulationStats, collect

#: Default run budget in reference ticks.  Exhausting it raises
#: :class:`~repro.errors.SimulationError` - on this machine model a
#: workload that has not halted within two million reference ticks is
#: almost always a deadlocked communication schedule, not a long run.
DEFAULT_MAX_TICKS = 2_000_000


def _budget_error(max_ticks: int) -> SimulationError:
    return SimulationError(
        f"simulation exceeded {max_ticks} reference ticks "
        f"(deadlocked schedule?)"
    )


def _run_ticked(
    chip: Chip,
    observers: tuple,
    max_ticks: int,
    until: Callable[[Chip], bool] | None,
    drain_hyperperiods: int,
) -> SimulationStats:
    """The canonical tick-by-tick run loop (shared fallback path)."""
    for _ in range(max_ticks):
        if until is not None and until(chip):
            return collect(chip)
        if chip.all_halted:
            break
        chip.step_reference_tick(observers)
    else:
        raise _budget_error(max_ticks)
    for _ in range(drain_hyperperiods * chip.clock.hyperperiod()):
        chip.step_reference_tick(observers)
    return collect(chip)


def _advance_ticked(chip: Chip, observers: tuple, ticks: int) -> int:
    """Advance up to ``ticks`` reference ticks, stopping at all-halt.

    Mirrors the main loop of :func:`_run_ticked` exactly (all_halted
    is observed *before* each step), so windowed and open-ended runs
    agree tick for tick.  Returns the ticks actually consumed.
    """
    consumed = 0
    while consumed < ticks:
        if chip.all_halted:
            break
        chip.step_reference_tick(observers)
        consumed += 1
    return consumed


class Engine:
    """Common interface: advance a chip and collect its statistics.

    ``observers`` receive ``record(tick, column, outcome, pc)`` for
    every tile-clock step - :class:`~repro.sim.trace.Tracer` plugs in
    directly.
    """

    name = "engine"

    def __init__(self, chip: Chip, observers: tuple = ()) -> None:
        self.chip = chip
        self.observers = tuple(observers)

    def step(self) -> None:
        """Advance exactly one reference tick, observers notified.

        Always the tick-accurate path (every DOU stepped, every due
        column edge executed), regardless of the engine's fast paths -
        single-stepping is a debugging primitive and must see true
        per-tick state.
        """
        self.chip.step_reference_tick(self.observers)

    def advance(self, ticks: int) -> int:
        """Advance up to ``ticks`` reference ticks; stop at all-halt.

        The epoch primitive: between calls the control layer may
        retune the chip's clock tree (at a hyperperiod boundary) and
        gate relocking columns; within a call the clock is constant.
        Returns the number of ticks actually consumed, which is less
        than ``ticks`` only when every column halted inside the
        window.
        """
        return _advance_ticked(self.chip, self.observers, ticks)

    def run(
        self,
        max_ticks: int = DEFAULT_MAX_TICKS,
        until: Callable[[Chip], bool] | None = None,
        drain_hyperperiods: int = 2,
    ) -> SimulationStats:
        """Run until every column halts (or ``until`` fires).

        After all columns halt, the buses are drained for
        ``drain_hyperperiods`` clock hyperperiods so in-flight words
        settle into their destination buffers.

        Raises
        ------
        SimulationError
            If the tick budget is exhausted first - almost always a
            deadlocked communication schedule.
        """
        raise NotImplementedError


class ReferenceEngine(Engine):
    """Tick-accurate stepping - the architectural reference.

    One Python iteration per reference tick through the single shared
    stepping loop (:meth:`~repro.arch.chip.Chip.step_reference_tick`),
    so its statistics define correctness: every other engine must be
    bit-identical to this one, and the differential tests treat it as
    the oracle.  It is the right engine whenever per-tick visibility
    matters (tracing observers, ``until`` predicates, debugging) and
    the slow one everywhere else.
    """

    name = "reference"

    def run(
        self,
        max_ticks: int = DEFAULT_MAX_TICKS,
        until: Callable[[Chip], bool] | None = None,
        drain_hyperperiods: int = 2,
    ) -> SimulationStats:
        return _run_ticked(
            self.chip, self.observers, max_ticks, until,
            drain_hyperperiods,
        )


class _ClockPlan:
    """One divider tuple's compiled hyperperiod trace.

    ``edges`` keeps column *indexes* per offset (needed wherever
    PLL-relock gates must be consulted); ``edge_objs`` binds the same
    table down to :class:`Column` objects for the no-gate hot loop;
    ``sparse_steps[o]`` is ``(delta, edge_indexes)`` where ``delta``
    is the distance from offset ``o`` to the next offset carrying any
    edge (0 when ``o`` itself does) - the precomputed
    next-active-offset table that replaces the old per-jump linear
    scan, and doubles as the gap table for starved-DOU stall batching.
    """

    __slots__ = ("period", "edges", "edge_objs", "sparse_steps")

    def __init__(self, clock, columns) -> None:
        self.period = clock.hyperperiod()
        self.edges = clock.edge_schedule()
        self.edge_objs = tuple(
            tuple(columns[index] for index in offsets)
            for offsets in self.edges
        )
        active = [
            offset for offset, offsets in enumerate(self.edges)
            if offsets
        ]
        steps = []
        for offset in range(self.period):
            target = next(
                (a for a in active if a >= offset),
                self.period + active[0],
            )
            steps.append(
                (target - offset, self.edges[target % self.period])
            )
        self.sparse_steps = tuple(steps)


#: Recorded items kept while hunting for a recurring lockstep round;
#: past this the recording restarts (rounds longer than the cap are
#: never detected, which only costs the optimization).
LOCKSTEP_REC_CAP = 512

#: Consecutive zero-round replay attempts before a cached round plan
#: is dropped (the occupancy regime it recorded has ended; a fresh
#: recording will rebuild it if the pattern returns).
LOCKSTEP_FAILURES = 8

#: Cached round plans across all signatures before the cache resets
#: (a runaway governor sweeping operating points, not steady state).
LOCKSTEP_PLAN_CAP = 256


#: Sentinel bound for occupancy windows that no recorded predicate
#: constrains.
_OCC_UNBOUNDED = 1 << 30


class _RoundPlan:
    """One recorded lockstep round, compiled for near-arithmetic replay.

    A round's behaviour is fully determined by the anchor signature
    (hyperperiod phase, dividers, stepped set, credits, DOU states,
    column control state), the DOU down-counters, and the *predicate
    regime* of every communication buffer - which occupancy thresholds
    (empty, full, has-word, has-room) each buffer sits on at each
    recorded decision point.  Data values never steer control flow
    silently: conditional branches and comm instructions execute only
    through validated real primitives (``run_edges`` outcomes and
    ``step_tile_clock`` post-state are checked per call), so a replay
    that passes the round-entry checks either reproduces the recording
    exactly or aborts at a validated primitive with all applied state
    real.

    ``occ_checks`` holds per-buffer absolute occupancy windows
    ``(deque, lo, hi)`` compiled from every occupancy predicate the
    recorded round evaluated, shifted by the buffer's anchor-relative
    drift: a buffer that only ever had to be *non-empty* tolerates a
    draining backlog, while one that gated on exactly-empty or
    exactly-full is pinned.  ``items`` is the event sequence with all
    frozen-orbit stall accounting, parked-edge charges, credit burns,
    and no-progress DOU steps folded into precomputed integer deltas;
    only runner calls, tile-clock edges, and whole-lap transfer
    vectors touch the machine.  ``adds`` carries the round's profile
    counter totals, applied when a round completes.
    """

    __slots__ = ("period", "fn", "failures", "adds", "source", "gkey")

    def __init__(self, period, fn, adds, source) -> None:
        self.period = period
        # The round is compiled to a specialized function (the same
        # technique the column runner uses for tile code): entry
        # checks, integer deltas, lap applications, and validated
        # primitives emitted as straight-line Python with every
        # machine object and constant bound in a closure.  ``fn``
        # takes ``(tick, limit, credits)`` and returns
        # ``(ok, new_tick)``; an abort has still executed real
        # primitives up to the abort point, so the returned tick is
        # always real.
        self.fn = fn
        self.failures = 0
        self.adds = adds
        self.source = source
        #: key of this plan's entry in the cross-engine shared plan
        #: cache (None while unshared); used to evict the shared copy
        #: when the local plan is retired for repeated failures.
        self.gkey = None


class _LockRecorder:
    """One armed lockstep recording: raw captures for a single round.

    Created at the second sighting of a safepoint signature; records
    every dense-loop event - with the occupancy snapshots and per-DOU
    stat deltas the plan compiler needs - until the signature recurs,
    at which point :func:`_build_lock_plan` compiles the round.
    """

    __slots__ = (
        "sig", "start", "deques", "caps", "index_of", "anchor_occ",
        "credits", "counters", "items",
    )

    def __init__(self, sig, tick, universe, dous, credits) -> None:
        self.sig = sig
        self.start = tick
        self.deques, self.caps, self.index_of = universe
        self.anchor_occ = tuple(map(len, self.deques))
        self.credits = tuple(credits)
        self.counters = tuple(
            (dou, tuple(dou.counters)) for dou in dous
            if dou.counters
        )
        self.items: list = []

    def occ(self) -> tuple:
        return tuple(map(len, self.deques))

    def comm_state(self, columns, credits) -> tuple:
        """Pending-comm predicate inputs for each live credit-0 column.

        Captured at every batch event so the compiler can window the
        buffers whose empty/full state decided each column's parked
        classification.
        """
        out = []
        for cindex, column in enumerate(columns):
            if column.halted or credits[cindex]:
                continue
            pending = column.controller._pending
            if pending is None:
                continue
            op = pending.opcode.value
            if op == "recv":
                bufs = tuple(
                    (self.index_of[id(t.read_buffer._words)],
                     len(t.read_buffer._words))
                    for t in column.active_tiles()
                )
            elif op == "send":
                bufs = tuple(
                    (self.index_of[id(t.write_buffer._words)],
                     len(t.write_buffer._words))
                    for t in column.active_tiles()
                )
            else:
                continue
            out.append((cindex, op, bufs))
        return tuple(out)


def _build_lock_plan(recorder, period, dous, columns, runners, dividers):
    """Compile an armed recording into a :class:`_RoundPlan`, or None.

    Derives, for every occupancy predicate the recorded round
    evaluated (orbit starvation/backpressure classification, parked
    comm columns, no-progress DOU steps), the window of anchor
    occupancies under which the predicate keeps its recorded value,
    then folds all the occupancy-independent effects into integer
    deltas.
    """
    raw = recorder.items
    if not raw:
        return None
    total = 0
    for item in raw:
        total += item[1] if item[0] == "g" else 1
    if total != period:
        return None
    deques = recorder.deques
    caps = recorder.caps
    index_of = recorder.index_of
    anchor = recorder.anchor_occ
    n_bufs = len(deques)
    lo = [-_OCC_UNBOUNDED] * n_bufs
    hi = [_OCC_UNBOUNDED] * n_bufs

    def pin(j, occ_j):
        # Predicate sat exactly on this occupancy: the buffer may not
        # drift at all between rounds.
        if lo[j] < 0:
            lo[j] = 0
        if hi[j] > 0:
            hi[j] = 0

    def need_word(j, occ_j):
        # Non-empty was load-bearing: tolerate drift down to one word.
        floor = 1 - occ_j
        if floor > lo[j]:
            lo[j] = floor

    def need_room(j, occ_j, cap):
        ceil = cap - 1 - occ_j
        if ceil < hi[j]:
            hi[j] = ceil

    def block_constraints(plan, occ):
        # moved == 0 through this state: each block either starved or
        # fully backpressured.  Window the buffers so the recorded
        # branch recurs.
        for src_words, destinations in plan.blocks:
            j = index_of[id(src_words)]
            if occ[j] == 0:
                pin(j, 0)
                continue
            need_word(j, occ[j])
            for dest_words, capacity in destinations:
                jd = index_of[id(dest_words)]
                pin(jd, occ[jd])  # recorded full; must stay full

    def comm_constraints(comm, parked_mask):
        for cindex, op, bufs in comm:
            blocked = parked_mask >> cindex & 1
            if op == "recv":
                for j, occ_j in bufs:
                    if blocked and occ_j == 0:
                        pin(j, 0)
                    elif not blocked:
                        need_word(j, occ_j)
            else:
                for j, occ_j in bufs:
                    if blocked and occ_j >= caps[j]:
                        pin(j, occ_j)
                    elif not blocked:
                        need_room(j, occ_j, caps[j])

    items = []
    batch_events = 0
    batched_ticks = 0
    dense_ticks = 0
    parked_edges = 0
    orbit_laps = 0
    fused_calls = 0

    reach_cache = {}

    def reach(dou):
        # Every buffer a real ``dou.step()`` can possibly mutate: the
        # sources and destinations of all its transfer-plan blocks
        # plus its comm ports.  A diverging step is confined to this
        # set, so the post-tick occupancy check only needs these
        # indexes rather than the whole universe.
        out = reach_cache.get(id(dou))
        if out is not None:
            return out
        out = set()
        for plan in dou._plans:
            if plan is None:
                continue
            for src_words, destinations in plan.blocks:
                out.add(index_of[id(src_words)])
                for dest_words, _capacity in destinations:
                    out.add(index_of[id(dest_words)])
        for port in dou.write_ports.values():
            out.add(index_of[id(port._words)])
        for port in dou.read_ports.values():
            out.add(index_of[id(port._words)])
        reach_cache[id(dou)] = out
        return out

    def compile_acts(acts_raw):
        nonlocal fused_calls
        out = []
        for act in acts_raw:
            kind = act[0]
            cindex = act[1]
            column = columns[cindex]
            if kind == 0:
                out.append((0, cindex, column))
            elif kind == 1:
                (_, _, pre_pc, want, post_pc, comm_head, depth) = act
                if comm_head:
                    fused_calls += 1
                out.append((
                    1, cindex, column, column.controller,
                    runners[cindex], pre_pc, want, post_pc, depth,
                ))
            else:
                (_, _, post_pc, halted, pending, depth) = act
                out.append((
                    3, cindex, column, column.controller,
                    runners[cindex], post_pc, halted, pending, depth,
                ))
        return tuple(out)

    for item in raw:
        if item[0] == "g":
            (_, span, occ, states, effects, comm, parked_mask,
             charges, burns, acts_raw) = item
            # Split the frozen-orbit effects: machines owing only
            # their cycle count ride a bare tuple; the rest carry
            # their precomputed stall/bus/state deltas.
            cyc_dous = []
            dou_fx = []
            for position, dou in enumerate(dous):
                orbit = dou._orbits[states[position]]
                if orbit is None:
                    return None
                for state_index in orbit:
                    block_constraints(dou._plans[state_index], occ)
                fx = effects[position]
                length = len(fx)
                laps, rem = divmod(span, length)
                blocked = 0
                bus_words = 0
                bus_traffic = 0
                for orbit_pos, (stalls, active) in enumerate(fx):
                    visits = laps + (1 if orbit_pos < rem else 0)
                    if not visits:
                        continue
                    if stalls:
                        blocked += visits
                    if active:
                        bus_words += active * visits
                        bus_traffic += visits
                end_state = orbit[rem]
                if (not blocked and not bus_words
                        and end_state == states[position]):
                    cyc_dous.append(dou)
                else:
                    dou_fx.append((
                        dou, blocked, bus_words, bus_traffic,
                        end_state,
                    ))
            comm_constraints(comm, parked_mask)
            charge_objs = tuple(
                (columns[cindex], owed) for cindex, owed in charges
            )
            parked_edges += sum(owed for _, owed in charges)
            items.append((
                0, span, tuple(cyc_dous), tuple(dou_fx), charge_objs,
                tuple(burns),
                compile_acts(acts_raw) if acts_raw is not None
                else None,
            ))
            batch_events += 1
            batched_ticks += span
            continue
        (_, occ_post, per_dou, acts_raw) = item
        ops = []
        real_dous = []
        for position, dou in enumerate(dous):
            (state_pre, moved, touched, blocked_d, bus_words_d,
             bus_traffic_d, retired_d, state_post, counter_sets,
             occ_at) = per_dou[position]
            lap = dou.lap_plan(state_pre)
            if (lap is not None and lap.length == 1
                    and moved == lap.n_captures):
                ops.append((0, dou, lap))
                orbit_laps += 1
            elif not moved and not touched and not retired_d:
                # A no-progress step: window the deciding buffers
                # (at *this* machine's decision point - earlier
                # machines in the same tick may already have moved
                # words) and fold the accounting into integers.
                plan = dou._plans[state_pre]
                if plan is not None:
                    block_constraints(plan, occ_at)
                ops.append((
                    1, dou, blocked_d, bus_words_d, bus_traffic_d,
                    state_post, counter_sets,
                ))
            else:
                # Partial or multi-lap transfer: keep the real step,
                # validated by its moved count plus a post-tick
                # occupancy check over every buffer it can reach.
                ops.append((2, dou, moved))
                real_dous.append(dou)
        post_check = None
        if real_dous:
            touched_set = set()
            for dou in real_dous:
                touched_set |= reach(dou)
            post_check = tuple(
                (j, occ_post[j]) for j in sorted(touched_set)
            )
        items.append((
            1, tuple(ops), post_check, compile_acts(acts_raw),
        ))
        dense_ticks += 1

    # Merge maximal runs of identical edge-free tick items into one
    # K-lap application (payloads are pre-scaled by K at build time).
    merged = []
    i = 0
    n = len(items)
    while i < n:
        item = items[i]
        if item[0] != 1 or item[2] is not None or item[3]:
            merged.append(item)
            i += 1
            continue
        k = 1
        while i + k < n and items[i + k] == item:
            k += 1
        if k == 1:
            merged.append(item)
            i += 1
            continue
        ops_k = []
        mergeable = True
        for op in item[1]:
            if op[0] == 0:
                ops_k.append(op)
            elif op[0] == 1:
                (_, dou, blocked_d, bus_words_d, bus_traffic_d,
                 state_post, counter_sets) = op
                if counter_sets:
                    mergeable = False
                    break
                ops_k.append((
                    1, dou, blocked_d * k, bus_words_d * k,
                    bus_traffic_d * k, state_post, (),
                ))
            else:
                mergeable = False
                break
        if not mergeable:
            merged.append(item)
            i += 1
            continue
        merged.append((2, tuple(ops_k), k))
        i += k

    occ_checks = []
    for j in range(n_bufs):
        if lo[j] == -_OCC_UNBOUNDED and hi[j] == _OCC_UNBOUNDED:
            continue
        occ_checks.append((
            deques[j],
            anchor[j] + lo[j] if lo[j] > -_OCC_UNBOUNDED else 0,
            anchor[j] + hi[j] if hi[j] < _OCC_UNBOUNDED
            else _OCC_UNBOUNDED,
        ))
    adds = (
        batch_events, batched_ticks, dense_ticks, parked_edges,
        orbit_laps, fused_calls,
    )
    fn, source, binds = _emit_round(
        tuple(merged), recorder.credits, recorder.counters,
        tuple(occ_checks), deques, anchor, dividers, runners,
    )
    return _RoundPlan(period, fn, adds, source), binds


def _emit_round(
    items, entry_credits, counter_checks, occ_checks, deques, anchor,
    dividers, runners,
):
    """Emit one round as specialized Python and compile it.

    Same technique the column runner uses for tile code: every machine
    object (DOU, bus, column, controller, runner, buffer deque, lap
    plan) is bound once in an enclosing scope and every recorded
    constant is folded into the source, so a replayed round runs with
    no dispatch, no tuple unpacking, and no per-action call overhead.
    Returns ``(fn, source, binds)`` where ``fn(tick, limit, credits)``
    -> ``(ok, new_tick)`` and ``binds`` is the bound-object list in
    bind-name order (the shared plan cache re-resolves it on another
    engine of the same chip structure).
    """
    binds = []
    bind_names = []
    names = {}

    def nm(obj, prefix):
        key = id(obj)
        name = names.get(key)
        if name is None:
            name = "%s%d" % (prefix, len(binds))
            names[key] = name
            binds.append(obj)
            bind_names.append(name)
        return name

    body = []

    def w(depth, text):
        body.append("    " * depth + text)

    def emit_generic_edge(depth, cindex, column, runner):
        # The dense loop's fallback for one clock edge: burn a credit,
        # else let the runner pre-execute, else single-step the tile
        # clock.  Keeps an off-plan tick consistent before the abort.
        w(depth, "if credits[%d]:" % cindex)
        w(depth + 1, "credits[%d] -= 1" % cindex)
        if runner is not None:
            div = dividers[cindex]
            w(depth, "else:")
            w(depth + 1, "consumed = %s.run_edges((limit - tick + %d) // %d)"
              % (nm(runner, "rn"), div, div))
            w(depth + 1, "if consumed:")
            w(depth + 2, "credits[%d] = consumed - 1" % cindex)
            w(depth + 1, "else:")
            w(depth + 2, "%s.step_tile_clock()" % nm(column, "c"))
        else:
            w(depth, "else:")
            w(depth + 1, "%s.step_tile_clock()" % nm(column, "c"))

    def emit_acts(depth, acts):
        for act in acts:
            kind = act[0]
            cindex = act[1]
            column = act[2]
            cn = nm(column, "c")
            w(depth, "if %s.halted:" % cn)
            w(depth + 1, "fail = True")
            if kind == 0:
                w(depth, "elif credits[%d]:" % cindex)
                w(depth + 1, "credits[%d] -= 1" % cindex)
                w(depth, "else:")
                w(depth + 1, "fail = True")
                emit_generic_edge(depth + 1, cindex, column,
                                  runners[cindex])
            elif kind == 1:
                (_, _, _, ctrl, runner, pre_pc, want, post_pc,
                 depth_rec) = act
                tn = nm(ctrl, "ct")
                div = dividers[cindex]
                w(depth,
                  "elif credits[%d] == 0 and %s.pc == %d "
                  "and %s._pending is None "
                  "and not %s._stall_pending:"
                  % (cindex, tn, pre_pc, tn, tn))
                # Same budget formula as the dense loop: a tighter cap
                # (e.g. exactly ``want``) would stop the runner before
                # folding a loop-end branch the recording folded into
                # its last edge.
                w(depth + 1,
                  "consumed = %s.run_edges((limit - tick + %d) // %d)"
                  % (nm(runner, "rn"), div, div))
                w(depth + 1, "if consumed:")
                w(depth + 2, "credits[%d] = consumed - 1" % cindex)
                w(depth + 1, "else:")
                w(depth + 2, "%s.step_tile_clock()" % cn)
                w(depth + 1,
                  "if consumed != %d or %s.pc != %d "
                  "or len(%s._loop_stack) != %d:"
                  % (want, tn, post_pc, tn, depth_rec))
                w(depth + 2, "fail = True")
                w(depth, "else:")
                w(depth + 1, "fail = True")
                emit_generic_edge(depth + 1, cindex, column,
                                  runners[cindex])
            else:
                (_, _, _, ctrl, runner, post_pc, halted, pending,
                 depth_rec) = act
                tn = nm(ctrl, "ct")
                w(depth, "elif credits[%d]:" % cindex)
                w(depth + 1, "credits[%d] -= 1" % cindex)
                w(depth + 1, "fail = True")
                w(depth, "else:")
                # No speculative runner call: refusal is determined by
                # control state (validated) except at a comm head,
                # where step_tile_clock applies the identical
                # buffer-gated semantics directly - a divergence from
                # the recorded outcome shows up in these post checks.
                w(depth + 1, "%s.step_tile_clock()" % cn)
                halt_check = ("or not %s.halted " % cn) if halted \
                    else ("or %s.halted " % cn)
                pend_check = ("or %s._pending is None " % tn) if pending \
                    else ("or %s._pending is not None " % tn)
                w(depth + 1,
                  "if (%s.pc != %d %s%sor len(%s._loop_stack) != %d):"
                  % (tn, post_pc, halt_check, pend_check, tn,
                     depth_rec))
                w(depth + 2, "fail = True")

    def emit_arith(depth, op, k):
        (_, dou, blocked_d, bus_words_d, bus_traffic_d, state_post,
         counter_sets) = op
        dn = nm(dou, "d")
        w(depth, "%s.cycles += %d" % (dn, k))
        if blocked_d:
            w(depth, "%s.blocked_cycles += %d" % (dn, blocked_d))
        if bus_words_d or bus_traffic_d:
            bn = nm(dou.bus, "b")
            if bus_words_d:
                w(depth, "%s.words_moved += %d" % (bn, bus_words_d))
            if bus_traffic_d:
                w(depth, "%s.cycles_with_traffic += %d"
                  % (bn, bus_traffic_d))
        w(depth, "%s.state_index = %d" % (dn, state_post))
        for index, value in counter_sets:
            w(depth, "%s.counters[%d] = %d" % (dn, index, value))

    # --- entry checks -------------------------------------------------
    cond = " or ".join(
        "credits[%d] != %d" % (i, c)
        for i, c in enumerate(entry_credits)
    )
    if cond:
        w(0, "if %s:" % cond)
        w(1, "return False, tick")
    for dou, counters in counter_checks:
        w(0, "if %s.counters != %r:" % (nm(dou, "d"), list(counters)))
        w(1, "return False, tick")
    for words, low, high in occ_checks:
        qn = nm(words, "q")
        unbounded_hi = high >= _OCC_UNBOUNDED
        if unbounded_hi and low <= 0:
            continue
        if unbounded_hi:
            w(0, "if len(%s) < %d:" % (qn, low))
        elif low <= 0:
            w(0, "if len(%s) > %d:" % (qn, high))
        elif low == high:
            w(0, "if len(%s) != %d:" % (qn, low))
        else:
            w(0, "if not %d <= len(%s) <= %d:" % (low, qn, high))
        w(1, "return False, tick")
    # Entry occupancies for every buffer some post-tick check compares
    # against (drift-adjusted: expected = entry + recorded delta).
    post_union = set()
    for item in items:
        if item[0] == 1 and item[2] is not None:
            for j, _expect in item[2]:
                post_union.add(j)
    entry_var = {}
    for j in sorted(post_union):
        var = "n%d" % j
        entry_var[j] = var
        w(0, "%s = len(%s)" % (var, nm(deques[j], "q")))

    # --- the round body -----------------------------------------------
    for item in items:
        tag = item[0]
        if tag == 0:
            _, span, cyc_dous, dou_fx, charges, burns, acts = item
            for dou in cyc_dous:
                w(0, "%s.cycles += %d" % (nm(dou, "d"), span))
            for dou, blocked, bus_words, bus_traffic, end in dou_fx:
                dn = nm(dou, "d")
                w(0, "%s.cycles += %d" % (dn, span))
                if blocked:
                    w(0, "%s.blocked_cycles += %d" % (dn, blocked))
                if bus_words:
                    bn = nm(dou.bus, "b")
                    w(0, "%s.words_moved += %d" % (bn, bus_words))
                    w(0, "%s.cycles_with_traffic += %d"
                      % (bn, bus_traffic))
                w(0, "%s.state_index = %d" % (dn, end))
            for column, owed in charges:
                cn = nm(column, "c")
                w(0, "%s.tile_cycles += %d" % (cn, owed))
                w(0, "%s.comm_stalls += %d" % (cn, owed))
            for cindex, burn in burns:
                w(0, "credits[%d] -= %d" % (cindex, burn))
            w(0, "tick += %d" % span)
            if acts:
                w(0, "fail = False")
                emit_acts(0, acts)
                w(0, "if fail:")
                w(1, "return False, tick")
        elif tag == 1:
            _, ops, post_check, acts = item
            divergent = any(op[0] != 1 for op in ops)
            if divergent:
                # A lap or real step that diverges finishes the tick
                # generically (every remaining machine single-steps),
                # still runs the clock-edge actions, and aborts - all
                # applied state is real.
                w(0, "bad = False")
                w(0, "while True:")
                for pos, op in enumerate(ops):
                    kind = op[0]
                    dou = op[1]
                    dn = nm(dou, "d")
                    if kind == 1:
                        emit_arith(1, op, 1)
                        continue
                    if kind == 0:
                        w(1, "if not %s.apply_laps(%s, 1):"
                          % (dn, nm(op[2], "lap")))
                    else:
                        w(1, "if %s.step() != %d:" % (dn, op[2]))
                    if kind == 0:
                        w(2, "%s.step()" % dn)
                    for later in ops[pos + 1:]:
                        w(2, "%s.step()" % nm(later[1], "d"))
                    w(2, "bad = True")
                    w(2, "break")
                w(1, "break")
                w(0, "tick += 1")
            else:
                for op in ops:
                    emit_arith(0, op, 1)
                w(0, "tick += 1")
            if post_check is not None:
                cond = " or ".join(
                    "len(%s) != %s%s" % (
                        nm(deques[j], "q"), entry_var[j],
                        " + %d" % (expect - anchor[j])
                        if expect > anchor[j]
                        else (" - %d" % (anchor[j] - expect)
                              if expect < anchor[j] else ""),
                    )
                    for j, expect in post_check
                )
                w(0, "if not bad and (%s):" % cond)
                w(1, "bad = True")
            if acts:
                w(0, "fail = False")
                emit_acts(0, acts)
                if divergent:
                    w(0, "if bad or fail:")
                else:
                    w(0, "if fail:")
                w(1, "return False, tick")
            elif divergent:
                w(0, "if bad:")
                w(1, "return False, tick")
        else:
            # Merged run of identical edge-free compiled ticks: guards
            # aggregated over all K laps up front, so an abort lands
            # cleanly at the tick boundary with nothing applied.
            _, ops, k = item
            guards = []
            for op in ops:
                if op[0] != 0:
                    continue
                lap = op[2]
                for words in lap.sources:
                    guards.append("len(%s) < %d" % (nm(words, "q"), k))
                for words, capacity in lap.rooms:
                    guards.append("len(%s) > %d"
                                  % (nm(words, "q"), capacity - k))
            if guards:
                w(0, "if %s:" % " or ".join(guards))
                w(1, "return False, tick")
            for op in ops:
                if op[0] == 0:
                    w(0, "%s.apply_laps(%s, %d)"
                      % (nm(op[1], "d"), nm(op[2], "lap"), k))
                else:
                    emit_arith(0, op, k)
            w(0, "tick += %d" % k)
    w(0, "return True, tick")

    lines = ["def _make(B):"]
    for i, name in enumerate(bind_names):
        lines.append("    %s = B[%d]" % (name, i))
    lines.append("    def _round(tick, limit, credits):")
    lines.extend("        " + line for line in body)
    lines.append("    return _round")
    source = "\n".join(lines)
    code = _ROUND_CODE_CACHE.get(source)
    if code is None:
        if len(_ROUND_CODE_CACHE) >= LOCKSTEP_PLAN_CAP:
            _ROUND_CODE_CACHE.clear()
        code = compile(source, "<lockstep-round>", "exec")
        _ROUND_CODE_CACHE[source] = code
    namespace = {}
    exec(code, namespace)
    return namespace["_make"](binds), source, binds


# Compiled round code objects, keyed by their generated source.  The
# emitter's bind names are assigned in deterministic discovery order,
# so re-simulating the same chip structure (fresh engine, fresh
# machine objects) regenerates byte-identical source and skips the
# ``compile()`` - only the cheap closure rebind runs.
_ROUND_CODE_CACHE: dict = {}

# Whole lockstep plans shared across engine instances, keyed by
# ``(fingerprint, signature)`` and holding ``(source, paths, adds,
# period)``: the generated round source, the bound objects
# re-expressed as structural paths (column/DOU/runner/universe
# indexes), the round's profile-counter totals, and its tick span.  A fresh engine simulating a
# structurally identical chip rebinds the paths against its own
# machine objects and gets the plan at the signature's FIRST sighting
# - no recording window, no analysis, no emission.  Safety matches
# intra-engine reuse: the fingerprint pins program text and transfer
# topology, the signature pins the control anchor, and the round's
# own entry checks and validated primitives catch (and cleanly abort
# on) any residual divergence.
_SHARED_LOCK_PLANS: dict = {}
_SHARED_LOCK_CAP = 1024

# Structural fingerprints interned to small ints so shared-cache keys
# stay cheap to hash.
_FP_INTERN: dict = {}

# Local plan-cache marker for a signature already probed against the
# shared cache and missed.  Signatures recur many times before a
# recording window completes; remembering the miss keeps each
# recurrence to one local dict lookup instead of re-hashing the
# (fingerprint, signature) key against the shared cache every time.
_PROBE_MISS = object()


class CompiledEngine(Engine):
    """Hyperperiod-compiled stepping: skip what cannot change state.

    At construction the engine classifies every DOU: machines whose
    program is inert can never move a word, so they are accounted
    arithmetically from the start, and the rest are *demotable* - the
    moment one parks in a closed orbit of non-transferring states
    (:meth:`~repro.arch.dou.Dou.is_quiescent`, e.g. the idle park of
    ``linear_schedule(repeat=k)``) it too stops being stepped, with
    re-promotion impossible by construction.  The clock tree's edge
    schedule is compiled lazily, per divider tuple, into a plan cache
    (:class:`_ClockPlan`) - runtime retuning through
    :meth:`~repro.arch.chip.Chip.retune` just selects another plan.
    Two striding modes follow:

    * no DOU needs stepping ("sparse"): only reference ticks carrying
      at least one live column edge are visited, located through the
      plan's precomputed next-active-offset table in O(1) per jump;
    * some DOU needs stepping ("dense"): every tick steps those DOUs
      (they run at the reference rate by definition) through their
      compiled per-state plans, column edges come from the prebound
      object table with no per-tick modulo or gate checks in the
      common case, and edge-free gaps where every stepped DOU sits in
      a starved self-loop are settled arithmetically.

    In both modes a column that has halted stops being stepped; the
    bubbles and tile cycles the reference engine would have accrued on
    its remaining clock edges are reconstructed arithmetically at the
    end of each window, as are the cycle counts of every non-stepped
    DOU and the post-halt bus drain.  PLL-relock gates
    (``chip.clock_gate_until``) suppress a column's edges the same way
    the reference stepping loop does.  ``until`` predicates and
    observers need tick-accurate visibility, so their presence falls
    back to the shared tick-by-tick loop.
    """

    name = "compiled"

    def __init__(self, chip: Chip, observers: tuple = ()) -> None:
        super().__init__(chip, observers)
        compile_start = perf_counter()
        #: divider tuple -> compiled _ClockPlan
        self._plans: dict = {}
        dous = [column.dou for column in chip.columns]
        if chip.horizontal_dou is not None:
            dous.append(chip.horizontal_dou)
        #: every DOU, in the reference loop's stepping order
        #: (columns ascending, then the horizontal machine).
        self._all_dous = tuple(dous)
        #: indexes into _all_dous still stepped tick-by-tick; inert
        #: programs start demoted, the rest may demote at run time.
        self._stepped = [
            index for index, dou in enumerate(dous)
            if not dou.program.is_inert()
        ]
        self._refresh_demotable()
        #: per-column compute-run pre-executors (None = reference
        #: fetch only) and the count of upcoming clock edges each
        #: column has already executed through its runner.
        self._runners = tuple(
            compile_column_runner(column) for column in chip.columns
        )
        self._credits = [0] * len(chip.columns)
        #: lockstep signature -> validated _RoundPlan.  Keyed on the
        #: full round anchor (divider tuple included), so a governor
        #: retuning the clock tree gets a fresh plan per operating
        #: point and stale plans are unreachable by construction.
        self._lock_plans: dict = {}
        #: lazily-built communication-buffer universe shared by every
        #: lockstep recording: (deque tuple, capacity tuple, id->index).
        self._lock_universe = None
        #: lazily-computed interned structural fingerprint and
        #: object-id -> structural-path map for the shared plan cache.
        self._lock_fp = None
        self._lock_path_of = None
        #: highest tick any window has reached; a chip observed below
        #: it again means the run restarted under this engine.
        self._profile_mark = 0
        #: wall-clock attribution is collected only when
        #: ``profile_enabled`` is set; the event counters are always
        #: maintained (they sit off the per-tick hot path).
        self.profile_enabled = False
        self._profile = {
            "compile_s": perf_counter() - compile_start,
            "dense_s": 0.0,
            "sparse_s": 0.0,
            "settle_s": 0.0,
            "drain_s": 0.0,
            "dense_ticks": 0,
            "batch_events": 0,
            "batched_ticks": 0,
            "sparse_steps": 0,
            "parked_edges": 0,
            "lockstep_batches": 0,
            "orbit_laps": 0,
            "fused_runner_calls": 0,
        }
        #: Typed view over the same dict the hot loops mutate raw:
        #: the registry owns instrument naming and kinds, ``_profile``
        #: stays the fast store (``dict[key] += n`` in the inner
        #: loops), and :meth:`profile_snapshot` renders through it.
        self.metrics = MetricsRegistry.adopt(
            self._profile, namespace="engine"
        )
        for key in self._profile:
            if key.endswith("_s"):
                self.metrics.gauge(key)
            else:
                self.metrics.counter(key)
        if BUS.active:
            # No wall-clock in the args: trace output must be
            # byte-identical across identical runs (the exporter
            # determinism contract); compile_s stays readable through
            # profile_snapshot().
            BUS.instant(
                "engine_compiled",
                tick=chip.reference_ticks,
                track="engine",
                args={"columns": len(chip.columns)},
            )

    def profile_snapshot(self) -> dict:
        """Phase timings and event counters for ``--profile`` runs.

        Compatibility view over :attr:`metrics` - same keys as ever,
        so the ``BENCH_engine.json`` profile schema and the CI counter
        checks are unaffected by the registry migration.  Timing keys
        are populated only when :attr:`profile_enabled` was set before
        the run; counter keys are always exact.  The runner aggregate
        folds in every column's pre-execution statistics (calls, edges
        consumed, vectorized batches).
        """
        data = self.metrics.snapshot()
        calls = edges = batches = iterations = 0
        for runner in self._runners:
            if runner is None:
                continue
            calls += runner.calls
            edges += runner.edges
            batches += runner.vector_batches
            iterations += runner.vector_iterations
        data["runner_calls"] = calls
        data["runner_edges"] = edges
        data["vector_batches"] = batches
        data["vector_iterations"] = iterations
        return data

    def reset_profile(self) -> None:
        """Zero phase timings and event counters for a fresh run.

        ``compile_s`` is kept - construction happened once and stays
        attributable.  The per-column runner counters fold into
        :meth:`profile_snapshot`, so they are reset too.  Called
        automatically when :meth:`advance` observes the chip below the
        last settled tick (a restarted run under a reused engine);
        callers sharing one engine across measured runs may also call
        it directly.
        """
        profile = self._profile
        for key, value in profile.items():
            if key == "compile_s":
                continue
            profile[key] = 0.0 if isinstance(value, float) else 0
        for runner in self._runners:
            if runner is None:
                continue
            runner.calls = 0
            runner.edges = 0
            runner.vector_batches = 0
            runner.vector_iterations = 0
        self._profile_mark = self.chip.reference_ticks

    def _refresh_demotable(self) -> None:
        self._demotable = any(
            self._all_dous[index].program.quiescent_states
            for index in self._stepped
        )

    def _demote_quiescent(self) -> None:
        """Stop stepping DOUs parked in a closed transfer-free orbit.

        Safe at any tick: a quiescent machine's remaining execution
        only increments its cycle counter, which the window settlement
        reconstructs arithmetically.  Demotion is permanent - the
        orbit is closed, so the machine can never transfer again.
        """
        if not self._demotable:
            return
        kept = [
            index for index in self._stepped
            if not self._all_dous[index].is_quiescent()
        ]
        if len(kept) != len(self._stepped):
            self._stepped = kept
            self._refresh_demotable()

    def _plan(self) -> _ClockPlan:
        """The compiled activity schedule for the current dividers.

        Cached per divider tuple, so an epoch run that revisits an
        operating point compiles its edge table exactly once.
        """
        key = self.chip.clock.dividers
        plan = self._plans.get(key)
        if plan is None:
            plan = _ClockPlan(self.chip.clock, self.chip.columns)
            self._plans[key] = plan
        return plan

    def advance(self, ticks: int) -> int:
        if self.observers:
            return _advance_ticked(self.chip, self.observers, ticks)
        if ticks <= 0 or self.chip.all_halted:
            return 0
        start = self.chip.reference_ticks
        if start < self._profile_mark:
            # The chip sits below a tick this engine already settled:
            # the run restarted (rewound/rebuilt chip under a reused
            # engine).  Stale counters would double-count the old run.
            self.reset_profile()
        end = self._stride_window(start + ticks)
        self._profile_mark = end
        return end - start

    def run(
        self,
        max_ticks: int = DEFAULT_MAX_TICKS,
        until: Callable[[Chip], bool] | None = None,
        drain_hyperperiods: int = 2,
    ) -> SimulationStats:
        if until is not None or self.observers:
            return _run_ticked(
                self.chip, self.observers, max_ticks, until,
                drain_hyperperiods,
            )
        start = self.chip.reference_ticks
        if start < self._profile_mark:
            self.reset_profile()
        end = self._stride_window(start + max_ticks)
        # The reference loop spends one budget iteration *observing*
        # all_halted after the final step, so a chip halting on the
        # very last tick in budget still exhausts it.
        if end - start >= max_ticks:
            raise _budget_error(max_ticks)
        self._drain(drain_hyperperiods * self._plan().period)
        self._profile_mark = self.chip.reference_ticks
        return collect(self.chip)

    # ------------------------------------------------------------------
    # striding
    # ------------------------------------------------------------------
    #: Ticks between quiescence re-checks in the dense loop (also the
    #: minimum, so tiny hyperperiods do not check every tick).
    DEMOTION_CHECK_TICKS = 64

    def _stride_window(self, limit: int) -> int:
        """Advance from the current tick to at most ``limit``.

        Stops early the moment every column has halted (at the same
        tick the reference loop would observe ``all_halted``), settles
        the skipped arithmetic for the window, and returns the end
        tick.
        """
        chip = self.chip
        start = chip.reference_ticks
        tracing = BUS.active
        if tracing:
            window_pre = self._window_open()
        initial_cycles = [
            column.tile_cycles for column in chip.columns
        ]
        dou_cycles = [dou.cycles for dou in self._all_dous]
        self._demote_quiescent()
        # Touch the plan cache even on sparse windows: one compiled
        # plan per operating point the run visits is part of the
        # engine's contract (and what the epoch layer's cache tests
        # pin down).
        self._plan()
        profiling = self.profile_enabled
        mark = perf_counter() if profiling else 0.0
        if self._stepped:
            end = self._dense_until(start, limit)
            phase = "dense_s"
        else:
            end = self._sparse_until(start, limit)
            phase = "sparse_s"
        if profiling:
            now = perf_counter()
            self._profile[phase] += now - mark
            mark = now
        self._settle_window(start, end, initial_cycles, dou_cycles)
        if profiling:
            self._profile["settle_s"] += perf_counter() - mark
        chip.reference_ticks = end
        if tracing:
            self._window_close(window_pre, start, end, phase[:-2])
        return end

    #: Profile counters whose per-window deltas ride on the window
    #: span's args when a sink is subscribed.
    WINDOW_DELTA_KEYS = (
        "dense_ticks", "sparse_steps", "batch_events",
        "batched_ticks", "parked_edges", "lockstep_batches",
        "orbit_laps", "fused_runner_calls",
    )

    def _window_open(self) -> tuple:
        """Baselines for window-granularity telemetry (tracing only)."""
        profile = self._profile
        return (
            [column.halted for column in self.chip.columns],
            [profile[key] for key in self.WINDOW_DELTA_KEYS],
        )

    def _window_close(
        self, pre: tuple, start: int, end: int, phase: str
    ) -> None:
        """Emit the window's telemetry: one engine-track span with the
        profile-counter deltas, plus per-clock-domain tracks (divider
        rung, relock-gated stretch, cumulative issue/stall counters,
        halt instants)."""
        chip = self.chip
        halted_pre, counters_pre = pre
        profile = self._profile
        deltas = {
            key: profile[key] - base
            for key, base in zip(self.WINDOW_DELTA_KEYS, counters_pre)
            if profile[key] != base
        }
        BUS.span(
            f"window:{phase}", start, end, track="engine",
            args=deltas,
        )
        dividers = chip.clock.dividers
        gates = chip.clock_gate_until
        for index, column in enumerate(chip.columns):
            track = f"column{index}"
            BUS.counter(
                "divider", dividers[index], tick=start, track=track,
            )
            if gates[index] > start:
                BUS.span(
                    "gated", start, min(gates[index], end),
                    track=track,
                )
            BUS.counter(
                "issued", column.controller.issued, tick=end,
                track=track,
            )
            BUS.counter(
                "comm_stalls", column.comm_stalls, tick=end,
                track=track,
            )
            if column.halted and not halted_pre[index]:
                BUS.instant("halted", tick=end, track=track)

    def _sparse_until(self, start: int, limit: int) -> int:
        """No DOU to step: settle each live column independently.

        With every DOU demoted or inert, no word can cross a domain
        boundary for the rest of the window, so columns cannot
        interact and each advances over its private edge schedule in
        one pass: edges the column runner has pre-executed burn in
        O(1), compiled compute runs batch through the runner, and a
        column that blocks on a comm buffer is charged all remaining
        stall edges in closed form (nothing can ever unblock it).
        Returns the tick at which the reference loop would observe
        all-halted, or ``limit``.
        """
        chip = self.chip
        columns = chip.columns
        gates = chip.clock_gate_until
        clock = chip.clock
        dividers = clock.dividers
        credits = self._credits
        runners = self._runners
        profile = self._profile
        live = 0
        last_halt = -1
        for cindex, column in enumerate(columns):
            if column.halted:
                continue
            live += 1
            divider = dividers[cindex]
            base = max(start, gates[cindex])
            tick = base + (-base) % divider
            runner = runners[cindex]
            while tick < limit:
                remaining = (limit - tick + divider - 1) // divider
                credit = credits[cindex]
                if credit:
                    if credit > remaining:
                        credit = remaining
                    credits[cindex] -= credit
                    tick += credit * divider
                    continue
                if runner is not None:
                    consumed = runner.run_edges(remaining)
                    if consumed:
                        tick += consumed * divider
                        continue
                outcome = column.step_tile_clock()
                profile["sparse_steps"] += 1
                if column.halted:
                    live -= 1
                    if tick > last_halt:
                        last_halt = tick
                    break
                if outcome == STALLED:
                    # A comm stall with no live DOU repeats forever:
                    # charge every remaining edge of the window.
                    owed = clock.edges_in(cindex, tick + 1, limit)
                    if owed:
                        column.tile_cycles += owed
                        column.comm_stalls += owed
                        profile["parked_edges"] += owed
                    break
                tick += divider
        if live == 0:
            return last_halt + 1 if last_halt >= 0 else start
        return limit

    def _dense_until(self, start: int, limit: int) -> int:
        """Some DOU moves data: walk the compiled hyperperiod trace.

        The loop runs in segments.  A gated or unaligned prefix pays
        per-tick gate checks; the steady-state segment walks the
        prebound edge-object table with an incrementing offset (no
        modulo, no gate test, no halted-edge re-entry after the
        filtered check), batches no-progress gaps, and pre-executes
        compute runs.  Two batching mechanisms remove the per-tick
        loop in steady state:

        * **Orbit batching** - when every stepped DOU sits in a
          closed no-progress orbit (starved, fully backpressured, or
          idle; :meth:`~repro.arch.dou.Dou.stall_orbit`), no buffer
          can change until a progressing column edge executes, so the
          whole span through the next such edge settles
          arithmetically - including the edges of columns parked on a
          blocked SEND or RECV, which are charged as comm stalls.
        * **Run crediting** - at a live column's edge, the column
          runner pre-executes as many upcoming compute edges as the
          program allows; the column is then credited those edges,
          which burn in O(1) as their ticks pass (or inside an orbit
          jump).

        Segment boundaries double as quiescence-demotion checkpoints;
        when the last stepped DOU demotes, the window degrades to the
        sparse per-column loop.

        On top of both, the loop hunts for a recurring **lockstep
        round**: the same anchor signature (column pcs, pending/loop
        structure, credits, DOU states, hyperperiod phase) seen at two
        batch-event safepoints a whole number of hyperperiods apart.
        Detection is two-phase so the steady state pays nothing: the
        first recurrence of a signature *arms* a :class:`_LockRecorder`
        that captures exactly one round richly (occupancy snapshots,
        per-DOU stat deltas, comm predicate inputs); the next
        recurrence compiles the capture into a :class:`_RoundPlan`
        whose replays (:meth:`_lock_replay`) settle whole
        producer/consumer exchange rounds per iteration - entry-
        validated by credit/counter equality and per-buffer occupancy
        windows, with only the genuinely irregular primitives executed
        and self-validated live.  Any divergence aborts back here with
        the machine state real and consistent.
        """
        chip = self.chip
        columns = chip.columns
        gates = chip.clock_gate_until
        clock = chip.clock
        dividers = clock.dividers
        plan = self._plan()
        period = plan.period
        edges = plan.edges
        edge_objs = plan.edge_objs
        max_gate = max(gates)
        check_ticks = max(period, self.DEMOTION_CHECK_TICKS)
        all_dous = self._all_dous
        credits = self._credits
        runners = self._runners
        profile = self._profile
        lock_plans = self._lock_plans
        sigs: dict = {}  # lockstep signature -> last tick seen
        armed = None     # _LockRecorder while capturing one round
        live = sum(not column.halted for column in columns)
        tick = start
        while live and tick < limit:
            if not self._stepped:
                return self._sparse_until(tick, limit)
            dous = [all_dous[index] for index in self._stepped]
            segment_end = (
                min(limit, tick + check_ticks) if self._demotable
                else limit
            )
            if tick < max_gate:
                # Relock-gated prefix: tick-accurate gate checks, with
                # the same orbit batching as the steady state.  Once
                # every stepped DOU parks in a no-progress orbit, no
                # buffer can change before the next *executable* column
                # edge - and a relock gate pushes each column's next
                # executable edge out to its gate expiry - so the whole
                # gated stretch settles arithmetically instead of
                # paying per-tick gate checks.
                gate_end = min(segment_end, max_gate)
                gate_moved = 0
                while live and tick < gate_end:
                    if gate_moved == 0:
                        gate_batch = []
                        for dou in dous:
                            effects = dou.stall_orbit()
                            if effects is None:
                                gate_batch = None
                                break
                            gate_batch.append(effects)
                    else:
                        gate_batch = None
                    if gate_batch is not None:
                        jump = gate_end
                        for cindex, column in enumerate(columns):
                            if column.halted:
                                continue
                            divider = dividers[cindex]
                            base = tick
                            if gates[cindex] > base:
                                base = gates[cindex]
                            due = base + (-base) % divider
                            if due < jump:
                                jump = due
                        if jump > tick:
                            span = jump - tick
                            for position, dou in enumerate(dous):
                                dou.fast_stall_orbit(
                                    gate_batch[position], span,
                                )
                            profile["batch_events"] += 1
                            profile["batched_ticks"] += span
                            tick = jump
                            continue
                    gate_moved = 0
                    for dou in dous:
                        gate_moved += dou.step()
                    for index in edges[tick % period]:
                        column = columns[index]
                        if column.halted or tick < gates[index]:
                            continue
                        column.step_tile_clock()
                        if column.halted:
                            live -= 1
                    tick += 1
                continue
            offset = tick % period
            stepped_ticks = 0
            moved = 0
            while live and tick < segment_end:
                # Attempt an orbit batch only after a tick in which no
                # word moved (a no-progress orbit implies one), so the
                # classification never taxes the busy steady state.
                if moved == 0:
                    batch = []
                    for dou in dous:
                        effects = dou.stall_orbit()
                        if effects is None:
                            batch = None
                            break
                        batch.append(effects)
                else:
                    batch = None
                if batch is not None or offset == 0:
                    # Lockstep safepoint: replay a cached round for
                    # this anchor, compile one from an armed capture,
                    # or arm a capture on a recurring signature.
                    # Attempted at every no-progress orbit batch AND at
                    # every hyperperiod phase boundary: a periodic
                    # *busy* regime (words moving every tick, so no
                    # no-progress anchor ever appears) still recurs at
                    # phase 0, and its recorded round replays as lap
                    # applications and validated real steps with all
                    # the per-tick classification machinery skipped.
                    sig = self._lock_signature(tick, period)
                    lplan = lock_plans.get(sig)
                    if lplan is None and _SHARED_LOCK_PLANS:
                        lplan = self._lock_probe(sig)
                        lock_plans[sig] = (
                            _PROBE_MISS if lplan is None else lplan
                        )
                    elif lplan is _PROBE_MISS:
                        lplan = None
                    if (lplan is not None
                            and tick + lplan.period <= limit):
                        new_tick, rounds = self._lock_replay(
                            lplan, tick, limit, credits, profile,
                        )
                        if rounds:
                            lplan.failures = 0
                        else:
                            lplan.failures += 1
                            if lplan.failures > LOCKSTEP_FAILURES:
                                del lock_plans[sig]
                                if lplan.gkey is not None:
                                    _SHARED_LOCK_PLANS.pop(
                                        lplan.gkey, None,
                                    )
                        if new_tick != tick:
                            tick = new_tick
                            offset = tick % period
                            moved = 0
                            live = sum(
                                not column.halted
                                for column in columns
                            )
                            sigs.clear()
                            armed = None
                            continue
                    elif lplan is None:
                        if armed is not None:
                            if sig == armed.sig and tick > armed.start:
                                built = _build_lock_plan(
                                    armed, tick - armed.start,
                                    dous, columns, runners, dividers,
                                )
                                armed = None
                                if built is not None:
                                    built, binds = built
                                    if (len(lock_plans)
                                            > LOCKSTEP_PLAN_CAP):
                                        lock_plans.clear()
                                    lock_plans[sig] = built
                                    self._lock_share(sig, built, binds)
                        elif sigs.get(sig, tick) < tick:
                            armed = _LockRecorder(
                                sig, tick, self._lock_buffers(),
                                dous, credits,
                            )
                        sigs[sig] = tick
                if batch is not None:
                    if armed is not None:
                        g_occ = armed.occ()
                        g_states = tuple(
                            dou.state_index for dou in dous
                        )
                        g_comm = armed.comm_state(columns, credits)
                    jump = segment_end
                    parked = 0  # bitmask of comm-parked columns
                    for cindex, column in enumerate(columns):
                        if column.halted:
                            continue
                        credit = credits[cindex]
                        if credit == 0 and column.parked_on_comm():
                            parked |= 1 << cindex
                            continue
                        divider = dividers[cindex]
                        due = (
                            tick + (-tick) % divider
                            + credit * divider
                        )
                        if due < jump:
                            jump = due
                    # The freeze proof holds through the DOU steps AT
                    # ``jump`` as well: no buffer changed in
                    # [tick, jump), so the bus cycle at ``jump`` is one
                    # more orbit stall, and the due edges then execute
                    # inside this event (reference order: buses first,
                    # then due columns).  Only when the jump hits the
                    # segment boundary does the event stop short of an
                    # edge.  Parked columns owe one comm-stall edge per
                    # skipped edge, credited columns burn their
                    # pre-executed edges, and no other column has an
                    # edge before the jump.
                    run_edge = jump < segment_end
                    end = jump + 1 if run_edge else jump
                    span = end - tick
                    recording = armed is not None
                    for position, dou in enumerate(dous):
                        dou.fast_stall_orbit(batch[position], span)
                    charges_rec = [] if recording else None
                    burns_rec = [] if recording else None
                    for cindex, column in enumerate(columns):
                        if column.halted:
                            continue
                        if credits[cindex]:
                            burn = clock.edges_in(cindex, tick, jump)
                            if burn:
                                credits[cindex] -= burn
                                if recording:
                                    burns_rec.append((cindex, burn))
                        elif parked >> cindex & 1:
                            owed = clock.edges_in(cindex, tick, end)
                            if owed:
                                column.tile_cycles += owed
                                column.comm_stalls += owed
                                profile["parked_edges"] += owed
                                if recording:
                                    charges_rec.append((cindex, owed))
                    acts = None
                    if run_edge:
                        acts = [] if recording else None
                        for column in edge_objs[jump % period]:
                            if column.halted:
                                continue
                            cindex = column.index
                            if parked >> cindex & 1:
                                continue  # stall already settled
                            credit = credits[cindex]
                            if credit:
                                credits[cindex] = credit - 1
                                if recording:
                                    acts.append((0, cindex))
                                continue
                            runner = runners[cindex]
                            if runner is not None:
                                divider = dividers[cindex]
                                pre_pc = column.controller.pc
                                consumed = runner.run_edges(
                                    (limit - jump + divider - 1)
                                    // divider
                                )
                                if consumed:
                                    credits[cindex] = consumed - 1
                                    if recording:
                                        ctrl = column.controller
                                        acts.append((
                                            1, cindex, pre_pc,
                                            consumed, ctrl.pc,
                                            runner.comm_head(pre_pc),
                                            len(ctrl._loop_stack),
                                        ))
                                    continue
                            column.step_tile_clock()
                            if recording:
                                ctrl = column.controller
                                acts.append((
                                    3, cindex, ctrl.pc,
                                    column.halted,
                                    ctrl._pending is not None,
                                    len(ctrl._loop_stack),
                                ))
                            if column.halted:
                                live -= 1
                    if recording:
                        armed.items.append((
                            "g", span, g_occ, g_states, batch,
                            g_comm, parked, tuple(charges_rec),
                            tuple(burns_rec),
                            tuple(acts) if acts is not None
                            else None,
                        ))
                        if len(armed.items) > LOCKSTEP_REC_CAP:
                            armed = None
                    profile["batch_events"] += 1
                    profile["batched_ticks"] += span
                    tick = end
                    offset = tick % period
                    moved = 0
                    continue
                if armed is None:
                    moved = 0
                    for dou in dous:
                        moved += dou.step()
                    for column in edge_objs[offset]:
                        if column.halted:
                            continue
                        cindex = column.index
                        credit = credits[cindex]
                        if credit:
                            credits[cindex] = credit - 1
                            continue
                        runner = runners[cindex]
                        if runner is not None:
                            # tick is this column's edge
                            # (tick % d == 0), so the edges left in
                            # the window are a pure ceiling division.
                            divider = dividers[cindex]
                            consumed = runner.run_edges(
                                (limit - tick + divider - 1)
                                // divider
                            )
                            if consumed:
                                credits[cindex] = consumed - 1
                                continue
                        column.step_tile_clock()
                        if column.halted:
                            live -= 1
                    stepped_ticks += 1
                    tick += 1
                    offset += 1
                    if offset == period:
                        offset = 0
                    continue
                # Armed: the same tick, instrumented with the
                # occupancy snapshots and per-DOU stat deltas the
                # round compiler needs.  One round per signature pays
                # this; the steady state never does.
                occ_cur = armed.occ()
                per_dou = []
                moved = 0
                for dou in dous:
                    state_pre = dou.state_index
                    blocked_pre = dou.blocked_cycles
                    retired_pre = dou.words_retired
                    bus = dou.bus
                    bus_words_pre = bus.words_moved
                    bus_traffic_pre = bus.cycles_with_traffic
                    counters_pre = tuple(dou.counters)
                    words = dou.step()
                    moved += words
                    occ_next = armed.occ()
                    per_dou.append((
                        state_pre, words, occ_next != occ_cur,
                        dou.blocked_cycles - blocked_pre,
                        bus.words_moved - bus_words_pre,
                        bus.cycles_with_traffic - bus_traffic_pre,
                        dou.words_retired - retired_pre,
                        dou.state_index,
                        tuple(
                            (i, v)
                            for i, v in enumerate(dou.counters)
                            if v != counters_pre[i]
                        ),
                        occ_cur,
                    ))
                    occ_cur = occ_next
                acts = []
                for column in edge_objs[offset]:
                    if column.halted:
                        continue
                    cindex = column.index
                    credit = credits[cindex]
                    if credit:
                        credits[cindex] = credit - 1
                        acts.append((0, cindex))
                        continue
                    runner = runners[cindex]
                    if runner is not None:
                        divider = dividers[cindex]
                        pre_pc = column.controller.pc
                        consumed = runner.run_edges(
                            (limit - tick + divider - 1) // divider
                        )
                        if consumed:
                            credits[cindex] = consumed - 1
                            ctrl = column.controller
                            acts.append((
                                1, cindex, pre_pc, consumed,
                                ctrl.pc, runner.comm_head(pre_pc),
                                len(ctrl._loop_stack),
                            ))
                            continue
                    column.step_tile_clock()
                    ctrl = column.controller
                    acts.append((
                        3, cindex, ctrl.pc, column.halted,
                        ctrl._pending is not None,
                        len(ctrl._loop_stack),
                    ))
                    if column.halted:
                        live -= 1
                armed.items.append((
                    "t", occ_cur, tuple(per_dou), tuple(acts),
                ))
                if len(armed.items) > LOCKSTEP_REC_CAP:
                    armed = None
                stepped_ticks += 1
                tick += 1
                offset += 1
                if offset == period:
                    offset = 0
            profile["dense_ticks"] += stepped_ticks
            if self._demotable and tick < limit:
                before = len(self._stepped)
                self._demote_quiescent()
                if len(self._stepped) != before:
                    # The stepped set changed: recorded items are no
                    # longer aligned with it; restart the hunt.
                    sigs.clear()
                    armed = None
        return tick

    # ------------------------------------------------------------------
    # lockstep round replay
    # ------------------------------------------------------------------
    def _lock_buffers(self):
        """The communication-buffer universe, built once per engine.

        ``(deques, capacities, id(deque) -> index)`` over every buffer
        a recorded round's behaviour can depend on: tile read/write
        buffers (real capacities, registered first) plus every deque
        reachable from a DOU port or compiled state plan.  Occupancy
        snapshots, drift windows, and post-tick checks all index this
        one universe.
        """
        universe = self._lock_universe
        if universe is not None:
            return universe
        deques: list = []
        caps: list = []
        index_of: dict = {}

        def add(words, cap):
            j = index_of.get(id(words))
            if j is None:
                index_of[id(words)] = len(deques)
                deques.append(words)
                caps.append(cap)
            elif cap < caps[j]:
                caps[j] = cap

        for column in self.chip.columns:
            for tile in column.tiles:
                add(tile.read_buffer._words, tile.read_buffer.capacity)
                add(tile.write_buffer._words,
                    tile.write_buffer.capacity)
        for dou in self._all_dous:
            for buffer in dou.write_ports.values():
                add(buffer._words, buffer.capacity)
            for buffer in dou.read_ports.values():
                add(buffer._words, buffer.capacity)
            for plan in dou._plans:
                if plan is None:
                    continue
                for src_words, destinations in plan.blocks:
                    add(src_words, _OCC_UNBOUNDED)
                    for dest_words, capacity in destinations:
                        add(dest_words, capacity)
        universe = (tuple(deques), tuple(caps), index_of)
        self._lock_universe = universe
        return universe

    def _lock_fingerprint(self) -> int:
        """Interned structural identity for the shared plan cache.

        Pins everything a round's unvalidated integer deltas were
        derived from: the full column programs, each DOU's program
        (states, transfers, counters), and the buffer universe's
        capacity layout.  Two chips with equal fingerprints are
        behaviourally interchangeable at equal signatures.
        """
        fp = self._lock_fp
        if fp is None:
            deques, caps, index_of = self._lock_buffers()
            key = (
                tuple(
                    (len(column.tiles),
                     repr(column.controller.program))
                    for column in self.chip.columns
                ),
                tuple(repr(dou.program) for dou in self._all_dous),
                caps,
            )
            fp = _FP_INTERN.get(key)
            if fp is None:
                fp = len(_FP_INTERN)
                _FP_INTERN[key] = fp
            self._lock_fp = fp
        return fp

    def _lock_paths(self) -> dict:
        """``id(obj) -> structural path`` over every bindable object."""
        path_of = self._lock_path_of
        if path_of is None:
            path_of = {}
            for i, column in enumerate(self.chip.columns):
                path_of[id(column)] = ("c", i)
                path_of[id(column.controller)] = ("t", i)
            for i, runner in enumerate(self._runners):
                if runner is not None:
                    path_of[id(runner)] = ("r", i)
            for i, dou in enumerate(self._all_dous):
                path_of[id(dou)] = ("d", i)
                if dou.bus is not None:
                    path_of[id(dou.bus)] = ("b", i)
                for s, plan in enumerate(dou._plans):
                    if plan is not None:
                        path_of[id(plan)] = ("p", i, s)
                for s, lap in enumerate(dou._lap_plans):
                    if lap is not None:
                        path_of[id(lap)] = ("l", i, s)
            deques, _caps, _index_of = self._lock_buffers()
            for j, words in enumerate(deques):
                path_of[id(words)] = ("q", j)
            self._lock_path_of = path_of
        return path_of

    def _lock_resolve(self, path):
        """Structural path -> this engine's machine object."""
        kind = path[0]
        if kind == "q":
            return self._lock_buffers()[0][path[1]]
        if kind == "d":
            return self._all_dous[path[1]]
        if kind == "p":
            return self._all_dous[path[1]]._plans[path[2]]
        if kind == "l":
            return self._all_dous[path[1]]._lap_plans[path[2]]
        if kind == "b":
            return self._all_dous[path[1]].bus
        if kind == "c":
            return self.chip.columns[path[1]]
        if kind == "t":
            return self.chip.columns[path[1]].controller
        return self._runners[path[1]]

    def _lock_share(self, sig, plan, binds) -> None:
        """Publish a freshly built plan to the shared cache."""
        path_of = self._lock_paths()
        paths = []
        for obj in binds:
            path = path_of.get(id(obj))
            if path is None:
                return  # an unmapped bind: keep the plan engine-local
            paths.append(path)
        if len(_SHARED_LOCK_PLANS) >= _SHARED_LOCK_CAP:
            _SHARED_LOCK_PLANS.clear()
        key = (self._lock_fingerprint(), sig)
        _SHARED_LOCK_PLANS[key] = (
            plan.source, tuple(paths), plan.adds, plan.period,
        )
        plan.gkey = key

    def _lock_probe(self, sig):
        """Rebind a shared plan for ``sig``, or None on a miss."""
        key = (self._lock_fingerprint(), sig)
        entry = _SHARED_LOCK_PLANS.get(key)
        if entry is None:
            return None
        source, paths, adds, period = entry
        try:
            binds = [self._lock_resolve(path) for path in paths]
        except (IndexError, TypeError):
            del _SHARED_LOCK_PLANS[key]
            return None
        code = _ROUND_CODE_CACHE.get(source)
        if code is None:
            if len(_ROUND_CODE_CACHE) >= LOCKSTEP_PLAN_CAP:
                _ROUND_CODE_CACHE.clear()
            code = compile(source, "<lockstep-round>", "exec")
            _ROUND_CODE_CACHE[source] = code
        namespace = {}
        exec(code, namespace)
        plan = _RoundPlan(
            period, namespace["_make"](binds), adds, source,
        )
        plan.gkey = key
        return plan

    def _lock_signature(self, tick: int, period: int):
        """Safepoint fingerprint for lockstep round detection.

        Occupancies, loop counters, and DOU word counters are
        deliberately excluded — they drift monotonically across rounds
        whose *behaviour* repeats.  Everything excluded here is instead
        revalidated live, per operation, during replay.
        """
        cols = []
        append = cols.append
        for column in self.chip.columns:
            ctrl = column.controller
            append((
                ctrl.halted, ctrl.pc, ctrl.mask,
                ctrl._pending is not None, ctrl._stall_pending,
                tuple([frame[0] for frame in ctrl._loop_stack]),
            ))
        dous = self._all_dous
        stepped = self._stepped
        return (
            tick % period, self.chip.clock.dividers,
            tuple(stepped), tuple(self._credits),
            tuple([dous[i].state_index for i in stepped]),
            tuple(cols),
        )

    def _lock_replay(self, plan, tick, limit, credits, profile):
        """Replay as many whole recorded rounds as fit before *limit*.

        Returns ``(tick, rounds)``.  A round that aborts midway has
        still executed real primitives up to the abort point, so the
        partially advanced tick is always kept.
        """
        rounds = 0
        period = plan.period
        fn = plan.fn
        while tick + period <= limit:
            ok, tick = fn(tick, limit, credits)
            if not ok:
                break
            rounds += 1
        if rounds:
            profile["lockstep_batches"] += rounds
            adds = plan.adds
            profile["batch_events"] += adds[0] * rounds
            profile["batched_ticks"] += adds[1] * rounds
            profile["dense_ticks"] += adds[2] * rounds
            profile["parked_edges"] += adds[3] * rounds
            profile["orbit_laps"] += adds[4] * rounds
            profile["fused_runner_calls"] += adds[5] * rounds
        if BUS.active:
            if rounds:
                BUS.instant(
                    "lockstep_replay", tick=tick, track="engine",
                    args={
                        "rounds": rounds,
                        "round_ticks": period,
                        "orbit_laps": plan.adds[4] * rounds,
                    },
                )
            else:
                BUS.instant(
                    "lockstep_abort", tick=tick, track="engine",
                    args={"round_ticks": period},
                )
        return tick, rounds

    # ------------------------------------------------------------------
    # post-window settlement
    # ------------------------------------------------------------------
    def _settle_window(
        self, start: int, end: int, initial_cycles: list,
        dou_cycles: list,
    ) -> None:
        """Reconstruct everything the striding skipped in [start, end).

        On every skipped clock edge of a halted column the reference
        engine would have recorded exactly one bubble tile cycle (the
        controller refuses to fetch past HALT); edges suppressed by a
        PLL-relock gate are skipped by both engines and owe nothing.
        Every DOU's cycle counter must advance by exactly the window
        span (the reference loop steps every machine every tick), so
        any shortfall - a machine inert from the start, or demoted to
        quiescence partway through the window - is settled in closed
        form through :meth:`~repro.arch.dou.Dou.fast_forward`.  The
        clock tree is constant within a window (retunes commit only
        between windows), so ``edges_in`` is exact.
        """
        chip = self.chip
        clock = chip.clock
        span = end - start
        if span <= 0:
            return
        for index, column in enumerate(chip.columns):
            gate = chip.clock_gate_until[index]
            low = min(end, max(start, gate))
            owed = (
                clock.edges_in(index, low, end)
                - (column.tile_cycles - initial_cycles[index])
            )
            if owed:
                column.tile_cycles += owed
                column.controller.bubbles += owed
        for index, dou in enumerate(self._all_dous):
            owed = span - (dou.cycles - dou_cycles[index])
            if owed:
                dou.fast_forward(owed)

    def _drain(self, ticks: int) -> None:
        """Drain the buses for ``ticks`` after every column halted.

        A live DOU may still hold in-flight words at halt time, so the
        dense drain steps those faithfully - but a machine that has
        already parked in a quiescent orbit (a ``repeat=k`` schedule
        whose repeats are done) is demoted first and never stepped;
        its drain cycles, the owed bubble edges, and every other
        non-stepped DOU settle arithmetically.
        """
        profiling = self.profile_enabled
        mark = perf_counter() if profiling else 0.0
        chip = self.chip
        start = chip.reference_ticks
        initial_cycles = [
            column.tile_cycles for column in chip.columns
        ]
        dou_cycles = [dou.cycles for dou in self._all_dous]
        self._demote_quiescent()
        if self._stepped:
            dous = [self._all_dous[index] for index in self._stepped]
            for _ in range(ticks):
                for dou in dous:
                    dou.step()
        self._settle_window(
            start, start + ticks, initial_cycles, dou_cycles
        )
        chip.reference_ticks = start + ticks
        if profiling:
            self._profile["drain_s"] += perf_counter() - mark
        if BUS.active:
            BUS.span("drain", start, start + ticks, track="engine")


#: Engine registry by name - the lookup behind :func:`create_engine`
#: and the pattern :data:`repro.control.governor.GOVERNOR_KINDS`
#: mirrors for governors.
ENGINES = {
    ReferenceEngine.name: ReferenceEngine,
    CompiledEngine.name: CompiledEngine,
}

#: Name that resolves to the fastest engine safe for the run shape.
AUTO_ENGINE = "auto"

#: Profiling hook for callers that never see the engine object.  The
#: kernel and scenario runners build their simulators internally, so
#: a benchmark driver that wants ``profile_snapshot()`` after a run
#: sets this to a list before invoking the workload:  every
#: :class:`CompiledEngine` built through :func:`create_engine` while
#: it is set has ``profile_enabled`` switched on and is appended, and
#: the driver reads the snapshots off the registered engines when the
#: workload returns.  Owned by ``repro.eval.engines``; not
#: thread-safe; ``None`` (the default) costs the hot path nothing.
#:
#: .. deprecated::
#:     Kept as a compatibility shim for existing benchmark drivers.
#:     New consumers should read the typed
#:     :attr:`CompiledEngine.metrics` registry on an engine they
#:     hold, or subscribe a sink to :data:`repro.obs.events.BUS` when
#:     they never see the engine object - see
#:     ``docs/observability.md``.
PROFILE_REGISTRY: list | None = None


def create_engine(
    name: str, chip: Chip, observers: tuple = ()
) -> Engine:
    """Instantiate an engine by registry name.

    ``"auto"`` picks the compiled fast path when no observers are
    attached (tick-accurate visibility is not needed, and an ``until``
    predicate at run time still falls back to the shared tick loop);
    with observers it picks the reference engine outright.

    Raises
    ------
    ConfigurationError
        For names outside the registry - a configuration mistake, not
        a simulation failure, so it is distinguishable from runtime
        errors like deadlocked schedules.
    """
    if name == AUTO_ENGINE:
        name = ReferenceEngine.name if observers else CompiledEngine.name
    try:
        factory = ENGINES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown engine {name!r}; available: {sorted(ENGINES)}"
        ) from None
    engine = factory(chip, observers)
    if PROFILE_REGISTRY is not None and isinstance(engine, CompiledEngine):
        engine.profile_enabled = True
        PROFILE_REGISTRY.append(engine)
    return engine
