"""Pluggable simulation engines.

The reference clock is the only time base in Synchroscalar, and the
single-PLL/integer-divider clock tree makes the whole chip's activity
pattern periodic in the clock hyperperiod (Section 2.4).  This module
exploits that in two interchangeable engines behind one interface:

``ReferenceEngine``
    The tick-accurate stepper: one Python iteration per reference
    tick, with tracing folded in as an observer hook so traced and
    untraced runs share a single stepping loop.

``CompiledEngine``
    Precompiles the per-hyperperiod activity schedule from the
    :class:`~repro.arch.clocking.ClockTree` (which reference ticks
    carry column clock edges, which DOUs can ever move a word) and
    advances in hyperperiod-sized strides: dead ticks are skipped
    outright, inert DOUs are never stepped, halted columns accrue
    their bubble cycles arithmetically, and the post-halt bus drain is
    settled in O(columns) instead of O(ticks).  By construction it
    produces :class:`~repro.sim.stats.SimulationStats` identical to
    the reference engine - a property enforced by differential tests.

Both engines expose :meth:`Engine.advance` - run for a bounded window
of reference ticks - which is the primitive the runtime-DVFS epoch
layer (:mod:`repro.control.epochs`) builds on: each epoch retunes the
clock tree at a hyperperiod boundary and advances one window.  The
compiled engine recompiles its activity plan per divider tuple behind
a cache, so a governor revisiting an operating point pays for its
edge schedule once.

Engines only require the :class:`~repro.arch.chip.Chip` duck type:
``columns``, ``clock``, ``horizontal_dou``, ``all_halted``,
``reference_ticks``, ``clock_gate_until``, and
``step_reference_tick``.
"""

from __future__ import annotations

from time import perf_counter
from typing import Callable

from repro.errors import ConfigurationError, SimulationError
from repro.arch.chip import STALLED, Chip
from repro.arch.column_exec import compile_column_runner
from repro.sim.stats import SimulationStats, collect

#: Default run budget in reference ticks.  Exhausting it raises
#: :class:`~repro.errors.SimulationError` - on this machine model a
#: workload that has not halted within two million reference ticks is
#: almost always a deadlocked communication schedule, not a long run.
DEFAULT_MAX_TICKS = 2_000_000


def _budget_error(max_ticks: int) -> SimulationError:
    return SimulationError(
        f"simulation exceeded {max_ticks} reference ticks "
        f"(deadlocked schedule?)"
    )


def _run_ticked(
    chip: Chip,
    observers: tuple,
    max_ticks: int,
    until: Callable[[Chip], bool] | None,
    drain_hyperperiods: int,
) -> SimulationStats:
    """The canonical tick-by-tick run loop (shared fallback path)."""
    for _ in range(max_ticks):
        if until is not None and until(chip):
            return collect(chip)
        if chip.all_halted:
            break
        chip.step_reference_tick(observers)
    else:
        raise _budget_error(max_ticks)
    for _ in range(drain_hyperperiods * chip.clock.hyperperiod()):
        chip.step_reference_tick(observers)
    return collect(chip)


def _advance_ticked(chip: Chip, observers: tuple, ticks: int) -> int:
    """Advance up to ``ticks`` reference ticks, stopping at all-halt.

    Mirrors the main loop of :func:`_run_ticked` exactly (all_halted
    is observed *before* each step), so windowed and open-ended runs
    agree tick for tick.  Returns the ticks actually consumed.
    """
    consumed = 0
    while consumed < ticks:
        if chip.all_halted:
            break
        chip.step_reference_tick(observers)
        consumed += 1
    return consumed


class Engine:
    """Common interface: advance a chip and collect its statistics.

    ``observers`` receive ``record(tick, column, outcome, pc)`` for
    every tile-clock step - :class:`~repro.sim.trace.Tracer` plugs in
    directly.
    """

    name = "engine"

    def __init__(self, chip: Chip, observers: tuple = ()) -> None:
        self.chip = chip
        self.observers = tuple(observers)

    def step(self) -> None:
        """Advance exactly one reference tick, observers notified.

        Always the tick-accurate path (every DOU stepped, every due
        column edge executed), regardless of the engine's fast paths -
        single-stepping is a debugging primitive and must see true
        per-tick state.
        """
        self.chip.step_reference_tick(self.observers)

    def advance(self, ticks: int) -> int:
        """Advance up to ``ticks`` reference ticks; stop at all-halt.

        The epoch primitive: between calls the control layer may
        retune the chip's clock tree (at a hyperperiod boundary) and
        gate relocking columns; within a call the clock is constant.
        Returns the number of ticks actually consumed, which is less
        than ``ticks`` only when every column halted inside the
        window.
        """
        return _advance_ticked(self.chip, self.observers, ticks)

    def run(
        self,
        max_ticks: int = DEFAULT_MAX_TICKS,
        until: Callable[[Chip], bool] | None = None,
        drain_hyperperiods: int = 2,
    ) -> SimulationStats:
        """Run until every column halts (or ``until`` fires).

        After all columns halt, the buses are drained for
        ``drain_hyperperiods`` clock hyperperiods so in-flight words
        settle into their destination buffers.

        Raises
        ------
        SimulationError
            If the tick budget is exhausted first - almost always a
            deadlocked communication schedule.
        """
        raise NotImplementedError


class ReferenceEngine(Engine):
    """Tick-accurate stepping - the architectural reference.

    One Python iteration per reference tick through the single shared
    stepping loop (:meth:`~repro.arch.chip.Chip.step_reference_tick`),
    so its statistics define correctness: every other engine must be
    bit-identical to this one, and the differential tests treat it as
    the oracle.  It is the right engine whenever per-tick visibility
    matters (tracing observers, ``until`` predicates, debugging) and
    the slow one everywhere else.
    """

    name = "reference"

    def run(
        self,
        max_ticks: int = DEFAULT_MAX_TICKS,
        until: Callable[[Chip], bool] | None = None,
        drain_hyperperiods: int = 2,
    ) -> SimulationStats:
        return _run_ticked(
            self.chip, self.observers, max_ticks, until,
            drain_hyperperiods,
        )


class _ClockPlan:
    """One divider tuple's compiled hyperperiod trace.

    ``edges`` keeps column *indexes* per offset (needed wherever
    PLL-relock gates must be consulted); ``edge_objs`` binds the same
    table down to :class:`Column` objects for the no-gate hot loop;
    ``sparse_steps[o]`` is ``(delta, edge_indexes)`` where ``delta``
    is the distance from offset ``o`` to the next offset carrying any
    edge (0 when ``o`` itself does) - the precomputed
    next-active-offset table that replaces the old per-jump linear
    scan, and doubles as the gap table for starved-DOU stall batching.
    """

    __slots__ = ("period", "edges", "edge_objs", "sparse_steps")

    def __init__(self, clock, columns) -> None:
        self.period = clock.hyperperiod()
        self.edges = clock.edge_schedule()
        self.edge_objs = tuple(
            tuple(columns[index] for index in offsets)
            for offsets in self.edges
        )
        active = [
            offset for offset, offsets in enumerate(self.edges)
            if offsets
        ]
        steps = []
        for offset in range(self.period):
            target = next(
                (a for a in active if a >= offset),
                self.period + active[0],
            )
            steps.append(
                (target - offset, self.edges[target % self.period])
            )
        self.sparse_steps = tuple(steps)


class CompiledEngine(Engine):
    """Hyperperiod-compiled stepping: skip what cannot change state.

    At construction the engine classifies every DOU: machines whose
    program is inert can never move a word, so they are accounted
    arithmetically from the start, and the rest are *demotable* - the
    moment one parks in a closed orbit of non-transferring states
    (:meth:`~repro.arch.dou.Dou.is_quiescent`, e.g. the idle park of
    ``linear_schedule(repeat=k)``) it too stops being stepped, with
    re-promotion impossible by construction.  The clock tree's edge
    schedule is compiled lazily, per divider tuple, into a plan cache
    (:class:`_ClockPlan`) - runtime retuning through
    :meth:`~repro.arch.chip.Chip.retune` just selects another plan.
    Two striding modes follow:

    * no DOU needs stepping ("sparse"): only reference ticks carrying
      at least one live column edge are visited, located through the
      plan's precomputed next-active-offset table in O(1) per jump;
    * some DOU needs stepping ("dense"): every tick steps those DOUs
      (they run at the reference rate by definition) through their
      compiled per-state plans, column edges come from the prebound
      object table with no per-tick modulo or gate checks in the
      common case, and edge-free gaps where every stepped DOU sits in
      a starved self-loop are settled arithmetically.

    In both modes a column that has halted stops being stepped; the
    bubbles and tile cycles the reference engine would have accrued on
    its remaining clock edges are reconstructed arithmetically at the
    end of each window, as are the cycle counts of every non-stepped
    DOU and the post-halt bus drain.  PLL-relock gates
    (``chip.clock_gate_until``) suppress a column's edges the same way
    the reference stepping loop does.  ``until`` predicates and
    observers need tick-accurate visibility, so their presence falls
    back to the shared tick-by-tick loop.
    """

    name = "compiled"

    def __init__(self, chip: Chip, observers: tuple = ()) -> None:
        super().__init__(chip, observers)
        compile_start = perf_counter()
        #: divider tuple -> compiled _ClockPlan
        self._plans: dict = {}
        dous = [column.dou for column in chip.columns]
        if chip.horizontal_dou is not None:
            dous.append(chip.horizontal_dou)
        #: every DOU, in the reference loop's stepping order
        #: (columns ascending, then the horizontal machine).
        self._all_dous = tuple(dous)
        #: indexes into _all_dous still stepped tick-by-tick; inert
        #: programs start demoted, the rest may demote at run time.
        self._stepped = [
            index for index, dou in enumerate(dous)
            if not dou.program.is_inert()
        ]
        self._refresh_demotable()
        #: per-column compute-run pre-executors (None = reference
        #: fetch only) and the count of upcoming clock edges each
        #: column has already executed through its runner.
        self._runners = tuple(
            compile_column_runner(column) for column in chip.columns
        )
        self._credits = [0] * len(chip.columns)
        #: wall-clock attribution is collected only when
        #: ``profile_enabled`` is set; the event counters are always
        #: maintained (they sit off the per-tick hot path).
        self.profile_enabled = False
        self._profile = {
            "compile_s": perf_counter() - compile_start,
            "dense_s": 0.0,
            "sparse_s": 0.0,
            "settle_s": 0.0,
            "drain_s": 0.0,
            "dense_ticks": 0,
            "batch_events": 0,
            "batched_ticks": 0,
            "sparse_steps": 0,
            "parked_edges": 0,
        }

    def profile_snapshot(self) -> dict:
        """Phase timings and event counters for ``--profile`` runs.

        Timing keys are populated only when :attr:`profile_enabled`
        was set before the run; counter keys are always exact.  The
        runner aggregate folds in every column's pre-execution
        statistics (calls, edges consumed, vectorized batches).
        """
        data = dict(self._profile)
        calls = edges = batches = iterations = 0
        for runner in self._runners:
            if runner is None:
                continue
            calls += runner.calls
            edges += runner.edges
            batches += runner.vector_batches
            iterations += runner.vector_iterations
        data["runner_calls"] = calls
        data["runner_edges"] = edges
        data["vector_batches"] = batches
        data["vector_iterations"] = iterations
        return data

    def _refresh_demotable(self) -> None:
        self._demotable = any(
            self._all_dous[index].program.quiescent_states
            for index in self._stepped
        )

    def _demote_quiescent(self) -> None:
        """Stop stepping DOUs parked in a closed transfer-free orbit.

        Safe at any tick: a quiescent machine's remaining execution
        only increments its cycle counter, which the window settlement
        reconstructs arithmetically.  Demotion is permanent - the
        orbit is closed, so the machine can never transfer again.
        """
        if not self._demotable:
            return
        kept = [
            index for index in self._stepped
            if not self._all_dous[index].is_quiescent()
        ]
        if len(kept) != len(self._stepped):
            self._stepped = kept
            self._refresh_demotable()

    def _plan(self) -> _ClockPlan:
        """The compiled activity schedule for the current dividers.

        Cached per divider tuple, so an epoch run that revisits an
        operating point compiles its edge table exactly once.
        """
        key = self.chip.clock.dividers
        plan = self._plans.get(key)
        if plan is None:
            plan = _ClockPlan(self.chip.clock, self.chip.columns)
            self._plans[key] = plan
        return plan

    def advance(self, ticks: int) -> int:
        if self.observers:
            return _advance_ticked(self.chip, self.observers, ticks)
        if ticks <= 0 or self.chip.all_halted:
            return 0
        start = self.chip.reference_ticks
        end = self._stride_window(start + ticks)
        return end - start

    def run(
        self,
        max_ticks: int = DEFAULT_MAX_TICKS,
        until: Callable[[Chip], bool] | None = None,
        drain_hyperperiods: int = 2,
    ) -> SimulationStats:
        if until is not None or self.observers:
            return _run_ticked(
                self.chip, self.observers, max_ticks, until,
                drain_hyperperiods,
            )
        start = self.chip.reference_ticks
        end = self._stride_window(start + max_ticks)
        # The reference loop spends one budget iteration *observing*
        # all_halted after the final step, so a chip halting on the
        # very last tick in budget still exhausts it.
        if end - start >= max_ticks:
            raise _budget_error(max_ticks)
        self._drain(drain_hyperperiods * self._plan().period)
        return collect(self.chip)

    # ------------------------------------------------------------------
    # striding
    # ------------------------------------------------------------------
    #: Ticks between quiescence re-checks in the dense loop (also the
    #: minimum, so tiny hyperperiods do not check every tick).
    DEMOTION_CHECK_TICKS = 64

    def _stride_window(self, limit: int) -> int:
        """Advance from the current tick to at most ``limit``.

        Stops early the moment every column has halted (at the same
        tick the reference loop would observe ``all_halted``), settles
        the skipped arithmetic for the window, and returns the end
        tick.
        """
        chip = self.chip
        start = chip.reference_ticks
        initial_cycles = [
            column.tile_cycles for column in chip.columns
        ]
        dou_cycles = [dou.cycles for dou in self._all_dous]
        self._demote_quiescent()
        # Touch the plan cache even on sparse windows: one compiled
        # plan per operating point the run visits is part of the
        # engine's contract (and what the epoch layer's cache tests
        # pin down).
        self._plan()
        profiling = self.profile_enabled
        mark = perf_counter() if profiling else 0.0
        if self._stepped:
            end = self._dense_until(start, limit)
            phase = "dense_s"
        else:
            end = self._sparse_until(start, limit)
            phase = "sparse_s"
        if profiling:
            now = perf_counter()
            self._profile[phase] += now - mark
            mark = now
        self._settle_window(start, end, initial_cycles, dou_cycles)
        if profiling:
            self._profile["settle_s"] += perf_counter() - mark
        chip.reference_ticks = end
        return end

    def _sparse_until(self, start: int, limit: int) -> int:
        """No DOU to step: settle each live column independently.

        With every DOU demoted or inert, no word can cross a domain
        boundary for the rest of the window, so columns cannot
        interact and each advances over its private edge schedule in
        one pass: edges the column runner has pre-executed burn in
        O(1), compiled compute runs batch through the runner, and a
        column that blocks on a comm buffer is charged all remaining
        stall edges in closed form (nothing can ever unblock it).
        Returns the tick at which the reference loop would observe
        all-halted, or ``limit``.
        """
        chip = self.chip
        columns = chip.columns
        gates = chip.clock_gate_until
        clock = chip.clock
        dividers = clock.dividers
        credits = self._credits
        runners = self._runners
        profile = self._profile
        live = 0
        last_halt = -1
        for cindex, column in enumerate(columns):
            if column.halted:
                continue
            live += 1
            divider = dividers[cindex]
            base = max(start, gates[cindex])
            tick = base + (-base) % divider
            runner = runners[cindex]
            while tick < limit:
                remaining = (limit - tick + divider - 1) // divider
                credit = credits[cindex]
                if credit:
                    if credit > remaining:
                        credit = remaining
                    credits[cindex] -= credit
                    tick += credit * divider
                    continue
                if runner is not None:
                    consumed = runner.run_edges(remaining)
                    if consumed:
                        tick += consumed * divider
                        continue
                outcome = column.step_tile_clock()
                profile["sparse_steps"] += 1
                if column.halted:
                    live -= 1
                    if tick > last_halt:
                        last_halt = tick
                    break
                if outcome == STALLED:
                    # A comm stall with no live DOU repeats forever:
                    # charge every remaining edge of the window.
                    owed = clock.edges_in(cindex, tick + 1, limit)
                    if owed:
                        column.tile_cycles += owed
                        column.comm_stalls += owed
                        profile["parked_edges"] += owed
                    break
                tick += divider
        if live == 0:
            return last_halt + 1 if last_halt >= 0 else start
        return limit

    def _dense_until(self, start: int, limit: int) -> int:
        """Some DOU moves data: walk the compiled hyperperiod trace.

        The loop runs in segments.  A gated or unaligned prefix pays
        per-tick gate checks; the steady-state segment walks the
        prebound edge-object table with an incrementing offset (no
        modulo, no gate test, no halted-edge re-entry after the
        filtered check), batches no-progress gaps, and pre-executes
        compute runs.  Two batching mechanisms remove the per-tick
        loop in steady state:

        * **Orbit batching** - when every stepped DOU sits in a
          closed no-progress orbit (starved, fully backpressured, or
          idle; :meth:`~repro.arch.dou.Dou.stall_orbit`), no buffer
          can change until a progressing column edge executes, so the
          whole span through the next such edge settles
          arithmetically - including the edges of columns parked on a
          blocked SEND or RECV, which are charged as comm stalls.
        * **Run crediting** - at a live column's edge, the column
          runner pre-executes as many upcoming compute edges as the
          program allows; the column is then credited those edges,
          which burn in O(1) as their ticks pass (or inside an orbit
          jump).

        Segment boundaries double as quiescence-demotion checkpoints;
        when the last stepped DOU demotes, the window degrades to the
        sparse per-column loop.
        """
        chip = self.chip
        columns = chip.columns
        gates = chip.clock_gate_until
        clock = chip.clock
        dividers = clock.dividers
        plan = self._plan()
        period = plan.period
        edges = plan.edges
        edge_objs = plan.edge_objs
        max_gate = max(gates)
        check_ticks = max(period, self.DEMOTION_CHECK_TICKS)
        all_dous = self._all_dous
        credits = self._credits
        runners = self._runners
        profile = self._profile
        live = sum(not column.halted for column in columns)
        tick = start
        while live and tick < limit:
            if not self._stepped:
                return self._sparse_until(tick, limit)
            dous = [all_dous[index] for index in self._stepped]
            segment_end = (
                min(limit, tick + check_ticks) if self._demotable
                else limit
            )
            if tick < max_gate:
                # Relock-gated prefix: tick-accurate gate checks.
                gate_end = min(segment_end, max_gate)
                while live and tick < gate_end:
                    for dou in dous:
                        dou.step()
                    for index in edges[tick % period]:
                        column = columns[index]
                        if column.halted or tick < gates[index]:
                            continue
                        column.step_tile_clock()
                        if column.halted:
                            live -= 1
                    tick += 1
                continue
            offset = tick % period
            stepped_ticks = 0
            moved = 0
            while live and tick < segment_end:
                # Attempt an orbit batch only after a tick in which no
                # word moved (a no-progress orbit implies one), so the
                # classification never taxes the busy steady state.
                if moved == 0:
                    batch = []
                    for dou in dous:
                        effects = dou.stall_orbit()
                        if effects is None:
                            batch = None
                            break
                        batch.append(effects)
                else:
                    batch = None
                if batch is not None:
                    jump = segment_end
                    parked = 0  # bitmask of comm-parked columns
                    for cindex, column in enumerate(columns):
                        if column.halted:
                            continue
                        credit = credits[cindex]
                        if credit == 0 and column.parked_on_comm():
                            parked |= 1 << cindex
                            continue
                        divider = dividers[cindex]
                        due = (
                            tick + (-tick) % divider
                            + credit * divider
                        )
                        if due < jump:
                            jump = due
                    # The freeze proof holds through the DOU steps AT
                    # ``jump`` as well: no buffer changed in
                    # [tick, jump), so the bus cycle at ``jump`` is one
                    # more orbit stall, and the due edges then execute
                    # inside this event (reference order: buses first,
                    # then due columns).  Only when the jump hits the
                    # segment boundary does the event stop short of an
                    # edge.  Parked columns owe one comm-stall edge per
                    # skipped edge, credited columns burn their
                    # pre-executed edges, and no other column has an
                    # edge before the jump.
                    run_edge = jump < segment_end
                    end = jump + 1 if run_edge else jump
                    span = end - tick
                    for position, dou in enumerate(dous):
                        dou.fast_stall_orbit(batch[position], span)
                    for cindex, column in enumerate(columns):
                        if column.halted:
                            continue
                        if credits[cindex]:
                            burn = clock.edges_in(cindex, tick, jump)
                            if burn:
                                credits[cindex] -= burn
                        elif parked >> cindex & 1:
                            owed = clock.edges_in(cindex, tick, end)
                            if owed:
                                column.tile_cycles += owed
                                column.comm_stalls += owed
                                profile["parked_edges"] += owed
                    if run_edge:
                        for column in edge_objs[jump % period]:
                            if column.halted:
                                continue
                            cindex = column.index
                            if parked >> cindex & 1:
                                continue  # stall already settled
                            credit = credits[cindex]
                            if credit:
                                credits[cindex] = credit - 1
                                continue
                            runner = runners[cindex]
                            if runner is not None:
                                divider = dividers[cindex]
                                consumed = runner.run_edges(
                                    (limit - jump + divider - 1)
                                    // divider
                                )
                                if consumed:
                                    credits[cindex] = consumed - 1
                                    continue
                            column.step_tile_clock()
                            if column.halted:
                                live -= 1
                    profile["batch_events"] += 1
                    profile["batched_ticks"] += span
                    tick = end
                    offset = tick % period
                    moved = 0
                    continue
                moved = 0
                for dou in dous:
                    moved += dou.step()
                for column in edge_objs[offset]:
                    if column.halted:
                        continue
                    cindex = column.index
                    credit = credits[cindex]
                    if credit:
                        credits[cindex] = credit - 1
                        continue
                    runner = runners[cindex]
                    if runner is not None:
                        # tick is this column's edge (tick % d == 0),
                        # so the edges left in the window are a pure
                        # ceiling division.
                        divider = dividers[cindex]
                        consumed = runner.run_edges(
                            (limit - tick + divider - 1) // divider
                        )
                        if consumed:
                            credits[cindex] = consumed - 1
                            continue
                    column.step_tile_clock()
                    if column.halted:
                        live -= 1
                stepped_ticks += 1
                tick += 1
                offset += 1
                if offset == period:
                    offset = 0
            profile["dense_ticks"] += stepped_ticks
            if self._demotable and tick < limit:
                self._demote_quiescent()
        return tick

    # ------------------------------------------------------------------
    # post-window settlement
    # ------------------------------------------------------------------
    def _settle_window(
        self, start: int, end: int, initial_cycles: list,
        dou_cycles: list,
    ) -> None:
        """Reconstruct everything the striding skipped in [start, end).

        On every skipped clock edge of a halted column the reference
        engine would have recorded exactly one bubble tile cycle (the
        controller refuses to fetch past HALT); edges suppressed by a
        PLL-relock gate are skipped by both engines and owe nothing.
        Every DOU's cycle counter must advance by exactly the window
        span (the reference loop steps every machine every tick), so
        any shortfall - a machine inert from the start, or demoted to
        quiescence partway through the window - is settled in closed
        form through :meth:`~repro.arch.dou.Dou.fast_forward`.  The
        clock tree is constant within a window (retunes commit only
        between windows), so ``edges_in`` is exact.
        """
        chip = self.chip
        clock = chip.clock
        span = end - start
        if span <= 0:
            return
        for index, column in enumerate(chip.columns):
            gate = chip.clock_gate_until[index]
            low = min(end, max(start, gate))
            owed = (
                clock.edges_in(index, low, end)
                - (column.tile_cycles - initial_cycles[index])
            )
            if owed:
                column.tile_cycles += owed
                column.controller.bubbles += owed
        for index, dou in enumerate(self._all_dous):
            owed = span - (dou.cycles - dou_cycles[index])
            if owed:
                dou.fast_forward(owed)

    def _drain(self, ticks: int) -> None:
        """Drain the buses for ``ticks`` after every column halted.

        A live DOU may still hold in-flight words at halt time, so the
        dense drain steps those faithfully - but a machine that has
        already parked in a quiescent orbit (a ``repeat=k`` schedule
        whose repeats are done) is demoted first and never stepped;
        its drain cycles, the owed bubble edges, and every other
        non-stepped DOU settle arithmetically.
        """
        profiling = self.profile_enabled
        mark = perf_counter() if profiling else 0.0
        chip = self.chip
        start = chip.reference_ticks
        initial_cycles = [
            column.tile_cycles for column in chip.columns
        ]
        dou_cycles = [dou.cycles for dou in self._all_dous]
        self._demote_quiescent()
        if self._stepped:
            dous = [self._all_dous[index] for index in self._stepped]
            for _ in range(ticks):
                for dou in dous:
                    dou.step()
        self._settle_window(
            start, start + ticks, initial_cycles, dou_cycles
        )
        chip.reference_ticks = start + ticks
        if profiling:
            self._profile["drain_s"] += perf_counter() - mark


#: Engine registry by name - the lookup behind :func:`create_engine`
#: and the pattern :data:`repro.control.governor.GOVERNOR_KINDS`
#: mirrors for governors.
ENGINES = {
    ReferenceEngine.name: ReferenceEngine,
    CompiledEngine.name: CompiledEngine,
}

#: Name that resolves to the fastest engine safe for the run shape.
AUTO_ENGINE = "auto"

#: Profiling hook for callers that never see the engine object.  The
#: kernel and scenario runners build their simulators internally, so
#: a benchmark driver that wants ``profile_snapshot()`` after a run
#: sets this to a list before invoking the workload:  every
#: :class:`CompiledEngine` built through :func:`create_engine` while
#: it is set has ``profile_enabled`` switched on and is appended, and
#: the driver reads the snapshots off the registered engines when the
#: workload returns.  Owned by ``repro.eval.engines``; not
#: thread-safe; ``None`` (the default) costs the hot path nothing.
PROFILE_REGISTRY: list | None = None


def create_engine(
    name: str, chip: Chip, observers: tuple = ()
) -> Engine:
    """Instantiate an engine by registry name.

    ``"auto"`` picks the compiled fast path when no observers are
    attached (tick-accurate visibility is not needed, and an ``until``
    predicate at run time still falls back to the shared tick loop);
    with observers it picks the reference engine outright.

    Raises
    ------
    ConfigurationError
        For names outside the registry - a configuration mistake, not
        a simulation failure, so it is distinguishable from runtime
        errors like deadlocked schedules.
    """
    if name == AUTO_ENGINE:
        name = ReferenceEngine.name if observers else CompiledEngine.name
    try:
        factory = ENGINES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown engine {name!r}; available: {sorted(ENGINES)}"
        ) from None
    engine = factory(chip, observers)
    if PROFILE_REGISTRY is not None and isinstance(engine, CompiledEngine):
        engine.profile_enabled = True
        PROFILE_REGISTRY.append(engine)
    return engine
