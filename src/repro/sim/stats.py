"""Simulation statistics consumed by the power methodology."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class EpochColumnActivity:
    """One column's activity deltas over a single epoch window.

    Deltas are exact because every engine settles its striding
    arithmetic at each epoch boundary; the control layer charges
    per-epoch energy from the busy split and reports the idle share
    (over-provisioned runs stall; governed runs run slow instead).
    """

    tile_cycles: int
    issued: int
    idle: int
    bus_words: int

    @property
    def busy_fraction(self) -> float:
        """Issued instructions per tile cycle inside the epoch."""
        if self.tile_cycles == 0:
            return 0.0
        return self.issued / self.tile_cycles

    @property
    def words_per_cycle(self) -> float:
        """Vertical-bus words per tile cycle inside the epoch."""
        if self.tile_cycles == 0:
            return 0.0
        return self.bus_words / self.tile_cycles


@dataclass(frozen=True)
class EpochRecord:
    """One segment of a dynamically clocked run.

    The divider tuple is constant inside the segment; per-domain
    frequency residency and time-varying energy accounting both
    aggregate over these records.  ``column_activity`` optionally
    carries each column's counter deltas over the window.
    """

    index: int
    start_tick: int
    end_tick: int
    dividers: tuple
    column_activity: tuple = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "dividers", tuple(self.dividers))
        object.__setattr__(
            self, "column_activity", tuple(self.column_activity)
        )
        if self.end_tick < self.start_tick:
            raise ValueError(
                f"epoch {self.index}: end {self.end_tick} before "
                f"start {self.start_tick}"
            )

    @property
    def duration_ticks(self) -> int:
        """Reference ticks the epoch spans."""
        return self.end_tick - self.start_tick


@dataclass(frozen=True)
class ColumnStats:
    """Per-column execution summary.

    ``bus_span_words`` is the sum over retired bus words of the
    fraction of the bus length each transfer actually charged
    (segmentation, Section 2.3); dividing by ``bus_words`` yields the
    mean span fraction the power model's interconnect term needs.
    """

    index: int
    frequency_mhz: float
    tile_cycles: int
    issued: int
    bubbles: int
    comm_stalls: int
    control_executed: int
    branch_stalls: int
    zorm_nops: int
    bus_words: int
    tile_instructions: tuple[int, ...]
    bus_span_words: float = 0.0

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "tile_instructions", tuple(self.tile_instructions)
        )
        if not self.tile_instructions:
            raise ValueError(
                f"column {self.index}: tile_instructions must name at "
                f"least one tile"
            )
        if self.tile_cycles < 0 or self.bus_words < 0:
            raise ValueError(
                f"column {self.index}: cycle and word counts must be "
                f"non-negative"
            )

    @property
    def n_tiles(self) -> int:
        """Tiles in the column (length of the per-tile counters)."""
        return len(self.tile_instructions)

    @property
    def issue_rate(self) -> float:
        """Issued instructions per tile cycle."""
        if self.tile_cycles == 0:
            return 0.0
        return self.issued / self.tile_cycles

    @property
    def idle_fraction(self) -> float:
        """Fraction of tile cycles with no useful instruction."""
        if self.tile_cycles == 0:
            return 0.0
        return (self.bubbles + self.comm_stalls) / self.tile_cycles

    @property
    def bus_words_per_cycle(self) -> float:
        """Average vertical-bus words per tile cycle."""
        if self.tile_cycles == 0:
            return 0.0
        return self.bus_words / self.tile_cycles

    @property
    def mean_span_fraction(self) -> float:
        """Average bus-length fraction charged per retired word.

        Falls back to 1.0 (full-bus transfers) when the column moved
        no words - the conservative assumption, and irrelevant to the
        power model since it multiplies zero traffic.
        """
        if self.bus_words == 0:
            return 1.0
        return min(1.0, self.bus_span_words / self.bus_words)


@dataclass(frozen=True)
class SimulationStats:
    """Whole-run summary.

    ``domain_energy`` is empty until a power-layer
    :class:`~repro.power.measured.EnergyLedger` attaches its
    per-domain breakdown (the sim layer never imports power), and
    ``epochs`` is empty until a control-layer epoch run attaches its
    :class:`EpochRecord` timeline - plain ``collect`` never populates
    either, so statically clocked runs stay bit-comparable with and
    without the control layer in the loop.
    """

    reference_ticks: int
    columns: tuple[ColumnStats, ...]
    horizontal_words: int
    reference_mhz: float = 0.0
    horizontal_span_words: float = 0.0
    domain_energy: tuple = ()
    epochs: tuple = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "columns", tuple(self.columns))
        object.__setattr__(self, "epochs", tuple(self.epochs))
        for epoch in self.epochs:
            if not isinstance(epoch, EpochRecord):
                raise ValueError("epochs must be EpochRecord instances")
        if not self.columns:
            raise ValueError("a run must report at least one column")
        for position, column in enumerate(self.columns):
            if not isinstance(column, ColumnStats):
                raise ValueError(
                    "columns must be ColumnStats instances"
                )
            if column.index != position:
                raise ValueError(
                    f"column at position {position} reports index "
                    f"{column.index}"
                )

    def column(self, index: int) -> ColumnStats:
        """Stats of one column."""
        return self.columns[index]

    @property
    def total_bus_words(self) -> int:
        """Words moved on all buses (vertical + horizontal)."""
        return sum(c.bus_words for c in self.columns) + self.horizontal_words

    @property
    def simulated_time_us(self) -> float:
        """Simulated wall-clock duration of the run in microseconds."""
        if self.reference_mhz <= 0:
            return 0.0
        return self.reference_ticks / self.reference_mhz

    def cycles_per_sample(self, column: int, samples: int) -> float:
        """Tile cycles per processed sample (Sec 4.1, step 6)."""
        if samples <= 0:
            raise ValueError("samples must be positive")
        return self.columns[column].tile_cycles / samples

    def frequency_for_rate(
        self, column: int, samples: int, sample_rate_msps: float
    ) -> float:
        """Required column frequency (MHz) for a target sample rate.

        Section 4.1 step 7: frequency = cycles/sample * input rate.
        """
        return self.cycles_per_sample(column, samples) * sample_rate_msps

    def frequency_residency(self, column: int) -> dict:
        """{frequency MHz: reference ticks spent there} for one column.

        With an attached epoch timeline the histogram aggregates over
        the time-varying divider; a statically clocked run reports its
        whole duration at the configured rate.  Residency covers the
        attached epochs plus any post-halt drain at the final clock.
        """
        if not self.epochs:
            return {self.columns[column].frequency_mhz:
                    self.reference_ticks}
        residency: dict = {}
        covered = 0
        for epoch in self.epochs:
            frequency = self.reference_mhz / epoch.dividers[column]
            residency[frequency] = (
                residency.get(frequency, 0) + epoch.duration_ticks
            )
            covered = max(covered, epoch.end_tick)
        drain = self.reference_ticks - covered
        if drain > 0:
            frequency = self.reference_mhz \
                / self.epochs[-1].dividers[column]
            residency[frequency] = residency.get(frequency, 0) + drain
        return residency


def collect(chip) -> SimulationStats:
    """Snapshot statistics from a chip."""
    columns = []
    for index, column in enumerate(chip.columns):
        controller = column.controller
        columns.append(ColumnStats(
            index=index,
            # The live clock tree, not the startup config: under
            # runtime DVFS the two diverge and the stats should report
            # the final operating point (epoch records carry history).
            frequency_mhz=chip.clock.frequency_mhz(index),
            tile_cycles=column.tile_cycles,
            issued=controller.issued,
            bubbles=controller.bubbles,
            comm_stalls=column.comm_stalls,
            control_executed=controller.control_executed,
            branch_stalls=controller.branch_stalls,
            zorm_nops=controller.zorm.total_nops,
            bus_words=column.dou.words_retired,
            tile_instructions=tuple(
                t.instructions_executed for t in column.tiles
            ),
            bus_span_words=column.dou.span_words,
        ))
    horizontal = 0
    horizontal_span = 0.0
    if chip.horizontal_dou is not None:
        horizontal = chip.horizontal_dou.words_retired
        horizontal_span = chip.horizontal_dou.span_words
    return SimulationStats(
        reference_ticks=chip.reference_ticks,
        columns=tuple(columns),
        horizontal_words=horizontal,
        reference_mhz=chip.config.reference_mhz,
        horizontal_span_words=horizontal_span,
    )
