"""Simulation statistics consumed by the power methodology."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ColumnStats:
    """Per-column execution summary."""

    index: int
    frequency_mhz: float
    tile_cycles: int
    issued: int
    bubbles: int
    comm_stalls: int
    control_executed: int
    branch_stalls: int
    zorm_nops: int
    bus_words: int
    tile_instructions: tuple

    @property
    def issue_rate(self) -> float:
        """Issued instructions per tile cycle."""
        if self.tile_cycles == 0:
            return 0.0
        return self.issued / self.tile_cycles

    @property
    def idle_fraction(self) -> float:
        """Fraction of tile cycles with no useful instruction."""
        if self.tile_cycles == 0:
            return 0.0
        return (self.bubbles + self.comm_stalls) / self.tile_cycles

    @property
    def bus_words_per_cycle(self) -> float:
        """Average vertical-bus words per tile cycle."""
        if self.tile_cycles == 0:
            return 0.0
        return self.bus_words / self.tile_cycles


@dataclass(frozen=True)
class SimulationStats:
    """Whole-run summary."""

    reference_ticks: int
    columns: tuple
    horizontal_words: int

    def column(self, index: int) -> ColumnStats:
        """Stats of one column."""
        return self.columns[index]

    @property
    def total_bus_words(self) -> int:
        """Words moved on all buses (vertical + horizontal)."""
        return sum(c.bus_words for c in self.columns) + self.horizontal_words

    def cycles_per_sample(self, column: int, samples: int) -> float:
        """Tile cycles per processed sample (Sec 4.1, step 6)."""
        if samples <= 0:
            raise ValueError("samples must be positive")
        return self.columns[column].tile_cycles / samples

    def frequency_for_rate(
        self, column: int, samples: int, sample_rate_msps: float
    ) -> float:
        """Required column frequency (MHz) for a target sample rate.

        Section 4.1 step 7: frequency = cycles/sample * input rate.
        """
        return self.cycles_per_sample(column, samples) * sample_rate_msps


def collect(chip) -> SimulationStats:
    """Snapshot statistics from a chip."""
    columns = []
    for index, column in enumerate(chip.columns):
        controller = column.controller
        columns.append(ColumnStats(
            index=index,
            frequency_mhz=chip.config.column_frequency_mhz(index),
            tile_cycles=column.tile_cycles,
            issued=controller.issued,
            bubbles=controller.bubbles,
            comm_stalls=column.comm_stalls,
            control_executed=controller.control_executed,
            branch_stalls=controller.branch_stalls,
            zorm_nops=controller.zorm.total_nops,
            bus_words=column.dou.words_retired,
            tile_instructions=tuple(
                t.instructions_executed for t in column.tiles
            ),
        ))
    horizontal = 0
    if chip.horizontal_dou is not None:
        horizontal = chip.horizontal_dou.words_retired
    return SimulationStats(
        reference_ticks=chip.reference_ticks,
        columns=tuple(columns),
        horizontal_words=horizontal,
    )
