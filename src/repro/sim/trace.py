"""Optional execution tracing for debugging schedules.

The :class:`Tracer` has two feeds into the same bounded buffer:

* the reference engine's observer hook - ``record(tick, column,
  outcome, pc)`` per tile-clock step, the tick-accurate view;
* the telemetry bus - subscribe the tracer with
  ``with subscribed(tracer): ...`` and every per-column event the
  *compiled* engine emits (window activity, relock gates, halts)
  lands as a :class:`TraceEvent` too, so striding runs are traceable
  without forcing them onto the tick-by-tick path.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.events import Event


@dataclass(frozen=True)
class TraceEvent:
    """One recorded per-column, per-tick outcome."""

    tick: int
    column: int
    outcome: str
    pc: int


class Tracer:
    """Bounded in-memory trace of column issue outcomes."""

    def __init__(self, limit: int = 100_000) -> None:
        if limit < 1:
            raise ValueError("limit must be positive")
        self.limit = limit
        self.events: list[TraceEvent] = []
        self.dropped = 0

    @property
    def total(self) -> int:
        """Everything seen: recorded events plus dropped overflow."""
        return len(self.events) + self.dropped

    def record(self, tick: int, column: int, outcome: str, pc: int) -> None:
        """Append one event, dropping past the limit."""
        if len(self.events) >= self.limit:
            self.dropped += 1
            return
        self.events.append(TraceEvent(tick, column, outcome, pc))

    def handle(self, event: Event) -> None:
        """Telemetry-bus sink: fold column-track events into the trace.

        Events on a ``column<i>`` track become :class:`TraceEvent`
        entries with the bus event's name as the outcome (``pc`` comes
        from the event args when present, -1 otherwise); events on
        layer tracks (``engine``, ``governor``, ...) carry no column
        and are skipped.  The buffer limit applies exactly as for
        :meth:`record`.
        """
        track = event.track
        if not track.startswith("column"):
            return
        try:
            column = int(track[len("column"):])
        except ValueError:
            return
        self.record(
            event.tick if event.tick is not None else 0,
            column,
            event.name,
            event.args.get("pc", -1),
        )

    def for_column(self, column: int) -> list[TraceEvent]:
        """Events of one column, in order."""
        return [e for e in self.events if e.column == column]

    def outcomes(self, column: int) -> str:
        """Compact outcome string: 'i' issued, 's' stalled, '.' bubble."""
        symbols = {"issued": "i", "stalled": "s", "bubble": "."}
        return "".join(
            symbols.get(e.outcome, "?") for e in self.for_column(column)
        )
