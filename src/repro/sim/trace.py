"""Optional execution tracing for debugging schedules."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TraceEvent:
    """One recorded per-column, per-tick outcome."""

    tick: int
    column: int
    outcome: str
    pc: int


class Tracer:
    """Bounded in-memory trace of column issue outcomes."""

    def __init__(self, limit: int = 100_000) -> None:
        if limit < 1:
            raise ValueError("limit must be positive")
        self.limit = limit
        self.events: list = []
        self.dropped = 0

    def record(self, tick: int, column: int, outcome: str, pc: int) -> None:
        """Append one event, dropping past the limit."""
        if len(self.events) >= self.limit:
            self.dropped += 1
            return
        self.events.append(TraceEvent(tick, column, outcome, pc))

    def for_column(self, column: int) -> list:
        """Events of one column, in order."""
        return [e for e in self.events if e.column == column]

    def outcomes(self, column: int) -> str:
        """Compact outcome string: 'i' issued, 's' stalled, '.' bubble."""
        symbols = {"issued": "i", "stalled": "s", "bubble": "."}
        return "".join(
            symbols.get(e.outcome, "?") for e in self.for_column(column)
        )
