"""Batched parallel simulation runs with content-hash caching.

Design-space exploration wants hundreds of chip configurations
simulated, and almost all of them are pure functions of their inputs:
the same programs on the same dividers always yield the same
statistics.  ``run_many`` exploits both facts - it fans a list of
:class:`RunRequest` descriptions across a ``multiprocessing`` pool
(falling back to in-process execution on small batches or single-CPU
hosts) and memoizes every result in a content-addressed
:class:`ResultCache`, optionally persisted to disk so repeated sweeps
pay only for the points that changed.

``parallel_map`` is the underlying fan-out primitive, also used by
the evaluation runner to render independent experiments concurrently.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from dataclasses import dataclass, replace
from multiprocessing import get_context
from pathlib import Path
from typing import Callable, Iterable, Sequence

from repro.arch.chip import Chip
from repro.arch.config import ChipConfig
from repro.arch.dou import DouProgram
from repro.obs.events import BUS
from repro.sim.engine import DEFAULT_MAX_TICKS, create_engine
from repro.sim.stats import SimulationStats

__all__ = [
    "BatchResult",
    "ResultCache",
    "RunRequest",
    "build_chip",
    "execute",
    "parallel_map",
    "request_key",
    "run_many",
]


@dataclass(frozen=True)
class RunRequest:
    """One self-contained, picklable simulation job.

    Only data crosses the process boundary - no callables - so a
    request can be hashed, shipped to a worker, and replayed later:

    ``memory_images``
        ``(column, tile, base, (words...))`` preload tuples.
    ``input_words``
        ``(column, (words...))`` horizontal-in port feeds.
    ``read_primes``
        ``(column, tile, (words...))`` read-buffer seeds (the
        architectural form of SDF initial tokens).
    """

    config: ChipConfig
    programs: tuple
    dou_programs: tuple | None = None
    horizontal_dou: DouProgram | None = None
    memory_images: tuple = ()
    input_words: tuple = ()
    read_primes: tuple = ()
    max_ticks: int = DEFAULT_MAX_TICKS
    drain_hyperperiods: int = 2
    engine: str = "compiled"
    label: str = ""


@dataclass(frozen=True)
class BatchResult:
    """One finished (or cache-served) batch entry."""

    label: str
    key: str
    stats: SimulationStats
    cached: bool


def request_key(request: RunRequest) -> str:
    """Content hash of a request (stable within an interpreter run).

    The key is a SHA-256 over the pickled request, so any change to
    the configuration, programs, schedules, or data yields a new cache
    entry; the ``label`` is presentation-only and excluded.
    """
    blob = pickle.dumps(replace(request, label=""), protocol=4)
    return hashlib.sha256(blob).hexdigest()


def build_chip(request: RunRequest) -> Chip:
    """Materialize a request's chip with all data loaded."""
    chip = Chip(
        request.config,
        programs=list(request.programs),
        dou_programs=(
            list(request.dou_programs)
            if request.dou_programs is not None else None
        ),
        horizontal_dou=request.horizontal_dou,
    )
    for column, tile, base, words in request.memory_images:
        chip.columns[column].tiles[tile].load_memory(base, list(words))
    for column, words in request.input_words:
        chip.feed_column(column, list(words))
    for column, tile, words in request.read_primes:
        for word in words:
            chip.columns[column].tiles[tile].read_buffer.push(word)
    return chip


def execute(request: RunRequest) -> SimulationStats:
    """Run one request to completion (worker entry point)."""
    chip = build_chip(request)
    engine = create_engine(request.engine, chip)
    return engine.run(
        max_ticks=request.max_ticks,
        drain_hyperperiods=request.drain_hyperperiods,
    )


class ResultCache:
    """Content-addressed stats cache: memory first, disk optional.

    With a ``directory`` every stored result is also pickled to
    ``<directory>/<key>.stats`` and survives the process; without one
    the cache is a plain in-memory memo.
    """

    def __init__(self, directory: str | Path | None = None) -> None:
        self._memory: dict = {}
        self.directory = Path(directory) if directory else None
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.stats"

    def get(self, key: str) -> SimulationStats | None:
        """Look a key up; counts a hit or miss."""
        stats = self._memory.get(key)
        if stats is None and self.directory is not None:
            path = self._path(key)
            if path.exists():
                stats = pickle.loads(path.read_bytes())
                self._memory[key] = stats
        if stats is None:
            self.misses += 1
            return None
        self.hits += 1
        return stats

    def put(self, key: str, stats: SimulationStats) -> None:
        """Store a result in memory (and on disk when configured)."""
        self._memory[key] = stats
        if self.directory is not None:
            self._path(key).write_bytes(pickle.dumps(stats, protocol=4))

    def __len__(self) -> int:
        return len(self._memory)


def parallel_map(
    fn: Callable,
    items: Sequence,
    processes: int | None = None,
    progress: Callable[[int], None] | None = None,
) -> list:
    """Order-preserving map, fanned across worker processes.

    ``processes=None`` sizes the pool to the host (serial on a single
    CPU); ``processes<=1`` or a batch of one runs in-process.  ``fn``
    and every item must be picklable when a pool is used.
    ``progress`` is invoked with each item's index as its result
    lands, in item order - always in the *calling* process, so it may
    emit telemetry (forked workers only see a dead copy of the bus).
    """
    items = list(items)
    if processes is None:
        processes = min(len(items), os.cpu_count() or 1)
    if processes <= 1 or len(items) <= 1:
        out = []
        for index, item in enumerate(items):
            out.append(fn(item))
            if progress is not None:
                progress(index)
        return out
    with get_context().Pool(processes=processes) as pool:
        if progress is None:
            return pool.map(fn, items)
        out = []
        for index, result in enumerate(pool.imap(fn, items)):
            out.append(result)
            progress(index)
        return out


def run_many(
    requests: Iterable[RunRequest],
    processes: int | None = None,
    cache: ResultCache | None = None,
) -> list[BatchResult]:
    """Execute a batch of requests, in parallel, through the cache.

    Cache hits never reach a worker; the remainder is executed with
    :func:`parallel_map` and written back, so a repeated sweep is
    priced by its novel points only.  Identical requests within one
    batch share a single cache lookup and a single execution (every
    copy past the first comes back ``cached=True``).  Results come
    back in request order.
    """
    requests = list(requests)
    cache = cache if cache is not None else ResultCache()
    keys = [request_key(request) for request in requests]
    groups: dict = {}
    for index, key in enumerate(keys):
        groups.setdefault(key, []).append(index)
    results: list = [None] * len(requests)
    pending: list = []
    for key, indices in groups.items():
        stats = cache.get(key)
        if stats is None:
            pending.append(key)
            continue
        for index in indices:
            results[index] = BatchResult(
                label=requests[index].label, key=key, stats=stats,
                cached=True,
            )
            if BUS.active:
                BUS.instant(
                    "job_cached", category="batch", track="jobs",
                    args={
                        "label": requests[index].label,
                        "key": key[:12],
                    },
                )
    # Lifecycle events are parent-side only: forked workers inherit a
    # copy of the bus whose events die with them, so the one coherent
    # stream is submitted/progress/done as results land here.
    progress = None
    if BUS.active:
        BUS.instant(
            "batch_submitted", category="batch", track="jobs",
            args={
                "jobs": len(requests),
                "unique": len(groups),
                "cached": len(groups) - len(pending),
                "executing": len(pending),
            },
        )

        def progress(index: int) -> None:
            BUS.instant(
                "job_done", category="batch", track="jobs",
                args={
                    "label": requests[groups[pending[index]][0]].label,
                    "key": pending[index][:12],
                    "completed": index + 1,
                    "of": len(pending),
                },
            )

    fresh = parallel_map(
        execute,
        [requests[groups[key][0]] for key in pending],
        processes,
        progress=progress,
    )
    for key, stats in zip(pending, fresh):
        cache.put(key, stats)
        for occurrence, index in enumerate(groups[key]):
            results[index] = BatchResult(
                label=requests[index].label,
                key=key,
                stats=stats,
                cached=occurrence > 0,
            )
    return results
