"""Batched parallel simulation runs with content-hash caching.

Design-space exploration wants hundreds of chip configurations
simulated, and almost all of them are pure functions of their inputs:
the same programs on the same dividers always yield the same
statistics.  ``run_many`` exploits both facts - it fans a list of
:class:`RunRequest` descriptions across a ``multiprocessing`` pool
(falling back to in-process execution on small batches or single-CPU
hosts) and memoizes every result in a content-addressed
:class:`ResultCache`, optionally persisted to disk so repeated sweeps
pay only for the points that changed.

``parallel_map`` is the underlying fan-out primitive, also used by
the evaluation runner to render independent experiments concurrently.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from dataclasses import dataclass, replace
from multiprocessing import get_context
from pathlib import Path
from typing import Callable, Iterable, Sequence

from repro.arch.chip import Chip
from repro.arch.config import ChipConfig
from repro.arch.dou import DouProgram
from repro.obs.events import BUS
from repro.sim.engine import DEFAULT_MAX_TICKS, create_engine
from repro.sim.stats import SimulationStats

__all__ = [
    "BatchResult",
    "ResultCache",
    "RunRequest",
    "build_chip",
    "execute",
    "parallel_map",
    "request_key",
    "run_many",
]


@dataclass(frozen=True)
class RunRequest:
    """One self-contained, picklable simulation job.

    Only data crosses the process boundary - no callables - so a
    request can be hashed, shipped to a worker, and replayed later:

    ``memory_images``
        ``(column, tile, base, (words...))`` preload tuples.
    ``input_words``
        ``(column, (words...))`` horizontal-in port feeds.
    ``read_primes``
        ``(column, tile, (words...))`` read-buffer seeds (the
        architectural form of SDF initial tokens).
    """

    config: ChipConfig
    programs: tuple
    dou_programs: tuple | None = None
    horizontal_dou: DouProgram | None = None
    memory_images: tuple = ()
    input_words: tuple = ()
    read_primes: tuple = ()
    max_ticks: int = DEFAULT_MAX_TICKS
    drain_hyperperiods: int = 2
    engine: str = "compiled"
    label: str = ""


@dataclass(frozen=True)
class BatchResult:
    """One finished (or cache-served) batch entry."""

    label: str
    key: str
    stats: SimulationStats
    cached: bool


def request_key(request: RunRequest) -> str:
    """Content hash of a request (stable within an interpreter run).

    The key is a SHA-256 over the pickled request, so any change to
    the configuration, programs, schedules, or data yields a new cache
    entry; the ``label`` is presentation-only and excluded.
    """
    blob = pickle.dumps(replace(request, label=""), protocol=4)
    return hashlib.sha256(blob).hexdigest()


def build_chip(request: RunRequest) -> Chip:
    """Materialize a request's chip with all data loaded."""
    chip = Chip(
        request.config,
        programs=list(request.programs),
        dou_programs=(
            list(request.dou_programs)
            if request.dou_programs is not None else None
        ),
        horizontal_dou=request.horizontal_dou,
    )
    for column, tile, base, words in request.memory_images:
        chip.columns[column].tiles[tile].load_memory(base, list(words))
    for column, words in request.input_words:
        chip.feed_column(column, list(words))
    for column, tile, words in request.read_primes:
        for word in words:
            chip.columns[column].tiles[tile].read_buffer.push(word)
    return chip


def execute(request: RunRequest) -> SimulationStats:
    """Run one request to completion (worker entry point)."""
    chip = build_chip(request)
    engine = create_engine(request.engine, chip)
    return engine.run(
        max_ticks=request.max_ticks,
        drain_hyperperiods=request.drain_hyperperiods,
    )


#: On-disk cache format stamp: every payload starts with this magic
#: so a format bump (or a file from another tool entirely) reads as
#: corrupt-and-quarantined instead of unpickling garbage.
CACHE_MAGIC = b"RSTATS2\n"


class ResultCache:
    """Content-addressed stats cache: memory first, disk optional.

    With a ``directory`` every stored result is also pickled to
    ``<directory>/<key>.stats`` and survives the process; without one
    the cache is a plain in-memory memo.

    The disk tier is crash-safe: payloads are written to a temporary
    file and atomically renamed (a process dying mid-write never
    leaves a torn entry under the final name), every payload carries
    the :data:`CACHE_MAGIC` format stamp plus a SHA-256 checksum
    sidecar (``<key>.sha256``) verified on load, and anything that
    fails verification - truncated pickle, flipped bytes, missing
    sidecar, unknown format - is moved to ``<directory>/quarantine/``
    and treated as a miss (a ``cache_corrupt`` event on the bus, the
    ``cache_quarantined`` outcome counter, and :attr:`quarantined`
    record the eviction).
    """

    #: Bumped whenever the on-disk layout changes; encoded in
    #: :data:`CACHE_MAGIC` so older entries quarantine cleanly.
    FORMAT = 2

    def __init__(self, directory: str | Path | None = None) -> None:
        self._memory: dict = {}
        self.directory = Path(directory) if directory else None
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.quarantined = 0

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.stats"

    def _sidecar(self, key: str) -> Path:
        return self.directory / f"{key}.sha256"

    def _quarantine(self, key: str, reason: str) -> None:
        """Evict a corrupt entry (payload + sidecar) out of the way."""
        quarantine = self.directory / "quarantine"
        quarantine.mkdir(exist_ok=True)
        for target in (self._path(key), self._sidecar(key)):
            if target.exists():
                os.replace(target, quarantine / target.name)
        self.quarantined += 1
        # Lazy import: resilience imports this module at top level.
        from repro.sim.resilience import note_cache_quarantine

        note_cache_quarantine()
        if BUS.active:
            BUS.instant(
                "cache_corrupt", category="batch", track="jobs",
                args={
                    "key": key[:12], "reason": reason,
                    "quarantine": str(quarantine),
                },
            )

    def _load(self, key: str) -> SimulationStats | None:
        """Verified disk read; corrupt entries quarantine to a miss."""
        try:
            blob = self._path(key).read_bytes()
            sidecar = self._sidecar(key)
            if not sidecar.exists():
                raise ValueError("checksum sidecar missing")
            recorded = sidecar.read_text().strip()
            if recorded != hashlib.sha256(blob).hexdigest():
                raise ValueError("checksum mismatch")
            if not blob.startswith(CACHE_MAGIC):
                raise ValueError(
                    f"unknown cache format (expected "
                    f"{CACHE_MAGIC!r} stamp)"
                )
            return pickle.loads(blob[len(CACHE_MAGIC):])
        except Exception as exc:
            self._quarantine(key, f"{type(exc).__name__}: {exc}")
            return None

    def get(self, key: str) -> SimulationStats | None:
        """Look a key up; counts a hit or miss."""
        stats = self._memory.get(key)
        if stats is None and self.directory is not None:
            if self._path(key).exists():
                stats = self._load(key)
                if stats is not None:
                    self._memory[key] = stats
        if stats is None:
            self.misses += 1
            return None
        self.hits += 1
        return stats

    def _atomic_write(self, path: Path, data: bytes) -> None:
        tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
        tmp.write_bytes(data)
        os.replace(tmp, path)

    def put(self, key: str, stats: SimulationStats) -> None:
        """Store a result in memory (and on disk when configured).

        Payload first, sidecar second: a crash in between leaves an
        entry whose sidecar is missing, which the next :meth:`get`
        quarantines and re-executes - never a silently torn read.
        """
        self._memory[key] = stats
        if self.directory is None:
            return
        blob = CACHE_MAGIC + pickle.dumps(stats, protocol=4)
        self._atomic_write(self._path(key), blob)
        self._atomic_write(
            self._sidecar(key),
            hashlib.sha256(blob).hexdigest().encode() + b"\n",
        )

    def __len__(self) -> int:
        return len(self._memory)


def parallel_map(
    fn: Callable,
    items: Sequence,
    processes: int | None = None,
    progress: Callable[[int], None] | None = None,
    labels: Sequence[str] | None = None,
) -> list:
    """Order-preserving map, fanned across worker processes.

    ``processes=None`` sizes the pool to the host (serial on a single
    CPU); ``processes<=1`` or a batch of one runs in-process.  ``fn``
    and every item must be picklable when a pool is used.
    ``progress`` is invoked with each item's index as its result
    lands, in item order - always in the *calling* process, so it may
    emit telemetry (forked workers only see a dead copy of the bus).

    Failure semantics: on any error (or ``KeyboardInterrupt``) the
    pool is terminated and joined - workers never outlive the call -
    and the first failing job's label (``labels[i]`` when given,
    ``item i`` otherwise) is attached to the propagating exception as
    a note, so a sweep-deep traceback names the job that died.
    """
    items = list(items)
    if labels is not None:
        labels = list(labels)
        if len(labels) != len(items):
            raise ValueError(
                f"{len(labels)} labels for {len(items)} items"
            )

    def _label(index: int) -> str:
        return labels[index] if labels is not None else f"item {index}"

    if processes is None:
        processes = min(len(items), os.cpu_count() or 1)
    if processes <= 1 or len(items) <= 1:
        out = []
        for index, item in enumerate(items):
            try:
                out.append(fn(item))
            except Exception as exc:
                exc.add_note(
                    f"parallel_map job {_label(index)!r} raised"
                )
                raise
            if progress is not None:
                progress(index)
        return out
    pool = get_context().Pool(processes=processes)
    out = []
    try:
        for index, result in enumerate(pool.imap(fn, items)):
            out.append(result)
            if progress is not None:
                progress(index)
        pool.close()
        pool.join()
        return out
    except BaseException as exc:
        # Clean teardown on any failure path, KeyboardInterrupt
        # included: no leaked workers grinding on after the caller
        # has given up.  imap yields in item order, so the first
        # un-landed item is the one whose exception is propagating.
        pool.terminate()
        pool.join()
        if isinstance(exc, Exception) and len(out) < len(items):
            exc.add_note(
                f"parallel_map job {_label(len(out))!r} raised"
            )
        raise


def run_many(
    requests: Iterable[RunRequest],
    processes: int | None = None,
    cache: ResultCache | None = None,
    policy=None,
    injector=None,
) -> list[BatchResult]:
    """Execute a batch of requests, in parallel, through the cache.

    Cache hits never reach a worker; the remainder is executed with
    :func:`parallel_map` and written back, so a repeated sweep is
    priced by its novel points only.  Identical requests within one
    batch share a single cache lookup and a single execution (every
    copy past the first comes back ``cached=True``).  Results come
    back in request order.

    With a ``policy`` (a :class:`~repro.sim.resilience.FaultPolicy`,
    or the process default installed by
    :func:`~repro.sim.resilience.set_default_policy`) or an
    ``injector``, the batch runs through the supervision layer
    instead: retries, timeouts, crash containment, and engine
    degradation per the policy, with a
    :class:`~repro.errors.BatchError` raised if any job still fails
    terminally.  Callers that want per-job outcomes rather than a
    raise use :func:`~repro.sim.resilience.run_many_outcomes`.
    """
    if policy is None and injector is None:
        from repro.sim import resilience

        policy = resilience.default_policy()
    if policy is not None or injector is not None:
        from repro.sim import resilience

        return resilience.to_batch_results(
            resilience.run_many_outcomes(
                requests, processes=processes, cache=cache,
                policy=policy, injector=injector,
            )
        )
    requests = list(requests)
    cache = cache if cache is not None else ResultCache()
    keys = [request_key(request) for request in requests]
    groups: dict = {}
    for index, key in enumerate(keys):
        groups.setdefault(key, []).append(index)
    results: list = [None] * len(requests)
    pending: list = []
    for key, indices in groups.items():
        stats = cache.get(key)
        if stats is None:
            pending.append(key)
            continue
        for index in indices:
            results[index] = BatchResult(
                label=requests[index].label, key=key, stats=stats,
                cached=True,
            )
            if BUS.active:
                BUS.instant(
                    "job_cached", category="batch", track="jobs",
                    args={
                        "label": requests[index].label,
                        "key": key[:12],
                    },
                )
    # Lifecycle events are parent-side only: forked workers inherit a
    # copy of the bus whose events die with them, so the one coherent
    # stream is submitted/progress/done as results land here.
    progress = None
    if BUS.active:
        BUS.instant(
            "batch_submitted", category="batch", track="jobs",
            args={
                "jobs": len(requests),
                "unique": len(groups),
                "cached": len(groups) - len(pending),
                "executing": len(pending),
            },
        )

        def progress(index: int) -> None:
            BUS.instant(
                "job_done", category="batch", track="jobs",
                args={
                    "label": requests[groups[pending[index]][0]].label,
                    "key": pending[index][:12],
                    "completed": index + 1,
                    "of": len(pending),
                },
            )

    fresh = parallel_map(
        execute,
        [requests[groups[key][0]] for key in pending],
        processes,
        progress=progress,
    )
    for key, stats in zip(pending, fresh):
        cache.put(key, stats)
        for occurrence, index in enumerate(groups[key]):
            results[index] = BatchResult(
                label=requests[index].label,
                key=key,
                stats=stats,
                cached=occurrence > 0,
            )
    return results
