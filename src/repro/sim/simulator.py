"""The multi-clock-domain simulation driver.

:class:`Simulator` is a thin facade over the pluggable engine layer
(:mod:`repro.sim.engine`): it picks an engine, wires the optional
tracer in as a step observer, and exposes the historical run/step
API.  The default ``engine="auto"`` selects the hyperperiod-compiled
fast path whenever no tracer is attached (the differential tests
guarantee bit-identical statistics); pass ``engine="reference"`` to
force tick-by-tick stepping.
"""

from __future__ import annotations

from typing import Callable

from repro.arch.chip import Chip
from repro.arch.config import ChipConfig, ColumnConfig
from repro.arch.dou import DouProgram
from repro.errors import ConfigurationError
from repro.isa.program import Program
from repro.sim.engine import DEFAULT_MAX_TICKS, Engine, create_engine
from repro.sim.stats import SimulationStats
from repro.sim.trace import Tracer

__all__ = ["DEFAULT_MAX_TICKS", "Simulator", "run_single_column"]


class Simulator:
    """Runs a chip to completion and snapshots statistics."""

    def __init__(
        self,
        chip: Chip,
        tracer: Tracer | None = None,
        engine: str | Engine = "auto",
    ) -> None:
        self.chip = chip
        self.tracer = tracer
        if isinstance(engine, Engine):
            if tracer is not None:
                raise ConfigurationError(
                    "pass the tracer as an engine observer when "
                    "supplying an engine instance"
                )
            self.engine = engine
        else:
            observers = (tracer,) if tracer is not None else ()
            self.engine = create_engine(engine, chip, observers)

    def step(self) -> None:
        """Advance one reference tick (with optional tracing)."""
        self.engine.step()

    def run(
        self,
        max_ticks: int = DEFAULT_MAX_TICKS,
        until: Callable[[Chip], bool] | None = None,
        drain_hyperperiods: int = 2,
    ) -> SimulationStats:
        """Run until every column halts (or ``until`` fires).

        After all columns halt, the buses are drained for a couple of
        clock hyperperiods so in-flight words settle into their
        destination buffers.

        Raises
        ------
        SimulationError
            If the tick budget is exhausted first - almost always a
            deadlocked communication schedule.
        """
        return self.engine.run(
            max_ticks=max_ticks,
            until=until,
            drain_hyperperiods=drain_hyperperiods,
        )


def run_single_column(
    program: Program,
    dou_program: DouProgram | None = None,
    reference_mhz: float = 100.0,
    divider: int = 1,
    memory_images: dict | None = None,
    input_words: list | None = None,
    read_primes: dict | None = None,
    strict_schedules: bool = True,
    max_ticks: int = DEFAULT_MAX_TICKS,
    tracer: Tracer | None = None,
    engine: str = "auto",
) -> tuple[Chip, SimulationStats]:
    """Build, load, and run a one-column chip; returns (chip, stats).

    ``memory_images`` maps tile index to ``{base: [words]}`` preloads;
    ``input_words`` feeds the column's horizontal-in port (available to
    DOU states that drive from the port position); ``read_primes``
    maps tile index to words seeded into its read buffer at startup -
    the architectural equivalent of SDF initial tokens, needed to
    prime tile-to-tile pipelines under lockstep SIMD issue.
    """
    config = ChipConfig(
        reference_mhz=reference_mhz,
        columns=(ColumnConfig(divider=divider),),
        strict_schedules=strict_schedules,
    )
    chip = Chip(config, programs=[program], dou_programs=[dou_program])
    if memory_images:
        for tile_index, images in memory_images.items():
            for base, words in images.items():
                chip.columns[0].tiles[tile_index].load_memory(base, words)
    if input_words:
        chip.feed_column(0, input_words)
    if read_primes:
        for tile_index, words in read_primes.items():
            for word in words:
                chip.columns[0].tiles[tile_index].read_buffer.push(word)
    stats = Simulator(chip, tracer=tracer, engine=engine).run(
        max_ticks=max_ticks
    )
    return chip, stats
