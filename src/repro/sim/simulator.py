"""The multi-clock-domain simulation driver."""

from __future__ import annotations

from typing import Callable

from repro.errors import SimulationError
from repro.arch.chip import Chip
from repro.arch.config import ChipConfig, ColumnConfig
from repro.arch.dou import DouProgram
from repro.isa.program import Program
from repro.sim.stats import SimulationStats, collect
from repro.sim.trace import Tracer

DEFAULT_MAX_TICKS = 2_000_000


class Simulator:
    """Runs a chip to completion and snapshots statistics."""

    def __init__(self, chip: Chip, tracer: Tracer | None = None) -> None:
        self.chip = chip
        self.tracer = tracer

    def step(self) -> None:
        """Advance one reference tick (with optional tracing)."""
        chip = self.chip
        if self.tracer is None:
            chip.step_reference_tick()
            return
        tick = chip.reference_ticks
        for column in chip.columns:
            column.step_bus_clock()
        if chip.horizontal_dou is not None:
            chip.horizontal_dou.step()
        for index, column in enumerate(chip.columns):
            if chip.clock.ticks(index, tick):
                pc = column.controller.pc
                outcome = column.step_tile_clock()
                self.tracer.record(tick, index, outcome, pc)
        chip.reference_ticks += 1

    def run(
        self,
        max_ticks: int = DEFAULT_MAX_TICKS,
        until: Callable | None = None,
        drain_hyperperiods: int = 2,
    ) -> SimulationStats:
        """Run until every column halts (or ``until`` fires).

        After all columns halt, the buses are drained for a couple of
        clock hyperperiods so in-flight words settle into their
        destination buffers.

        Raises
        ------
        SimulationError
            If the tick budget is exhausted first - almost always a
            deadlocked communication schedule.
        """
        chip = self.chip
        for _ in range(max_ticks):
            if until is not None and until(chip):
                return collect(chip)
            if chip.all_halted:
                break
            self.step()
        else:
            raise SimulationError(
                f"simulation exceeded {max_ticks} reference ticks "
                f"(deadlocked schedule?)"
            )
        for _ in range(drain_hyperperiods * chip.clock.hyperperiod()):
            self.step()
        return collect(chip)


def run_single_column(
    program: Program,
    dou_program: DouProgram | None = None,
    reference_mhz: float = 100.0,
    divider: int = 1,
    memory_images: dict | None = None,
    input_words: list | None = None,
    read_primes: dict | None = None,
    strict_schedules: bool = True,
    max_ticks: int = DEFAULT_MAX_TICKS,
    tracer: Tracer | None = None,
) -> tuple:
    """Build, load, and run a one-column chip; returns (chip, stats).

    ``memory_images`` maps tile index to ``{base: [words]}`` preloads;
    ``input_words`` feeds the column's horizontal-in port (available to
    DOU states that drive from the port position); ``read_primes``
    maps tile index to words seeded into its read buffer at startup -
    the architectural equivalent of SDF initial tokens, needed to
    prime tile-to-tile pipelines under lockstep SIMD issue.
    """
    config = ChipConfig(
        reference_mhz=reference_mhz,
        columns=(ColumnConfig(divider=divider),),
        strict_schedules=strict_schedules,
    )
    chip = Chip(config, programs=[program], dou_programs=[dou_program])
    if memory_images:
        for tile_index, images in memory_images.items():
            for base, words in images.items():
                chip.columns[0].tiles[tile_index].load_memory(base, words)
    if input_words:
        chip.feed_column(0, input_words)
    if read_primes:
        for tile_index, words in read_primes.items():
            for word in words:
                chip.columns[0].tiles[tile_index].read_buffer.push(word)
    stats = Simulator(chip, tracer=tracer).run(max_ticks=max_ticks)
    return chip, stats
