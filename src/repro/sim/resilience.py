"""Fault-tolerant supervision for batched simulation jobs.

:func:`repro.sim.batch.run_many` treats a worker failure as fatal:
one lost process aborts the whole sweep and every in-flight result
with it.  At fleet scale (thousands-of-configs design-space sweeps,
long-lived simulation services) that is the wrong default - stalls
and failures are an expected operating condition, not an exception,
so the job plane applies the same observe/back-off/degrade discipline
the DVFS governors apply to deadlines.

This module supervises every job into a typed :class:`JobOutcome`
instead of a raised exception:

* **Retry with backoff** - a :class:`FaultPolicy` caps retries and
  spaces attempts by exponential backoff with *deterministic* jitter
  derived from the request key, so two supervisors replaying the same
  sweep make identical scheduling decisions.
* **Per-job wall-clock timeouts** - in process mode an over-budget
  worker is terminated and the job rescheduled; in serial mode the
  timeout is enforced post-hoc (the result is discarded and the job
  retried) since an in-process attempt cannot be preempted.
* **Worker-crash containment** - each job attempt runs in its own
  supervised worker process, so a crash (segfault, ``os._exit``, OOM
  kill) loses exactly one attempt; surviving pending jobs are
  unaffected and the crashed job is rescheduled on a fresh worker.
* **Graceful engine degradation** - a job whose
  :class:`~repro.sim.engine.CompiledEngine` raises an internal error
  is retried once on the tick-accurate
  :class:`~repro.sim.engine.ReferenceEngine` within the same attempt
  and flagged ``degraded``, mirroring the engine's own
  lockstep abort-and-fall-back ladder.  Bit-identity between the two
  engines is a standing contract, so a degraded sweep still returns
  correct statistics - just slower.

Every retry, timeout, crash, degradation, and cache quarantine is
emitted on the :data:`repro.obs.events.BUS` (category ``batch``,
track ``jobs``) and accumulated in the module-level
:data:`METRICS` registry; :func:`outcomes_snapshot` is the block the
evaluation runner stamps into every ``BENCH_*`` artifact.

:func:`run_many_outcomes` is the primary entry point;
``run_many(policy=...)`` in :mod:`repro.sim.batch` rides on it and
converts back to :class:`~repro.sim.batch.BatchResult`, raising
:class:`~repro.errors.BatchError` on any terminal failure.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass, replace
from multiprocessing import get_context
from multiprocessing.connection import wait as _wait_ready
from typing import Iterable

from repro.errors import BatchError, SimulationError
from repro.obs.events import BUS
from repro.obs.metrics import MetricsRegistry
from repro.sim.batch import (
    BatchResult,
    ResultCache,
    RunRequest,
    execute,
    request_key,
)
from repro.sim.faultinject import InjectedWorkerCrash

__all__ = [
    "FaultPolicy",
    "JobOutcome",
    "METRICS",
    "backoff_delay",
    "default_policy",
    "outcomes_snapshot",
    "reset_outcome_counters",
    "run_many_outcomes",
    "set_default_policy",
]

#: Outcome statuses a supervised job can settle into.  ``degraded``
#: is a success (stats present, computed on the fallback engine);
#: the last three are terminal failures.
STATUSES = ("ok", "degraded", "failed", "timed_out", "worker_crashed")


@dataclass(frozen=True)
class FaultPolicy:
    """The supervision knobs for one batched run.

    ``max_retries``
        Additional attempts after the first (so a job runs at most
        ``1 + max_retries`` times).
    ``timeout_s``
        Per-job wall-clock budget; ``None`` disables timeouts.
    ``backoff_base_s`` / ``backoff_factor`` / ``backoff_max_s``
        Exponential retry spacing: attempt *n*'s delay is
        ``base * factor**(n-1)`` capped at ``backoff_max_s``, then
        jittered deterministically from the request key
        (:func:`backoff_delay`).
    ``keep_going``
        ``False`` (fail-fast) aborts the batch on the first terminal
        failure; ``True`` (collect-partial) supervises every job to
        an outcome and returns them all.
    ``degrade``
        Enable the compiled-to-reference engine fallback ladder.
    """

    max_retries: int = 2
    timeout_s: float | None = None
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_max_s: float = 5.0
    keep_going: bool = False
    degrade: bool = True

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError(
                f"timeout_s must be positive, got {self.timeout_s}"
            )
        if self.backoff_base_s < 0 or self.backoff_max_s < 0:
            raise ValueError("backoff delays must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got "
                f"{self.backoff_factor}"
            )


@dataclass(frozen=True)
class JobOutcome:
    """One supervised job's terminal state.

    ``stats`` is present exactly when :attr:`ok` (statuses ``ok`` and
    ``degraded``).  ``attempts`` counts executions (0 for a pure
    cache hit); ``retries`` is ``attempts - 1`` floored at zero.
    ``error`` summarizes the *last* failure for non-ok outcomes.
    """

    label: str
    key: str
    status: str
    stats: object = None
    cached: bool = False
    attempts: int = 0
    retries: int = 0
    degraded: bool = False
    error: str | None = None

    @property
    def ok(self) -> bool:
        """Whether the job produced usable statistics."""
        return self.status in ("ok", "degraded")


def backoff_delay(
    policy: FaultPolicy, key: str, attempt: int
) -> float:
    """Delay before retry number ``attempt`` (1-based) of ``key``.

    Exponential in the attempt number, capped, and jittered into
    ``[0.5, 1.5) x`` the nominal delay by a hash of the request key -
    deterministic (two supervisors schedule identically) yet spread
    (a retry storm over many keys does not thunder in lockstep).
    """
    nominal = policy.backoff_base_s * (
        policy.backoff_factor ** max(0, attempt - 1)
    )
    nominal = min(nominal, policy.backoff_max_s)
    digest = hashlib.sha256(f"{key}:{attempt}".encode()).digest()
    fraction = int.from_bytes(digest[:8], "big") / 2 ** 64
    return nominal * (0.5 + fraction)


# ----------------------------------------------------------------------
# Outcome counters: the process-wide tally every BENCH_* artifact
# stamps (runner's emit_artifact) and CI validates.
# ----------------------------------------------------------------------

METRICS = MetricsRegistry(namespace="resilience")

_COUNTER_FIELDS = (
    "ok", "degraded", "failed", "timed_out", "worker_crashed",
    "retries", "cache_quarantined",
)
_COUNTERS = {
    field: METRICS.counter(f"jobs_{field}" if field not in
                           ("retries", "cache_quarantined")
                           else field)
    for field in _COUNTER_FIELDS
}


def outcomes_snapshot() -> dict:
    """JSON-ready outcome tallies since the last reset.

    Keys are stable (``tools/check_outcomes_artifact.py`` validates
    them): ``ok``, ``degraded``, ``failed``, ``timed_out``,
    ``worker_crashed``, ``retries``, ``cache_quarantined``.  The
    success classes (``ok``, ``degraded``) count settled *jobs*; the
    failure classes count failed *attempts* (so a fault that was
    retried away is still visible, classified); ``retries`` counts
    rescheduled attempts and ``cache_quarantined`` evicted corrupt
    cache entries.  A fault-free run has every key but ``ok`` at
    zero.
    """
    return {
        field: _COUNTERS[field].value for field in _COUNTER_FIELDS
    }


def reset_outcome_counters() -> None:
    """Zero every outcome counter (test isolation)."""
    for counter in _COUNTERS.values():
        METRICS.store[counter.name] = 0


def note_cache_quarantine() -> None:
    """Called by ResultCache when it quarantines a corrupt entry."""
    _COUNTERS["cache_quarantined"].inc()


# ----------------------------------------------------------------------
# Global default policy: set by runner flags, consulted by run_many.
# ----------------------------------------------------------------------

_DEFAULT_POLICY: FaultPolicy | None = None


def set_default_policy(policy: FaultPolicy | None) -> None:
    """Install (or clear, with ``None``) the process default policy.

    When set, every :func:`repro.sim.batch.run_many` call without an
    explicit policy runs supervised under it - how the runner's
    ``--job-timeout`` / ``--retries`` / ``--keep-going`` flags reach
    the batches deep inside the measured-power pipeline.
    """
    global _DEFAULT_POLICY
    _DEFAULT_POLICY = policy


def default_policy() -> FaultPolicy | None:
    """The installed process default policy, if any."""
    return _DEFAULT_POLICY


# ----------------------------------------------------------------------
# One attempt: shared by worker processes and serial supervision.
# ----------------------------------------------------------------------

def _describe(exc: BaseException) -> str:
    return f"{type(exc).__name__}: {exc}"


def _attempt(
    request: RunRequest,
    key: str,
    injector,
    attempt: int,
    degrade: bool,
    in_worker: bool,
) -> tuple:
    """Execute one attempt; never raises except for injected kills.

    Returns ``("ok", stats, degraded)`` or ``("error", summary,
    degraded_tried)``.  The degradation ladder lives here so a
    compiled-engine internal error falls back to the reference engine
    *within* the same attempt (and the same timeout budget).
    """
    if injector is not None:
        injector.before_attempt(key, request.label, attempt, in_worker)
    fault = (
        injector.engine_fault(key, attempt)
        if injector is not None else None
    )
    try:
        if fault is not None and request.engine == "compiled":
            raise SimulationError(
                f"injected compiled-engine fault in phase "
                f"{fault.phase!r}"
            )
        return ("ok", execute(request), False)
    except Exception as exc:
        if degrade and request.engine == "compiled":
            try:
                stats = execute(replace(request, engine="reference"))
            except Exception as fallback_exc:
                return (
                    "error",
                    f"{_describe(exc)}; reference fallback also "
                    f"failed: {_describe(fallback_exc)}",
                    True,
                )
            return ("ok", stats, True)
        return ("error", _describe(exc), False)


def _worker_entry(conn, request, key, injector, attempt, degrade):
    """Worker-process main: run one attempt, report through the pipe.

    A worker that dies without sending (kill, segfault) is detected
    parent-side as EOF on the pipe - the worker-crash path.
    """
    try:
        message = _attempt(
            request, key, injector, attempt, degrade, in_worker=True
        )
    except BaseException as exc:  # report, never crash silently
        message = ("error", _describe(exc), False)
    try:
        conn.send(message)
    except Exception:
        pass
    finally:
        conn.close()


# ----------------------------------------------------------------------
# The supervisor.
# ----------------------------------------------------------------------

class _Job:
    """Mutable bookkeeping for one unique request in flight."""

    __slots__ = ("request", "key", "attempts", "ready_at")

    def __init__(self, request: RunRequest, key: str) -> None:
        self.request = request
        self.key = key
        self.attempts = 0
        self.ready_at = 0.0


class _FailFast(Exception):
    """Internal signal: a terminal failure under fail-fast mode."""

    def __init__(self, outcome: JobOutcome) -> None:
        super().__init__(outcome.error)
        self.outcome = outcome


class _Supervisor:
    """Drives a set of unique jobs to outcomes under one policy."""

    def __init__(self, policy, injector, done: dict) -> None:
        self.policy = policy
        self.injector = injector
        self.done = done
        self.queue: list = []

    # -- telemetry ------------------------------------------------------
    def _event(self, name: str, job: _Job, **extra) -> None:
        if BUS.active:
            BUS.instant(
                name, category="batch", track="jobs",
                args={
                    "label": job.request.label,
                    "key": job.key[:12],
                    "attempt": job.attempts,
                    **extra,
                },
            )

    # -- settling -------------------------------------------------------
    def _settle(self, job: _Job, message: tuple) -> None:
        """Fold one attempt's result into retry-or-outcome."""
        kind, payload, degraded = message
        job.attempts += 1
        if kind == "ok":
            status = "degraded" if degraded else "ok"
            _COUNTERS[status].inc()
            self._event(
                "job_degraded" if degraded else "job_done", job
            )
            self.done[job.key] = JobOutcome(
                label=job.request.label, key=job.key, status=status,
                stats=payload, attempts=job.attempts,
                retries=job.attempts - 1, degraded=degraded,
            )
            return
        status = {
            "error": "failed",
            "crashed": "worker_crashed",
            "timeout": "timed_out",
        }[kind]
        # Failure-class counters tally *attempts*, not jobs, so a
        # recovered fault still shows up classified (a clean run
        # keeps them all zero either way).
        _COUNTERS[status].inc()
        self._event(
            {
                "failed": "job_failed",
                "worker_crashed": "job_worker_crashed",
                "timed_out": "job_timeout",
            }[status],
            job, reason=payload,
        )
        if job.attempts <= self.policy.max_retries:
            delay = backoff_delay(self.policy, job.key, job.attempts)
            _COUNTERS["retries"].inc()
            self._event("job_retry", job, backoff_s=round(delay, 6))
            job.ready_at = time.monotonic() + delay
            self.queue.append(job)
            return
        outcome = JobOutcome(
            label=job.request.label, key=job.key, status=status,
            attempts=job.attempts, retries=job.attempts - 1,
            degraded=degraded, error=payload,
        )
        self.done[job.key] = outcome
        if not self.policy.keep_going:
            raise _FailFast(outcome)

    # -- serial mode ----------------------------------------------------
    def run_serial(self, jobs: list) -> None:
        """In-process supervision: crashes and timeouts still settle.

        Injected kills arrive as :class:`InjectedWorkerCrash`;
        timeouts are post-hoc (an in-process attempt cannot be
        preempted, so an over-budget result is discarded and the job
        retried) - documented serial-mode semantics.
        """
        self.queue.extend(jobs)
        while self.queue:
            job = self.queue.pop(0)
            wait = job.ready_at - time.monotonic()
            if wait > 0:
                time.sleep(wait)
            start = time.monotonic()
            try:
                message = _attempt(
                    job.request, job.key, self.injector,
                    job.attempts + 1, self.policy.degrade,
                    in_worker=False,
                )
            except InjectedWorkerCrash as exc:
                message = ("crashed", str(exc), False)
            elapsed = time.monotonic() - start
            timeout = self.policy.timeout_s
            if (
                timeout is not None and elapsed > timeout
                and message[0] == "ok"
            ):
                message = (
                    "timeout",
                    f"job took {elapsed:.3f}s, budget {timeout}s",
                    message[2],
                )
            self._settle(job, message)

    # -- process mode ---------------------------------------------------
    def run_pool(self, jobs: list, processes: int) -> None:
        """Supervise jobs across per-job worker processes.

        Each attempt gets a fresh worker (crash containment is the
        point: a dying worker loses one attempt, never the batch).
        The loop keeps ``processes`` workers busy, waits on their
        pipes, kills over-deadline workers, and reschedules retries
        once their backoff expires.
        """
        ctx = get_context()
        self.queue.extend(jobs)
        slots: dict = {}  # recv conn -> (process, job, deadline)
        try:
            while self.queue or slots:
                now = time.monotonic()
                self._launch_ready(ctx, slots, processes, now)
                timeout = self._poll_timeout(slots, now)
                for conn in _wait_ready(list(slots), timeout=timeout):
                    process, job, _ = slots.pop(conn)
                    try:
                        message = conn.recv()
                    except EOFError:
                        message = (
                            "crashed",
                            f"worker exited with code "
                            f"{process.exitcode} before reporting",
                            False,
                        )
                    conn.close()
                    process.join()
                    self._settle(job, message)
                now = time.monotonic()
                for conn in [
                    conn for conn, (_, _, deadline) in slots.items()
                    if deadline is not None and now >= deadline
                ]:
                    process, job, _ = slots.pop(conn)
                    process.terminate()
                    process.join()
                    conn.close()
                    self._settle(job, (
                        "timeout",
                        f"exceeded {self.policy.timeout_s}s budget; "
                        f"worker terminated",
                        False,
                    ))
        finally:
            # Fail-fast abort (or any error): no leaked workers.
            for process, _, _ in slots.values():
                process.terminate()
            for conn, (process, _, _) in slots.items():
                process.join()
                conn.close()

    def _launch_ready(self, ctx, slots, processes, now) -> None:
        while len(slots) < processes:
            index = next(
                (i for i, job in enumerate(self.queue)
                 if job.ready_at <= now),
                None,
            )
            if index is None:
                return
            job = self.queue.pop(index)
            recv, send = ctx.Pipe(duplex=False)
            process = ctx.Process(
                target=_worker_entry,
                args=(send, job.request, job.key, self.injector,
                      job.attempts + 1, self.policy.degrade),
            )
            process.start()
            send.close()
            deadline = (
                now + self.policy.timeout_s
                if self.policy.timeout_s is not None else None
            )
            slots[recv] = (process, job, deadline)

    def _poll_timeout(self, slots, now) -> float:
        """How long the next wait may block without missing an edge."""
        horizon = 0.5
        deadlines = [
            deadline - now for _, _, deadline in slots.values()
            if deadline is not None
        ]
        backoffs = [
            job.ready_at - now for job in self.queue
            if job.ready_at > now
        ]
        for edge in deadlines + backoffs:
            horizon = min(horizon, max(edge, 0.0))
        return horizon


def _supervise(jobs, policy, injector, processes, done) -> None:
    """Run unique jobs to outcomes in ``done``; raise on fail-fast."""
    if processes is None:
        processes = min(len(jobs), os.cpu_count() or 1)
    supervisor = _Supervisor(policy, injector, done)
    try:
        if processes <= 1 or len(jobs) <= 1:
            supervisor.run_serial(list(jobs))
        else:
            supervisor.run_pool(list(jobs), processes)
    except _FailFast as failure:
        outcome = failure.outcome
        raise BatchError(
            f"job {outcome.label or outcome.key[:12]!r} "
            f"{outcome.status} after {outcome.attempts} attempt(s): "
            f"{outcome.error}",
            label=outcome.label, outcome=outcome,
        ) from None


def run_many_outcomes(
    requests: Iterable[RunRequest],
    processes: int | None = None,
    cache: ResultCache | None = None,
    policy: FaultPolicy | None = None,
    injector=None,
) -> list[JobOutcome]:
    """Supervised :func:`~repro.sim.batch.run_many`: outcomes, not raises.

    Cache hits and in-batch duplicates behave exactly like
    ``run_many`` - identical requests share one supervised execution
    (even across its retries) and every copy past the first comes
    back ``cached=True``.  Every completed job is written back to the
    cache *even when the batch aborts fail-fast*, so a re-run only
    pays for the unfinished tail.

    Under ``policy.keep_going`` the returned list always covers every
    request; fail-fast mode raises :class:`~repro.errors.BatchError`
    on the first terminal failure instead.
    """
    requests = list(requests)
    policy = policy if policy is not None else (
        default_policy() or FaultPolicy()
    )
    cache = cache if cache is not None else ResultCache()
    keys = [request_key(request) for request in requests]
    groups: dict = {}
    for index, key in enumerate(keys):
        groups.setdefault(key, []).append(index)
    outcomes_by_key: dict = {}
    jobs = []
    for key, indices in groups.items():
        stats = cache.get(key)
        if stats is not None:
            outcomes_by_key[key] = JobOutcome(
                label=requests[indices[0]].label, key=key,
                status="ok", stats=stats, cached=True,
            )
            if BUS.active:
                BUS.instant(
                    "job_cached", category="batch", track="jobs",
                    args={
                        "label": requests[indices[0]].label,
                        "key": key[:12],
                    },
                )
            continue
        jobs.append(_Job(requests[indices[0]], key))
    if BUS.active:
        BUS.instant(
            "batch_submitted", category="batch", track="jobs",
            args={
                "jobs": len(requests),
                "unique": len(groups),
                "cached": len(groups) - len(jobs),
                "executing": len(jobs),
                "supervised": True,
            },
        )
    done: dict = {}
    try:
        if jobs:
            _supervise(jobs, policy, injector, processes, done)
    finally:
        # Write-back happens even when fail-fast aborts the batch:
        # completed work survives for the re-run.
        for key, outcome in done.items():
            if outcome.ok and outcome.stats is not None:
                cache.put(key, outcome.stats)
    outcomes_by_key.update(done)
    results = []
    for index, key in enumerate(keys):
        outcome = outcomes_by_key[key]
        primary = groups[key][0] == index
        results.append(replace(
            outcome,
            label=requests[index].label,
            cached=outcome.cached or not primary,
        ))
    return results


def to_batch_results(outcomes: list) -> list:
    """Convert all-ok outcomes to BatchResults; raise on any failure."""
    failures = [outcome for outcome in outcomes if not outcome.ok]
    if failures:
        first = failures[0]
        raise BatchError(
            f"{len(failures)} of {len(outcomes)} jobs failed; "
            f"first: {first.label or first.key[:12]!r} "
            f"({first.status}: {first.error})",
            label=first.label, outcome=first,
        )
    return [
        BatchResult(
            label=outcome.label, key=outcome.key,
            stats=outcome.stats, cached=outcome.cached,
        )
        for outcome in outcomes
    ]
