"""Cycle-level simulation (paper Section 4.5).

The paper adapted an object-oriented SimpleScalar to the Blackfin ISA;
we drive our own machine model instead.  The simulator advances the
chip at reference-clock granularity (the bus/DOU rate), stepping each
column's tiles on its divided clock edges, and gathers the statistics
the Section 4.1 methodology consumes: cycles per input sample, bus
words moved, stall and idle cycles.
"""

from repro.sim.simulator import Simulator, run_single_column
from repro.sim.stats import ColumnStats, SimulationStats
from repro.sim.trace import TraceEvent, Tracer

__all__ = [
    "Simulator",
    "run_single_column",
    "ColumnStats",
    "SimulationStats",
    "TraceEvent",
    "Tracer",
]
