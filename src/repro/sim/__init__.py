"""Cycle-level simulation (paper Section 4.5).

The paper adapted an object-oriented SimpleScalar to the Blackfin ISA;
we drive our own machine model instead.  The simulator advances the
chip at reference-clock granularity (the bus/DOU rate), stepping each
column's tiles on its divided clock edges, and gathers the statistics
the Section 4.1 methodology consumes: cycles per input sample, bus
words moved, stall and idle cycles.

Two engines implement that contract (:mod:`repro.sim.engine`): the
tick-accurate ``ReferenceEngine`` and the hyperperiod-compiled
``CompiledEngine``, which skips statically dead reference ticks.
:mod:`repro.sim.batch` fans many chip configurations across worker
processes behind a content-hash result cache.
"""

from repro.sim.batch import (
    BatchResult,
    ResultCache,
    RunRequest,
    parallel_map,
    run_many,
)
from repro.sim.engine import (
    CompiledEngine,
    Engine,
    ReferenceEngine,
    create_engine,
)
from repro.sim.faultinject import FaultInjector, FaultSpec
from repro.sim.resilience import (
    FaultPolicy,
    JobOutcome,
    run_many_outcomes,
)
from repro.sim.simulator import Simulator, run_single_column
from repro.sim.stats import ColumnStats, SimulationStats
from repro.sim.trace import TraceEvent, Tracer

__all__ = [
    "BatchResult",
    "CompiledEngine",
    "Engine",
    "FaultInjector",
    "FaultPolicy",
    "FaultSpec",
    "JobOutcome",
    "ReferenceEngine",
    "ResultCache",
    "RunRequest",
    "Simulator",
    "create_engine",
    "parallel_map",
    "run_many",
    "run_many_outcomes",
    "run_single_column",
    "ColumnStats",
    "SimulationStats",
    "TraceEvent",
    "Tracer",
]
