"""Deterministic, seeded fault injection for the batch plane.

The chaos harness needs faults that are *reproducible*: the same seed
against the same sweep must kill the same workers, delay the same
jobs, and corrupt the same cache entries on every run, so a failing
CI matrix cell can be replayed locally byte for byte.  Every decision
here is therefore a pure function of ``(seed, fault kind, request
key, attempt)`` - no RNG state, nothing time-dependent - which also
lets an injector travel to worker processes by pickling without
losing determinism.

Four fault classes cover the failure surface the supervision layer
(:mod:`repro.sim.resilience`) defends against:

``kill_worker``
    The worker dies without reporting - ``os._exit`` in a real worker
    process, :class:`InjectedWorkerCrash` when supervising in-process.

``delay_job``
    The job stalls for ``delay_s`` before executing, driving it past
    a :class:`~repro.sim.resilience.FaultPolicy` wall-clock timeout.

``raise_in_engine``
    The compiled engine raises an internal
    :class:`~repro.errors.SimulationError` mid-phase, exercising the
    retry-on-:class:`~repro.sim.engine.ReferenceEngine` degradation
    ladder.

``corrupt_cache``
    On-disk :class:`~repro.sim.batch.ResultCache` entries get a byte
    flipped (position chosen from the seed), exercising checksum
    verification and quarantine.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass
from pathlib import Path

from repro.errors import ReproError

__all__ = [
    "FAULT_KINDS",
    "KILL_EXIT_CODE",
    "FaultInjector",
    "FaultSpec",
    "InjectedWorkerCrash",
    "corrupt_file_bytes",
]

#: The injectable fault classes, in ladder order.
FAULT_KINDS = (
    "kill_worker", "delay_job", "raise_in_engine", "corrupt_cache",
)

#: Exit code an injected worker kill dies with - distinctive enough
#: that a supervisor log line identifies the chaos harness at a
#: glance.
KILL_EXIT_CODE = 173


class InjectedWorkerCrash(ReproError):
    """In-process stand-in for a worker dying mid-job.

    Raised (instead of ``os._exit``) when the supervised batch runs
    serially, so the supervisor still sees a worker-crash outcome
    without the test suite losing its own process.
    """


@dataclass(frozen=True)
class FaultSpec:
    """One armed fault class.

    ``rate``
        Probability a matching ``(key, attempt)`` fires, decided
        deterministically from the injector seed.  ``1.0`` hits every
        eligible attempt.
    ``attempts``
        Attempt numbers (1-based) the fault is eligible on.  The
        default ``(1,)`` faults only the first try, which is how the
        chaos suite guarantees a sweep converges: retries run clean.
    ``delay_s``
        Stall length for ``delay_job``.
    ``phase``
        Engine phase named in the injected ``raise_in_engine`` error.
    """

    kind: str
    rate: float = 1.0
    attempts: tuple = (1,)
    delay_s: float = 0.05
    phase: str = "run"

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; valid: "
                f"{FAULT_KINDS}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(
                f"fault rate {self.rate} outside [0, 1]"
            )
        if self.delay_s < 0:
            raise ValueError(f"negative delay_s {self.delay_s}")


def _fraction(seed: int, kind: str, key: str, attempt: int) -> float:
    """Uniform-in-[0,1) decision value for one (fault, job, attempt)."""
    digest = hashlib.sha256(
        f"{seed}:{kind}:{key}:{attempt}".encode()
    ).digest()
    return int.from_bytes(digest[:8], "big") / 2 ** 64


def corrupt_file_bytes(path: str | Path, seed: int) -> int:
    """Flip one byte of ``path`` at a seed-determined offset.

    Returns the flipped offset.  An empty file gains one garbage
    byte so the corruption is visible to checksums either way.
    """
    path = Path(path)
    blob = bytearray(path.read_bytes())
    if not blob:
        blob = bytearray(b"\xff")
        path.write_bytes(bytes(blob))
        return 0
    digest = hashlib.sha256(f"{seed}:{path.name}".encode()).digest()
    position = int.from_bytes(digest[:4], "big") % len(blob)
    blob[position] ^= 0xFF
    path.write_bytes(bytes(blob))
    return position


class FaultInjector:
    """Seeded fault oracle consulted by the supervision layer.

    Picklable (plain seed + spec tuple), so the same instance can be
    shipped to worker processes and keep making identical decisions
    there.
    """

    def __init__(self, seed: int, specs=()) -> None:
        self.seed = int(seed)
        self.specs = tuple(specs)
        for spec in self.specs:
            if not isinstance(spec, FaultSpec):
                raise TypeError(
                    f"expected FaultSpec, got {type(spec).__name__}"
                )

    def fires(
        self, kind: str, key: str, attempt: int
    ) -> FaultSpec | None:
        """The first armed spec of ``kind`` that hits, else None."""
        for spec in self.specs:
            if spec.kind != kind or attempt not in spec.attempts:
                continue
            if _fraction(self.seed, kind, key, attempt) < spec.rate:
                return spec
        return None

    def before_attempt(
        self, key: str, label: str, attempt: int, in_worker: bool
    ) -> None:
        """Pre-execution faults: worker kills and stalls.

        Called by the supervised attempt just before the engine runs.
        ``in_worker`` distinguishes a real worker process (which dies
        with :data:`KILL_EXIT_CODE`) from in-process supervision
        (which raises :class:`InjectedWorkerCrash` instead).
        """
        if self.fires("kill_worker", key, attempt) is not None:
            if in_worker:
                os._exit(KILL_EXIT_CODE)
            raise InjectedWorkerCrash(
                f"fault injector killed the worker running job "
                f"{label or key[:12]!r} (attempt {attempt})"
            )
        spec = self.fires("delay_job", key, attempt)
        if spec is not None:
            time.sleep(spec.delay_s)

    def engine_fault(self, key: str, attempt: int) -> FaultSpec | None:
        """The armed ``raise_in_engine`` spec for this attempt, if any."""
        return self.fires("raise_in_engine", key, attempt)

    def corrupt_cache(self, cache) -> list:
        """Corrupt armed on-disk entries of a ResultCache.

        Flips one byte in each ``.stats`` payload whose key the
        ``corrupt_cache`` spec selects (the checksum sidecar is left
        intact, so verification must catch the damage).  Returns the
        corrupted keys; a memory-only cache corrupts nothing.
        """
        if cache.directory is None:
            return []
        corrupted = []
        for path in sorted(cache.directory.glob("*.stats")):
            key = path.name[: -len(".stats")]
            if self.fires("corrupt_cache", key, 1) is not None:
                corrupt_file_bytes(path, self.seed)
                corrupted.append(key)
        return corrupted
