"""Synchronous dataflow graphs.

An :class:`Actor` is a computational task with a fixed cost in tile
cycles per firing; an :class:`Edge` is a FIFO channel on which the
producer emits a constant number of tokens per firing and the consumer
absorbs a constant number - the defining restriction of SDF that
"offers the advantage of static scheduling and decidability"
(Section 2.1).
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.errors import SdfError


@dataclass(frozen=True)
class Actor:
    """One SDF task.

    ``cycles_per_firing`` is the tile-cycle cost of one firing on one
    tile (measured on the cycle-level simulator or profiled
    analytically); ``parallel_tiles`` is how many tiles the firing is
    spread across when mapped.
    """

    name: str
    cycles_per_firing: float = 1.0
    parallel_tiles: int = 1

    def __post_init__(self) -> None:
        if not self.name:
            raise SdfError("actor needs a name")
        if self.cycles_per_firing < 0:
            raise SdfError(f"{self.name}: negative firing cost")
        if self.parallel_tiles < 1:
            raise SdfError(f"{self.name}: needs at least one tile")


@dataclass(frozen=True)
class Edge:
    """A FIFO channel with constant production/consumption rates."""

    src: str
    dst: str
    produce: int
    consume: int
    initial_tokens: int = 0

    def __post_init__(self) -> None:
        if self.produce < 1 or self.consume < 1:
            raise SdfError(
                f"{self.src}->{self.dst}: rates must be positive integers"
            )
        if self.initial_tokens < 0:
            raise SdfError(
                f"{self.src}->{self.dst}: negative initial tokens"
            )


class SdfGraph:
    """A mutable SDF graph with validation and graph-theory views."""

    def __init__(self, name: str = "sdf") -> None:
        self.name = name
        self._actors: dict = {}
        self._edges: list = []

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_actor(
        self,
        name: str,
        cycles_per_firing: float = 1.0,
        parallel_tiles: int = 1,
    ) -> Actor:
        """Add an actor; names must be unique."""
        if name in self._actors:
            raise SdfError(f"duplicate actor {name!r}")
        actor = Actor(name, cycles_per_firing, parallel_tiles)
        self._actors[name] = actor
        return actor

    def add_edge(
        self,
        src: str,
        dst: str,
        produce: int,
        consume: int,
        initial_tokens: int = 0,
    ) -> Edge:
        """Connect two existing actors with a rated channel."""
        for endpoint in (src, dst):
            if endpoint not in self._actors:
                raise SdfError(f"unknown actor {endpoint!r}")
        edge = Edge(src, dst, produce, consume, initial_tokens)
        self._edges.append(edge)
        return edge

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    @property
    def actors(self) -> dict:
        """Name -> :class:`Actor` mapping (insertion order)."""
        return dict(self._actors)

    @property
    def edges(self) -> list:
        """All channels."""
        return list(self._edges)

    def actor(self, name: str) -> Actor:
        """Look up one actor."""
        try:
            return self._actors[name]
        except KeyError:
            raise SdfError(f"unknown actor {name!r}") from None

    def out_edges(self, name: str) -> list:
        """Channels produced by ``name``."""
        return [e for e in self._edges if e.src == name]

    def in_edges(self, name: str) -> list:
        """Channels consumed by ``name``."""
        return [e for e in self._edges if e.dst == name]

    def to_networkx(self) -> nx.MultiDiGraph:
        """The underlying directed multigraph."""
        graph = nx.MultiDiGraph(name=self.name)
        for name, actor in self._actors.items():
            graph.add_node(name, actor=actor)
        for edge in self._edges:
            graph.add_edge(edge.src, edge.dst, edge=edge)
        return graph

    def is_connected(self) -> bool:
        """Whether the graph is weakly connected (one application)."""
        if not self._actors:
            return False
        return nx.is_weakly_connected(self.to_networkx())

    def sources(self) -> list:
        """Actors with no inputs (application entry points)."""
        return [n for n in self._actors if not self.in_edges(n)]

    def sinks(self) -> list:
        """Actors with no outputs (application exits)."""
        return [n for n in self._actors if not self.out_edges(n)]
