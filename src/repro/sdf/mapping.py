"""Mapping SDF applications onto Synchroscalar columns.

Implements steps 2-8 of the Section 4.1 procedure: partition actors
over column groups, derive each group's clock from its cycles-per-
iteration and the application's target iteration rate, quantize the
supply voltage on the V-f curve, choose integer clock dividers off the
reference PLL, and compute Zero-Overhead Rate-Matching settings for
columns whose divided clock runs faster than the task needs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import MappingError
from repro.arch.rate_match import rate_match_settings
from repro.power.interconnect import CommProfile
from repro.power.model import ComponentSpec
from repro.sdf.analysis import repetition_vector
from repro.sdf.graph import SdfGraph
from repro.tech.parameters import PAPER_TECHNOLOGY
from repro.tech.vf_curve import VoltageFrequencyCurve


@dataclass(frozen=True)
class ColumnAssignment:
    """A named column group and the actors it executes."""

    name: str
    actors: tuple
    n_tiles: int

    def __post_init__(self) -> None:
        if not self.actors:
            raise MappingError(f"{self.name}: no actors assigned")
        if self.n_tiles < 1:
            raise MappingError(f"{self.name}: needs at least one tile")


@dataclass(frozen=True)
class MappedComponent:
    """One column group with its derived operating point."""

    name: str
    actors: tuple
    n_tiles: int
    cycles_per_iteration: float
    frequency_mhz: float
    voltage_v: float

    @property
    def n_columns(self) -> int:
        """Whole columns of four tiles this component occupies."""
        return math.ceil(self.n_tiles / PAPER_TECHNOLOGY.tiles_per_column)


@dataclass(frozen=True)
class MappedApplication:
    """A fully mapped application ready for power evaluation."""

    name: str
    iteration_rate_msps: float
    components: tuple

    def component(self, name: str) -> MappedComponent:
        """Look up a component by name."""
        for comp in self.components:
            if comp.name == name:
                return comp
        raise KeyError(name)

    @property
    def n_tiles(self) -> int:
        """Powered tiles over all components."""
        return sum(c.n_tiles for c in self.components)

    @property
    def max_frequency_mhz(self) -> float:
        """The reference (bus/DOU) frequency of this design."""
        return max(c.frequency_mhz for c in self.components)

    def component_specs(self, comm_profiles: dict | None = None) -> list:
        """Bridge to :class:`repro.power.PowerModel` inputs."""
        comm_profiles = comm_profiles or {}
        return [
            ComponentSpec(
                name=comp.name,
                n_tiles=comp.n_tiles,
                frequency_mhz=comp.frequency_mhz,
                comm=comm_profiles.get(comp.name, CommProfile()),
                voltage_v=comp.voltage_v,
            )
            for comp in self.components
        ]

    def clock_dividers(self, reference_mhz: float | None = None) -> dict:
        """Integer dividers giving each component a clock >= its need.

        Returns ``{component name: (divider, actual_mhz, zorm)}`` where
        ``zorm`` is the (interval, nops) throttling that matches the
        divided clock back down to the required computational rate
        (Section 2.4).
        """
        reference = reference_mhz or self.max_frequency_mhz
        plan = {}
        for comp in self.components:
            divider = max(1, int(reference // comp.frequency_mhz))
            actual = reference / divider
            if actual < comp.frequency_mhz:
                divider = max(1, divider - 1)
                actual = reference / divider
            zorm = rate_match_settings(actual, comp.frequency_mhz)
            plan[comp.name] = (divider, actual, zorm)
        return plan


class SdfMapper:
    """Derives operating points from an SDF graph and assignments."""

    def __init__(
        self,
        curve: VoltageFrequencyCurve | None = None,
        rails: tuple | None = None,
    ) -> None:
        self.curve = curve or VoltageFrequencyCurve.from_technology()
        self.rails = rails or PAPER_TECHNOLOGY.voltage_rails

    def map(
        self,
        graph: SdfGraph,
        assignments: list,
        iteration_rate_msps: float,
        name: str | None = None,
    ) -> MappedApplication:
        """Produce a :class:`MappedApplication`.

        ``iteration_rate_msps`` is graph iterations per microsecond
        (equivalently, millions of iterations per second); for a
        stream processing one input sample per iteration this is the
        input rate in MS/s.
        """
        if iteration_rate_msps <= 0:
            raise MappingError("iteration rate must be positive")
        repetitions = repetition_vector(graph)
        assigned: dict = {}
        for assignment in assignments:
            for actor in assignment.actors:
                if actor not in graph.actors:
                    raise MappingError(
                        f"{assignment.name}: unknown actor {actor!r}"
                    )
                if actor in assigned:
                    raise MappingError(
                        f"actor {actor!r} assigned to both "
                        f"{assigned[actor]!r} and {assignment.name!r}"
                    )
                assigned[actor] = assignment.name
        missing = set(graph.actors) - set(assigned)
        if missing:
            raise MappingError(f"unassigned actors: {sorted(missing)}")

        components = []
        for assignment in assignments:
            cycles = 0.0
            for actor_name in assignment.actors:
                actor = graph.actor(actor_name)
                work = repetitions[actor_name] * actor.cycles_per_firing
                cycles += work / assignment.n_tiles
            frequency = cycles * iteration_rate_msps
            voltage = self.curve.quantize_voltage(frequency, self.rails)
            components.append(MappedComponent(
                name=assignment.name,
                actors=tuple(assignment.actors),
                n_tiles=assignment.n_tiles,
                cycles_per_iteration=cycles,
                frequency_mhz=frequency,
                voltage_v=voltage,
            ))
        return MappedApplication(
            name=name or graph.name,
            iteration_rate_msps=iteration_rate_msps,
            components=tuple(components),
        )
