"""Periodic admissible sequential schedules (PASS) for SDF graphs.

A PASS is an ordered firing list executing every actor its
repetition-vector count of times while never underflowing a channel.
The construction follows Lee & Messerschmitt's class-S algorithm:
repeatedly fire any runnable actor until the iteration completes.
The resulting schedule also yields per-channel maximum occupancy -
the bounded-memory certificate the paper cites (Section 2.1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SdfError
from repro.sdf.analysis import repetition_vector
from repro.sdf.graph import SdfGraph


@dataclass(frozen=True)
class SdfSchedule:
    """A computed PASS with its memory certificate."""

    graph_name: str
    firing_order: tuple
    repetitions: dict
    max_occupancy: dict  # (src, dst) -> peak tokens

    @property
    def total_firings(self) -> int:
        """Firings in one iteration."""
        return len(self.firing_order)

    def buffer_bound_words(self, tokens_to_words: int = 1) -> int:
        """Total buffer memory (words) the schedule certifies."""
        return sum(self.max_occupancy.values()) * tokens_to_words

    def firings_of(self, actor: str) -> int:
        """How many times one actor fires per iteration."""
        return sum(1 for name in self.firing_order if name == actor)


def build_schedule(graph: SdfGraph, priority: list | None = None) -> SdfSchedule:
    """Construct a PASS.

    ``priority`` optionally orders actor preference (e.g. to bias data
    forward through a pipeline); default is graph insertion order.

    Raises
    ------
    SdfError
        If the graph is inconsistent or deadlocks.
    """
    repetitions = repetition_vector(graph)
    remaining = dict(repetitions)
    tokens = {id(edge): edge.initial_tokens for edge in graph.edges}
    occupancy = {id(edge): edge.initial_tokens for edge in graph.edges}
    order = priority or list(graph.actors)
    unknown = set(order) - set(graph.actors)
    if unknown:
        raise SdfError(f"{graph.name}: unknown actors in priority {unknown}")

    def runnable(name: str) -> bool:
        if remaining[name] == 0:
            return False
        return all(
            tokens[id(edge)] >= edge.consume
            for edge in graph.in_edges(name)
        )

    firing_order = []
    while any(remaining.values()):
        fired = False
        for name in order:
            if not runnable(name):
                continue
            for edge in graph.in_edges(name):
                tokens[id(edge)] -= edge.consume
            for edge in graph.out_edges(name):
                tokens[id(edge)] += edge.produce
                occupancy[id(edge)] = max(
                    occupancy[id(edge)], tokens[id(edge)]
                )
            remaining[name] -= 1
            firing_order.append(name)
            fired = True
            break
        if not fired:
            stuck = sorted(n for n, r in remaining.items() if r)
            raise SdfError(
                f"{graph.name}: no runnable actor (deadlock) with "
                f"{stuck} outstanding"
            )
    return SdfSchedule(
        graph_name=graph.name,
        firing_order=tuple(firing_order),
        repetitions=repetitions,
        max_occupancy={
            (edge.src, edge.dst): occupancy[id(edge)]
            for edge in graph.edges
        },
    )
