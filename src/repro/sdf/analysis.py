"""SDF balance analysis: repetition vectors, consistency, deadlock.

Implements the classical results of Lee & Messerschmitt [21] that the
paper leans on (Section 2.1): a connected SDF graph has a periodic
schedule in bounded memory iff the balance equations

    q[src] * produce == q[dst] * consume        (for every edge)

admit a positive integer solution (consistency), and a consistent
graph is free of deadlock iff symbolically executing one iteration of
the repetition vector completes.
"""

from __future__ import annotations

from fractions import Fraction
from math import gcd, lcm

from repro.errors import SdfError
from repro.sdf.graph import SdfGraph


def repetition_vector(graph: SdfGraph) -> dict:
    """Smallest positive integer firing counts balancing every edge.

    Raises
    ------
    SdfError
        If the graph is empty, not weakly connected, or the balance
        equations are inconsistent (sample-rate mismatch).
    """
    if not graph.actors:
        raise SdfError(f"{graph.name}: empty graph")
    if not graph.is_connected():
        raise SdfError(f"{graph.name}: graph is not weakly connected")

    ratios: dict = {}
    start = next(iter(graph.actors))
    ratios[start] = Fraction(1)
    frontier = [start]
    adjacency: dict = {name: [] for name in graph.actors}
    for edge in graph.edges:
        adjacency[edge.src].append(("out", edge))
        adjacency[edge.dst].append(("in", edge))
    while frontier:
        name = frontier.pop()
        for direction, edge in adjacency[name]:
            if direction == "out":
                other = edge.dst
                implied = ratios[name] * edge.produce / edge.consume
            else:
                other = edge.src
                implied = ratios[name] * edge.consume / edge.produce
            if other not in ratios:
                ratios[other] = implied
                frontier.append(other)

    for edge in graph.edges:
        if ratios[edge.src] * edge.produce != ratios[edge.dst] * edge.consume:
            raise SdfError(
                f"{graph.name}: inconsistent rates on "
                f"{edge.src}->{edge.dst}"
            )

    denominator = lcm(*(r.denominator for r in ratios.values()))
    counts = {name: int(r * denominator) for name, r in ratios.items()}
    divisor = gcd(*counts.values())
    return {name: count // divisor for name, count in counts.items()}


def is_consistent(graph: SdfGraph) -> bool:
    """Whether the balance equations admit a solution."""
    try:
        repetition_vector(graph)
    except SdfError:
        return False
    return True


def check_deadlock_free(graph: SdfGraph) -> dict:
    """Symbolically run one iteration; returns final channel depths.

    Raises
    ------
    SdfError
        If no actor can fire before the iteration completes - the
        graph deadlocks (insufficient initial tokens on some cycle).
    """
    repetitions = repetition_vector(graph)
    remaining = dict(repetitions)
    tokens = {id(edge): edge.initial_tokens for edge in graph.edges}

    def can_fire(name: str) -> bool:
        if remaining[name] == 0:
            return False
        return all(
            tokens[id(edge)] >= edge.consume
            for edge in graph.in_edges(name)
        )

    progress = True
    while progress and any(remaining.values()):
        progress = False
        for name in graph.actors:
            while can_fire(name):
                for edge in graph.in_edges(name):
                    tokens[id(edge)] -= edge.consume
                for edge in graph.out_edges(name):
                    tokens[id(edge)] += edge.produce
                remaining[name] -= 1
                progress = True
    if any(remaining.values()):
        stuck = sorted(n for n, r in remaining.items() if r)
        raise SdfError(
            f"{graph.name}: deadlock - actors {stuck} cannot complete "
            f"an iteration"
        )
    return {
        (edge.src, edge.dst): tokens[id(edge)] for edge in graph.edges
    }


def iteration_cycles(graph: SdfGraph, repetitions: dict | None = None) -> dict:
    """Tile-cycles each actor contributes per graph iteration.

    cycles = firings-per-iteration x cycles-per-firing / parallel tiles
    (work divides across the tiles the actor is spread over).
    """
    repetitions = repetitions or repetition_vector(graph)
    cycles = {}
    for name, actor in graph.actors.items():
        per_tile = actor.cycles_per_firing / actor.parallel_tiles
        cycles[name] = repetitions[name] * per_tile
    return cycles
