"""Automatic parallelization (the paper's future work, Section 7).

Section 5.5 sketches the policy a Synchroscalar compilation tool
should implement: "parallelize applications so that they are running
as close to the voltage floor as possible", because once a component
sits at the floor rail, more tiles only add leakage and communication.

:class:`ParallelizationOptimizer` implements that policy as a greedy
marginal-gain search over tile allocations: start from the smallest
feasible allocation (every component must fit under the top rail),
then repeatedly give one more tile to whichever component's power
drops the most, stopping at the tile budget or when no addition helps.
Power is evaluated with the full Section 4.1 model, so the voltage
floor, rail quantization, leakage growth, and communication scaling
all shape the search exactly as they do in Figures 7, 9, and 10.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import FrequencyRangeError, MappingError
from repro.power.model import PowerModel
from repro.tech.parameters import PAPER_TECHNOLOGY
from repro.workloads.parallel import ParallelComponent


@dataclass(frozen=True)
class AllocationStep:
    """One accepted move of the greedy search."""

    component: str
    tiles_after: int
    power_before_mw: float
    power_after_mw: float

    @property
    def gain_mw(self) -> float:
        """Power saved by this move."""
        return self.power_before_mw - self.power_after_mw


@dataclass(frozen=True)
class OptimizationResult:
    """Final allocation with its evaluated power and search history."""

    allocations: dict
    power_mw: float
    tile_budget: int
    history: tuple

    @property
    def tiles_used(self) -> int:
        """Tiles consumed by the final allocation."""
        return sum(self.allocations.values())

    @property
    def stopped_by_budget(self) -> bool:
        """Whether the budget (rather than convergence) ended the search."""
        return self.tiles_used >= self.tile_budget


class ParallelizationOptimizer:
    """Greedy tile allocator over :class:`ParallelComponent` models."""

    def __init__(
        self,
        model: PowerModel | None = None,
        max_tiles_per_component: int = 64,
    ) -> None:
        self.model = model or PowerModel(
            rails=PAPER_TECHNOLOGY.exploration_rails
        )
        self.max_tiles_per_component = max_tiles_per_component

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def component_power_mw(
        self, component: ParallelComponent, n_tiles: int
    ) -> float | None:
        """Power at one allocation; None when infeasible."""
        try:
            spec = component.spec_at(n_tiles)
            return self.model.component_power(spec).total_mw
        except FrequencyRangeError:
            return None

    def minimum_feasible_tiles(
        self, component: ParallelComponent
    ) -> int:
        """Fewest tiles whose frequency fits under the top rail."""
        for n_tiles in range(1, self.max_tiles_per_component + 1):
            if self.component_power_mw(component, n_tiles) is not None:
                return n_tiles
        raise MappingError(
            f"{component.name}: infeasible even with "
            f"{self.max_tiles_per_component} tiles"
        )

    def _total(self, components: list, allocation: dict) -> float:
        total = 0.0
        for component in components:
            power = self.component_power_mw(
                component, allocation[component.name]
            )
            if power is None:
                return float("inf")
            total += power
        return total

    def next_rail_crossing(
        self, component: ParallelComponent, n_tiles: int
    ) -> int | None:
        """Smallest tile count that drops the component's rail.

        Adding tiles without crossing a voltage rail can only hurt
        (the efficiency penalty raises aggregate MHz-tiles, and
        leakage and communication grow), so rail crossings are the
        only moves worth evaluating.
        """
        try:
            current_rail = self.model.voltage_for(
                component.frequency_at(n_tiles)
            )
        except FrequencyRangeError:
            return None
        for m_tiles in range(n_tiles + 1,
                             self.max_tiles_per_component + 1):
            try:
                rail = self.model.voltage_for(
                    component.frequency_at(m_tiles)
                )
            except FrequencyRangeError:
                continue
            if rail < current_rail:
                return m_tiles
        return None

    # ------------------------------------------------------------------
    # search
    # ------------------------------------------------------------------
    def optimize(
        self,
        components: list,
        tile_budget: int,
        min_gain_mw: float = 1e-6,
    ) -> OptimizationResult:
        """Allocate up to ``tile_budget`` tiles to minimize power.

        Greedy over rail-crossing moves: each step jumps one component
        to the smallest tile count that lowers its supply rail,
        choosing the jump with the best power gain per step.

        Raises
        ------
        MappingError
            If even the minimum feasible allocation exceeds the budget.
        """
        if not components:
            raise MappingError("no components to allocate")
        allocation = {
            component.name: self.minimum_feasible_tiles(component)
            for component in components
        }
        if sum(allocation.values()) > tile_budget:
            raise MappingError(
                f"minimum feasible allocation needs "
                f"{sum(allocation.values())} tiles; budget is "
                f"{tile_budget}"
            )
        current = self._total(components, allocation)
        history = []
        while True:
            used = sum(allocation.values())
            best = None
            for component in components:
                tiles = allocation[component.name]
                target = self.next_rail_crossing(component, tiles)
                if target is None:
                    continue
                if used - tiles + target > tile_budget:
                    continue
                trial = dict(allocation)
                trial[component.name] = target
                power = self._total(components, trial)
                gain = current - power
                if gain > min_gain_mw and (
                    best is None or gain > best[0]
                ):
                    best = (gain, component.name, target, power)
            if best is None:
                break
            _, name, target, power = best
            allocation[name] = target
            history.append(AllocationStep(
                component=name,
                tiles_after=target,
                power_before_mw=current,
                power_after_mw=power,
            ))
            current = power
        return OptimizationResult(
            allocations=dict(allocation),
            power_mw=current,
            tile_budget=tile_budget,
            history=tuple(history),
        )

    def voltage_floor_reached(
        self, components: list, allocation: dict
    ) -> bool:
        """Whether every component already runs at the floor rail.

        The Section 5.5 stopping criterion: at the floor, further
        parallelization cannot reduce dynamic power.
        """
        floor = min(self.model.rails)
        for component in components:
            spec = component.spec_at(allocation[component.name])
            if self.model.voltage_for(spec.frequency_mhz) > floor:
                return False
        return True
