"""Synchronous dataflow substrate (paper Section 2.1).

The paper's applications fit the SDF model of Lee & Messerschmitt
[21]: actors produce/consume fixed token counts per firing, which
makes repetition vectors, bounded-memory verification, deadlock
detection, and fully static schedules decidable.  This subpackage
provides those analyses plus the mapping step from SDF actors onto
Synchroscalar columns (frequencies, voltages, rate matching).
"""

from repro.sdf.graph import Actor, Edge, SdfGraph
from repro.sdf.analysis import (
    check_deadlock_free,
    is_consistent,
    repetition_vector,
)
from repro.sdf.schedule import SdfSchedule, build_schedule
from repro.sdf.mapping import ColumnAssignment, MappedApplication, SdfMapper
from repro.sdf.optimizer import (
    AllocationStep,
    OptimizationResult,
    ParallelizationOptimizer,
)

__all__ = [
    "Actor",
    "Edge",
    "SdfGraph",
    "repetition_vector",
    "is_consistent",
    "check_deadlock_free",
    "SdfSchedule",
    "build_schedule",
    "ColumnAssignment",
    "MappedApplication",
    "SdfMapper",
    "ParallelizationOptimizer",
    "OptimizationResult",
    "AllocationStep",
]
