"""Interconnect capacitance, energy, and area model (paper Section 4.3).

Following the paper, the bus is modelled by its wire capacitance to
first order: a semi-global wire in 130 nm is 387 fF/mm, the bus spans
the 10 mm chip edge, and driver/segmenter parasitics (about 160 fF per
8-driver bus against 3870 fF of wire) are ignored.

Bus area, needed for Figure 8's power-area trade-off, is wire count
times pitch times run length.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.tech.parameters import PAPER_TECHNOLOGY, TechnologyParameters


@dataclass(frozen=True)
class BusGeometry:
    """Physical shape of one Synchroscalar bus."""

    width_bits: int = PAPER_TECHNOLOGY.bus_width_bits
    n_splits: int = PAPER_TECHNOLOGY.bus_splits
    length_mm: float = PAPER_TECHNOLOGY.bus_length_mm

    def __post_init__(self) -> None:
        if self.width_bits <= 0 or self.n_splits <= 0:
            raise ValueError("bus width and split count must be positive")
        if self.width_bits % self.n_splits:
            raise ValueError("splits must divide the bus width evenly")

    @property
    def split_width_bits(self) -> int:
        """Width of one separable split (32 bits in the paper)."""
        return self.width_bits // self.n_splits


class WireModel:
    """Wire capacitance, per-transfer energy, and bus area."""

    def __init__(self, tech: TechnologyParameters = PAPER_TECHNOLOGY) -> None:
        self.tech = tech

    def wire_capacitance_ff(self, length_mm: float) -> float:
        """Capacitance of a single wire of the given run length."""
        if length_mm < 0:
            raise ValueError("length must be non-negative")
        return self.tech.wire_capacitance_ff_per_mm * length_mm

    def driver_capacitance_ff(self) -> float:
        """Total driver capacitance on one wire (shown negligible)."""
        return (
            self.tech.drivers_per_bus
            * self.tech.driver_size_multiple
            * self.tech.min_gate_capacitance_ff
        )

    def word_energy_pj(
        self,
        voltage: float,
        bits: int = 32,
        span_fraction: float = 1.0,
        switching_activity: float = 0.5,
        geometry: BusGeometry | None = None,
    ) -> float:
        """Energy to move one ``bits``-wide word across the bus.

        ``span_fraction`` is the fraction of the bus length actually
        traversed: segmentation means a transfer between neighbouring
        tiles only charges the wire of the segments it crosses
        (Section 2.3).  ``switching_activity`` is the fraction of bits
        that toggle (0.5 for random data).
        """
        if not 0.0 <= span_fraction <= 1.0:
            raise ValueError("span_fraction must be within [0, 1]")
        if not 0.0 <= switching_activity <= 1.0:
            raise ValueError("switching_activity must be within [0, 1]")
        geometry = geometry or BusGeometry()
        c_wire_ff = self.wire_capacitance_ff(geometry.length_mm * span_fraction)
        c_total_pf = bits * c_wire_ff / 1000.0
        return c_total_pf * switching_activity * voltage * voltage

    def bus_power_mw(
        self,
        words_per_cycle: float,
        frequency_mhz: float,
        voltage: float,
        span_fraction: float = 1.0,
        switching_activity: float = 0.5,
        geometry: BusGeometry | None = None,
    ) -> float:
        """Average switched-capacitance power of a communication pattern.

        Implements the paper's ``P_interconnect = a * C * V^2 * f`` with
        ``a * C`` expressed as words-per-cycle times capacitance-per-word.
        """
        if words_per_cycle < 0 or frequency_mhz < 0:
            raise ValueError("words_per_cycle and frequency must be >= 0")
        energy_pj = self.word_energy_pj(
            voltage,
            bits=(geometry or BusGeometry()).split_width_bits,
            span_fraction=span_fraction,
            switching_activity=switching_activity,
            geometry=geometry,
        )
        return words_per_cycle * energy_pj * frequency_mhz / 1000.0

    def bus_area_mm2(self, geometry: BusGeometry | None = None) -> float:
        """Silicon area of one bus run: wires x pitch x length."""
        geometry = geometry or BusGeometry()
        pitch_mm = self.tech.wire_pitch_um / 1000.0
        return geometry.width_bits * pitch_mm * geometry.length_mm
