"""Technology parameters (paper Table 1) and architectural constants.

All values come straight from Table 1 of the paper, with sources noted.
Two internal inconsistencies of the paper are handled explicitly:

* Table 1 lists a maximum voltage of 1.65 V, but Table 4 runs the
  Viterbi ACS column at 1.7 V.  We keep ``v_max = 1.65`` as the nominal
  device limit and expose ``v_max_extended`` for the exploration studies
  (Figures 5, 7, 8 sweep voltages up to 2.12 V).
* Section 2.4 names a 100 MHz frequency floor, yet Table 4 assigns
  40/60/70 MHz columns.  We model 100 MHz as the reference-clock floor;
  columns reach lower rates through their clock dividers.
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class TechnologyParameters:
    """130 nm process and Synchroscalar configuration constants.

    Attributes mirror Table 1 plus the architectural constants used by
    the machine model (bus geometry, column shape, voltage rails).
    """

    # --- process (Table 1) -------------------------------------------------
    feature_size_nm: float = 130.0
    v_min: float = 0.7                    # Blackfin DSP floor [20]
    v_max: float = 1.65                   # estimated from BPTM [17]
    v_max_extended: float = 2.12          # Figure 5 sweep upper bound
    v_threshold: float = 0.332            # BPTM [17]
    temperature_c: float = 40.0           # assumed (Table 1)
    leakage_temperature_c: float = 80.0   # assumed for leakage (Sec 4.4)
    oxide_thickness_nm: float = 3.3       # BPTM [17]
    oxide_strength_v_per_cm: float = 5.0e6
    f_max_mhz: float = 600.0              # SPICE at v_max, 20 FO4
    f_reference_floor_mhz: float = 100.0  # Section 2.4 clock floor

    # --- tile (Table 1 / Section 4.2) --------------------------------------
    tile_power_mw_per_mhz: float = 0.1    # U at the 1.0 V reference
    u_reference_voltage: float = 1.0
    tile_area_mm2: float = 1.82           # Section 4.6
    transistors_per_tile: float = 1.8e6   # Section 4.4
    transistor_density_per_mm2: float = 1.0e6

    # --- wires (Table 1 / Section 4.3, "Future of Wires" [16]) -------------
    wire_capacitance_ff_per_mm: float = 387.0  # semi-global, 0.13 um
    wire_pitch_um: float = 1.04           # 16 lambda at lambda = 65 nm
    bus_length_mm: float = 10.0           # chip edge == bus length
    min_gate_capacitance_ff: float = 1.5  # 1-2 fF minimum-size gate [16]
    drivers_per_bus: int = 8
    driver_size_multiple: float = 10.0

    # --- architecture (Sections 2.2-2.3) ------------------------------------
    tiles_per_column: int = 4
    bus_width_bits: int = 256
    bus_splits: int = 8
    split_width_bits: int = 32
    dou_states: int = 128
    dou_counters: int = 4

    # --- voltage rails ------------------------------------------------------
    # The discrete supply set actually used across Table 4.  Section 2.4:
    # "we support only a small set of frequencies and voltages".
    voltage_rails: tuple = (0.7, 0.8, 1.0, 1.1, 1.2, 1.3, 1.5, 1.7)
    # Extended rails used only by the design-space exploration studies
    # (Figure 7/8 configurations that exceed the Table 4 envelope).
    exploration_rails: tuple = (
        0.7, 0.8, 1.0, 1.1, 1.2, 1.3, 1.5, 1.7, 1.9, 2.1,
    )

    def __post_init__(self) -> None:
        if self.v_min >= self.v_max:
            raise ValueError("v_min must be below v_max")
        if self.bus_splits * self.split_width_bits != self.bus_width_bits:
            raise ValueError("bus splits must tile the bus width exactly")
        if list(self.voltage_rails) != sorted(self.voltage_rails):
            raise ValueError("voltage_rails must be sorted ascending")

    @property
    def tile_leakage_ma(self) -> float:
        """Nominal per-tile leakage current (Section 4.4): ~1.5 mA.

        1.8e6 transistors x 830 pA each = 1.494 mA.
        """
        return self.transistors_per_tile * 830.0e-12 * 1.0e3


#: The exact configuration evaluated by the paper.
PAPER_TECHNOLOGY = TechnologyParameters()
