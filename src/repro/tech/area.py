"""Area model (paper Table 2, Section 4.6) and chip-area estimation.

The tile, SIMD controller, and DOU were synthesized on a 0.25 um ASIC
library and scaled to 0.13 um; memory, register file, and multipliers
use the technology-independent estimates of Gupta/Keckler/Burger [15].

Chip area for an application mapping (the "Area" column of Table 3 and
the x-axis of Figure 8) is reconstructed as:

    area = allocated_tiles * tile_area
         + n_columns * (SIMD controller + DOU)
         + (n_columns vertical buses + 1 horizontal bus) * bus area

where components occupy whole columns of four tiles (idle tiles burn
area but are supply-gated, Section 2.2).  Against Table 3 this lands
within ~3% for DDC (136.3 vs 139.88 mm^2), 802.11a (74.6 vs 74.05),
SV (54.1 vs 52.89), and MPEG4-QCIF (33.4 vs 32.32); the paper's
MPEG4-CIF row (31.74 mm^2 for 16 tiles, smaller than QCIF's 32.32 for
10 tiles) is internally inconsistent and is recorded as such in
EXPERIMENTS.md.
"""

from __future__ import annotations

import math
from types import MappingProxyType

from repro.tech.parameters import PAPER_TECHNOLOGY, TechnologyParameters
from repro.tech.wires import BusGeometry, WireModel
from repro.units import scale_factor

#: Table 2, tile components, um^2 at the synthesis node (0.25 um).
TILE_COMPONENT_AREAS_UM2 = MappingProxyType({
    "2 40-bit ALUs": 48_000.0,
    "1 40-bit shifter": 500_000.0,
    "2 40-bit accumulators": 11_060.0,
    "2 16x16 multipliers": 100_000.0,
    "32 KB SRAM": 5_570_560.0,
    "32x32 regfile, 4R/2W": 650_000.0,
    "rest (glue + wiring)": 393_000.0,
})

#: Table 2, SIMD controller + DOU components, um^2.
#: Note: these component entries sum to 1,304,000 um^2, but Table 2's
#: printed total is 650,000 um^2 and the Section 4.6 prose gives
#: 0.25 mm^2 (SIMD) + 0.0875 mm^2 (DOU).  We keep the prose totals as
#: authoritative and surface the component list for reference.
CONTROLLER_COMPONENT_AREAS_UM2 = MappingProxyType({
    "DOU": 350_000.0,
    "2 KB instruction SRAM": 350_000.0,
    "sequencer": 225_000.0,
    "LBANK": 59_000.0,
    "STACK32": 180_000.0,
    "rest": 140_000.0,
})

PAPER_TILE_TOTAL_UM2 = 7_270_000.0
PAPER_CONTROLLER_TOTAL_UM2 = 650_000.0
PAPER_SIMD_AREA_MM2 = 0.25
PAPER_DOU_AREA_MM2 = 0.0875
SYNTHESIS_NODE_NM = 250.0


class AreaModel:
    """Tile, controller, and whole-chip area estimation."""

    def __init__(self, tech: TechnologyParameters = PAPER_TECHNOLOGY) -> None:
        self.tech = tech
        self._wires = WireModel(tech)

    def tile_component_total_um2(self) -> float:
        """Sum of Table 2 tile components (7,272,620 um^2)."""
        return sum(TILE_COMPONENT_AREAS_UM2.values())

    def tile_area_mm2(self, scaled: bool = True) -> float:
        """Tile area, optionally scaled from 0.25 um to the target node.

        Quadratic scaling of the synthesized total gives 1.97 mm^2; the
        paper reports 1.82 mm^2 (Table 1), which we treat as the
        authoritative value in :attr:`TechnologyParameters.tile_area_mm2`.
        """
        total_um2 = self.tile_component_total_um2()
        if scaled:
            total_um2 *= scale_factor(SYNTHESIS_NODE_NM,
                                      self.tech.feature_size_nm)
        return total_um2 / 1.0e6

    def column_overhead_mm2(self) -> float:
        """Per-column SIMD controller + DOU area (prose totals)."""
        return PAPER_SIMD_AREA_MM2 + PAPER_DOU_AREA_MM2

    def columns_for_tiles(self, tiles: int) -> int:
        """Whole columns needed for a component of ``tiles`` tiles."""
        if tiles < 0:
            raise ValueError("tiles must be non-negative")
        return math.ceil(tiles / self.tech.tiles_per_column)

    def chip_area_mm2(
        self,
        component_tiles: list,
        bus_width_bits: int | None = None,
    ) -> float:
        """Chip area for an application mapping.

        ``component_tiles`` is the list of per-component tile counts
        (each component occupies whole columns).  ``bus_width_bits``
        lets Figure 8 sweep wider or narrower buses.
        """
        width = bus_width_bits or self.tech.bus_width_bits
        n_columns = sum(self.columns_for_tiles(t) for t in component_tiles)
        allocated_tiles = n_columns * self.tech.tiles_per_column
        geometry = BusGeometry(
            width_bits=width,
            n_splits=self.tech.bus_splits,
            length_mm=self.tech.bus_length_mm,
        )
        bus_area = self._wires.bus_area_mm2(geometry)
        n_buses = n_columns + 1  # one vertical bus per column + horizontal
        return (
            allocated_tiles * self.tech.tile_area_mm2
            + n_columns * self.column_overhead_mm2()
            + n_buses * bus_area
        )
