"""Technology substrate: process parameters, V-f curve, leakage, wires, area.

This subpackage stands in for the paper's SPICE + Berkeley Predictive
Technology Model experiments (Section 4, Table 1), its Synopsys synthesis
results (Table 2), the "Future of Wires" interconnect data (Section 4.3),
and the analytic leakage model (Section 4.4).
"""

from repro.tech.parameters import TechnologyParameters, PAPER_TECHNOLOGY
from repro.tech.vf_curve import VoltageFrequencyCurve
from repro.tech.leakage import LeakageModel, LEAKAGE_SWEEP_MA_PER_TILE
from repro.tech.wires import WireModel, BusGeometry
from repro.tech.area import AreaModel

__all__ = [
    "TechnologyParameters",
    "PAPER_TECHNOLOGY",
    "VoltageFrequencyCurve",
    "LeakageModel",
    "LEAKAGE_SWEEP_MA_PER_TILE",
    "WireModel",
    "BusGeometry",
    "AreaModel",
]
