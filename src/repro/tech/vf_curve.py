"""Voltage-frequency curve (paper Figure 5, Section 4.2).

The paper SPICEs a 20 FO4 critical path against the Berkeley Predictive
Technology Model, then "captures the graph as a look-up table to
determine the appropriate voltage of operation of a tile given the
frequency".  We substitute the SPICE sweep with an anchored, monotone
lookup table whose quantization behaviour reproduces **every** observed
(frequency, voltage) pair in the paper:

* Table 4 assignments: 40/60/70 MHz -> 0.7 V, 90/110/120 -> 0.8 V,
  200 -> 1.0 V, 280 -> 1.1 V, 310/330 -> 1.2 V, 370/380 -> 1.3 V,
  500 -> 1.5 V, 540 -> 1.7 V;
* the Section 2 DDC example (mixer 120 MHz @ 0.8 V, integrator
  200 MHz @ 1.0 V);
* Table 1 anchors (600 MHz at 1.65 V for a 20 FO4 path).

Interpolation between anchors uses PCHIP, which preserves monotonicity.
The 15 FO4 variant of Figure 5 scales frequency by 20/15 at equal
voltage (a k-FO4 path is 20/k times faster than a 20 FO4 path).
"""

from __future__ import annotations


from typing import Iterable, Sequence

from scipy.interpolate import PchipInterpolator
from scipy.optimize import brentq

from repro.errors import FrequencyRangeError
from repro.tech.parameters import PAPER_TECHNOLOGY, TechnologyParameters

#: (voltage V, max frequency MHz) anchors for the reference 20 FO4 path.
#: Chosen so the discrete-rail quantization matches every paper pair;
#: see the module docstring and tests/tech/test_vf_curve.py.
ANCHORS_20FO4 = (
    (0.60, 30.0),
    (0.70, 80.0),
    (0.80, 150.0),
    (0.90, 185.0),
    (1.00, 230.0),
    (1.10, 300.0),
    (1.20, 350.0),
    (1.30, 420.0),
    (1.40, 465.0),
    (1.50, 520.0),
    (1.65, 600.0),
    (1.80, 680.0),
    (2.00, 780.0),
    (2.12, 840.0),
)


#: Shared curve instances keyed by FO4 depth (see ``from_technology``).
_CURVES_BY_DEPTH: dict = {}


class VoltageFrequencyCurve:
    """Monotone mapping between supply voltage and maximum frequency.

    Parameters
    ----------
    anchors:
        ``(voltage, f_max_mhz)`` pairs, strictly increasing in both
        coordinates. Defaults to the calibrated 20 FO4 table.
    fo4_depth:
        Critical-path depth in FO4 delays. Frequencies scale by
        ``reference_fo4 / fo4_depth`` relative to the anchor table.
    reference_fo4:
        The depth at which the anchors were taken (20, per the paper).
    """

    def __init__(
        self,
        anchors: Sequence[tuple] = ANCHORS_20FO4,
        fo4_depth: float = 20.0,
        reference_fo4: float = 20.0,
    ) -> None:
        if len(anchors) < 2:
            raise ValueError("need at least two anchors")
        voltages = [v for v, _ in anchors]
        freqs = [f for _, f in anchors]
        if voltages != sorted(voltages) or len(set(voltages)) != len(voltages):
            raise ValueError("anchor voltages must be strictly increasing")
        if freqs != sorted(freqs) or len(set(freqs)) != len(freqs):
            raise ValueError("anchor frequencies must be strictly increasing")
        if fo4_depth <= 0:
            raise ValueError("fo4_depth must be positive")
        self._voltages = tuple(voltages)
        self._freqs = tuple(freqs)
        self.fo4_depth = float(fo4_depth)
        self._speedup = reference_fo4 / float(fo4_depth)
        self._interp = PchipInterpolator(voltages, freqs)
        # Exact-input memo tables.  Governed runs evaluate the curve at
        # the same handful of ladder frequencies every epoch; keying on
        # the exact float keeps results bit-identical while skipping
        # the spline evaluation (and, for the inverse, the bisection).
        self._fmax_memo: dict = {}
        self._vmin_memo: dict = {}

    @classmethod
    def from_technology(
        cls,
        tech: TechnologyParameters = PAPER_TECHNOLOGY,
        fo4_depth: float = 20.0,
    ) -> "VoltageFrequencyCurve":
        """Build the paper's curve for a given critical-path depth.

        Instances are shared per ``fo4_depth``: the anchor table is a
        module constant and the curve is a pure function of its inputs,
        so every caller at the same depth can use the same (memoised)
        spline instead of refitting it per chip build.
        """
        curve = _CURVES_BY_DEPTH.get(fo4_depth)
        if curve is None:
            curve = cls(ANCHORS_20FO4, fo4_depth=fo4_depth)
            _CURVES_BY_DEPTH[fo4_depth] = curve
        return curve

    @property
    def v_floor(self) -> float:
        """Lowest modelled voltage."""
        return self._voltages[0]

    @property
    def v_ceiling(self) -> float:
        """Highest modelled voltage."""
        return self._voltages[-1]

    def max_frequency_mhz(self, voltage: float) -> float:
        """Maximum clock rate sustainable at ``voltage``.

        Raises
        ------
        FrequencyRangeError
            If ``voltage`` lies outside the modelled range.
        """
        memo = self._fmax_memo.get(voltage)
        if memo is not None:
            return memo
        if not self.v_floor <= voltage <= self.v_ceiling:
            raise FrequencyRangeError(
                f"voltage {voltage} V outside modelled range "
                f"[{self.v_floor}, {self.v_ceiling}] V"
            )
        result = float(self._interp(voltage)) * self._speedup
        self._fmax_memo[voltage] = result
        return result

    def min_voltage_for(self, frequency_mhz: float) -> float:
        """Continuous minimum supply voltage supporting ``frequency_mhz``.

        This is the inverse of :meth:`max_frequency_mhz`, computed by
        bisection on the forward curve so that
        ``max_frequency_mhz(min_voltage_for(f)) >= f`` always holds.
        """
        memo = self._vmin_memo.get(frequency_mhz)
        if memo is not None:
            return memo
        if frequency_mhz <= 0:
            raise FrequencyRangeError("frequency must be positive")
        f_lo = self.max_frequency_mhz(self.v_floor)
        f_hi = self.max_frequency_mhz(self.v_ceiling)
        if frequency_mhz <= f_lo:
            result = self.v_floor
        elif frequency_mhz > f_hi:
            raise FrequencyRangeError(
                f"{frequency_mhz} MHz exceeds the {f_hi:.0f} MHz ceiling "
                f"at {self.v_ceiling} V"
            )
        else:
            result = float(
                brentq(
                    lambda v: self.max_frequency_mhz(v) - frequency_mhz,
                    self.v_floor,
                    self.v_ceiling,
                )
            )
        self._vmin_memo[frequency_mhz] = result
        return result

    def quantize_voltage(
        self,
        frequency_mhz: float,
        rails: Iterable[float] | None = None,
    ) -> float:
        """Lowest discrete voltage rail that supports ``frequency_mhz``.

        ``rails`` defaults to the paper's Table 4 supply set.  This is
        the operation the paper performs with its SPICE lookup table
        (Section 4.1, step 8).
        """
        if rails is None:
            rails = PAPER_TECHNOLOGY.voltage_rails
        if frequency_mhz <= 0:
            raise FrequencyRangeError("frequency must be positive")
        for rail in sorted(rails):
            if self.max_frequency_mhz(rail) >= frequency_mhz:
                return rail
        raise FrequencyRangeError(
            f"no rail in {sorted(rails)} supports {frequency_mhz} MHz"
        )

    def sweep(self, voltages: Iterable[float]) -> list:
        """Evaluate the curve over many voltages (Figure 5 series)."""
        return [(v, self.max_frequency_mhz(v)) for v in voltages]
