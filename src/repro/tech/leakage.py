"""Subthreshold leakage model (paper Section 4.4).

The paper computes the per-transistor off current from

    I_off = I_on * exp(-V_th / (n * V_t))

with I_on ~ 0.3 uA per micron of width, V_t = kT/q, n in 1.3..1.5, and
V_th = 0.332 V, arriving at ~830 pA per (effective) transistor at 80 C.
Multiplying by 1.8 M transistors per tile gives the nominal 1.5 mA/tile.

The sensitivity study (Figures 9 and 10) sweeps per-tile leakage up to
59.3 mA/tile, the value implied by Intel's published low-Vt 32.5 nA per
transistor [41].
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.tech.parameters import PAPER_TECHNOLOGY, TechnologyParameters

BOLTZMANN_OVER_Q = 8.617333262e-5  # V per kelvin

#: Figure 9/10 x-axis: per-tile leakage currents in mA.
LEAKAGE_SWEEP_MA_PER_TILE = (1.5, 7.4, 14.8, 22.2, 29.6, 37.0, 44.4, 51.8, 59.3)

#: Intel 130 nm per-transistor leakage bounds [41], nA.
INTEL_HIGH_VT_NA = 0.65
INTEL_LOW_VT_NA = 32.5


def thermal_voltage(temperature_c: float) -> float:
    """kT/q in volts at the given temperature in Celsius."""
    return BOLTZMANN_OVER_Q * (temperature_c + 273.15)


@dataclass(frozen=True)
class LeakageModel:
    """Analytic per-transistor and per-tile leakage, per Section 4.4.

    ``effective_width_um`` is the calibration knob: the paper quotes
    830 pA per transistor without stating the width it assumed; we
    solve for the width that reproduces 830 pA under the stated
    conditions (computed in :meth:`calibrated`).
    """

    i_on_ua_per_um: float = 0.3
    ideality_n: float = 1.4
    v_threshold: float = PAPER_TECHNOLOGY.v_threshold
    temperature_c: float = PAPER_TECHNOLOGY.leakage_temperature_c
    effective_width_um: float = 1.0

    def off_current_pa_per_transistor(self) -> float:
        """I_off for one transistor, in picoamps."""
        v_t = thermal_voltage(self.temperature_c)
        i_off_ua = (
            self.i_on_ua_per_um
            * self.effective_width_um
            * math.exp(-self.v_threshold / (self.ideality_n * v_t))
        )
        return i_off_ua * 1.0e6  # uA -> pA

    @classmethod
    def calibrated(
        cls,
        target_pa: float = 830.0,
        tech: TechnologyParameters = PAPER_TECHNOLOGY,
    ) -> "LeakageModel":
        """Model with effective width solved to hit ``target_pa``.

        The paper's own arithmetic for 830 pA is not closed-form
        reproducible (it depends on an unstated average width), so we
        expose the width explicitly and solve for it.
        """
        base = cls(v_threshold=tech.v_threshold,
                   temperature_c=tech.leakage_temperature_c)
        unit = base.off_current_pa_per_transistor()
        return cls(
            v_threshold=tech.v_threshold,
            temperature_c=tech.leakage_temperature_c,
            effective_width_um=target_pa / unit,
        )

    def tile_leakage_ma(
        self,
        transistors_per_tile: float = PAPER_TECHNOLOGY.transistors_per_tile,
    ) -> float:
        """Per-tile leakage current in mA."""
        pa = self.off_current_pa_per_transistor()
        return pa * 1.0e-12 * transistors_per_tile * 1.0e3


def tile_leakage_ma_from_per_transistor(
    per_transistor_pa: float,
    transistors_per_tile: float = PAPER_TECHNOLOGY.transistors_per_tile,
) -> float:
    """Per-tile mA implied by a per-transistor leakage in pA."""
    return per_transistor_pa * 1.0e-12 * transistors_per_tile * 1.0e3


def per_transistor_na_for_tile_ma(
    tile_ma: float,
    transistors_per_tile: float = PAPER_TECHNOLOGY.transistors_per_tile,
) -> float:
    """Invert :func:`tile_leakage_ma_from_per_transistor` (result in nA).

    The paper's Figure 10 caption uses this mapping: a 14.8 mA/tile
    crossover "corresponding to 8.3 nA/transistor".
    """
    if transistors_per_tile <= 0:
        raise ValueError("transistors_per_tile must be positive")
    return tile_ma * 1.0e-3 / transistors_per_tile * 1.0e9


def leakage_power_mw(tile_ma: float, voltage: float, n_tiles: int) -> float:
    """Static power of ``n_tiles`` powered tiles at ``voltage``.

    Idle (unused) tiles are supply-gated and contribute nothing
    (Section 2.2), so callers pass only powered tiles.
    """
    if n_tiles < 0:
        raise ValueError("n_tiles must be non-negative")
    return tile_ma * voltage * n_tiles
