"""Clock generation (paper Sections 2 and 2.4, Figure 1).

A single PLL produces the reference (maximum) clock - also the bus and
DOU clock - and each column derives its own rate through an integer
clock divider configured at startup.  Restricting columns to divided
copies of one reference keeps all inter-column frequency ratios
rational, which is what lets Synchroscalar avoid the asynchronous
FIFOs of GALS designs (Section 6: "similar to Numesh, rather than the
GALS approach").
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.errors import ConfigurationError


class ClockTree:
    """Reference PLL plus per-column integer dividers."""

    def __init__(self, reference_mhz: float, dividers: Sequence[int]) -> None:
        if reference_mhz <= 0:
            raise ConfigurationError("reference frequency must be positive")
        if not dividers:
            raise ConfigurationError("at least one clock domain is required")
        for divider in dividers:
            if not isinstance(divider, int) or divider < 1:
                raise ConfigurationError(
                    f"divider {divider!r} must be a positive integer"
                )
        self.reference_mhz = float(reference_mhz)
        self.dividers = tuple(dividers)

    def frequency_mhz(self, column: int) -> float:
        """Clock rate of one column."""
        return self.reference_mhz / self.dividers[column]

    def ticks(self, column: int, reference_tick: int) -> bool:
        """Whether ``column`` has a clock edge at this reference tick."""
        return reference_tick % self.dividers[column] == 0

    def hyperperiod(self) -> int:
        """Reference ticks after which all column phases realign."""
        period = 1
        for divider in self.dividers:
            period = math.lcm(period, divider)
        return period

    def edge_schedule(self) -> tuple:
        """Per-hyperperiod edge table: offset -> columns with an edge.

        Entry ``o`` lists (ascending) the columns whose divided clock
        has an edge at reference ticks congruent to ``o`` modulo the
        hyperperiod.  Because every divider divides the hyperperiod,
        this table is exact for the whole run - the static activity
        schedule the compiled simulation engine strides over.
        """
        period = self.hyperperiod()
        return tuple(
            tuple(
                column
                for column, divider in enumerate(self.dividers)
                if offset % divider == 0
            )
            for offset in range(period)
        )

    def edges_in(self, column: int, start: int, stop: int) -> int:
        """Number of clock edges of ``column`` in ticks [start, stop)."""
        if stop <= start:
            return 0
        divider = self.dividers[column]
        first = (start + divider - 1) // divider
        last = (stop + divider - 1) // divider
        return last - first

    def ratio(self, a: int, b: int) -> tuple:
        """Reduced rational frequency ratio f_a : f_b."""
        numerator, denominator = self.dividers[b], self.dividers[a]
        g = math.gcd(numerator, denominator)
        return (numerator // g, denominator // g)

    def with_dividers(self, dividers: Sequence[int]) -> "ClockTree":
        """The same reference PLL with retuned column dividers.

        This is the runtime-DVFS retuning primitive: the reference
        clock never changes (one PLL, Section 2.4), only the integer
        dividers do, so inter-column ratios stay rational after every
        retune.  Validation is the constructor's; the *legality* of a
        retune (commit only at a hyperperiod boundary, PLL relock
        stall) is enforced by the control layer
        (:mod:`repro.control.transitions`).
        """
        if len(dividers) != len(self.dividers):
            raise ConfigurationError(
                f"retune must keep {len(self.dividers)} domains, "
                f"got {len(dividers)}"
            )
        return ClockTree(self.reference_mhz, dividers)
