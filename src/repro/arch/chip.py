"""Column and whole-chip assembly (paper Figure 1).

A column couples four tiles, a SIMD controller, a DOU, and a vertical
segmented bus with five taps: the four tiles plus a port position
where the column meets the horizontal inter-column bus (the paper
allocates a single horizontal bus for the lower inter-block bandwidth
and gather/scatter).  The chip instantiates columns, the shared
horizontal bus with its own static schedule, and the clock tree.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.arch.buffers import CommBuffer
from repro.arch.bus import SegmentedBus
from repro.arch.clocking import ClockTree
from repro.arch.config import ChipConfig, ColumnConfig
from repro.arch.dou import Dou, DouProgram
from repro.arch.rate_match import ZormCounter
from repro.arch.simd import SimdController
from repro.arch.tile import Tile
from repro.isa.instructions import Opcode
from repro.isa.program import Program

#: Bus position of the column's horizontal port (after the four tiles).
PORT_POSITION = 4

ISSUED = "issued"
STALLED = "stalled"
BUBBLE = "bubble"


class Column:
    """One frequency/voltage domain: four tiles under SIMD control."""

    def __init__(
        self,
        index: int,
        config: ColumnConfig,
        chip_config: ChipConfig,
        program: Program,
        dou_program: DouProgram | None = None,
    ) -> None:
        self.index = index
        self.config = config
        n_tiles = chip_config.tiles_per_column
        self.tiles = [
            Tile(
                tile_id=i,
                memory_words=chip_config.memory_words,
                buffer_capacity=chip_config.buffer_capacity,
            )
            for i in range(n_tiles)
        ]
        self.h_in = CommBuffer(
            f"col{index}.h_in", capacity=chip_config.port_capacity
        )
        self.h_out = CommBuffer(
            f"col{index}.h_out", capacity=chip_config.port_capacity
        )
        self.controller = SimdController(
            program=program,
            condition_source=self.tiles[0].read_signed_register,
            zorm=ZormCounter(*config.zorm),
            name=f"column{index}",
        )
        self.bus = SegmentedBus(
            name=f"col{index}.vbus",
            n_positions=n_tiles + 1,
            n_splits=chip_config.bus_splits,
        )
        write_ports = {i: tile.write_buffer for i, tile in enumerate(self.tiles)}
        write_ports[n_tiles] = self.h_in
        read_ports = {i: tile.read_buffer for i, tile in enumerate(self.tiles)}
        read_ports[n_tiles] = self.h_out
        self.dou = Dou(
            program=dou_program or DouProgram.idle(),
            bus=self.bus,
            write_ports=write_ports,
            read_ports=read_ports,
            strict=chip_config.strict_schedules,
        )
        self.port_position = n_tiles
        self.comm_stalls = 0
        self.tile_cycles = 0
        # active_tiles() sits on the issue hot path; the tile list is
        # fixed at construction, so the selection per SIMD mask is
        # cached instead of being rebuilt every issued instruction.
        self._active_tiles_cache: dict = {}

    @property
    def halted(self) -> bool:
        """Whether the column's program has finished."""
        return self.controller.halted

    def active_tiles(self) -> list:
        """Tiles enabled by the current SIMD mask (cached per mask).

        The returned list is shared between calls - callers must not
        mutate it.
        """
        mask = self.controller.mask
        tiles = self._active_tiles_cache.get(mask)
        if tiles is None:
            tiles = [
                t for i, t in enumerate(self.tiles) if (mask >> i) & 1
            ]
            self._active_tiles_cache[mask] = tiles
        return tiles

    def blocked_on_recv(self) -> bool:
        """Whether the next tile-clock edges are certain RECV stalls.

        True when the already-fetched pending instruction is a RECV
        and some enabled tile's read buffer is empty: the column
        cannot issue until a DOU capture lands, and every edge until
        then costs exactly one ``comm_stalls`` tile cycle.  A compiled
        engine that can prove no capture will land for a span may
        therefore account those stall edges arithmetically.
        """
        pending = self.controller._pending
        if pending is None or pending.opcode is not Opcode.RECV:
            return False
        for tile in self.active_tiles():
            if tile.read_buffer.is_empty:
                return True
        return False

    def blocked_on_send(self) -> bool:
        """Whether the next tile-clock edges are certain SEND stalls.

        The backpressure mirror of :meth:`blocked_on_recv`: the
        pending instruction is a SEND and some enabled tile's write
        buffer is full, so the column cannot issue until a DOU drain
        pops a word - every edge until then costs exactly one
        ``comm_stalls`` tile cycle.
        """
        pending = self.controller._pending
        if pending is None or pending.opcode is not Opcode.SEND:
            return False
        for tile in self.active_tiles():
            if tile.write_buffer.is_full:
                return True
        return False

    def parked_on_comm(self) -> bool:
        """Whether the column is certainly stalled on its pending comm.

        ``blocked_on_recv() or blocked_on_send()`` with the pending
        instruction inspected once - the form the compiled engine's
        batching loop calls per live column per jump.  A parked column
        stays parked exactly as long as no DOU capture or drain
        touches its buffers, so its stall edges can be settled
        arithmetically over any span the DOUs provably sit still.
        """
        pending = self.controller._pending
        if pending is None:
            return False
        op = pending.opcode
        if op is Opcode.RECV:
            for tile in self.active_tiles():
                if tile.read_buffer.is_empty:
                    return True
            return False
        if op is Opcode.SEND:
            for tile in self.active_tiles():
                if tile.write_buffer.is_full:
                    return True
        return False

    def step_tile_clock(self) -> str:
        """Advance the column by one tile clock; returns the outcome."""
        self.tile_cycles += 1
        instr = self.controller.next_instruction()
        if instr is None:
            return BUBBLE
        active = self.active_tiles()
        op = instr.opcode
        if op is Opcode.RECV or op is Opcode.SEND:
            # Only communication instructions can block on a buffer;
            # every other opcode issues unconditionally.
            for tile in active:
                if not tile.can_execute(instr):
                    self.comm_stalls += 1
                    return STALLED
        self.controller.commit()
        for tile in active:
            tile.execute(instr)
        return ISSUED

    def step_bus_clock(self) -> int:
        """Advance the column's DOU by one bus cycle."""
        return self.dou.step()


class Chip:
    """A full Synchroscalar chip."""

    def __init__(
        self,
        config: ChipConfig,
        programs: list,
        dou_programs: list | None = None,
        horizontal_dou: DouProgram | None = None,
    ) -> None:
        if len(programs) != config.n_columns:
            raise ConfigurationError(
                f"{config.n_columns} columns but {len(programs)} programs"
            )
        if dou_programs is None:
            dou_programs = [None] * config.n_columns
        if len(dou_programs) != config.n_columns:
            raise ConfigurationError(
                "dou_programs must match the column count"
            )
        self.config = config
        self.clock = ClockTree(
            config.reference_mhz,
            [c.divider for c in config.columns],
        )
        self.columns = [
            Column(
                index=i,
                config=config.columns[i],
                chip_config=config,
                program=programs[i],
                dou_program=dou_programs[i],
            )
            for i in range(config.n_columns)
        ]
        self.horizontal_bus = None
        self.horizontal_dou = None
        if config.n_columns >= 2:
            self.horizontal_bus = SegmentedBus(
                name="hbus",
                n_positions=config.n_columns,
                n_splits=config.bus_splits,
            )
            if horizontal_dou is not None:
                self.horizontal_dou = Dou(
                    program=horizontal_dou,
                    bus=self.horizontal_bus,
                    write_ports={
                        i: col.h_out for i, col in enumerate(self.columns)
                    },
                    read_ports={
                        i: col.h_in for i, col in enumerate(self.columns)
                    },
                    strict=config.strict_schedules,
                )
        elif horizontal_dou is not None:
            raise ConfigurationError(
                "a horizontal DOU needs at least two columns"
            )
        self.reference_ticks = 0
        #: Per-column PLL-relock gate: a column receives no tile-clock
        #: edges at reference ticks below its entry (runtime DVFS
        #: transitions stall the retuned column while its divided
        #: clock relocks; see repro.control.transitions).
        self.clock_gate_until = [0] * config.n_columns

    @property
    def all_halted(self) -> bool:
        """Whether every column program has finished."""
        return all(col.halted for col in self.columns)

    def retune(self, dividers) -> None:
        """Commit new column dividers (runtime DVFS).

        Divider changes are only legal at a hyperperiod boundary of
        the *outgoing* clock: every column phase is aligned there, so
        the retuned edge schedule stays deterministic and the compiled
        engine's striding remains exact (Section 2.4's single-PLL
        argument, extended to runtime).
        """
        if self.reference_ticks % self.clock.hyperperiod() != 0:
            raise ConfigurationError(
                f"retune at tick {self.reference_ticks} is not on a "
                f"hyperperiod boundary (hyperperiod "
                f"{self.clock.hyperperiod()})"
            )
        self.clock = self.clock.with_dividers(dividers)

    def step_reference_tick(self, observers: tuple = ()) -> None:
        """One reference-clock tick: buses first, then due columns.

        The DOUs run at the bus (maximum) frequency every tick; a
        column's tiles advance only on their divided clock edges, so
        words crossing domains sit in the voltage-adapting buffers in
        between - exactly the paper's decoupled communication model.

        ``observers`` are notified of every tile-clock issue outcome
        via ``observer.record(tick, column, outcome, pc)`` - the hook
        behind tracing, so traced and untraced runs share this single
        stepping loop.
        """
        tick = self.reference_ticks
        columns = self.columns
        for column in columns:
            column.dou.step()
        horizontal = self.horizontal_dou
        if horizontal is not None:
            horizontal.step()
        dividers = self.clock.dividers
        gates = self.clock_gate_until
        for index, column in enumerate(columns):
            if tick % dividers[index] == 0 and tick >= gates[index]:
                if observers:
                    pc = column.controller.pc
                    outcome = column.step_tile_clock()
                    for observer in observers:
                        observer.record(tick, index, outcome, pc)
                else:
                    column.step_tile_clock()
        self.reference_ticks = tick + 1

    # ------------------------------------------------------------------
    # external I/O (the IN DATA / OUT DATA arrows of Figure 1)
    # ------------------------------------------------------------------
    def feed_column(self, column: int, words: list) -> None:
        """Push input words into a column's horizontal-in port."""
        for word in words:
            self.columns[column].h_in.push(word)

    def drain_column(self, column: int) -> list:
        """Pop every word queued at a column's horizontal-out port."""
        out = self.columns[column].h_out
        words = []
        while not out.is_empty:
            words.append(out.pop())
        return words
