"""Compile column-local compute runs into batched execution.

Between communication instructions a column's behaviour is entirely
local: the SIMD controller streams compute instructions to the tiles,
nothing touches a comm buffer, and therefore nothing any other clock
domain can observe changes.  The reference engine still pays one full
fetch/issue round trip per tile-clock edge for those stretches.  This
module compiles them away:

* **Runs** - maximal blocks of plain compute instructions are bound
  into a dispatch table so a whole block issues without the
  controller's fetch machinery (pending slot, ZORM check, control
  resolution).  Each block is additionally *code-generated* into one
  specialized Python function per block that executes every
  instruction of the block on one tile with the register-file dict
  and memory list bound to locals; a companion bounds pre-check
  proves, from the statically-tracked pointer evolution, that no
  memory access in the block can fault before any tile commits.
  Blocks whose shape the generator does not model (and any block
  whose pre-check fails at run time) fall back to instruction-by-
  instruction issue through :meth:`~repro.arch.tile.Tile.execute`,
  which preserves partial state and error behaviour exactly.

* **Comm-headed issue** - a ``SEND``/``RECV`` may issue *as the first
  edge of a runner call* (that edge is the engine's current tick, so
  the buffer effect lands at exactly the reference time), after which
  the following compute run is pre-executed in the same call.  A comm
  instruction reached after the first edge always stops the run:
  pre-executing it would move its buffer traffic to the wrong tick.
  This also makes loops whose bodies contain communication cheap: the
  per-iteration ``ENDLOOP`` resolves zero-cost in the runner and the
  body's comm/compute segments dispatch individually.

* **Loops** - a ``LOOP`` whose body is all plain compute executes its
  iterations in closed form: the ``LOOP``/``ENDLOOP`` zero-cost
  control is accounted arithmetically, and bodies matching a static
  dataflow shape (post-increment loads, self-increment ``ADDI``,
  ``MAC`` into an accumulator) are *vectorized* - the whole batch of
  iterations collapses into numpy slice arithmetic plus exact Python
  integer accumulation, with register wrap-per-iteration replaced by
  wrap-once (exact for +/- chains by modular arithmetic).

The engine drives this through :class:`ColumnRunner`: ``run_edges(n)``
pre-executes up to ``n`` future tile-clock edges and returns how many
it consumed; the engine credits the column that many upcoming edges.
Crediting is invisible to every other domain because pre-executed
instructions are pure compute - the runner stops at every
communication instruction, branch, ``HALT``, ZORM-enabled controller,
or any other shape that needs the reference fetch path, which then
runs through :meth:`~repro.arch.chip.Column.step_tile_clock`
unchanged.

The runner maintains the exact post-commit controller state at every
stop: ``pc`` sits after the last issued instruction, loop frames and
``control_executed`` match what the reference fetch sequence would
have left, and a pending zero-cost ``ENDLOOP`` exit is only resolved
when the runner itself handles what follows (otherwise it is left for
the next reference fetch, which resolves it in the same cycle it
would have anyway).
"""

from __future__ import annotations

from repro.isa.instructions import Opcode
from repro.isa.program import MAX_LOOP_DEPTH
from repro.isa.registers import ACCUMULATORS, ALL_REGISTERS

try:  # pragma: no cover - numpy is part of the baked toolchain
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

__all__ = ["ColumnRunner", "compile_column_runner"]

#: Minimum batched iterations before a load-carrying loop takes the
#: numpy path (below this the slice/array setup outweighs the win);
#: affine-only bodies are O(1) closed form and always worth it.
VECTOR_MIN_LOADS = 8

_ACC_SET = frozenset(ACCUMULATORS)
_REG_SET = frozenset(ALL_REGISTERS)

_MASK32 = (1 << 32) - 1
_MASK40 = (1 << 40) - 1
_SMAX32 = (1 << 31) - 1
_SMAX40 = (1 << 39) - 1


def _reg(name):
    """Canonical register name, or None if unknown (stay scalar)."""
    if name in _REG_SET:
        return name
    name = name.upper()
    return name if name in _REG_SET else None


def _mask_of(name):
    return _MASK40 if name in _ACC_SET else _MASK32


def _emit_signed(lines, temp, name):
    """Lines loading register ``name`` two's-complement into ``temp``."""
    lines.append(f"    {temp} = v['{name}']")
    if name in _ACC_SET:
        lines.append(
            f"    if {temp} > {_SMAX40}: {temp} -= {_MASK40 + 1}"
        )
    else:
        lines.append(
            f"    if {temp} > {_SMAX32}: {temp} -= {_MASK32 + 1}"
        )


#: Structural memo for generated block functions.  Workload harnesses
#: rebuild identical chips per engine per repeat; the generated code
#: depends only on the instruction shapes, so recompiling per run
#: would put ``builtins.compile`` on the benchmark's critical path.
_CODEGEN_CACHE: dict = {}


def _codegen_key(instrs):
    return tuple(
        (
            instr.opcode, instr.dst, instr.srcs, instr.imm,
            instr.ptr, instr.offset, instr.post_increment,
        )
        for instr in instrs
    )


def _codegen_block(instrs):
    """Compile a compute block to ``(fn, check)``, or ``(None, None)``.

    ``fn(tile)`` executes the whole block on one tile, byte-identical
    to the :meth:`~repro.arch.tile.Tile.execute` sequence.  ``check``
    (``None`` when the block provably cannot fault) evaluates every
    memory address the block will touch - pointer evolution within the
    block is affine, tracked symbolically - against the tile's memory
    bound, so the caller can refuse the batch *before* any tile
    mutates.  Any shape outside the model (dynamic pointers, invalid
    operands that the reference path would fault on, negative shift
    counts) yields ``(None, None)`` and the scalar path keeps the
    reference semantics, including error ordering across tiles.
    """
    try:
        key = _codegen_key(instrs)
    except TypeError:
        key = None
    if key is not None:
        cached = _CODEGEN_CACHE.get(key)
        if cached is not None:
            return cached
    compiled = _codegen_block_uncached(instrs)
    if key is not None:
        _CODEGEN_CACHE[key] = compiled
    return compiled


def _codegen_block_uncached(instrs):
    lines = []
    check_lines = []
    # Symbolic register values relative to block entry:
    # ('e', delta) = entry value + delta, ('c', v) = constant, None =
    # dynamic (untrackable - no memory access may depend on it).
    sym = {name: ("e", 0) for name in ALL_REGISTERS}
    n_mem = 0
    n_mac = 0
    seen_checks = set()
    for instr in instrs:
        op = instr.opcode
        if op is Opcode.NOP:
            continue
        if op in (Opcode.LD, Opcode.ST):
            ptr = _reg(instr.ptr)
            if ptr is None:
                return None, None
            ptr_sym = sym[ptr]
            if ptr_sym is None:
                return None, None  # dynamic pointer: stay scalar
            mask = _mask_of(ptr)
            offset = instr.offset
            if ptr_sym[0] == "c":
                address = (ptr_sym[1] & mask) + offset
                if not 0 <= address < 1 << 32:
                    return None, None  # always faults: stay scalar
                # Constant addresses still need the per-tile memory
                # bound (memory size is uniform per chip config, but
                # the check keeps the generator honest).
                key = ("c", address)
                if key not in seen_checks:
                    seen_checks.add(key)
                    check_lines.append(
                        f"    if not 0 <= {address} < n: return False"
                    )
                addr_expr = str(address)
            else:
                delta = ptr_sym[1]
                evolved = (
                    f"(v['{ptr}'] + {delta}) & {mask}" if delta
                    else f"v['{ptr}']"
                )
                key = ("e", ptr, delta, offset)
                if key not in seen_checks:
                    seen_checks.add(key)
                    check_lines.append(f"    _a = {evolved}")
                    bound = (
                        f"_a + {offset}" if offset else "_a"
                    )
                    check_lines.append(
                        f"    if not 0 <= {bound} < n: return False"
                    )
                addr_expr = (
                    f"{evolved} + {offset}" if offset else evolved
                )
            n_mem += 1
            if op is Opcode.LD:
                dst = _reg(instr.dst)
                if dst is None:
                    return None, None
                # Memory words are stored wrapped, so no dst mask.
                lines.append(f"    v['{dst}'] = mem[{addr_expr}]")
                sym[dst] = None
            else:
                src = _reg(instr.srcs[0])
                if src is None:
                    return None, None
                value = (
                    f"v['{src}'] & {_MASK32}" if src in _ACC_SET
                    else f"v['{src}']"
                )
                lines.append(f"    mem[{addr_expr}] = {value}")
            if instr.post_increment:
                # Reference order: the increment reads the pointer
                # *after* an LD's destination write (dst == ptr loads
                # then increments the loaded value).
                pmask = _mask_of(ptr)
                lines.append(
                    f"    v['{ptr}'] = (v['{ptr}'] + 1) & {pmask}"
                )
                after = sym[ptr]
                sym[ptr] = (
                    (after[0], after[1] + 1) if after is not None
                    else None
                )
            continue
        dst = _reg(instr.dst) if instr.dst else None
        if op is Opcode.MOVI:
            if dst is None:
                return None, None
            lines.append(
                f"    v['{dst}'] = {instr.imm & _mask_of(dst)}"
            )
            sym[dst] = ("c", instr.imm & _mask_of(dst))
            continue
        if op is Opcode.TID:
            if dst is None:
                return None, None
            lines.append(f"    v['{dst}'] = tile.tile_id")
            sym[dst] = None
            continue
        if op is Opcode.MOV:
            src = _reg(instr.srcs[0])
            if dst is None or src is None:
                return None, None
            value = (
                f"v['{src}'] & {_MASK32}"
                if src in _ACC_SET and dst not in _ACC_SET
                else f"v['{src}']"
            )
            lines.append(f"    v['{dst}'] = {value}")
            src_sym = sym[src]
            # ('e', d) is relative to the *source's* entry value, so
            # only constants survive a register-to-register copy.
            sym[dst] = (
                src_sym
                if src_sym is not None and src_sym[0] == "c"
                and src not in _ACC_SET and dst not in _ACC_SET
                else None
            )
            continue
        if op in (Opcode.ADD, Opcode.SUB, Opcode.AND, Opcode.OR,
                  Opcode.XOR):
            a = _reg(instr.srcs[0])
            b = _reg(instr.srcs[1])
            if dst is None or a is None or b is None:
                return None, None
            sign = {
                Opcode.ADD: "+", Opcode.SUB: "-", Opcode.AND: "&",
                Opcode.OR: "|", Opcode.XOR: "^",
            }[op]
            lines.append(
                f"    v['{dst}'] = (v['{a}'] {sign} v['{b}'])"
                f" & {_mask_of(dst)}"
            )
            sym[dst] = None
            continue
        if op is Opcode.ADDI:
            src = _reg(instr.srcs[0])
            if dst is None or src is None:
                return None, None
            lines.append(
                f"    v['{dst}'] = (v['{src}'] + {instr.imm})"
                f" & {_mask_of(dst)}"
            )
            src_sym = sym[src]
            if dst in _ACC_SET or src in _ACC_SET:
                sym[dst] = None
            elif src_sym is None:
                sym[dst] = None
            elif src_sym[0] == "c":
                sym[dst] = ("c", (src_sym[1] + instr.imm) & _MASK32)
            elif dst == src:
                sym[dst] = ("e", src_sym[1] + instr.imm)
            else:
                # entry-relative to *another* register: not modelled.
                sym[dst] = None
            continue
        if op in (Opcode.MIN, Opcode.MAX):
            a = _reg(instr.srcs[0])
            b = _reg(instr.srcs[1])
            if dst is None or a is None or b is None:
                return None, None
            _emit_signed(lines, "_a", a)
            _emit_signed(lines, "_b", b)
            cmp = "<=" if op is Opcode.MIN else ">="
            lines.append(
                f"    v['{dst}'] = (_a if _a {cmp} _b else _b)"
                f" & {_mask_of(dst)}"
            )
            sym[dst] = None
            continue
        if op in (Opcode.NEG, Opcode.ABS):
            src = _reg(instr.srcs[0])
            if dst is None or src is None:
                return None, None
            _emit_signed(lines, "_a", src)
            value = "-_a" if op is Opcode.NEG else "(_a if _a >= 0 else -_a)"
            lines.append(
                f"    v['{dst}'] = ({value}) & {_mask_of(dst)}"
            )
            sym[dst] = None
            continue
        if op in (Opcode.ASR, Opcode.LSL, Opcode.LSR):
            src = _reg(instr.srcs[0])
            if dst is None or src is None or instr.imm < 0:
                return None, None
            if op is Opcode.ASR:
                _emit_signed(lines, "_a", src)
                expr = f"_a >> {instr.imm}"
            elif op is Opcode.LSL:
                expr = f"v['{src}'] << {instr.imm}"
            else:
                expr = f"v['{src}'] >> {instr.imm}"
            lines.append(
                f"    v['{dst}'] = ({expr}) & {_mask_of(dst)}"
            )
            sym[dst] = None
            continue
        if op in (Opcode.MUL, Opcode.MULH, Opcode.MAC):
            a = _reg(instr.srcs[0])
            b = _reg(instr.srcs[1])
            if dst is None or a is None or b is None:
                return None, None
            if op is Opcode.MAC and dst not in _ACC_SET:
                return None, None  # reference path raises: stay scalar
            _emit_signed(lines, "_a", a)
            _emit_signed(lines, "_b", b)
            if op is Opcode.MAC:
                _emit_signed(lines, "_c", dst)
                lines.append(
                    f"    v['{dst}'] = (_c + _a * _b) & {_MASK40}"
                )
                n_mac += 1
            elif op is Opcode.MUL:
                lines.append(
                    f"    v['{dst}'] = (_a * _b) & {_mask_of(dst)}"
                )
            else:
                lines.append(
                    f"    v['{dst}'] = ((_a * _b) >> 32)"
                    f" & {_mask_of(dst)}"
                )
            sym[dst] = None
            continue
        return None, None  # unmodelled opcode (comm/control): scalar
    body = ["def _block(tile):", "    v = tile.regs._values"]
    if n_mem:
        body.append("    mem = tile.memory")
    body.extend(lines)
    body.append(f"    tile.instructions_executed += {len(instrs)}")
    if n_mem:
        body.append(f"    tile.memory_accesses += {n_mem}")
    if n_mac:
        body.append(f"    tile.mac_operations += {n_mac}")
    namespace: dict = {}
    exec(compile("\n".join(body), "<column-exec>", "exec"),
         {}, namespace)
    fn = namespace["_block"]
    if not check_lines:
        return fn, None
    check_src = "\n".join(
        ["def _check(tile):", "    v = tile.regs._values",
         "    n = len(tile.memory)"]
        + check_lines
        + ["    return True"]
    )
    exec(compile(check_src, "<column-exec>", "exec"),
         {"len": len}, namespace)
    return fn, namespace["_check"]


class _VectorPlan:
    """Closed-form batch execution of one compiled loop body.

    ``check(tile, k)`` proves ``k`` iterations raise nothing (every
    load stays in bounds); ``apply(tile, k)`` commits the batch:
    loaded registers take their final (last-iteration) values, each
    accumulator gains the exact sum of its per-iteration products
    (computed as int64 numpy products folded with Python integers, so
    no precision is lost), pointers and ``ADDI`` targets advance
    affinely, and the per-tile counters advance by the batch totals.
    """

    __slots__ = ("lds", "addis", "macs", "n_instrs", "min_batch")

    def __init__(self, lds, addis, macs, n_instrs) -> None:
        self.lds = lds        # ((dst, ptr), ...)
        self.addis = addis    # ((dst, imm), ...)
        self.macs = macs      # ((acc, src0, src1), ...)
        self.n_instrs = n_instrs
        self.min_batch = VECTOR_MIN_LOADS if lds else 1

    def check(self, tile, k: int) -> bool:
        """Whether ``k`` iterations touch only in-bounds addresses."""
        regs = tile.regs
        limit = len(tile.memory)
        for _, ptr in self.lds:
            start = regs.read(ptr)
            if start + k > limit:
                return False
        return True

    def apply(self, tile, k: int) -> None:
        regs = tile.regs
        memory = tile.memory
        loaded = {}
        signed_arrays = {}
        for dst, ptr in self.lds:
            start = regs.read(ptr)
            loaded[dst] = memory[start:start + k]
            regs.write(ptr, start + k)
        totals = {}
        for acc, src0, src1 in self.macs:
            words0 = loaded.get(src0)
            words1 = loaded.get(src1)
            if words0 is None and words1 is None:
                term = (
                    regs.read_signed(src0) * regs.read_signed(src1) * k
                )
            else:
                if words0 is None:
                    vector = self._signed(signed_arrays, src1, words1)
                    products = regs.read_signed(src0) * vector
                elif words1 is None:
                    vector = self._signed(signed_arrays, src0, words0)
                    products = regs.read_signed(src1) * vector
                else:
                    products = (
                        self._signed(signed_arrays, src0, words0)
                        * self._signed(signed_arrays, src1, words1)
                    )
                # Fold in Python integers: int64 products are exact
                # (|signed32|^2 < 2**62) but their *sum* may not be.
                term = sum(products.tolist())
            totals[acc] = totals.get(acc, 0) + term
        for acc, term in totals.items():
            regs.write(acc, regs.read_signed(acc) + term)
        for dst, words in loaded.items():
            regs.write(dst, words[-1])
        for dst, imm in self.addis:
            regs.write(dst, regs.read(dst) + imm * k)
        tile.instructions_executed += k * self.n_instrs
        tile.memory_accesses += k * len(self.lds)
        tile.mac_operations += k * len(self.macs)

    @staticmethod
    def _signed(cache, name, words):
        vector = cache.get(name)
        if vector is None:
            vector = _np.asarray(words, dtype=_np.int64)
            vector = vector - ((vector >> 31) << 32)
            cache[name] = vector
        return vector


def _vectorize(body):
    """A :class:`_VectorPlan` for a loop body, or None.

    The recognized shape is the static dataflow kernel of the paper's
    inner loops: post-increment loads off private pointers, ``MAC``
    accumulation whose operands are this-iteration loads or loop
    invariants, self-increment ``ADDI`` counters, and ``NOP`` padding.
    Anything with a cross-iteration register dependency (other than
    the affine/accumulating ones modelled exactly) is rejected and
    runs through the scalar path instead.
    """
    lds = []    # (body_index, dst, ptr)
    addis = []  # (dst, imm)
    macs = []   # (body_index, acc, src0, src1)
    for index, instr in enumerate(body):
        op = instr.opcode
        if op is Opcode.NOP:
            continue
        if op is Opcode.LD:
            if not instr.post_increment or instr.offset != 0:
                return None
            lds.append((index, instr.dst.upper(), instr.ptr.upper()))
        elif op is Opcode.ADDI:
            dst = instr.dst.upper()
            if dst != instr.srcs[0].upper():
                return None
            addis.append((dst, instr.imm))
        elif op is Opcode.MAC:
            dst = instr.dst.upper()
            if dst not in _ACC_SET:
                return None  # the reference path raises; stay scalar
            macs.append((
                index, dst,
                instr.srcs[0].upper(), instr.srcs[1].upper(),
            ))
        else:
            return None
    if (lds or macs) and _np is None:
        return None
    ld_dst_list = [dst for _, dst, _ in lds]
    ld_ptrs = [ptr for _, _, ptr in lds]
    addi_dsts = [dst for dst, _ in addis]
    mac_srcs = [name for _, _, s0, s1 in macs for name in (s0, s1)]
    written = set(ld_dst_list) | set(ld_ptrs) | set(addi_dsts)
    if len(written) != len(ld_dst_list) + len(ld_ptrs) + len(addi_dsts):
        return None  # aliasing (or duplicate writes): stay scalar
    ld_dsts = {dst: index for index, dst, _ in lds}
    for _, dst, ptr in lds:
        if dst in _ACC_SET or ptr in _ACC_SET:
            return None
        if ptr in mac_srcs:
            return None
    for dst, _ in addis:
        if dst in _ACC_SET or dst in mac_srcs:
            return None
    for index, acc, src0, src1 in macs:
        for src in (src0, src1):
            if src in _ACC_SET or src in addi_dsts:
                return None
            ld_index = ld_dsts.get(src)
            if ld_index is not None and ld_index > index:
                return None  # reads last iteration's load
    return _VectorPlan(
        lds=tuple((dst, ptr) for _, dst, ptr in lds),
        addis=tuple(addis),
        macs=tuple((acc, s0, s1) for _, acc, s0, s1 in macs),
        n_instrs=len(body),
    )


class _LoopPlan:
    """One ``LOOP`` whose whole body is compiled compute."""

    __slots__ = ("body_start", "body", "body_len", "end_pc", "imm",
                 "vector", "body_fn", "body_check")

    def __init__(self, body_start, body, end_pc, imm, vector) -> None:
        self.body_start = body_start
        self.body = body
        self.body_len = len(body)
        self.end_pc = end_pc
        self.imm = imm
        self.vector = vector
        self.body_fn, self.body_check = _codegen_block(body)


#: Dispatch kinds.
_RUN = 0
_LOOP_HEAD = 1
_LOOP_END = 2
_COMM = 3
_LIGHT_END = 4


class ColumnRunner:
    """Pre-executes a column's compiled compute over future edges."""

    __slots__ = ("column", "ctrl", "program_len", "dispatch",
                 "calls", "edges", "vector_batches",
                 "vector_iterations")

    def __init__(self, column, program_len, dispatch) -> None:
        self.column = column
        self.ctrl = column.controller
        self.program_len = program_len
        self.dispatch = dispatch
        self.calls = 0
        self.edges = 0
        self.vector_batches = 0
        self.vector_iterations = 0

    def comm_head(self, pc: int) -> bool:
        """Whether ``pc`` sits on a SEND/RECV this runner can issue.

        The engine's lockstep replay uses this to classify a recorded
        runner call as *comm-headed*: its first edge carries a buffer
        effect, so replaying it inside a batched round fuses the comm
        edge into the batch instead of breaking the batch per call.
        """
        if 0 <= pc < self.program_len:
            entry = self.dispatch[pc]
            return entry is not None and entry[0] == _COMM
        return False

    def run_edges(self, budget: int) -> int:
        """Pre-execute up to ``budget`` tile-clock edges; return count.

        Stops (leaving exact post-commit controller state) at any
        shape the reference path must handle: a fetched-but-stalled
        comm instruction, a branch, ``HALT``/program end, a loop-stack
        error, or plain budget exhaustion.  A return of 0 means the
        very next edge needs :meth:`Column.step_tile_clock`.
        """
        ctrl = self.ctrl
        column = self.column
        dispatch = self.dispatch
        program_len = self.program_len
        consumed = 0
        light_used = False
        self.calls += 1
        while consumed < budget:
            if (ctrl._pending is not None or ctrl.halted
                    or ctrl._stall_pending):
                break
            pc = ctrl.pc
            if pc >= program_len:
                break  # the reference fetch records the halting bubble
            entry = dispatch[pc]
            if entry is None:
                break
            kind = entry[0]
            if kind == _RUN:
                instrs = entry[1]
                count = budget - consumed
                n = len(instrs)
                active = column.active_tiles()
                if n <= count:
                    fn = entry[2]
                    if fn is not None:
                        check = entry[3]
                        safe = True
                        if check is not None:
                            for tile in active:
                                if not check(tile):
                                    safe = False
                                    break
                        if safe:
                            for tile in active:
                                fn(tile)
                            column.tile_cycles += n
                            ctrl.pc += n
                            ctrl.issued += n
                            consumed += n
                            continue
                    count = n
                for instr in instrs[:count]:
                    column.tile_cycles += 1
                    ctrl.pc += 1
                    ctrl.issued += 1
                    for tile in active:
                        tile.execute(instr)
                consumed += count
                continue
            if kind == _COMM:
                if consumed:
                    break  # a future edge cannot carry a comm effect
                reg = entry[2]
                active = column.active_tiles()
                if entry[1]:  # SEND: every write buffer needs room
                    for tile in active:
                        buffer = tile.write_buffer
                        if len(buffer._words) >= buffer.capacity:
                            break
                    else:
                        column.tile_cycles += 1
                        ctrl.pc += 1
                        ctrl.issued += 1
                        for tile in active:
                            buffer = tile.write_buffer
                            buffer._words.append(
                                tile.regs._values[reg]
                            )
                            buffer.total_pushed += 1
                            tile.instructions_executed += 1
                        consumed = 1
                        continue
                    break
                for tile in active:  # RECV: every read buffer nonempty
                    if not tile.read_buffer._words:
                        break
                else:
                    column.tile_cycles += 1
                    ctrl.pc += 1
                    ctrl.issued += 1
                    for tile in active:
                        buffer = tile.read_buffer
                        buffer.total_popped += 1
                        tile.regs._values[reg] = (
                            buffer._words.popleft()
                        )
                        tile.instructions_executed += 1
                    consumed = 1
                    continue
                break
            if kind == _LIGHT_END:
                # Zero-cost ENDLOOP of a loop whose body contains
                # communication: resolve it at most once per call,
                # mirroring the reference fetch's control resolution.
                # Resolving it mid-call lands the pc/loop-frame update
                # a few edges before the reference fetch would - legal
                # for the same reason run crediting is: nothing any
                # other domain (or the settlement/governor machinery)
                # observes mid-window reads them.  Chains of zero-cost
                # control are left to the generic fetch, whose
                # control-only-cycle budget must stay authoritative.
                if light_used:
                    break
                stack = ctrl._loop_stack
                if not stack:
                    break  # reference fetch raises endloop-without-loop
                light_used = True
                ctrl.control_executed += 1
                top = stack[-1]
                if top[1] > 0:
                    top[1] -= 1
                    ctrl.pc = top[0]
                else:
                    stack.pop()
                    ctrl.pc = pc + 1
                continue
            plan = entry[1]
            if kind == _LOOP_HEAD:
                if len(ctrl._loop_stack) >= MAX_LOOP_DEPTH:
                    break  # the reference fetch raises the overflow
                ctrl.control_executed += 1
                ctrl._loop_stack.append([plan.body_start, plan.imm - 1])
                ctrl.pc = plan.body_start
                consumed += self._iterate(plan, budget - consumed)
                continue
            # _LOOP_END: the ENDLOOP of a compiled loop.
            stack = ctrl._loop_stack
            if not stack or stack[-1][0] != plan.body_start:
                break  # foreign/missing frame: reference semantics
            top = stack[-1]
            if top[1] > 0:
                ctrl.control_executed += 1
                top[1] -= 1
                ctrl.pc = plan.body_start
                consumed += self._iterate(plan, budget - consumed)
                continue
            # Loop exit resolves zero-cost control; only take it when
            # the runner handles what follows, otherwise leave the
            # ENDLOOP for the next reference fetch (which resolves it
            # within the same edge it always would have).
            nxt = plan.end_pc + 1
            if nxt >= program_len or dispatch[nxt] is None:
                break
            ctrl.control_executed += 1
            stack.pop()
            ctrl.pc = nxt
        self.edges += consumed
        return consumed

    def _iterate(self, plan, budget: int) -> int:
        """Run whole/partial loop iterations from the body start.

        Entered with ``pc`` at the body start and the top loop frame
        current; issues at least one edge (``budget >= 1``).
        """
        ctrl = self.ctrl
        column = self.column
        body = plan.body
        body_len = plan.body_len
        top = ctrl._loop_stack[-1]
        iterations = min(budget // body_len, top[1] + 1)
        active = column.active_tiles()
        if iterations == 0:
            # Budget ends mid-body: issue the prefix instruction by
            # instruction (exact partial state, including errors).
            for instr in body[:budget]:
                column.tile_cycles += 1
                ctrl.pc += 1
                ctrl.issued += 1
                for tile in active:
                    tile.execute(instr)
            return budget
        vector = plan.vector
        if vector is not None and iterations >= vector.min_batch:
            for tile in active:
                if not vector.check(tile, iterations):
                    break
            else:
                for tile in active:
                    vector.apply(tile, iterations)
                count = iterations * body_len
                column.tile_cycles += count
                ctrl.issued += count
                ctrl.control_executed += iterations - 1
                top[1] -= iterations - 1
                ctrl.pc = plan.end_pc
                self.vector_batches += 1
                self.vector_iterations += iterations
                return count
        body_fn = plan.body_fn
        body_check = plan.body_check
        first = True
        for _ in range(iterations):
            if first:
                first = False
            else:
                # ENDLOOP jump-back: zero-cost prefix of the next edge.
                ctrl.control_executed += 1
                top[1] -= 1
                ctrl.pc = plan.body_start
            if body_fn is not None:
                safe = True
                if body_check is not None:
                    for tile in active:
                        if not body_check(tile):
                            safe = False
                            break
                if safe:
                    for tile in active:
                        body_fn(tile)
                    column.tile_cycles += body_len
                    ctrl.pc += body_len
                    ctrl.issued += body_len
                    continue
            for instr in body:
                column.tile_cycles += 1
                ctrl.pc += 1
                ctrl.issued += 1
                for tile in active:
                    tile.execute(instr)
        return iterations * body_len


def compile_column_runner(column):
    """A :class:`ColumnRunner` for the column, or None.

    Returns None when nothing is compilable or when the controller
    hosts an enabled ZORM counter (rate-matching nops depend on the
    issue history, so every edge must go through the reference fetch).
    """
    ctrl = column.controller
    if ctrl.zorm.enabled:
        return None
    instructions = ctrl._instructions
    n = len(instructions)
    if n == 0:
        return None
    eligible = [
        not instr.is_control
        and instr.opcode is not Opcode.SEND
        and instr.opcode is not Opcode.RECV
        for instr in instructions
    ]
    dispatch: list = [None] * n
    index = 0
    while index < n:
        if not eligible[index]:
            index += 1
            continue
        stop = index
        while stop < n and eligible[stop]:
            stop += 1
        block = tuple(instructions[index:stop])
        for pc in range(index, stop):
            suffix = block[pc - index:]
            fn, check = _codegen_block(suffix)
            dispatch[pc] = (_RUN, suffix, fn, check)
        index = stop
    for pc, instr in enumerate(instructions):
        op = instr.opcode
        if op is Opcode.SEND:
            reg = _reg(instr.srcs[0]) if instr.srcs else None
            # An accumulator source would need the push-time 32-bit
            # mask; leave that rarity to the reference path.
            if reg is not None and reg not in _ACC_SET:
                dispatch[pc] = (_COMM, True, reg)
        elif op is Opcode.RECV:
            reg = _reg(instr.dst) if instr.dst else None
            if reg is not None:
                dispatch[pc] = (_COMM, False, reg)
    for pc, instr in enumerate(instructions):
        if instr.opcode is not Opcode.LOOP or instr.imm < 1:
            continue
        body_start = pc + 1
        end = body_start
        while end < n and eligible[end]:
            end += 1
        if end == body_start or end >= n:
            continue
        if instructions[end].opcode is not Opcode.ENDLOOP:
            continue
        body = tuple(instructions[body_start:end])
        plan = _LoopPlan(
            body_start, body, end, instr.imm, _vectorize(body)
        )
        dispatch[pc] = (_LOOP_HEAD, plan)
        dispatch[end] = (_LOOP_END, plan)
    # ENDLOOPs not claimed by a fully-compiled loop (bodies with
    # communication or other reference-path shapes) still resolve
    # zero-cost in the runner, provided they statically match a LOOP
    # whose body holds at least one non-control instruction - the
    # guard that keeps the generic fetch's control-only-cycle budget
    # reachable exactly when the reference would hit it.
    loop_stack: list = []
    for pc, instr in enumerate(instructions):
        op = instr.opcode
        if op is Opcode.LOOP:
            loop_stack.append((pc, instr.imm))
        elif op is Opcode.ENDLOOP and loop_stack:
            head, imm = loop_stack.pop()
            if dispatch[pc] is not None or imm < 1:
                continue
            if any(
                not ins.is_control
                for ins in instructions[head + 1:pc]
            ):
                dispatch[pc] = (_LIGHT_END,)
    if not any(entry is not None for entry in dispatch):
        return None
    return ColumnRunner(column, n, tuple(dispatch))
