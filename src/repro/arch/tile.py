"""Processing-element tile (paper Sections 2.3 and 4.2).

A tile is a Blackfin-like DSP datapath: data registers R0-R7 (R7 is
the communication register), pointer registers P0-P5, two 40-bit
accumulators, and 32 KB of word-addressed local data memory.  Control
never reaches the tile - the SIMD controller streams decoded compute
instructions in - so a tile's execute loop is pure dataflow.
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.arch.buffers import CommBuffer
from repro.isa.instructions import Instruction, Opcode
from repro.isa.registers import (
    RegisterFile,
    is_accumulator,
    wrap32,
)

#: 32 KB data memory = 8192 32-bit words (Table 2).
DEFAULT_MEMORY_WORDS = 8192


class Tile:
    """One processing element within a column."""

    def __init__(
        self,
        tile_id: int,
        memory_words: int = DEFAULT_MEMORY_WORDS,
        buffer_capacity: int = 8,
    ) -> None:
        self.tile_id = tile_id
        self.regs = RegisterFile()
        self.memory = [0] * memory_words
        self.write_buffer = CommBuffer(
            f"tile{tile_id}.write", capacity=buffer_capacity
        )
        self.read_buffer = CommBuffer(
            f"tile{tile_id}.read", capacity=buffer_capacity
        )
        self.instructions_executed = 0
        self.mac_operations = 0
        self.memory_accesses = 0

    # ------------------------------------------------------------------
    # memory helpers
    # ------------------------------------------------------------------
    def load_memory(self, base: int, words: list) -> None:
        """Preload data memory starting at word address ``base``."""
        if base < 0 or base + len(words) > len(self.memory):
            raise SimulationError(
                f"tile {self.tile_id}: preload outside memory"
            )
        for index, word in enumerate(words):
            self.memory[base + index] = wrap32(word)

    def read_memory(self, base: int, count: int) -> list:
        """Read ``count`` words starting at ``base``."""
        if base < 0 or base + count > len(self.memory):
            raise SimulationError(
                f"tile {self.tile_id}: read outside memory"
            )
        return self.memory[base:base + count]

    def _address(self, instr: Instruction) -> int:
        address = self.regs.read(instr.ptr) + instr.offset
        if not 0 <= address < len(self.memory):
            raise SimulationError(
                f"tile {self.tile_id}: address {address} out of bounds"
            )
        return address

    # ------------------------------------------------------------------
    # readiness and execution
    # ------------------------------------------------------------------
    def can_execute(self, instr: Instruction) -> bool:
        """Whether the instruction would block on a comm buffer."""
        if instr.opcode is Opcode.RECV:
            return not self.read_buffer.is_empty
        if instr.opcode is Opcode.SEND:
            return not self.write_buffer.is_full
        return True

    def execute(self, instr: Instruction) -> None:
        """Execute one compute/memory/communication instruction."""
        op = instr.opcode
        regs = self.regs
        # RECV/SEND head the dispatch chain: streaming kernels spend
        # almost every tile cycle in communication, so the common case
        # should not walk the whole compute-opcode ladder first.
        if op is Opcode.RECV:
            regs.write(instr.dst, self.read_buffer.pop())
        elif op is Opcode.SEND:
            self.write_buffer.push(regs.read(instr.srcs[0]))
        elif op is Opcode.NOP:
            pass
        elif op is Opcode.MOVI:
            regs.write(instr.dst, instr.imm)
        elif op is Opcode.MOV:
            regs.write(instr.dst, regs.read(instr.srcs[0]))
        elif op is Opcode.ADD:
            regs.write(instr.dst,
                       regs.read(instr.srcs[0]) + regs.read(instr.srcs[1]))
        elif op is Opcode.ADDI:
            regs.write(instr.dst, regs.read(instr.srcs[0]) + instr.imm)
        elif op is Opcode.SUB:
            regs.write(instr.dst,
                       regs.read(instr.srcs[0]) - regs.read(instr.srcs[1]))
        elif op is Opcode.AND:
            regs.write(instr.dst,
                       regs.read(instr.srcs[0]) & regs.read(instr.srcs[1]))
        elif op is Opcode.OR:
            regs.write(instr.dst,
                       regs.read(instr.srcs[0]) | regs.read(instr.srcs[1]))
        elif op is Opcode.XOR:
            regs.write(instr.dst,
                       regs.read(instr.srcs[0]) ^ regs.read(instr.srcs[1]))
        elif op is Opcode.MIN:
            regs.write(instr.dst,
                       min(regs.read_signed(instr.srcs[0]),
                           regs.read_signed(instr.srcs[1])))
        elif op is Opcode.MAX:
            regs.write(instr.dst,
                       max(regs.read_signed(instr.srcs[0]),
                           regs.read_signed(instr.srcs[1])))
        elif op is Opcode.NEG:
            regs.write(instr.dst, -regs.read_signed(instr.srcs[0]))
        elif op is Opcode.ABS:
            regs.write(instr.dst, abs(regs.read_signed(instr.srcs[0])))
        elif op is Opcode.ASR:
            regs.write(instr.dst,
                       regs.read_signed(instr.srcs[0]) >> instr.imm)
        elif op is Opcode.LSL:
            regs.write(instr.dst, regs.read(instr.srcs[0]) << instr.imm)
        elif op is Opcode.LSR:
            regs.write(instr.dst, regs.read(instr.srcs[0]) >> instr.imm)
        elif op is Opcode.MUL:
            product = (regs.read_signed(instr.srcs[0])
                       * regs.read_signed(instr.srcs[1]))
            regs.write(instr.dst, product)
        elif op is Opcode.MULH:
            product = (regs.read_signed(instr.srcs[0])
                       * regs.read_signed(instr.srcs[1]))
            regs.write(instr.dst, product >> 32)
        elif op is Opcode.MAC:
            if not is_accumulator(instr.dst):
                raise SimulationError("mac destination must be A0 or A1")
            product = (regs.read_signed(instr.srcs[0])
                       * regs.read_signed(instr.srcs[1]))
            regs.write(instr.dst, regs.read_signed(instr.dst) + product)
            self.mac_operations += 1
        elif op is Opcode.TID:
            regs.write(instr.dst, self.tile_id)
        elif op is Opcode.LD:
            address = self._address(instr)
            regs.write(instr.dst, self.memory[address])
            if instr.post_increment:
                regs.write(instr.ptr, regs.read(instr.ptr) + 1)
            self.memory_accesses += 1
        elif op is Opcode.ST:
            address = self._address(instr)
            self.memory[address] = wrap32(regs.read(instr.srcs[0]))
            if instr.post_increment:
                regs.write(instr.ptr, regs.read(instr.ptr) + 1)
            self.memory_accesses += 1
        else:
            raise SimulationError(
                f"tile {self.tile_id}: control opcode {op.value!r} "
                f"reached a tile"
            )
        self.instructions_executed += 1

    def read_signed_register(self, name: str) -> int:
        """Signed register view (used by the controller for branches)."""
        return self.regs.read_signed(name)
