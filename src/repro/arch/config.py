"""Chip and column configuration records.

Frequencies and voltages are statically assigned at startup
(Section 2: columns "are configured at startup"); this module carries
that static configuration and validates it against the technology's
voltage-frequency curve.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.tech.parameters import PAPER_TECHNOLOGY, TechnologyParameters
from repro.tech.vf_curve import VoltageFrequencyCurve


@dataclass(frozen=True)
class ColumnConfig:
    """Static per-column settings.

    ``divider`` relates the column clock to the reference clock;
    ``voltage_v`` is the column supply (None = derive the minimum rail
    for the divided frequency); ``zorm`` is an optional
    (interval, nops) rate-matching setting; ``powered`` is False for
    columns of idle tiles, which are supply-gated (Section 2.2).
    """

    divider: int = 1
    voltage_v: float | None = None
    zorm: tuple = (0, 0)
    powered: bool = True

    def __post_init__(self) -> None:
        if not isinstance(self.divider, int) or self.divider < 1:
            raise ConfigurationError("divider must be a positive integer")
        if self.voltage_v is not None and self.voltage_v <= 0:
            raise ConfigurationError("voltage must be positive")
        if len(self.zorm) != 2 or any(v < 0 for v in self.zorm):
            raise ConfigurationError("zorm must be (interval, nops) >= 0")


@dataclass(frozen=True)
class ChipConfig:
    """Static whole-chip settings."""

    reference_mhz: float
    columns: tuple
    tiles_per_column: int = PAPER_TECHNOLOGY.tiles_per_column
    bus_splits: int = PAPER_TECHNOLOGY.bus_splits
    memory_words: int = 8192
    buffer_capacity: int = 8
    port_capacity: int = 64
    strict_schedules: bool = True
    tech: TechnologyParameters = field(default=PAPER_TECHNOLOGY)

    def __post_init__(self) -> None:
        if self.reference_mhz <= 0:
            raise ConfigurationError("reference frequency must be positive")
        if not self.columns:
            raise ConfigurationError("a chip needs at least one column")
        for column in self.columns:
            if not isinstance(column, ColumnConfig):
                raise ConfigurationError(
                    "columns must be ColumnConfig instances"
                )
        if self.tiles_per_column < 1:
            raise ConfigurationError("tiles_per_column must be positive")

    @property
    def n_columns(self) -> int:
        """Number of columns on the chip."""
        return len(self.columns)

    def column_frequency_mhz(self, index: int) -> float:
        """Divided clock rate of one column."""
        return self.reference_mhz / self.columns[index].divider

    def resolve_voltages(
        self, curve: VoltageFrequencyCurve | None = None
    ) -> tuple:
        """Supply voltage per column, deriving unset ones from the curve.

        Raises if an explicitly configured voltage cannot support the
        column's frequency.
        """
        curve = curve or VoltageFrequencyCurve.from_technology(self.tech)
        voltages = []
        for index, column in enumerate(self.columns):
            frequency = self.column_frequency_mhz(index)
            if column.voltage_v is None:
                voltages.append(
                    curve.quantize_voltage(frequency,
                                           self.tech.voltage_rails)
                )
                continue
            if curve.max_frequency_mhz(column.voltage_v) < frequency:
                raise ConfigurationError(
                    f"column {index}: {column.voltage_v} V cannot "
                    f"sustain {frequency:.0f} MHz"
                )
            voltages.append(column.voltage_v)
        return tuple(voltages)
