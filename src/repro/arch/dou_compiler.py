"""Compile logical transfers into DOU programs.

The paper programs each DOU by hand with "the desired communication
patterns for the column-bus it controls" (Section 2.3).  This module
is the small compiler the paper leaves to future work: you state WHAT
moves each cycle (source position -> destination positions) and it
assigns bus splits, closes the minimal switch runs, and emits a
validated :class:`~repro.arch.dou.DouProgram`.

Positions are 0..3 for the column's tiles and 4 (PORT_POSITION) for
its horizontal port.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.arch.chip import PORT_POSITION
from repro.arch.dou import DouCycle, DouProgram, linear_schedule


@dataclass(frozen=True)
class Transfer:
    """One word movement within one bus cycle.

    ``split=None`` asks the compiler to pick a free split; an explicit
    split is validated against segment conflicts.
    """

    src: int
    dsts: tuple
    split: int | None = None

    def __post_init__(self) -> None:
        if not self.dsts:
            raise ConfigurationError("a transfer needs >= 1 destination")
        if self.src in self.dsts:
            # Self-delivery is legal on the hardware (the source's
            # read buffer captures its own segment) but is almost
            # always a schedule bug when requested explicitly.
            raise ConfigurationError(
                "source is also a destination; broadcast captures are "
                "added implicitly where needed"
            )

    @property
    def positions(self) -> tuple:
        """Every position the transfer touches."""
        return (self.src,) + tuple(self.dsts)

    @property
    def segment_range(self) -> tuple:
        """(low, high) positions whose segments must fuse."""
        return (min(self.positions), max(self.positions))


def _ranges_overlap(a: tuple, b: tuple) -> bool:
    return not (a[1] < b[0] or b[1] < a[0])


def compile_cycle(
    transfers: list,
    n_positions: int = PORT_POSITION + 1,
    n_splits: int = 8,
) -> DouCycle:
    """Schedule one cycle's transfers onto splits.

    Transfers whose segment ranges overlap must use different splits;
    disjoint ranges may share one (that is the whole point of
    segmentation).  Explicit split choices are honoured and checked.

    Raises
    ------
    ConfigurationError
        On out-of-range positions, conflicting explicit splits, or
        more overlapping transfers than there are splits.
    """
    for transfer in transfers:
        for position in transfer.positions:
            if not 0 <= position < n_positions:
                raise ConfigurationError(
                    f"position {position} outside 0..{n_positions - 1}"
                )

    # occupied[split] = list of segment ranges already on that split
    occupied: dict = {}

    def fits(split: int, candidate: tuple) -> bool:
        return all(
            not _ranges_overlap(candidate, existing)
            for existing in occupied.get(split, [])
        )

    placed = []
    for transfer in transfers:
        candidate = transfer.segment_range
        if transfer.split is not None:
            if not 0 <= transfer.split < n_splits:
                raise ConfigurationError(
                    f"split {transfer.split} outside 0..{n_splits - 1}"
                )
            if not fits(transfer.split, candidate):
                raise ConfigurationError(
                    f"transfer {transfer.src}->{transfer.dsts} "
                    f"conflicts on split {transfer.split}"
                )
            chosen = transfer.split
        else:
            chosen = next(
                (s for s in range(n_splits) if fits(s, candidate)),
                None,
            )
            if chosen is None:
                raise ConfigurationError(
                    "cycle needs more overlapping transfers than the "
                    f"bus has splits ({n_splits})"
                )
        occupied.setdefault(chosen, []).append(candidate)
        placed.append((transfer, chosen))

    closed = set()
    drives = []
    captures = []
    for transfer, split in placed:
        low, high = transfer.segment_range
        for boundary in range(low, high):
            closed.add((split, boundary))
        drives.append((transfer.src, split))
        for dst in transfer.dsts:
            captures.append((dst, split))
    return DouCycle(
        closed=frozenset(closed),
        drives=tuple(drives),
        captures=tuple(captures),
    )


def compile_schedule(
    cycles: list,
    repeat: int | None = None,
    n_positions: int = PORT_POSITION + 1,
    n_splits: int = 8,
    name: str = "compiled",
) -> DouProgram:
    """Compile a list of per-cycle transfer lists into a DOU program."""
    if not cycles:
        raise ConfigurationError("schedule needs at least one cycle")
    compiled = [
        compile_cycle(cycle, n_positions=n_positions, n_splits=n_splits)
        for cycle in cycles
    ]
    return linear_schedule(compiled, repeat=repeat, name=name)


def chain_schedule(
    stages: int = 4,
    include_input: bool = True,
    include_output: bool = True,
    repeat: int | None = None,
) -> DouProgram:
    """The pipeline pattern: port -> t0 -> t1 -> ... -> port.

    All hops run concurrently in a single cycle on distinct splits -
    the mesh-equivalent bandwidth Section 2.3 claims for a segmented
    bus.
    """
    if not 1 <= stages <= PORT_POSITION:
        raise ConfigurationError(
            f"stages must lie in 1..{PORT_POSITION}"
        )
    transfers = []
    if include_input:
        transfers.append(Transfer(src=PORT_POSITION, dsts=(0,)))
    for stage in range(stages - 1):
        transfers.append(Transfer(src=stage, dsts=(stage + 1,)))
    if include_output:
        transfers.append(
            Transfer(src=stages - 1, dsts=(PORT_POSITION,))
        )
    return compile_schedule([transfers], repeat=repeat, name="chain")


def broadcast_schedule(
    src: int = 0,
    include_self: bool = True,
    repeat: int | None = None,
) -> DouProgram:
    """One position broadcasts to every tile each cycle."""
    dsts = tuple(t for t in range(PORT_POSITION) if t != src)
    cycle = compile_cycle([Transfer(src=src, dsts=dsts)])
    if include_self:
        # SIMD columns usually need the source tile to receive its own
        # word too (every tile executes the same RECV).
        split = cycle.drives[0][1]
        cycle = DouCycle(
            closed=cycle.closed,
            drives=cycle.drives,
            captures=cycle.captures + ((src, split),),
        )
    return linear_schedule([cycle], repeat=repeat, name="broadcast")


def exchange_schedule(
    pairs: list | None = None,
    repeat: int | None = None,
) -> DouProgram:
    """Pairwise swap: both directions of each pair in one cycle.

    Default pairs are (0, 1) and (2, 3) - the Viterbi ACS butterfly's
    neighbour exchange.
    """
    pairs = pairs or [(0, 1), (2, 3)]
    transfers = []
    for a, b in pairs:
        transfers.append(Transfer(src=a, dsts=(b,)))
        transfers.append(Transfer(src=b, dsts=(a,)))
    return compile_schedule([transfers], repeat=repeat, name="exchange")
