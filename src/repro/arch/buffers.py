"""Tile read/write communication buffers (paper Section 2.3).

Each tile owns a read and a write buffer with a dual purpose: adapting
the tile's voltage to the bus voltage (columns may run at different
supplies) and aligning a word onto the desired split of the global
data bus.  We model them as bounded FIFOs; overflow/underflow under a
strict static schedule is a scheduling bug and raises.
"""

from __future__ import annotations

from collections import deque

from repro.errors import SimulationError


class CommBuffer:
    """A bounded FIFO of 32-bit words."""

    def __init__(self, name: str, capacity: int = 8) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.name = name
        self.capacity = capacity
        # The backing deque is bound by compiled DOU transfer plans
        # (repro.arch.dou_exec); it must never be reassigned.
        self._words: deque = deque()
        self.total_pushed = 0
        self.total_popped = 0

    def __len__(self) -> int:
        return len(self._words)

    @property
    def is_empty(self) -> bool:
        """True when no word is queued."""
        return not self._words

    @property
    def is_full(self) -> bool:
        """True when another push would overflow."""
        return len(self._words) >= self.capacity

    def push(self, value: int) -> None:
        """Enqueue one word; raises on overflow."""
        if self.is_full:
            raise SimulationError(
                f"{self.name}: buffer overflow (capacity {self.capacity})"
            )
        self._words.append(value & 0xFFFFFFFF)
        self.total_pushed += 1

    def pop(self) -> int:
        """Dequeue one word; raises on underflow."""
        if self.is_empty:
            raise SimulationError(f"{self.name}: buffer underflow")
        self.total_popped += 1
        return self._words.popleft()

    def peek(self) -> int:
        """The word a pop would return, without removing it."""
        if self.is_empty:
            raise SimulationError(f"{self.name}: peek on empty buffer")
        return self._words[0]

    def drain(self) -> int:
        """Dequeue every queued word at once; returns the count.

        Equivalent to calling :meth:`pop` until empty (the popped
        values are discarded) - harnesses that only count produced
        words use this instead of a per-word loop.
        """
        count = len(self._words)
        if count:
            self._words.clear()
            self.total_popped += count
        return count

    def clear(self) -> None:
        """Drop all queued words (startup/reset)."""
        self._words.clear()
