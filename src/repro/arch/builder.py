"""Build chip configurations from mapped applications.

Closes the loop of the Section 4.1 methodology: an
:class:`~repro.sdf.mapping.MappedApplication` (components with derived
frequencies and voltages) becomes a concrete
:class:`~repro.arch.config.ChipConfig` - reference PLL rate, one clock
divider per column, per-column supply, and the Zero-Overhead
Rate-Matching settings that absorb the divider residue.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.arch.config import ChipConfig, ColumnConfig
from repro.tech.parameters import PAPER_TECHNOLOGY, TechnologyParameters


@dataclass(frozen=True)
class ChipPlan:
    """A chip configuration plus the component-to-column map."""

    config: ChipConfig
    column_map: dict          # component name -> tuple of column indices
    reference_mhz: float

    @property
    def n_columns(self) -> int:
        """Columns instantiated."""
        return self.config.n_columns

    def columns_of(self, component: str) -> tuple:
        """Column indices hosting one component."""
        try:
            return self.column_map[component]
        except KeyError:
            raise ConfigurationError(
                f"unknown component {component!r}"
            ) from None


def build_chip_plan(
    app,
    reference_mhz: float | None = None,
    tech: TechnologyParameters = PAPER_TECHNOLOGY,
    strict_schedules: bool = True,
) -> ChipPlan:
    """Instantiate columns for every component of a mapped application.

    Each component receives ``ceil(tiles / 4)`` whole columns at the
    divider and ZORM setting its operating point implies; idle tiles
    within a partially used column are supply-gated by construction
    (Section 2.2).

    Voltages are re-derived from the **actual** divided clock rather
    than copied from the mapping: an integer divider can only
    approximate the mapped frequency from above, and the supply must
    sustain the clock the column really sees.  (Table 4's frequency
    sets are not all exactly realizable from one integer-divided
    reference - a gap the paper does not discuss; see
    ``repro.workloads.realization`` for the cost analysis.)
    """
    reference = reference_mhz or app.max_frequency_mhz
    plan = app.clock_dividers(reference)
    columns = []
    column_map: dict = {}
    for component in app.components:
        divider, _actual, zorm = plan[component.name]
        n_columns = math.ceil(
            component.n_tiles / tech.tiles_per_column
        )
        first = len(columns)
        for _ in range(n_columns):
            columns.append(ColumnConfig(
                divider=divider,
                voltage_v=None,  # derived from the divided clock
                zorm=zorm,
            ))
        column_map[component.name] = tuple(
            range(first, first + n_columns)
        )
    config = ChipConfig(
        reference_mhz=reference,
        columns=tuple(columns),
        strict_schedules=strict_schedules,
        tech=tech,
    )
    # Fail fast if any assigned rail cannot carry its divided clock.
    config.resolve_voltages()
    return ChipPlan(
        config=config,
        column_map=column_map,
        reference_mhz=reference,
    )
